"""FTL garbage-collection policy ablation.

PolarCSD relies on its FTL's GC to reclaim byte-granular stale space
(§3.2.2).  This bench quantifies the write-amplification cost of that
reliance under hot/cold skewed overwrites, comparing the greedy victim
policy with LFS-style cost-benefit, across over-provisioning levels.
"""

import random

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, MiB
from repro.csd.ftl import FTL
from repro.workloads.zipf import ZipfSampler


def _churn(ftl, writes=6000, lbas=None, seed=0):
    rng = random.Random(seed)
    sampler = ZipfSampler(lbas, s=1.1, seed=seed)
    for _ in range(writes):
        lba = int(sampler.one())
        ftl.write(lba, rng.randint(1500, 4096))
    return ftl.stats


def run_gc_ablation():
    result = ExperimentResult(
        "ablation_ftl_gc",
        "GC policy and over-provisioning vs write amplification",
        ["policy", "utilization", "write_amp", "gc_runs"],
    )
    rows = {}
    for policy in ("greedy", "cost-benefit"):
        for lbas, label in ((120, "~70%"), (150, "~85%")):
            ftl = FTL(
                2 * MiB, block_capacity=128 * KiB, gc_policy=policy
            )
            stats = _churn(ftl, lbas=lbas)
            rows[(policy, label)] = stats.write_amplification
            result.add(policy, label, stats.write_amplification,
                       stats.gc_runs)
    result.note(
        "higher space utilization inflates GC write amplification; "
        "cost-benefit (age-aware) victims help under skewed overwrites"
    )
    print_table(result)
    save_result(result)
    return rows


def test_gc_ablation(run_once):
    rows = run_once(run_gc_ablation)
    # More utilization => more write amplification, for both policies.
    for policy in ("greedy", "cost-benefit"):
        assert rows[(policy, "~85%")] > rows[(policy, "~70%")]
    # Both policies stay in a sane WA band under this churn.
    assert all(1.0 <= wa < 6.0 for wa in rows.values())
