"""Figure 7: device latency under fio-style workloads at target compression
ratios 1.0–4.0 (16 KB I/O, queue depth 1).

Paper result: PolarCSD writes are *faster* than the same-generation Intel
SSD but reads are *slower*; both CSD latencies fall as the data gets more
compressible; plain SSDs are flat; PCIe 4.0 beats PCIe 3.0.
"""

import dataclasses

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, MiB
from repro.csd.device import PlainSSD, PolarCSD
from repro.csd.specs import P4510, P5510, POLARCSD1, POLARCSD2
from repro.workloads.fio import buffer_with_ratio

IO_SIZE = 16 * KiB
IOS_PER_POINT = 64
RATIOS = (1.0, 2.0, 3.0, 4.0)


def _make_device(spec, seed=0):
    sized = dataclasses.replace(
        spec,
        logical_capacity=64 * MiB,
        physical_capacity=64 * MiB,
        jitter_sigma=0.0,
    )
    if sized.has_compression:
        # Keep enough NAND for incompressible runs.
        return PolarCSD(sized, seed=seed, block_capacity=1 * MiB)
    return PlainSSD(sized, seed=seed)


def _measure(spec, ratio):
    device = _make_device(spec)
    buf = buffer_with_ratio(ratio, IO_SIZE * IOS_PER_POINT, seed=7)
    now = 0.0
    # Writes, QD1.
    for i in range(IOS_PER_POINT):
        chunk = buf[i * IO_SIZE : (i + 1) * IO_SIZE]
        now = device.write(now, i * 4, chunk).done_us
    write_avg = device.write_stats.mean_us
    # Reads, QD1.
    for i in range(IOS_PER_POINT):
        now = device.read(now, i * 4, IO_SIZE).done_us
    read_avg = device.read_stats.mean_us
    return write_avg, read_avg


def run_figure7():
    result = ExperimentResult(
        "fig7_device_latency",
        "16KB QD1 latency vs target compression ratio",
        ["device", "ratio", "write_us", "read_us"],
    )
    measured = {}
    for spec in (P4510, POLARCSD1, P5510, POLARCSD2):
        for ratio in RATIOS:
            write_us, read_us = _measure(spec, ratio)
            result.add(spec.name, ratio, write_us, read_us)
            measured[(spec.name, ratio)] = (write_us, read_us)
    result.note("plain SSDs are flat across ratios; CSDs improve with ratio")
    print_table(result)
    save_result(result)
    return measured


def test_fig7(run_once):
    measured = run_once(run_figure7)

    def write(dev, ratio):
        return measured[(dev, ratio)][0]

    def read(dev, ratio):
        return measured[(dev, ratio)][1]

    for ratio in RATIOS:
        # CSD writes beat the matching plain SSD; CSD reads are slower.
        assert write("PolarCSD1.0", ratio) < write("Intel P4510", ratio)
        assert write("PolarCSD2.0", ratio) < write("Intel P5510", ratio)
        assert read("PolarCSD1.0", ratio) > read("Intel P4510", ratio)
        assert read("PolarCSD2.0", ratio) > read("Intel P5510", ratio)
        # Gen 2 beats gen 1 (PCIe 4.0 + lower overheads).
        assert read("PolarCSD2.0", ratio) < read("PolarCSD1.0", ratio)
    # Higher compressibility lowers CSD latency.
    for dev in ("PolarCSD1.0", "PolarCSD2.0"):
        assert read(dev, 4.0) < read(dev, 1.0)
        assert write(dev, 4.0) < write(dev, 1.0)
    # Plain SSDs are flat (within 2%).
    for dev in ("Intel P4510", "Intel P5510"):
        assert abs(read(dev, 4.0) - read(dev, 1.0)) / read(dev, 1.0) < 0.02
