"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module reproduces one figure or table of the paper.  The
pytest-benchmark timings measure the simulation run itself; the paper-
shaped outputs are printed and saved under ``benchmarks/results/``.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark.

    The simulated metrics are deterministic, so repeated rounds add
    nothing but wall time.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
