"""Figure 12: overall performance of N1/C1/N2/C2 across the seven sysbench
workloads (throughput, average latency, P95 latency).

Paper result (16 threads, I/O-bound): C1 (PolarCSD1.0, hardware-only
compression) runs ~10% below N1 (P4510); C2 (PolarCSD2.0 with the full
dual-layer stack and all optimizations) reaches parity with N2 (P5510).

Transaction counts are trimmed for pure-Python runtime; the simulated
clock still exposes the relative ordering the paper reports.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import MiB
from repro.csd.specs import (
    OPTANE_P4800X,
    OPTANE_P5800X,
    P4510,
    P5510,
    POLARCSD1,
    POLARCSD2,
)
from repro.db.database import PolarDB
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore
from repro.workloads.sysbench import (
    SYSBENCH_WORKLOADS,
    WORKLOAD_LABELS,
    prepare_table,
    run_sysbench,
)

#: Sized so the working set far exceeds the buffer pool — the paper's
#: "I/O-bound environment" (480 GB data vs 32 GB RAM) at simulation scale.
ROWS = 3000
BUFFER_POOL_PAGES = 10
THREADS = 16
TXN_BUDGET = {
    "insert": 60,
    "point_select": 200,
    "read_only": 40,
    "read_write": 30,
    "write_only": 45,
    "update_index": 60,
    "update_non_index": 80,
}

#: Cluster configurations from Table 2.
CLUSTERS = {
    "N1": dict(
        data_spec=P4510, perf_spec=OPTANE_P4800X,
        config=NodeConfig(
            software_compression=False, opt_algorithm_selection=False,
            opt_per_page_log=False,
        ),
    ),
    "C1": dict(
        data_spec=POLARCSD1, perf_spec=OPTANE_P4800X,
        config=NodeConfig(
            software_compression=False, opt_algorithm_selection=False,
            opt_per_page_log=False,
        ),
    ),
    "N2": dict(
        data_spec=P5510, perf_spec=OPTANE_P5800X,
        config=NodeConfig(
            software_compression=False, opt_algorithm_selection=False,
            opt_per_page_log=False,
        ),
    ),
    "C2": dict(
        data_spec=POLARCSD2, perf_spec=OPTANE_P5800X,
        config=NodeConfig(),
    ),
}


def _make_db(cluster, seed=3):
    spec = CLUSTERS[cluster]
    store = PolarStore(
        spec["config"],
        data_spec=spec["data_spec"],
        perf_spec=spec["perf_spec"],
        volume_bytes=128 * MiB,
        seed=seed,
    )
    db = PolarDB(store=store, buffer_pool_pages=BUFFER_POOL_PAGES)
    now = prepare_table(db, rows=ROWS, seed=seed)
    return db, now


def run_figure12(workloads=None):
    workloads = workloads or list(SYSBENCH_WORKLOADS)
    result = ExperimentResult(
        "fig12_overall",
        "sysbench throughput / avg latency / P95 per cluster",
        ["workload", "cluster", "tps", "avg_us", "p95_us"],
    )
    metrics = {}
    for cluster in CLUSTERS:
        db, now = _make_db(cluster)
        offset = now
        for workload in workloads:
            run = run_sysbench(
                db, workload, duration_s=30.0, threads=THREADS,
                key_range=ROWS, start_us=offset, seed=11,
                max_transactions=TXN_BUDGET[workload],
            )
            offset += 40e6
            label = WORKLOAD_LABELS[workload]
            result.add(label, cluster, run.tps, run.avg_latency_us,
                       run.p95_latency_us)
            metrics[(workload, cluster)] = run
    _note_ratios(result, metrics, workloads)
    print_table(result)
    save_result(result)
    return metrics


def _note_ratios(result, metrics, workloads):
    for pair in (("C1", "N1"), ("C2", "N2")):
        ratios = [
            metrics[(w, pair[0])].tps / metrics[(w, pair[1])].tps
            for w in workloads
        ]
        mean = sum(ratios) / len(ratios)
        result.note(
            f"{pair[0]} throughput vs {pair[1]}: {mean:.2f}x on average "
            "(paper: C1 ~0.90x, C2 ~1.00x)"
        )


def test_fig12(run_once):
    metrics = run_once(run_figure12)
    workloads = sorted({w for w, _ in metrics})
    c1_ratios = [
        metrics[(w, "C1")].tps / metrics[(w, "N1")].tps for w in workloads
    ]
    c2_ratios = [
        metrics[(w, "C2")].tps / metrics[(w, "N2")].tps for w in workloads
    ]
    c1_mean = sum(c1_ratios) / len(c1_ratios)
    c2_mean = sum(c2_ratios) / len(c2_ratios)
    # C1 pays a visible but bounded penalty; C2 is near parity and closer
    # to its baseline than C1 is to its own.
    assert 0.70 < c1_mean < 1.02
    assert 0.85 < c2_mean < 1.10
    assert c2_mean > c1_mean - 0.02
    # Latency ordering mirrors throughput (no pathological config).
    for w in workloads:
        assert metrics[(w, "C2")].avg_latency_us < (
            metrics[(w, "N2")].avg_latency_us * 1.35
        )
