"""Figure 14: impact of each technique on space utilization.

Paper result on four production datasets: hardware compression alone
achieves 2.12–3.84x; adding software compression (zstd) improves the
ratio by a further 21.7–50.3%; switching zstd-only to adaptive selection
costs just 0.7–2.6% extra space.

We run each dataset through three storage configurations: hardware-only
(C1-style), dual-layer with zstd, and dual-layer with Algorithm 1.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import MiB
from repro.storage.node import NodeConfig
from repro.storage.store import build_node
from repro.workloads.datagen import DATASETS, dataset_pages

PAGES = 24

CONFIGS = {
    "hw-only": NodeConfig(
        software_compression=False, opt_algorithm_selection=False,
    ),
    "+dual-layer (zstd)": NodeConfig(opt_algorithm_selection=False),
    "+lz4/zstd selection": NodeConfig(),
}


def _ratio(dataset, config):
    node = build_node("fig14", config, volume_bytes=64 * MiB)
    now = 0.0
    for page_no, page in enumerate(dataset_pages(dataset, PAGES, seed=3)):
        now = node.write_page(now, page_no, page).done_us
    return node.compression_ratio()


def run_figure14():
    result = ExperimentResult(
        "fig14_space_ablation",
        "compression ratio per dataset and technique",
        ["dataset", "hw_only", "dual_zstd", "dual_selection",
         "dual_gain", "selection_cost"],
    )
    ratios = {}
    for dataset in DATASETS:
        row = {name: _ratio(dataset, config) for name, config in CONFIGS.items()}
        dual_gain = row["+dual-layer (zstd)"] / row["hw-only"] - 1.0
        selection_cost = 1.0 - (
            row["+lz4/zstd selection"] / row["+dual-layer (zstd)"]
        )
        ratios[dataset] = row
        result.add(
            dataset, row["hw-only"], row["+dual-layer (zstd)"],
            row["+lz4/zstd selection"], dual_gain, selection_cost,
        )
    result.note(
        "paper: hw-only 2.12-3.84x; dual-layer +21.7-50.3%; "
        "selection costs 0.7-2.6% of space"
    )
    print_table(result)
    save_result(result)
    return ratios


def test_fig14(run_once):
    ratios = run_once(run_figure14)
    for dataset, row in ratios.items():
        # Hardware compression alone lands in a plausible band.
        assert 1.5 < row["hw-only"] < 6.0, (dataset, row)
        # Dual-layer strictly improves on hardware-only.
        assert row["+dual-layer (zstd)"] > row["hw-only"], (dataset, row)
        # Selection costs only a modest slice of the zstd-only ratio.
        assert row["+lz4/zstd selection"] > row["+dual-layer (zstd)"] * 0.80, (
            dataset, row,
        )
