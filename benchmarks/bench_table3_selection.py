"""Table 3: distribution of selected compression algorithms per dataset.

Paper result: zstd share — Finance 73.1%, F&B 41.3%, Wiki 52.4%,
Air Transport 51.6%.  Algorithm 1 picks per page, so the split reflects
how often zstd's extra squeeze crosses a 4 KB block boundary.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.compression.selector import AlgorithmSelector
from repro.workloads.datagen import DATASETS, dataset_pages

PAGES = 40
PAPER = {"finance": 0.731, "fnb": 0.413, "wiki": 0.524, "air_transport": 0.516}


def run_table3():
    result = ExperimentResult(
        "table3_selection",
        "zstd vs lz4 selection split per dataset (Algorithm 1)",
        ["dataset", "zstd_share", "lz4_share", "paper_zstd"],
    )
    shares = {}
    for name in DATASETS:
        selector = AlgorithmSelector()
        pages = dataset_pages(name, PAGES, seed=0)
        picks = [selector.select(page).codec for page in pages]
        share = picks.count("zstd") / len(picks)
        shares[name] = share
        result.add(name, share, 1 - share, PAPER[name])
    print_table(result)
    save_result(result)
    return shares


def test_table3(run_once):
    shares = run_once(run_table3)
    # Every dataset shows a genuinely mixed split.
    for name, share in shares.items():
        assert 0.05 < share < 0.95, (name, share)
    # Finance leans hardest toward zstd, as in the paper.
    assert shares["finance"] == max(shares.values())
    assert abs(shares["finance"] - PAPER["finance"]) < 0.25
