"""Figure 5: lz4 vs zstd — decompression latency, software-level ratio,
and the dual-layer twist.

Paper result: (a) zstd decompression is slower; (b) zstd's software-level
compression advantage is large (58.9%); (c) after the hardware gzip stage
the advantage collapses to 9.0%, because gzip re-compresses lz4's
entropy-free output but gains nothing on zstd's.
"""

import zlib

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, LBA_SIZE, align_up
from repro.compression.base import get_codec
from repro.compression.cost import LZ4_COST, ZSTD_COST
from repro.workloads.datagen import DATASETS, dataset_pages

PAGES = 12


def _hw_physical(payload: bytes) -> int:
    """Physical bytes after the in-storage gzip pass over 4 KB LBAs."""
    padded = payload + b"\x00" * (align_up(len(payload), LBA_SIZE) - len(payload))
    total = 0
    for start in range(0, len(padded), LBA_SIZE):
        block = padded[start : start + LBA_SIZE]
        total += min(len(zlib.compress(block, 5)), LBA_SIZE)
    return total


def run_figure5():
    lz4 = get_codec("lz4")
    zstd = get_codec("zstd")

    result = ExperimentResult(
        "fig5_algorithms",
        "lz4 vs zstd: latency, software ratio, dual-layer ratio",
        ["panel", "config", "lz4", "zstd", "zstd_advantage"],
    )

    # (a) decompression latency (calibrated cost model), µs.
    for size in (4 * KiB, 8 * KiB, 16 * KiB):
        lz4_us = LZ4_COST.decompress_us(size)
        zstd_us = ZSTD_COST.decompress_us(size)
        result.add(
            "a", f"decompress {size // KiB}KB (us)", lz4_us, zstd_us,
            zstd_us / lz4_us - 1.0,
        )

    # (b)+(c): per dataset, software ratio and dual-layer ratio.
    soft_adv = []
    dual_adv = []
    for name in DATASETS:
        pages = dataset_pages(name, PAGES, seed=2)
        total = sum(len(p) for p in pages)
        lz4_soft = sum(len(lz4.compress(p)) for p in pages)
        zstd_soft = sum(len(zstd.compress(p)) for p in pages)
        result.add(
            "b", f"software ratio [{name}]", total / lz4_soft,
            total / zstd_soft, lz4_soft / zstd_soft - 1.0,
        )
        soft_adv.append(lz4_soft / zstd_soft - 1.0)
        lz4_dual = sum(_hw_physical(lz4.compress(p)) for p in pages)
        zstd_dual = sum(_hw_physical(zstd.compress(p)) for p in pages)
        result.add(
            "c", f"dual-layer ratio [{name}]", total / lz4_dual,
            total / zstd_dual, lz4_dual / zstd_dual - 1.0,
        )
        dual_adv.append(lz4_dual / zstd_dual - 1.0)

    mean_soft = sum(soft_adv) / len(soft_adv)
    mean_dual = sum(dual_adv) / len(dual_adv)
    result.note(
        f"zstd advantage: {mean_soft:.1%} at the software level -> "
        f"{mean_dual:.1%} after hardware gzip "
        "(paper: 58.9% -> 9.0%)"
    )
    print_table(result)
    save_result(result)
    return result, mean_soft, mean_dual


def test_fig5(run_once):
    result, mean_soft, mean_dual = run_once(run_figure5)
    # (a) zstd decompression is always slower.
    for row in result.rows:
        if row[0] == "a":
            assert row[3] > row[2]
    # (b) zstd compresses better everywhere.
    for row in result.rows:
        if row[0] == "b":
            assert row[3] > row[2]
    # (c) the dual-layer stage shrinks zstd's advantage dramatically.
    assert mean_soft > 0.25
    assert mean_dual < mean_soft / 2.5
