"""Figure 13: impact of each technique on performance (OLTP-Read-Write).

Paper result, adding techniques one at a time on C2 hardware:

* PolarCSD hardware compression alone: −7.4% throughput vs the P5510
  baseline (higher CSD read latency).
* +dual-layer: a further −19.6% (software-compressing 16 KB redo writes
  pushes redo commit latency 59 µs → 79 µs).
* +bypass-redo (Opt#1): degradation shrinks to −8.9% vs hardware-only.
* +lz4/zstd selection (Opt#2): within 2.1% of the baseline; page reads
  get ~9 µs cheaper than zstd-only while page *writes* get slower (the
  selection runs both codecs, but in the background).
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import MiB
from repro.csd.specs import OPTANE_P5800X, P5510, POLARCSD2
from repro.db.database import PolarDB
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore
from repro.workloads.sysbench import prepare_table, run_sysbench

ROWS = 3000
BUFFER_POOL_PAGES = 10
#: Moderate concurrency: the ablation attributes *per-commit* costs, and
#: the group-commit pipeline largely subsumes Opt#1 at high thread counts
#: (big batches amortize dual-layer's software-compressed flushes, so the
#: bypass step stops mattering — an emergent result of the event-driven
#: commit path).  At 4 clients batches stay thin and each technique's
#: critical-path cost shows through, which is what Figure 13 isolates.
THREADS = 4
TXNS = 80

#: Technique stack, added one at a time (Opt#3 is evaluated in Fig 15).
#: Redo lives on the performance layer in every configuration except
#: "+dual-layer": that step applies software compression to *all* writes,
#: redo included, which is precisely the regression Opt#1 then removes.
STEPS = [
    ("baseline (P5510)", P5510, NodeConfig(
        software_compression=False, opt_bypass_redo=True,
        opt_algorithm_selection=False, opt_per_page_log=False,
    )),
    ("PolarCSD", POLARCSD2, NodeConfig(
        software_compression=False, opt_bypass_redo=True,
        opt_algorithm_selection=False, opt_per_page_log=False,
    )),
    ("+dual-layer", POLARCSD2, NodeConfig(
        software_compression=True, opt_bypass_redo=False,
        opt_algorithm_selection=False, opt_per_page_log=False,
    )),
    ("+bypass redo", POLARCSD2, NodeConfig(
        software_compression=True, opt_bypass_redo=True,
        opt_algorithm_selection=False, opt_per_page_log=False,
    )),
    ("+lz4/zstd", POLARCSD2, NodeConfig(
        software_compression=True, opt_bypass_redo=True,
        opt_algorithm_selection=True, opt_per_page_log=False,
        # §5.2: the evaluation forces re-selection on every update,
        # showing the worst-case page write latency.
        selection_always_evaluate=True,
    )),
]


def _span_mean(store, name):
    """Mean of a tracer-recorded span histogram, 0 when never hit."""
    hists = [h for h in store.metrics.find(name) if h.count]
    count = sum(h.count for h in hists)
    if count == 0:
        return 0.0
    return sum(h.total for h in hists) / count


def _run_step(data_spec, config, seed=5):
    store = PolarStore(
        config, data_spec=data_spec, perf_spec=OPTANE_P5800X,
        volume_bytes=128 * MiB, seed=seed,
    )
    db = PolarDB(store=store, buffer_pool_pages=BUFFER_POOL_PAGES)
    now = prepare_table(db, rows=ROWS, seed=seed)
    # Drop the load-phase samples: every latency below comes from tracer
    # span histograms accumulated over the steady-state OLTP window only.
    store.metrics.reset()
    run = run_sysbench(
        db, "read_write", duration_s=60.0, threads=THREADS,
        key_range=ROWS, start_us=now, seed=13, max_transactions=TXNS,
    )
    return {
        "tps": run.tps,
        "p95_us": run.p95_latency_us,
        # Redo path: the root span covers software compression + device
        # write + quorum wait; the child spans attribute it per technique.
        "redo_us": _span_mean(store, "trace.storage.redo_commit.total_us"),
        "redo_cpu_us": _span_mean(
            store, "trace.compression.redo_compress.self_us"
        ),
        "redo_dev_us": _span_mean(
            store, "trace.csd.redo_device_write.self_us"
        ),
        # Page path: buffer-pool miss fetch, end to end.
        "page_read_us": _span_mean(store, "trace.db.page_fetch.total_us"),
        "page_write_us": store.leader.page_write_stats.mean_us,
    }


def run_figure13():
    result = ExperimentResult(
        "fig13_ablation",
        "technique-by-technique impact on OLTP-RW (C2 hardware)",
        ["config", "tps", "tps_vs_base", "p95_us", "redo_us",
         "redo_cpu_us", "redo_dev_us", "page_read_us", "page_write_us"],
    )
    metrics = {}
    base_tps = None
    for name, spec, config in STEPS:
        m = _run_step(spec, config)
        if base_tps is None:
            base_tps = m["tps"]
        m["rel"] = m["tps"] / base_tps
        metrics[name] = m
        result.add(name, m["tps"], m["rel"], m["p95_us"], m["redo_us"],
                   m["redo_cpu_us"], m["redo_dev_us"],
                   m["page_read_us"], m["page_write_us"])
    result.note(
        "paper: CSD −7.4%; +dual −19.6% further (redo 59→79 µs); "
        "+bypass −8.9% vs CSD; +lz4/zstd −2.1% vs baseline"
    )
    print_table(result)
    save_result(result)
    return metrics


def test_fig13(run_once):
    m = run_once(run_figure13)
    # Hardware compression costs some throughput vs the plain baseline.
    assert m["PolarCSD"]["rel"] < 1.0
    # Software-compressing redo pushes redo commit latency up materially...
    assert m["+dual-layer"]["redo_us"] > m["PolarCSD"]["redo_us"] * 1.15
    # ...and the tracer spans attribute the regression: dual-layer spends
    # CPU compressing redo; bypass (and the baselines) spend none.
    assert m["+dual-layer"]["redo_cpu_us"] > 0.0
    assert m["+bypass redo"]["redo_cpu_us"] == 0.0
    assert m["PolarCSD"]["redo_cpu_us"] == 0.0
    # ...and bypass brings it back below the dual-layer level — both
    # end-to-end (arrival to quorum-durable, group-commit wait included)
    # and on the persist path itself (compress CPU + device write, the
    # paper's 79 µs → recovery).
    assert m["+bypass redo"]["redo_us"] < m["+dual-layer"]["redo_us"]
    assert (
        m["+bypass redo"]["redo_cpu_us"] + m["+bypass redo"]["redo_dev_us"]
        < m["+dual-layer"]["redo_cpu_us"] + m["+dual-layer"]["redo_dev_us"]
    )
    # Throughput recovers monotonically through the optimizations.
    assert m["+bypass redo"]["rel"] >= m["+dual-layer"]["rel"]
    assert m["+lz4/zstd"]["rel"] >= m["+bypass redo"]["rel"] - 0.03
    # Selection trades cheaper reads for dearer (background) writes.
    assert m["+lz4/zstd"]["page_read_us"] <= m["+bypass redo"]["page_read_us"]
    assert m["+lz4/zstd"]["page_write_us"] >= m["+bypass redo"]["page_write_us"]
    # End state: close to the uncompressed baseline.
    assert m["+lz4/zstd"]["rel"] > 0.85
