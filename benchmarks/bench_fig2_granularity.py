"""Figure 2: compressed storage size vs index granularity, input size, and
algorithm.

Paper result (408.37 GB corpus): (a) 4 KB index granularity costs ~80.5%
more space than byte-level; (b) larger compression inputs raise the ratio
(4 KB -> 3.59, 1 MB -> 6.85); (c) zstd beats lz4.

We sweep the same three dimensions over the synthetic mixed corpus.  Our
zstd-like codec has a 64 KB match window (pure-Python budget), so the
input-size curve saturates beyond 64 KB instead of climbing to 1 MB; the
ordering — bigger inputs never hurt, byte-granularity always wins — is the
reproduced shape.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, LBA_SIZE, MiB, align_up
from repro.compression.base import get_codec
from repro.workloads.datagen import corpus

PAGES_PER_DATASET = 24  # keep pure-Python codec time reasonable


def _corpus_blob():
    return b"".join(corpus(pages_per_dataset=PAGES_PER_DATASET, seed=1))


def _compress_in_blocks(blob, codec, block_size):
    """Total (byte-granular, 4 KB-granular) compressed sizes."""
    byte_total = 0
    aligned_total = 0
    for start in range(0, len(blob), block_size):
        payload = codec.compress(blob[start : start + block_size])
        size = min(len(payload), block_size)
        byte_total += size
        aligned_total += align_up(size, LBA_SIZE)
    return byte_total, aligned_total


def run_figure2():
    blob = _corpus_blob()
    zstd = get_codec("zstd")
    lz4 = get_codec("lz4")
    hw = get_codec("hw-gzip")

    result = ExperimentResult(
        "fig2_granularity",
        "compressed size vs index granularity / input size / algorithm",
        ["panel", "config", "ratio", "size_mib"],
    )

    # (a) index granularity, zstd, 16 KB inputs.
    byte_total, aligned_total = _compress_in_blocks(blob, zstd, 16 * KiB)
    result.add("a", "byte-granularity index", len(blob) / byte_total,
               byte_total / MiB)
    result.add("a", "4KB-granularity index", len(blob) / aligned_total,
               aligned_total / MiB)
    overhead = aligned_total / byte_total - 1.0
    result.note(
        f"4KB granularity costs {overhead:.1%} extra space "
        "(paper: ~80.5% on its corpus)"
    )

    # (b) input size sweep, zstd, byte granularity.
    for block in (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB):
        byte_total, _ = _compress_in_blocks(blob, zstd, block)
        label = f"{block // KiB}KB input" if block < MiB else "1MB input"
        result.add("b", label, len(blob) / byte_total, byte_total / MiB)
    result.note(
        "input-size gains saturate at the codec's 64 KB window "
        "(paper's zstd uses larger windows and keeps climbing to 1 MB)"
    )

    # (c) algorithm sweep at 16 KB inputs, byte granularity.
    for name, codec in (("lz4", lz4), ("zstd", zstd), ("gzip-5", hw)):
        byte_total, _ = _compress_in_blocks(blob, codec, 16 * KiB)
        result.add("c", name, len(blob) / byte_total, byte_total / MiB)

    print_table(result)
    save_result(result)
    return result


def test_fig2(run_once):
    result = run_once(run_figure2)
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    # Byte granularity strictly beats 4 KB granularity.
    assert rows[("a", "byte-granularity index")] > rows[("a", "4KB-granularity index")]
    # Bigger inputs never hurt up to the window.
    assert rows[("b", "64KB input")] >= rows[("b", "16KB input")] >= rows[("b", "4KB input")]
    # zstd beats lz4 (panel c).
    assert rows[("c", "zstd")] > rows[("c", "lz4")]
