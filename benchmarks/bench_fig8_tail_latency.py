"""Figure 8: distribution of device latency >= 4 ms in production.

Paper result over 7 days of production I/O: PolarCSD2.0 shows 7.91e-7 of
reads and 1.05e-6 of writes above 4 ms; PolarCSD1.0 is ~36.7x and ~38.8x
worse, driven by host-FTL memory/CPU contention and kernel-driver bugs.

We draw the same distribution from the calibrated fault-injection model
(vectorized; millions of I/Os).
"""

import numpy as np

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.csd.faults import POLARCSD1_FAULTS, POLARCSD2_FAULTS

N_IOS = 6_000_000
THRESHOLD_US = 4_000.0


def run_figure8():
    rng = np.random.default_rng(42)
    result = ExperimentResult(
        "fig8_tail_latency",
        "fraction of I/Os with latency >= 4 ms (7-day production model)",
        ["device", "op", "fraction_ge_4ms", "paper"],
    )
    fractions = {}
    paper = {
        ("PolarCSD1.0", "read"): 2.9e-5,
        ("PolarCSD1.0", "write"): 4.0e-5,
        ("PolarCSD2.0", "read"): 7.91e-7,
        ("PolarCSD2.0", "write"): 1.05e-6,
    }
    for profile, device in (
        (POLARCSD1_FAULTS, "PolarCSD1.0"),
        (POLARCSD2_FAULTS, "PolarCSD2.0"),
    ):
        for op, is_read in (("read", True), ("write", False)):
            extra = profile.sample_extra_us(rng, N_IOS, is_read)
            fraction = float((extra >= THRESHOLD_US).mean())
            fractions[(device, op)] = fraction
            result.add(device, op, fraction, paper[(device, op)])
    read_gap = fractions[("PolarCSD1.0", "read")] / max(
        fractions[("PolarCSD2.0", "read")], 1e-12
    )
    write_gap = fractions[("PolarCSD1.0", "write")] / max(
        fractions[("PolarCSD2.0", "write")], 1e-12
    )
    result.note(
        f"gen1/gen2 tail ratio: reads {read_gap:.1f}x, writes {write_gap:.1f}x "
        "(paper: 36.7x and 38.8x)"
    )
    print_table(result)
    save_result(result)
    return fractions, read_gap, write_gap


def test_fig8(run_once):
    fractions, read_gap, write_gap = run_once(run_figure8)
    assert fractions[("PolarCSD2.0", "read")] < 5e-6
    assert fractions[("PolarCSD2.0", "write")] < 6e-6
    assert 10 < read_gap < 130
    assert 10 < write_gap < 130
