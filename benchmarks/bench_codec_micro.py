"""Codec micro-benchmarks (real wall time, not simulated).

Unlike every other bench in this suite, these measure the actual Python
implementations with pytest-benchmark: the relative shape (lz4 compresses
and decompresses faster than the zstd-like codec; hardware gzip is zlib C
speed) mirrors the real libraries even though absolute throughput is
Python-scale.  Also sanity-checks the cost *model* ordering against the
measured ordering.
"""

import pytest

from repro.compression.base import get_codec
from repro.compression.cost import LZ4_COST, ZSTD_COST
from repro.workloads.datagen import dataset_pages

PAGE = dataset_pages("fnb", 1, seed=1)[0]


@pytest.fixture(scope="module")
def payloads():
    return {
        "lz4": get_codec("lz4").compress(PAGE),
        "zstd": get_codec("zstd").compress(PAGE),
        "hw-gzip": get_codec("hw-gzip").compress(PAGE),
    }


@pytest.mark.parametrize("codec_name", ["lz4", "zstd", "hw-gzip"])
def test_compress_16k_page(benchmark, codec_name):
    codec = get_codec(codec_name)
    out = benchmark(codec.compress, PAGE)
    assert len(out) < len(PAGE)


@pytest.mark.parametrize("codec_name", ["lz4", "zstd", "hw-gzip"])
def test_decompress_16k_page(benchmark, codec_name, payloads):
    codec = get_codec(codec_name)
    out = benchmark(codec.decompress, payloads[codec_name])
    assert out == PAGE


def test_cost_model_ordering_matches_reality(benchmark):
    """The calibrated model says lz4 decompression is cheaper than zstd;
    the implementations must agree on the ordering."""
    import time

    lz4 = get_codec("lz4")
    zstd = get_codec("zstd")
    lz4_payload = lz4.compress(PAGE)
    zstd_payload = zstd.compress(PAGE)

    def measure(fn, arg, rounds=20):
        start = time.perf_counter()
        for _ in range(rounds):
            fn(arg)
        return time.perf_counter() - start

    lz4_time = measure(lz4.decompress, lz4_payload)
    zstd_time = measure(zstd.decompress, zstd_payload)
    assert lz4_time < zstd_time
    assert LZ4_COST.decompress_us(len(PAGE)) < ZSTD_COST.decompress_us(len(PAGE))
    benchmark(lambda: None)  # keep pytest-benchmark satisfied
