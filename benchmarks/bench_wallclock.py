"""Wall-clock speedup scoreboard: serial stack vs the perf fast path.

Unlike every other benchmark in this directory, the quantity measured
here is **host wall-clock time**, not simulated microseconds: each
pinned scenario (8-client sysbench + checkpoint + scrub, the chaos
smoke schedule, a sharded-runtime ingest/migration) runs twice — once
with the perf runtime deactivated and once with the codec memo/pool
fast path — and the harness asserts the two runs produce identical
output bytes and identical simulated timings before reporting the
speedup.  The committed scoreboard at the repo root
(``BENCH_wallclock.json``) is the CI perf-smoke baseline:

    PYTHONPATH=src python -m repro perf                 # regenerate
    PYTHONPATH=src python -m repro perf --check BENCH_wallclock.json
"""

from repro.perf.harness import DEFAULT_REPORT, run_harness, write_report


def run_wallclock(quick: bool = False, out: str = DEFAULT_REPORT):
    """Full A/B sweep; writes the scoreboard JSON and returns it."""
    scoreboard = run_harness(quick=quick)
    write_report(scoreboard, out)
    return scoreboard


def test_wallclock_smoke(run_once, tmp_path):
    scoreboard = run_once(
        run_harness,
        scenario_names=["sysbench8"],
        quick=True,
        verbose=False,
    )
    row = scoreboard["scenarios"]["sysbench8"]
    # Correctness is the hard gate: the fast path must be a pure
    # wall-clock optimization.
    assert row["identical"]
    assert row["codec_calls_saved"] > 0
    assert row["memo"]["hits"] > 0
    # Wall-clock assertions stay loose — CI hosts are noisy — but the
    # memo must not make things *slower* than running every codec.
    assert row["speedup"] > 1.0
    assert row["pages"] > 0


if __name__ == "__main__":
    import json

    print(json.dumps(run_wallclock(), indent=2, sort_keys=True))
