"""§6 alternatives quantified: erasure coding vs replication, and the
dedup negative result.

The paper: EC "presents an alternative for reducing storage costs ...
however, EC is not currently suitable for our system's redo records";
deduplication's "applicability in RDBMSs is limited since ... exact
page-level deduplication matches rare."  Both claims, measured.
"""

import dataclasses
import random

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import DB_PAGE_SIZE, KiB, MiB
from repro.csd.device import PlainSSD
from repro.csd.specs import P5510
from repro.storage.dedup import dedup_ratio_of
from repro.storage.erasure import ECVolume, ReedSolomon
from repro.workloads.datagen import DATASETS, dataset_pages


def _devices(count, seed=0):
    spec = dataclasses.replace(
        P5510, logical_capacity=64 * MiB, physical_capacity=64 * MiB,
        jitter_sigma=0.0,
    )
    return [PlainSSD(spec, seed=seed + i) for i in range(count)]


def run_ec_vs_replication():
    result = ExperimentResult(
        "ablation_ec_vs_replication",
        "3-way replication vs RS(4,2) for page data; why redo is excluded",
        ["scheme", "overhead", "write_devices", "read_devices",
         "small_append_rmw_shards"],
    )
    rows = {}
    volume = ECVolume(_devices(6), k=4, m=2)
    page = dataset_pages("finance", 1, seed=1)[0]
    volume.write_page(0.0, 1, page)
    data, _ = volume.read_page(1e4, 1)
    assert data == page

    # Replication: 3 full copies; reads hit one device.
    result.add("3-way replication", 3.0, 3, 1, 0)
    rows["replication"] = 3.0
    # EC(4,2): 1.5x; writes fan to 6, reads gather 4.
    result.add("RS(4,2) pages", volume.storage_overhead, 6, 4, 0)
    rows["ec"] = volume.storage_overhead
    # Redo: a 512 B append into a stripe would read-modify-write every
    # parity shard (m shards) plus the data shard — per tiny append.
    result.add("RS(4,2) redo append (hypothetical)",
               volume.storage_overhead, 1 + 2, 2, 2)
    result.note(
        "EC halves page-storage overhead vs replication but a sub-stripe "
        "redo append pays read-modify-write on every parity shard — the "
        "paper's reason to keep redo replicated (§6)"
    )
    print_table(result)
    save_result(result)
    return rows


def run_dedup_study():
    result = ExperimentResult(
        "ablation_dedup",
        "page-level dedup ratio: live DB pages vs backup streams",
        ["stream", "pages", "dedup_ratio"],
    )
    ratios = {}
    live = []
    for name in DATASETS:
        live.extend(dataset_pages(name, 8, seed=2))
    ratios["live DB pages"] = dedup_ratio_of(live)
    result.add("live DB pages", len(live), ratios["live DB pages"])

    backups = dataset_pages("finance", 10, seed=2) * 4
    ratios["4 full backups"] = dedup_ratio_of(backups)
    result.add("4 full backups", len(backups), ratios["4 full backups"])

    rng = random.Random(0)
    vm_images = [bytes(DB_PAGE_SIZE)] * 20 + [
        rng.randbytes(DB_PAGE_SIZE) for _ in range(10)
    ]
    ratios["zeroed VM blocks"] = dedup_ratio_of(vm_images)
    result.add("zeroed VM blocks", len(vm_images), ratios["zeroed VM blocks"])
    result.note(
        "record-level storage makes exact page matches rare (§6): dedup "
        "pays off for backups/VM images, not for live RDBMS pages"
    )
    print_table(result)
    save_result(result)
    return ratios


def test_ec_vs_replication(run_once):
    rows = run_once(run_ec_vs_replication)
    assert rows["ec"] == 1.5
    assert rows["ec"] < rows["replication"] / 1.9


def test_dedup_study(run_once):
    ratios = run_once(run_dedup_study)
    assert ratios["live DB pages"] < 1.05       # the negative result
    assert ratios["4 full backups"] > 3.5
    assert ratios["zeroed VM blocks"] > 2.0
