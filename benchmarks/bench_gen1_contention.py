"""§4.1.1 quantified: why gen-1 clusters had to disable software
compression and drop to 10 devices per host.

PolarCSD1.0's host-based FTL dedicates ~2 physical cores per device and
15.36 GB of DRAM per device.  On a 32-core host with 12 devices that
leaves 8 cores for the entire storage software; adding software
compression (tens of µs of codec CPU per page write) onto those starved
cores queues catastrophically.  The gen-1 mitigation (10 devices, no
software compression) and the gen-2 fix (device-managed FTL: all 32 cores
back) both fall out of the model.
"""

import random

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.clock import ResourcePool
from repro.common.latency import LatencyStats
from repro.common.units import GiB
from repro.compression.cost import codec_cost
from repro.csd.host_ftl import contention_risk, host_ftl_footprint
from repro.csd.specs import POLARCSD1, POLARCSD2

HOST_CORES = 32
HOST_DRAM = 256 * GiB
#: Per-page-write software work besides compression (checksums, RPC,
#: allocator + index updates), in µs.
BASE_SOFTWARE_US = 12.0
#: Page writes arriving per second per host under production load.
ARRIVALS_PER_S = 220_000.0

SCENARIOS = [
    ("gen1: 12 devices + software compression", POLARCSD1, 12, True),
    ("gen1: 12 devices, no software compr.", POLARCSD1, 12, False),
    ("gen1 mitigation: 10 devices, no compr.", POLARCSD1, 10, False),
    ("gen2: 12 devices + software compression", POLARCSD2, 12, True),
]


def _simulate(spec, devices, software_compression, seed=1):
    footprint = host_ftl_footprint(spec, devices)
    free_cores = max(1, HOST_CORES - footprint.cpu_cores)
    cpu = ResourcePool("host-cpu", free_cores)
    rng = random.Random(seed)
    stats = LatencyStats()
    now = 0.0
    interarrival_us = 1e6 / ARRIVALS_PER_S
    compress_us = codec_cost("lz4").compress_us(16 * 1024)
    for _ in range(4000):
        now += rng.expovariate(1.0) * interarrival_us
        service = BASE_SOFTWARE_US
        if software_compression:
            service += compress_us
        done = cpu.serve(now, service)
        stats.record(done - now)
    risk = contention_risk(footprint, HOST_DRAM, HOST_CORES)
    return stats, free_cores, risk


def run_contention():
    result = ExperimentResult(
        "gen1_contention",
        "host-FTL resource contention vs software compression",
        ["scenario", "free_cores", "dram_risk", "avg_us", "p99_us"],
    )
    rows = {}
    for label, spec, devices, compression in SCENARIOS:
        stats, free_cores, risk = _simulate(spec, devices, compression)
        rows[label] = (stats.mean_us, stats.p99_us, free_cores)
        result.add(label, free_cores, risk, stats.mean_us, stats.p99_us)
    result.note(
        "gen-1 + software compression saturates the few cores the host-"
        "FTL leaves over; the paper's mitigation (10 devices, compression "
        "off) and gen-2's device-managed FTL both restore headroom"
    )
    print_table(result)
    save_result(result)
    return rows


def test_gen1_contention(run_once):
    rows = run_once(run_contention)
    full = rows["gen1: 12 devices + software compression"]
    no_compr = rows["gen1: 12 devices, no software compr."]
    mitigated = rows["gen1 mitigation: 10 devices, no compr."]
    gen2 = rows["gen2: 12 devices + software compression"]
    # Software compression on the starved gen-1 host explodes latency.
    assert full[1] > no_compr[1] * 5
    # The paper's mitigation keeps things sane.
    assert mitigated[1] < full[1] / 5
    # Gen-2 runs software compression with all cores available, cheaply.
    assert gen2[2] == HOST_CORES
    assert gen2[1] < full[1]
