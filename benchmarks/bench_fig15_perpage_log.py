"""Figure 15: OLTP read-only performance on a lagging RO node, with and
without the per-page log optimization (Opt#3).

Paper setup: the RO node intentionally lags ~1 s in LSN, so storage cannot
recycle redo and the log cache overflows to storage.  Under 128 client
threads the per-page log cuts P95 latency by 28.9–39.5% (page generation
needs one read instead of several scattered ones); beyond 128 threads the
RO node becomes CPU-bound and the benefit fades.

We reproduce the mechanism: a tiny storage redo cache forces spills; write
bursts between read phases keep pages' logs scattered; reads route to an
RO node whose core pool saturates at high thread counts.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, MiB
from repro.db.database import PolarDB
from repro.db.ro_node import RONode
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore
from repro.workloads.sysbench import prepare_table, run_sysbench

ROWS = 1500
THREADS_SWEEP = (16, 32, 64, 128, 256)
WRITE_BURST_TXNS = 500
READ_TXNS = 160
RO_CPU_CORES = 2


def _make_db(per_page_log: bool, seed=9):
    config = NodeConfig(
        opt_per_page_log=per_page_log,
        opt_algorithm_selection=False,  # isolate Opt#3
        redo_cache_bytes=8 * KiB,       # lagging RO => log cache pressure
    )
    store = PolarStore(config, volume_bytes=128 * MiB, seed=seed)
    # The RW node's working set stays cached (it never reads storage, it
    # only ships redo); the lagging RO node drives all storage reads.
    db = PolarDB(store=store, buffer_pool_pages=512, ro_nodes=0)
    db.ro.append(
        RONode(store, db.rw, buffer_pool_pages=4, lag_us=1e6,
               cpu_cores=RO_CPU_CORES)
    )
    now = prepare_table(db, rows=ROWS, seed=seed)
    return db, now


def _phase(db, now, threads, seed):
    """One write burst (RW node) followed by one read phase (RO node)."""
    burst = run_sysbench(
        db, "update_non_index", duration_s=60.0, threads=16,
        key_range=ROWS, start_us=now, seed=seed,
        max_transactions=WRITE_BURST_TXNS,
    )
    now += 70e6
    reads = run_sysbench(
        db, "point_select", duration_s=60.0, threads=threads,
        key_range=ROWS, start_us=now, seed=seed + 1,
        max_transactions=READ_TXNS, ro_index=0,
    )
    return reads, now + 70e6


def run_figure15():
    result = ExperimentResult(
        "fig15_perpage_log",
        "RO-node P95 read latency vs threads, baseline vs per-page log",
        ["threads", "baseline_p95_us", "perpage_p95_us", "p95_reduction"],
    )
    p95 = {}
    for per_page_log in (False, True):
        db, now = _make_db(per_page_log)
        for threads in THREADS_SWEEP:
            reads, now = _phase(db, now, threads, seed=31 + threads)
            p95[(per_page_log, threads)] = reads.p95_latency_us
    for threads in THREADS_SWEEP:
        base = p95[(False, threads)]
        opt = p95[(True, threads)]
        result.add(threads, base, opt, 1 - opt / base)
    result.note(
        "paper: 28.9-39.5% P95 reduction below 128 threads; CPU-bound "
        "beyond 128 threads erodes the benefit"
    )
    print_table(result)
    save_result(result)
    return p95


def test_fig15(run_once):
    p95 = run_once(run_figure15)
    low_gains = [
        1 - p95[(True, t)] / p95[(False, t)] for t in (16, 32, 64)
    ]
    high_gain = 1 - p95[(True, 256)] / p95[(False, 256)]
    # The optimization helps clearly at low thread counts...
    assert sum(low_gains) / len(low_gains) > 0.10
    # ...and its advantage shrinks once the node saturates.
    assert high_gain < max(low_gains)
