"""Figures 10/11 on the live sharded runtime: wasted space and migration
traffic, logical-only vs compression-aware scheduling.

This file owns the canonical **Figures 10/11** artifact.  Unlike
``bench_fig9_scheduling.py`` (Figure 9: dispersion plus a *synthesized*
cluster of ``(size, ratio)`` counters), this benchmark drives the
:class:`repro.cluster.runtime.ClusterRuntime`: every shard is a real
replica group, chunk compression ratios are measured from codec output,
and every planned move physically copies pages source -> target through
the engine.  Paper result shape: logical-only placement leaves logically
balanced but physically stranded shards (Fig 10), and only the
compression-aware zone scheduler recovers the stranded physical space
(Fig 11) — at the cost of real migration bytes, which we report.
"""

from repro.bench.cluster_fig import run_fig10_11


def run_live_scheduling():
    return run_fig10_11(shards=4, chunks=16, seed=0)


def test_fig10_11_live(run_once):
    result = run_once(run_live_scheduling)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    logical = rows["logical_only"]
    aware = rows["compression_aware"]
    # Fig 10: the logical-only scheduler cannot see the imbalance.
    assert logical["moved_pages"] == 0
    # Fig 11: zone scheduling strictly reduces wasted physical space.
    assert aware["wasted_physical"] < logical["wasted_physical"]
    assert aware["wasted_logical"] <= logical["wasted_logical"]
    # The recovery is paid for with real migration traffic, and the moved
    # bytes went through the target's compression path (physical < logical).
    assert aware["moved_pages"] > 0
    assert 0 < aware["moved_physical_mib"] < aware["moved_logical_mib"]
    assert aware["makespan_ms"] > 0
    # Post-scheduling the fleet converges into the band (Fig 9b shape).
    assert aware["band_coverage"] > logical["band_coverage"]
