"""Table 2: cluster configurations, compression ratios, and storage cost.

Paper result: C1 (PolarCSD1.0, hardware-only) reaches ratio 2.35 and
logical cost 0.62; C2 (PolarCSD2.0 + software) reaches 3.55 and 0.37 —
about 60% below the N2 baseline (0.91).

The compression ratios here are *measured* by loading the four synthetic
datasets through the full write path of each cluster configuration; the
hardware cost constants come from the paper.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.cluster.costs import DEVICE_COSTS, storage_cost_reduction
from repro.common.units import MiB
from repro.csd.specs import P4510, P5510, POLARCSD1, POLARCSD2
from repro.storage.node import NodeConfig
from repro.storage.store import build_node
from repro.workloads.datagen import DATASETS, dataset_pages

PAGES_PER_DATASET = 10

CONFIGS = {
    "N1": (P4510, None, 1.0),
    "C1": (POLARCSD1, NodeConfig(
        software_compression=False,
        opt_algorithm_selection=False,
        opt_per_page_log=False,
    ), 2.35),
    "N2": (P5510, None, 1.0),
    "C2": (POLARCSD2, NodeConfig(), 3.55),
}


def _measured_ratio(spec, config):
    if config is None:
        return 1.0
    node = build_node("bench", config, data_spec=spec, volume_bytes=128 * MiB)
    now = 0.0
    page_no = 0
    for name in DATASETS:
        for page in dataset_pages(name, PAGES_PER_DATASET, seed=5):
            now = node.write_page(now, page_no, page).done_us
            page_no += 1
    return node.compression_ratio()


def run_table2():
    result = ExperimentResult(
        "table2_costs",
        "cluster configurations, ratios, and cost per GB",
        ["cluster", "hardware", "ratio_measured", "ratio_paper",
         "cost_physical", "cost_logical"],
    )
    measured = {}
    for cluster, (spec, config, paper_ratio) in CONFIGS.items():
        ratio = _measured_ratio(spec, config)
        cost_key = spec.name.replace("Intel ", "")
        physical = DEVICE_COSTS[cost_key].cost_per_physical_gb
        logical = DEVICE_COSTS[cost_key].logical_cost(max(ratio, 1.0))
        measured[cluster] = (ratio, logical)
        result.add(cluster, spec.name, ratio, paper_ratio, physical, logical)
    saving = storage_cost_reduction("P5510", "PolarCSD2.0", measured["C2"][0])
    result.note(
        f"C2 storage cost reduction vs N2: {saving:.0%} (paper: ~60%)"
    )
    print_table(result)
    save_result(result)
    return measured, saving


def test_table2(run_once):
    measured, saving = run_once(run_table2)
    # Hardware-only compresses (C1) and dual-layer compresses more (C2).
    assert measured["C1"][0] > 1.8
    assert measured["C2"][0] > measured["C1"][0]
    # The cost ordering of Table 2: C2 < C1 < N2 <= N1 per logical GB.
    assert measured["C2"][1] < measured["C1"][1] < 0.92
    assert saving > 0.40
