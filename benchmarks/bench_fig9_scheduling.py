"""Figure 9: compression-ratio imbalance and the zone-scheduling *model*.

Canonical figure mapping (see DESIGN.md's experiment index): this file
owns **Figure 9** — the per-server ratio dispersion and the synthesized
band-convergence model that motivates zone scheduling.  **Figures 10/11**
are owned by ``bench_fig10_11_scheduling.py``, which runs the same
comparison on the *live* sharded runtime (real replica groups, measured
migration bytes); the band-convergence sweep here is kept as that
figure's fast synthesized cross-check, not as its canonical artifact.

Paper result: before scheduling, logical-only placement strands space
(12.1% of nodes below-average ratio wasting 1.72% of logical space; 78.6%
above-average wasting 9.17% of physical space).  After zone scheduling,
servers converge into a quadrilateral: >90% of C1 nodes in [2.2, 2.7] and
87.7% of C2 nodes in [3.15, 3.85].

We synthesize both cluster generations (hardware-only ratios ~2.35,
dual-layer ~3.55), run the zone scheduler, and report the scatter and
band coverage before/after.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.cluster.cluster import synthesize_cluster
from repro.cluster.scheduler import CompressionAwareScheduler, band_coverage

CLUSTERS = {
    # name -> (mean ratio, paper band)
    "C1 (PolarCSD1.0, hw-only)": (2.35, (2.2, 2.7)),
    "C2 (PolarCSD2.0, dual-layer)": (3.55, (3.15, 3.85)),
}


def run_scheduling():
    result = ExperimentResult(
        "fig9_scheduling",
        "cluster ratio distribution before/after compression-aware scheduling",
        ["cluster", "phase", "ratio_min", "ratio_max", "band", "coverage",
         "tasks"],
    )
    outcomes = {}
    for name, (mean_ratio, paper_band) in CLUSTERS.items():
        cluster = synthesize_cluster(
            n_servers=60, mean_ratio=mean_ratio, seed=17
        )
        scheduler = CompressionAwareScheduler(band_width=0.10)
        c_l, c_h = scheduler.band(cluster)
        band_label = f"[{c_l:.2f},{c_h:.2f}]"

        ratios = [s.compression_ratio for s in cluster.servers]
        before = band_coverage(cluster, c_l, c_h)
        result.add(name, "before", min(ratios), max(ratios), band_label,
                   before, 0)

        tasks = scheduler.rebalance(cluster)
        ratios = [s.compression_ratio for s in cluster.servers]
        after = band_coverage(cluster, c_l, c_h)
        result.add(name, "after", min(ratios), max(ratios), band_label,
                   after, len(tasks))
        result.note(
            f"{name}: paper band {paper_band}, coverage "
            f"{before:.1%} -> {after:.1%}"
        )
        outcomes[name] = (before, after, len(tasks), cluster, (c_l, c_h))
    print_table(result)
    save_result(result)
    return outcomes


def run_figure9a_histogram():
    """Figure 9a: the pre-scheduling ratio histogram of a full cluster."""
    cluster = synthesize_cluster(n_servers=120, mean_ratio=2.35, seed=23)
    result = ExperimentResult(
        "fig9a_ratio_distribution",
        "distribution of per-server compression ratios before scheduling",
        ["ratio_bucket", "servers", "fraction"],
    )
    ratios = [s.compression_ratio for s in cluster.servers]
    lo = min(ratios)
    hi = max(ratios) + 1e-9
    buckets = 10
    width = (hi - lo) / buckets
    for b in range(buckets):
        low = lo + b * width
        high = low + width
        count = sum(1 for r in ratios if low <= r < high)
        result.add(f"{low:.2f}-{high:.2f}", count, count / len(ratios))
    average = cluster.average_compression_ratio
    below = sum(1 for r in ratios if r < average) / len(ratios)
    result.note(
        f"average ratio {average:.2f}; {below:.1%} of servers below average "
        "(paper: 12.1% below wasting logical, 78.6% above wasting physical)"
    )
    print_table(result)
    save_result(result)
    return result


def test_fig9a(run_once):
    result = run_once(run_figure9a_histogram)
    assert sum(r[1] for r in result.rows) == 120
    assert len([r for r in result.rows if r[1] > 0]) >= 3  # real dispersion


def test_fig9_band_convergence(run_once):
    outcomes = run_once(run_scheduling)
    for name, (before, after, tasks, cluster, band) in outcomes.items():
        assert tasks > 0
        assert after > before
        assert after >= 0.85  # paper: >90% (C1) and 87.7% (C2)
        # Space is conserved by migration.
        assert cluster.average_compression_ratio > 1.0
