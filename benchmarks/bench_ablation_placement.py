"""Placement-policy ablation: preventing imbalance vs repairing it.

The paper's clusters place new chunks by logical usage alone and repair
the resulting compression-ratio imbalance with the zone scheduler
(§4.2.2).  An obvious extension is to *prevent* the imbalance at
placement time; this bench quantifies how much migration work that saves.
"""

import random

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import GiB
from repro.cluster.chunk import Chunk, StorageServer
from repro.cluster.cluster import Cluster
from repro.cluster.migration import MigrationExecutor
from repro.cluster.scheduler import CompressionAwareScheduler, band_coverage

N_SERVERS = 30
N_CHUNKS = 500


def _build(placer_name, seed=5):
    """Users arrive in ratio-correlated batches placed with affinity —
    the mechanism behind Figure 9a's dispersion.  The placement policy
    decides where a user's *first* chunk (and the 20% non-affine spill)
    lands; that anchor choice is where ratio-awareness can help."""
    cluster = Cluster(
        [StorageServer(i, 1024 * GiB, 384 * GiB) for i in range(N_SERVERS)]
    )
    rng = random.Random(seed)
    chunk_id = 0
    while chunk_id < N_CHUNKS:
        user_mean = 3.5 * rng.lognormvariate(0.0, 0.35)
        batch = min(rng.randrange(4, 25), N_CHUNKS - chunk_id)
        user_servers = []
        for _ in range(batch):
            ratio = max(1.05, user_mean * rng.lognormvariate(0.0, 0.08))
            chunk = Chunk(chunk_id, 10 * GiB, ratio)
            chunk_id += 1
            target = None
            if user_servers and rng.random() < 0.8:
                affine = [
                    s for s in user_servers
                    if s.fits(chunk, cluster.usage_limit)
                ]
                if affine:
                    target = min(affine, key=lambda s: s.logical_utilization)
                    target.add_chunk(chunk)
            if target is None:
                target = getattr(cluster, placer_name)(chunk)
            if target not in user_servers:
                user_servers.append(target)
    return cluster


def run_placement_ablation():
    result = ExperimentResult(
        "ablation_placement",
        "logical-only vs ratio-aware placement: migrations needed after",
        ["policy", "coverage_before", "migration_tasks", "makespan_h"],
    )
    rows = {}
    for label, placer in (
        ("logical-only placement", "place_new_chunk"),
        ("ratio-aware placement", "place_new_chunk_ratio_aware"),
    ):
        cluster = _build(placer)
        scheduler = CompressionAwareScheduler(band_width=0.10)
        c_l, c_h = scheduler.band(cluster)
        before = band_coverage(cluster, c_l, c_h)
        tasks = scheduler.rebalance(cluster)
        report = MigrationExecutor().report_for_plan(cluster, tasks)
        rows[label] = (before, len(tasks), report.makespan_hours)
        result.add(label, before, len(tasks), report.makespan_hours)
    result.note(
        "steering new chunks toward ratio-complementary servers leaves "
        "the zone scheduler less repair work"
    )
    print_table(result)
    save_result(result)
    return rows


def test_placement_ablation(run_once):
    rows = run_once(run_placement_ablation)
    naive = rows["logical-only placement"]
    aware = rows["ratio-aware placement"]
    # Ratio-aware placement starts better-balanced and needs fewer moves.
    assert aware[0] >= naive[0]
    assert aware[1] <= naive[1]
