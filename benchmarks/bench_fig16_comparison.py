"""Figure 16: end-to-end comparison with database-layer compression.

Paper result (Sysbench OLTP-Read-Write): PolarDB with PolarStore beats
both InnoDB table compression and MyRocks, because those engines burn
*compute-node* CPU (the resource users pay for) on codec work and space
management — InnoDB compresses/decompresses pages in the query path,
MyRocks pays compaction — while PolarStore pushes all of it into the
shared storage layer.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import MiB
from repro.baselines.innodb import InnoDBEngine
from repro.baselines.myrocks import MyRocksEngine
from repro.db.database import PolarDB
from repro.storage.node import NodeConfig
from repro.workloads.sysbench import prepare_table, run_sysbench

ROWS = 2000
THREADS = 16
TXNS = 30
BUFFER_POOL_PAGES = 10


def _engines():
    polar = PolarDB(
        config=NodeConfig(), volume_bytes=128 * MiB,
        buffer_pool_pages=BUFFER_POOL_PAGES, seed=21,
    )
    innodb = InnoDBEngine(
        volume_bytes=128 * MiB, buffer_pool_pages=BUFFER_POOL_PAGES, seed=21,
    )
    myrocks = MyRocksEngine(volume_bytes=128 * MiB, seed=21)
    return {
        "PolarDB+PolarStore": polar,
        "InnoDB (table compression)": innodb,
        "MyRocks": myrocks,
    }


def run_figure16():
    result = ExperimentResult(
        "fig16_comparison",
        "OLTP-Read-Write across compression approaches",
        ["engine", "tps", "avg_us", "p95_us"],
    )
    metrics = {}
    for name, engine in _engines().items():
        now = prepare_table(engine, rows=ROWS, seed=21)
        run = run_sysbench(
            engine, "read_write", duration_s=60.0, threads=THREADS,
            key_range=ROWS, start_us=now, seed=17, max_transactions=TXNS,
        )
        metrics[name] = run
        result.add(name, run.tps, run.avg_latency_us, run.p95_latency_us)
    result.note(
        "paper: PolarDB > InnoDB-compressed and MyRocks in throughput, "
        "with lower latency (compression offloaded to shared storage)"
    )
    print_table(result)
    save_result(result)
    return metrics


def test_fig16(run_once):
    metrics = run_once(run_figure16)
    polar = metrics["PolarDB+PolarStore"]
    innodb = metrics["InnoDB (table compression)"]
    myrocks = metrics["MyRocks"]
    assert polar.tps > innodb.tps
    assert polar.tps > myrocks.tps
    assert polar.avg_latency_us < innodb.avg_latency_us
