"""InnoDB table compression vs page compression vs PolarStore (§2.2.1).

The paper describes InnoDB's two software strategies: *table compression*
(each 16 KB page maps to a 4/8/16 KB file page — KEY_BLOCK_SIZE semantics)
and *page compression* (compress before write, hole-punch the tail — any
4 KB-multiple footprint).  Both are implemented in
:mod:`repro.baselines.innodb`; this bench quantifies their space behaviour
against the dual-layer store on the same data.
"""

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import MiB
from repro.baselines.innodb import InnoDBStore
from repro.storage.node import NodeConfig
from repro.storage.store import build_node
from repro.workloads.datagen import DATASETS, dataset_pages

PAGES = 16


def _mixed_entropy_pages(count, seed=3):
    """Pages whose zstd output lands between 8 and 12 KB — the band where
    table compression's 4/8/16 KB rounding visibly loses to page
    compression's any-multiple footprint."""
    import random

    from repro.common.units import DB_PAGE_SIZE

    rng = random.Random(seed)
    pages = []
    for _ in range(count):
        out = bytearray()
        while len(out) < DB_PAGE_SIZE:
            out += b"record|%06d|" % rng.randrange(10**6)
            out += rng.randbytes(24).hex().encode()
        pages.append(bytes(out[:DB_PAGE_SIZE]))
    return pages


def run_innodb_modes():
    result = ExperimentResult(
        "ablation_innodb_modes",
        "space: InnoDB table vs page compression vs PolarStore dual layer",
        ["dataset", "table_compr", "page_compr", "polarstore"],
    )
    rows = {}
    sources = {name: dataset_pages(name, PAGES, seed=7) for name in DATASETS}
    sources["mixed-entropy"] = _mixed_entropy_pages(PAGES)
    for dataset, pages in sources.items():
        table_store = InnoDBStore(table_compression=True)
        page_store = InnoDBStore(table_compression=False)
        polar = build_node(
            "modes",
            NodeConfig(opt_algorithm_selection=False),
            volume_bytes=64 * MiB,
        )
        now = 0.0
        for page_no, page in enumerate(pages):
            table_store.write_page(now, page_no, page)
            page_store.write_page(now, page_no, page)
            now = polar.write_page(now, page_no, page).done_us
        ratios = (
            table_store.compression_ratio(),
            page_store.compression_ratio(),
            polar.compression_ratio(),
        )
        rows[dataset] = ratios
        result.add(dataset, *ratios)
    result.note(
        "table compression rounds to 4/8/16 KB file pages (worst "
        "fragmentation); page compression keeps any 4 KB multiple; "
        "PolarStore adds the byte-granular hardware layer on top"
    )
    print_table(result)
    save_result(result)
    return rows


def test_innodb_modes(run_once):
    rows = run_once(run_innodb_modes)
    for dataset, (table_ratio, page_ratio, polar_ratio) in rows.items():
        # Page compression never does worse than table compression
        # (1/2/4-block rounding is a superset of any-block rounding).
        assert page_ratio >= table_ratio - 1e-9, (dataset, rows[dataset])
        # The dual-layer store beats both software-only modes.
        assert polar_ratio > page_ratio, (dataset, rows[dataset])
