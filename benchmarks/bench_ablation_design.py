"""Ablations of PolarStore design choices called out in DESIGN.md.

Not paper figures — these quantify the claims the paper makes in passing:

* §3.3.3: the per-page log's dedicated 4 KB block per 16 KB page would
  cost ~25% space amplification on a conventional SSD; on the CSD the
  space decoupling makes it nearly free.
* §4.1.2: coarsening L2P offsets to 16 bytes (7-byte entries) costs at
  most 15 bytes per block (<0.4%) while cutting mapping DRAM by 12.5%.
* §3.2.3: heavy compression trades higher ratios for whole-segment reads
  (I/O amplification on random access, amortized by the segment buffer).
"""

import dataclasses
import random

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import DB_PAGE_SIZE, GiB, KiB, LBA_SIZE, MiB, TiB
from repro.csd.device import PlainSSD, PolarCSD
from repro.csd.mapping import L2PEntryCodecV1, L2PEntryCodecV2, ftl_dram_bytes
from repro.csd.specs import P5510, POLARCSD2
from repro.storage.allocator import SpaceManager
from repro.storage.node import NodeConfig
from repro.storage.perpage_log import PerPageLogStore
from repro.storage.redo import RedoRecord
from repro.storage.store import build_node
from repro.workloads.datagen import dataset_pages


# --------------------------------------------------------------------- #
# Per-page log space amplification: CSD vs conventional SSD              #
# --------------------------------------------------------------------- #


def run_perpage_space():
    result = ExperimentResult(
        "ablation_perpage_space",
        "per-page log space cost: CSD space decoupling vs plain SSD",
        ["device", "data_bytes", "log_bytes", "amplification"],
    )
    n_pages = 48
    records = {
        page: [RedoRecord(page * 10 + 1, page, 0, b"u" * 60)]
        for page in range(n_pages)
    }
    measurements = {}
    for label, spec in (("PolarCSD2.0", POLARCSD2), ("Intel P5510", P5510)):
        sized = dataclasses.replace(
            spec, logical_capacity=64 * MiB,
            physical_capacity=64 * MiB if not spec.has_compression else 16 * MiB,
            jitter_sigma=0.0,
        )
        device = (
            PolarCSD(sized, block_capacity=1 * MiB)
            if spec.has_compression
            else PlainSSD(sized)
        )
        allocator = SpaceManager(64 * MiB)
        store = PerPageLogStore(device, allocator)
        # Baseline: the data pages themselves.
        data_pages = dataset_pages("fnb", n_pages, seed=1)
        now = 0.0
        for page_no, page in enumerate(data_pages):
            now = device.write(now, 4096 + page_no * 4, page).done_us
        data_bytes = device.physical_used_bytes
        for page_no in range(n_pages):
            now = store.evict(now, records[page_no])
        log_bytes = device.physical_used_bytes - data_bytes
        amplification = log_bytes / data_bytes
        measurements[label] = amplification
        result.add(label, data_bytes, log_bytes, amplification)
    result.note(
        "paper (§3.3.3): a dedicated 4 KB log block per 16 KB page costs "
        "~25% on conventional SSDs; CSD space decoupling makes it cheap"
    )
    print_table(result)
    save_result(result)
    return measurements


def test_perpage_space(run_once):
    m = run_once(run_perpage_space)
    # Plain SSD: ~4 KB per 16 KB page => ~25% amplification.
    assert 0.20 < m["Intel P5510"] < 0.35
    # CSD: tiny records compress into almost nothing.
    assert m["PolarCSD2.0"] < m["Intel P5510"] / 3


# --------------------------------------------------------------------- #
# L2P entry granularity: gen-1 vs gen-2                                  #
# --------------------------------------------------------------------- #


def run_l2p_granularity():
    result = ExperimentResult(
        "ablation_l2p_granularity",
        "8-byte byte-granular vs 7-byte 16-byte-granular L2P entries",
        ["codec", "entry_bytes", "dram_for_9.6TB_gib", "space_waste"],
    )
    rng = random.Random(3)
    lengths = [rng.randint(200, 4096) for _ in range(20000)]
    rows = {}
    for codec in (L2PEntryCodecV1(), L2PEntryCodecV2()):
        stored = sum(codec.stored_length(n) for n in lengths)
        waste = stored / sum(lengths) - 1.0
        dram = ftl_dram_bytes(int(9.6 * TiB), codec.entry_bytes) / GiB
        name = type(codec).__name__
        rows[name] = (codec.entry_bytes, dram, waste)
        result.add(name, codec.entry_bytes, dram, waste)
    result.note(
        "paper (§4.1.2): 2 bytes of metadata instead of 3 per entry; the "
        "16-byte offset granularity wastes <=15 bytes per block"
    )
    print_table(result)
    save_result(result)
    return rows


def test_l2p_granularity(run_once):
    rows = run_once(run_l2p_granularity)
    v1 = rows["L2PEntryCodecV1"]
    v2 = rows["L2PEntryCodecV2"]
    assert v2[0] == 7 and v1[0] == 8
    assert v2[1] < v1[1]            # less DRAM
    assert v1[2] == 0.0             # byte-granular: zero waste
    assert 0.0 < v2[2] < 0.005      # <0.5% space waste


# --------------------------------------------------------------------- #
# Heavy compression vs normal                                            #
# --------------------------------------------------------------------- #


def run_heavy_compression():
    result = ExperimentResult(
        "ablation_heavy_compression",
        "normal (per-page) vs heavy (segment) compression",
        ["dataset", "normal_ratio", "heavy_ratio", "gain",
         "cold_read_us", "warm_read_us"],
    )
    rows = {}
    for dataset in ("finance", "wiki"):
        node = build_node(
            "heavy-ablation",
            NodeConfig(opt_algorithm_selection=False),
            volume_bytes=64 * MiB,
        )
        pages = dataset_pages(dataset, 16, seed=9)
        now = 0.0
        for page_no, page in enumerate(pages):
            now = node.write_page(now, page_no, page).done_us
        normal_ratio = node.compression_ratio()
        now = node.archive_range(now, list(range(len(pages))))
        heavy_ratio = node.compression_ratio()
        # Random access to archived data: first (cold) read decompresses
        # the whole segment; the second (warm) hits the segment buffer.
        cold = node.read_page(now + 1e3, 3)
        warm = node.read_page(cold.done_us + 1e3, 5)
        rows[dataset] = (normal_ratio, heavy_ratio,
                         cold.done_us - (now + 1e3),
                         warm.done_us - (cold.done_us + 1e3))
        result.add(
            dataset, normal_ratio, heavy_ratio,
            heavy_ratio / normal_ratio - 1,
            rows[dataset][2], rows[dataset][3],
        )
    result.note(
        "heavy mode merges pages into one segment before compressing: "
        "higher ratio, whole-segment reads on cold random access, "
        "amortized by the decompressed-segment buffer (§3.2.3)"
    )
    print_table(result)
    save_result(result)
    return rows


def test_heavy_compression(run_once):
    rows = run_once(run_heavy_compression)
    for dataset, (normal, heavy, cold_us, warm_us) in rows.items():
        assert heavy > normal          # archival wins on ratio
        assert warm_us < cold_us       # segment buffer absorbs re-reads
