"""B-tree-vs-LSM write-amplification crossover (arXiv:2107.13987).

Drives the three consolidation policies (single-level / leveled /
tiered) with the same mixed-page flush workload over a compressible and
an incompressible corpus, measuring write/space/read amplification
through the unified accountant.  The run fails (non-zero exit) if the
crossover does not hold: single-level must beat leveled on WA when the
CSD's transparent compression can collapse its rewrites, and lose when
it cannot.

Artifact: ``benchmarks/results/write_amp.{txt,json}`` (byte-deterministic;
the ``compaction-smoke`` CI job double-runs the ``--quick`` variant via
``python -m repro compaction``).
"""

import sys

from repro.bench.write_amp import run_write_amp


def main() -> int:
    quick = "--quick" in sys.argv
    _, crossover = run_write_amp(quick=quick)
    if not crossover:
        print("FAIL: WA crossover does not hold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
