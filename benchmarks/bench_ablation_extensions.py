"""Ablations for the §6 "Related Directions" extensions implemented here:
table-level shared dictionaries and estimation-based algorithm selection.
"""

import random

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.compression.base import get_codec
from repro.compression.dictionary import DictionaryManager, build_dictionary
from repro.compression.estimator import EstimatingSelector, estimate_ratio
from repro.compression.selector import AlgorithmSelector
from repro.workloads.datagen import DATASETS, dataset_pages

PAGES = 12
TRAIN = 6


def run_dictionary_ablation():
    result = ExperimentResult(
        "ablation_shared_dictionary",
        "per-page zstd vs table-level shared dictionary (§6)",
        ["dataset", "plain_ratio", "dict_ratio", "gain"],
    )
    codec = get_codec("zstd")
    gains = {}
    for dataset in DATASETS:
        pages = dataset_pages(dataset, PAGES + TRAIN, seed=5)
        train, evaluate = pages[:TRAIN], pages[TRAIN:]
        dictionary = build_dictionary(train, size=4096)
        total = sum(len(p) for p in evaluate)
        plain = sum(len(codec.compress(p)) for p in evaluate)
        with_dict = sum(
            len(codec.compress(p, dictionary=dictionary)) for p in evaluate
        )
        gains[dataset] = plain / with_dict - 1
        result.add(dataset, total / plain, total / with_dict, gains[dataset])
    result.note(
        "schema-level redundancy moves into the shared dictionary, so "
        "every page stops re-encoding it (the paper's first suggested "
        "improvement)"
    )
    print_table(result)
    save_result(result)
    return gains


def test_dictionary_ablation(run_once):
    gains = run_once(run_dictionary_ablation)
    # The dictionary must help on structured datasets and never hurt much.
    assert max(gains.values()) > 0.03
    assert all(g > -0.02 for g in gains.values())


def run_estimator_ablation():
    result = ExperimentResult(
        "ablation_estimation_selection",
        "full dual-codec evaluation vs estimation-gated selection (§6)",
        ["page_mix", "full_eval_cpu_us", "estimator_cpu_us", "saving",
         "agreement"],
    )
    rows = {}
    mixes = {
        "structured (finance)": dataset_pages("finance", 10, seed=2),
        "text (wiki)": dataset_pages("wiki", 10, seed=2),
        "incompressible": [
            random.Random(seed).randbytes(16384) for seed in range(10)
        ],
        "zero-heavy": [bytes(16384) for _ in range(10)],
    }
    from repro.compression.cost import codec_cost

    both_cost = codec_cost("lz4").compress_us(16384) + codec_cost(
        "zstd"
    ).compress_us(16384)
    for label, pages in mixes.items():
        full = AlgorithmSelector()
        fast = EstimatingSelector()
        agree = 0
        fast_cpu = 0.0
        for page in pages:
            reference = full.select(page)
            decision = fast.select(page)
            if decision.codec == reference.codec:
                agree += 1
            if decision.evaluated:
                fast_cpu += both_cost
            elif decision.codec == "zstd":
                fast_cpu += codec_cost("zstd").compress_us(16384)
            else:
                fast_cpu += codec_cost("lz4").compress_us(16384)
        full_cpu = both_cost * len(pages)
        rows[label] = (full_cpu, fast_cpu, agree / len(pages))
        result.add(label, full_cpu, fast_cpu, 1 - fast_cpu / full_cpu,
                   agree / len(pages))
    result.note(
        "estimation skips codec work outside the gray zone "
        "(Harnik et al., FAST'13, as §6 suggests)"
    )
    print_table(result)
    save_result(result)
    return rows


def test_estimator_ablation(run_once):
    rows = run_once(run_estimator_ablation)
    # Clear-cut mixes save CPU with high agreement.
    full, fast, agreement = rows["incompressible"]
    assert fast < full * 0.75
    assert agreement >= 0.9
    full, fast, agreement = rows["zero-heavy"]
    assert fast < full * 0.8
    # On gray-zone pages the estimator may fall back (no big saving
    # required) but must not disagree wildly.
    assert rows["structured (finance)"][2] >= 0.5
