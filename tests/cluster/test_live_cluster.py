"""Live cluster: zone scheduling executes as real data movement."""

import random

import pytest

from repro.common.errors import SchedulingError
from repro.common.units import DB_PAGE_SIZE
from repro.cluster.live import LiveCluster
from repro.cluster.scheduler import CompressionAwareScheduler
from repro.workloads.datagen import dataset_pages


def _incompressible_pages(count, seed=0):
    rng = random.Random(seed)
    return [rng.randbytes(DB_PAGE_SIZE) for _ in range(count)]


@pytest.fixture
def loaded():
    cluster = LiveCluster(n_servers=4, seed=2)
    contents = {}
    # Compressible chunks (finance) and incompressible chunks, deliberately
    # concentrated so compression ratios differ per server.
    for i in range(3):
        pages = dataset_pages("finance", 6, seed=10 + i)
        chunk = cluster.ingest_chunk(pages, server=cluster.servers[0])
        contents.update(dict(zip(chunk.page_nos, pages)))
    for i in range(3):
        pages = _incompressible_pages(6, seed=20 + i)
        chunk = cluster.ingest_chunk(pages, server=cluster.servers[1])
        contents.update(dict(zip(chunk.page_nos, pages)))
    for server_index in (2, 3):
        pages = dataset_pages("fnb", 6, seed=30 + server_index)
        chunk = cluster.ingest_chunk(
            pages, server=cluster.servers[server_index]
        )
        contents.update(dict(zip(chunk.page_nos, pages)))
    return cluster, contents


def test_ingest_places_on_least_loaded():
    cluster = LiveCluster(n_servers=3, seed=1)
    first = cluster.ingest_chunk(dataset_pages("wiki", 4, seed=1))
    second = cluster.ingest_chunk(dataset_pages("wiki", 4, seed=2))
    owners = {
        s.server_id for s in cluster.servers if s.chunks
    }
    assert len(owners) == 2  # spread across two servers
    assert first.chunk_id != second.chunk_id


def test_snapshot_measures_real_ratios(loaded):
    cluster, _ = loaded
    abstract, owner = cluster.snapshot()
    ratios = {
        s.server_id: s.compression_ratio
        for s in abstract.servers
        if s.chunks
    }
    # Server 1 (incompressible chunks) has a markedly worse ratio than
    # server 0 (finance chunks).
    assert ratios[1] < ratios[0] * 0.7
    assert len(owner) == 8


def test_migration_moves_real_bytes(loaded):
    cluster, contents = loaded
    source = cluster.servers[0]
    target = cluster.servers[3]
    chunk_id = next(iter(source.chunks))
    pages = source.chunks[chunk_id].page_nos
    logical_before = source.node.logical_used_bytes
    cluster.migrate(chunk_id, target)
    assert chunk_id in target.chunks
    assert source.node.logical_used_bytes < logical_before
    for page_no in pages:
        assert target.node.index.get(page_no) is not None
        assert cluster.read_page(page_no) == contents[page_no]


def test_migrate_rejects_noop_and_unknown(loaded):
    cluster, _ = loaded
    source = cluster.servers[0]
    chunk_id = next(iter(source.chunks))
    with pytest.raises(SchedulingError):
        cluster.migrate(chunk_id, source)
    with pytest.raises(SchedulingError):
        cluster.migrate(9999, cluster.servers[1])


def test_rebalance_executes_plan_and_preserves_data(loaded):
    cluster, contents = loaded
    scheduler = CompressionAwareScheduler(band_width=0.10)
    abstract, _ = cluster.snapshot()
    coverage_before = _band_coverage(cluster, scheduler)
    tasks = cluster.rebalance(scheduler)
    assert tasks  # the skewed placement demands migrations
    # Every byte survived the physical moves.
    for page_no, image in contents.items():
        assert cluster.read_page(page_no) == image
    assert _band_coverage(cluster, scheduler) >= coverage_before


def _band_coverage(cluster, scheduler):
    abstract, _ = cluster.snapshot()
    from repro.cluster.scheduler import band_coverage

    c_l, c_h = scheduler.band(abstract)
    return band_coverage(abstract, c_l, c_h)
