"""The sharded cluster runtime: routing, live migration, cutover safety."""

import pytest

from repro.api import PolarStore, ReproConfig
from repro.cluster.runtime import (
    ChunkState,
    ClusterRuntime,
    decode_row_page,
    encode_row_page,
)
from repro.common.errors import ReproError, SchedulingError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.engine.core import Timeout


def make_runtime(shards=2, chunk_keys=8, **cluster_overrides):
    doc = {
        "store": {"volume_bytes": 16 * MiB},
        "engine": {"enabled": True},
        "cluster": dict(
            {"shards": shards, "chunk_keys": chunk_keys}, **cluster_overrides
        ),
    }
    return ClusterRuntime(ReproConfig.from_dict(doc))


# -- row page codec ---------------------------------------------------------

def test_row_page_round_trip():
    image = encode_row_page(42, b"hello world")
    assert len(image) == DB_PAGE_SIZE
    assert decode_row_page(image) == (42, b"hello world")


def test_row_page_filler_tracks_value_compressibility():
    image = encode_row_page(1, b"ab")
    # The filler tiles the value, not zeros: page bytes repeat the row.
    assert image[12:].count(b"ab") > 4000


def test_row_value_must_fit_one_page():
    with pytest.raises(ReproError, match="exceeds"):
        encode_row_page(1, b"x" * DB_PAGE_SIZE)


# -- routing ----------------------------------------------------------------

def test_range_sharding_routes_by_chunk():
    runtime = make_runtime(shards=2, chunk_keys=4)
    runtime.create_table("t")
    for key in range(12):
        runtime.insert(runtime.engine.now_us, "t", key, bytes([key]) * 8)
    # 12 keys / 4 per chunk = 3 chunks, spread by least-logical placement.
    assert len(runtime.chunks) == 3
    owners = {c.shard_id for c in runtime.chunks.values()}
    assert owners == {0, 1}
    for key in range(12):
        result = runtime.select(runtime.engine.now_us, "t", key)
        assert result.value == bytes([key]) * 8


def test_range_select_spans_chunks():
    runtime = make_runtime(shards=2, chunk_keys=4)
    runtime.create_table("t")
    for key in range(10):
        runtime.insert(runtime.engine.now_us, "t", key, bytes([65 + key]))
    result = runtime.range_select(runtime.engine.now_us, "t", 2, 7)
    assert result.value == b"CDEFGH"


def test_missing_table_and_keys_raise():
    runtime = make_runtime()
    with pytest.raises(ReproError, match="no such table"):
        runtime.select(0.0, "ghost", 1)
    runtime.create_table("t")
    with pytest.raises(ReproError, match="not found"):
        runtime.select(0.0, "t", 1)
    runtime.insert(0.0, "t", 1, b"v")
    with pytest.raises(ReproError, match="missing key"):
        runtime.update(runtime.engine.now_us, "t", 2, b"v")
    with pytest.raises(ReproError, match="missing key"):
        runtime.delete(runtime.engine.now_us, "t", 2)


def test_needs_at_least_two_shards():
    with pytest.raises(ReproError, match="shards"):
        ClusterRuntime(ReproConfig())


def test_delete_frees_space_on_owner():
    runtime = make_runtime(shards=2, chunk_keys=4)
    runtime.create_table("t")
    runtime.insert(0.0, "t", 1, b"v" * 32)
    chunk = next(iter(runtime.chunks.values()))
    leader = runtime.owner(chunk).store.leader
    page_no = chunk.rows[1]
    assert leader.page_stored_bytes(page_no) > 0
    runtime.delete(runtime.engine.now_us, "t", 1)
    assert leader.index.get(page_no) is None
    assert chunk.logical_bytes == 0


# -- live migration ---------------------------------------------------------

def test_migration_moves_real_compressed_pages():
    runtime = make_runtime(shards=2, chunk_keys=8)
    runtime.create_table("t")
    for key in range(8):
        runtime.insert(runtime.engine.now_us, "t", key, b"compress-me" * 40)
    chunk = next(iter(runtime.chunks.values()))
    source_id = chunk.shard_id
    target_id = 1 - source_id
    t0 = runtime.engine.now_us
    moved = runtime.engine.run(
        runtime.migrate_chunk_proc(chunk.chunk_id, target_id)
    )
    assert moved == 8
    assert chunk.shard_id == target_id
    assert runtime.engine.now_us > t0  # the copy consumed simulated time
    # Source replicas hold no trace of the chunk's pages.
    source_leader = runtime.shards[source_id].store.leader
    for page_no in chunk.rows.values():
        assert source_leader.index.get(page_no) is None
    # The moved bytes are measured codec output: compressible rows land
    # physically smaller than their logical size.
    logical = runtime.metrics.counter("cluster.migration.logical_bytes")
    physical = runtime.metrics.counter("cluster.migration.physical_bytes")
    assert logical.value == 8 * DB_PAGE_SIZE
    assert 0 < physical.value < logical.value
    assert runtime.metrics.counter("cluster.migration.tasks").value == 1
    # Rows stay readable from the new owner.
    for key in range(8):
        result = runtime.select(runtime.engine.now_us, "t", key)
        assert result.value == b"compress-me" * 40


def test_migration_rejects_bad_targets():
    runtime = make_runtime(shards=2, chunk_keys=8)
    runtime.create_table("t")
    runtime.insert(0.0, "t", 1, b"v")
    chunk = next(iter(runtime.chunks.values()))
    with pytest.raises(SchedulingError, match="not found"):
        runtime.engine.run(runtime.migrate_chunk_proc(999, 1))
    with pytest.raises(SchedulingError, match="already on target"):
        runtime.engine.run(
            runtime.migrate_chunk_proc(chunk.chunk_id, chunk.shard_id)
        )


def test_migration_catches_up_with_concurrent_writers():
    runtime = make_runtime(shards=2, chunk_keys=16)
    runtime.create_table("t")
    expected = {}
    for key in range(16):
        value = bytes([key]) * 200
        runtime.insert(runtime.engine.now_us, "t", key, value)
        expected[("t", key)] = value
    chunk = next(iter(runtime.chunks.values()))
    target_id = 1 - chunk.shard_id
    engine = runtime.engine

    def writer():
        for i in range(30):
            key = i % 16
            value = bytes([(key + 100) % 256]) * 150
            yield from runtime.insert_proc("t", key, value)
            expected[("t", key)] = value
            yield Timeout(3.0)

    def deleter():
        yield Timeout(10.0)
        yield from runtime.delete_proc("t", 3)
        expected.pop(("t", 3), None)

    procs = [
        engine.spawn(writer()),
        engine.spawn(deleter()),
        engine.spawn(runtime.migrate_chunk_proc(chunk.chunk_id, target_id)),
    ]
    engine.run_until_complete(procs)
    assert chunk.shard_id == target_id
    assert chunk.state is ChunkState.SERVING
    # Every acknowledged write survived the cutover, byte-exact.
    assert runtime.verify_readable(expected) == len(expected)
    catchup = runtime.metrics.counter("cluster.migration.catchup_pages")
    assert catchup.value > 0  # the journal really replayed deltas


def test_cutover_gate_blocks_writes_until_flip():
    runtime = make_runtime(shards=2, chunk_keys=8)
    runtime.create_table("t")
    runtime.insert(0.0, "t", 1, b"before")
    chunk = next(iter(runtime.chunks.values()))
    engine = runtime.engine
    # Freeze the chunk in CUTOVER by hand, then release it from a timer:
    # the writer must block on the gate and commit on the new owner.
    chunk.state = ChunkState.CUTOVER
    chunk.gate = engine.event("test-gate")
    target_id = 1 - chunk.shard_id

    def release():
        yield Timeout(500.0)
        chunk.shard_id = target_id
        chunk.state = ChunkState.SERVING
        gate, chunk.gate = chunk.gate, None
        gate.succeed(engine.now_us)

    t0 = engine.now_us
    writer = engine.spawn(runtime.insert_proc("t", 1, b"after"))
    engine.spawn(release())
    engine.run_until_complete([writer])
    assert writer.value.done_us >= t0 + 500.0
    blocked = runtime.metrics.counter("cluster.migration.blocked_writes")
    assert blocked.value == 1
    stalls = runtime.metrics.histogram("cluster.migration.cutover_stall_us")
    assert stalls.count == 1
    result = runtime.select(engine.now_us, "t", 1)
    assert result.value == b"after"


def test_migration_streams_throttle_concurrency():
    runtime = make_runtime(shards=3, chunk_keys=4, migration_streams=1)
    runtime.create_table("t")
    for key in range(8):  # two chunks on two different shards
        runtime.insert(runtime.engine.now_us, "t", key, bytes([key]) * 64)
    chunks = list(runtime.chunks.values())
    assert len(chunks) == 2
    targets = [2, 2]
    engine = runtime.engine
    procs = [
        engine.spawn(runtime.migrate_chunk_proc(c.chunk_id, t))
        for c, t in zip(chunks, targets)
    ]
    engine.run_until_complete(procs)
    assert all(c.shard_id == 2 for c in chunks)
    # With one stream the moves serialized: the makespan covers both.
    chunk_us = runtime.metrics.histogram("cluster.migration.chunk_us")
    assert chunk_us.count == 2


def test_cutover_loses_nothing_under_fault_injection():
    """The chaos variant of the catch-up test: device-level fault
    injection is armed on every shard, so migration reads hit corrupt
    frames and must detect-and-repair while writers race the cutover."""
    doc = {
        "store": {"volume_bytes": 16 * MiB},
        "device": {"inject_faults": True},
        "engine": {"enabled": True},
        "cluster": {"shards": 2, "chunk_keys": 16},
    }
    runtime = ClusterRuntime(ReproConfig.from_dict(doc))
    runtime.create_table("t")
    expected = {}
    for key in range(16):
        value = bytes([key + 1]) * 300
        runtime.insert(runtime.engine.now_us, "t", key, value)
        expected[("t", key)] = value
    chunk = next(iter(runtime.chunks.values()))
    target_id = 1 - chunk.shard_id
    engine = runtime.engine

    def writer():
        for i in range(24):
            key = i % 16
            value = bytes([(key + 50) % 256]) * 250
            yield from runtime.insert_proc("t", key, value)
            expected[("t", key)] = value
            yield Timeout(5.0)

    procs = [
        engine.spawn(writer()),
        engine.spawn(runtime.migrate_chunk_proc(chunk.chunk_id, target_id)),
    ]
    engine.run_until_complete(procs)
    assert chunk.shard_id == target_id
    assert runtime.verify_readable(expected) == 16


# -- scheduler bridge -------------------------------------------------------

def test_snapshot_mirrors_measured_state():
    runtime = make_runtime(shards=2, chunk_keys=4)
    runtime.create_table("t")
    for key in range(8):
        runtime.insert(runtime.engine.now_us, "t", key, b"abc" * 100)
    abstract, owner = runtime.snapshot()
    assert len(abstract.servers) == 2
    mirrored = [c for s in abstract.servers for c in s.chunks.values()]
    assert {c.chunk_id for c in mirrored} == set(runtime.chunks)
    for chunk in mirrored:
        assert chunk.logical_bytes == 4 * DB_PAGE_SIZE
        assert chunk.compression_ratio >= 1.0
        assert owner[chunk.chunk_id] == runtime.chunks[
            chunk.chunk_id
        ].shard_id


def test_rebalance_skips_net_noop_moves():
    runtime = make_runtime(shards=2, chunk_keys=4)
    runtime.create_table("t")
    runtime.insert(0.0, "t", 1, b"v" * 16)
    chunk = next(iter(runtime.chunks.values()))
    from repro.cluster.scheduler import MigrationTask

    home = chunk.shard_id
    away = 1 - home
    report = runtime.execute([
        MigrationTask(chunk.chunk_id, home, away),
        MigrationTask(chunk.chunk_id, away, home),  # net no-op
    ])
    assert len(report.tasks) == 2
    assert report.moved_pages == 0
    assert chunk.shard_id == home


def test_zone_occupancy_shape():
    runtime = make_runtime(shards=2, chunk_keys=4)
    runtime.create_table("t")
    for key in range(8):
        runtime.insert(runtime.engine.now_us, "t", key, b"z" * 50)
    zones = runtime.zone_occupancy()
    assert set(zones) == {"A", "B", "C", "D"}
    assert sum(zones.values()) == 2
