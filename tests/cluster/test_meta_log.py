"""The replicated metadata log: placement and cutover at quorum."""

import pytest

from repro.api import ReproConfig
from repro.cluster.runtime import ClusterRuntime
from repro.common.units import MiB


def make_runtime(**cluster_overrides):
    doc = {
        "store": {"volume_bytes": 16 * MiB},
        "engine": {"enabled": True},
        "cluster": dict(
            {"shards": 2, "chunk_keys": 4, "consensus": True},
            **cluster_overrides,
        ),
    }
    return ClusterRuntime(ReproConfig.from_dict(doc))


def test_consensus_nodes_must_be_odd():
    with pytest.raises(ValueError, match="odd"):
        make_runtime(consensus_nodes=4)


def test_placement_commits_through_the_meta_log():
    runtime = make_runtime()
    runtime.create_table("t")
    for key in range(12):
        runtime.insert(runtime.engine.now_us, "t", key, bytes([key]) * 8)
    # 12 keys / 4 per chunk = 3 chunks, each placed by a committed entry.
    assert len(runtime.chunks) == 3
    places = [cmd for cmd in runtime.meta_log if cmd[0] == "place"]
    assert len(places) == 3
    assert {(t, i) for _, t, i, _ in places} == {
        ("t", 0), ("t", 1), ("t", 2)
    }
    # The routing table is exactly the committed log's placements.
    for _, table, index, shard_id in places:
        assert runtime.tables[table][index].shard_id == shard_id
    for key in range(12):
        result = runtime.select(runtime.engine.now_us, "t", key)
        assert result.value == bytes([key]) * 8
    assert runtime.meta_group.tracker.violations == []


def test_chunk_creation_never_bypasses_the_log():
    """With consensus on, the read-side router must not invent chunks."""
    from repro.common.errors import ReproError

    runtime = make_runtime()
    runtime.create_table("t")
    with pytest.raises(ReproError, match="not yet placed"):
        runtime._chunk_for("t", 1, create=True)


def test_migration_cutover_commits_through_the_meta_log():
    runtime = make_runtime()
    runtime.create_table("t")
    for key in range(8):
        runtime.insert(runtime.engine.now_us, "t", key, bytes([key]) * 16)
    chunk = next(iter(runtime.chunks.values()))
    target = 1 - chunk.shard_id
    runtime.engine.run(runtime.migrate_chunk_proc(chunk.chunk_id, target))
    assert chunk.shard_id == target
    assert ("cutover", chunk.chunk_id, target) in runtime.meta_log
    for key in range(8):
        result = runtime.select(runtime.engine.now_us, "t", key)
        assert result.value == bytes([key]) * 16
    assert runtime.meta_group.tracker.violations == []


def test_consensus_off_keeps_the_legacy_direct_path():
    runtime = make_runtime(consensus=False)
    assert runtime.meta_group is None
    runtime.create_table("t")
    for key in range(6):
        runtime.insert(runtime.engine.now_us, "t", key, b"v")
    assert runtime.meta_log == []
    assert len(runtime.chunks) == 2
