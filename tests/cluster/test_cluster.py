"""Cluster space management and compression-aware scheduling."""

import pytest

from repro.common.errors import SchedulingError
from repro.common.units import GiB
from repro.cluster.chunk import Chunk, StorageServer
from repro.cluster.cluster import Cluster, synthesize_cluster
from repro.cluster.costs import (
    DEVICE_COSTS,
    cost_per_logical_gb,
    storage_cost_reduction,
)
from repro.cluster.scheduler import (
    CompressionAwareScheduler,
    LogicalOnlyScheduler,
    band_coverage,
)

# --------------------------------------------------------------------- #
# Chunks & servers                                                       #
# --------------------------------------------------------------------- #


def test_chunk_physical_size():
    chunk = Chunk(1, 10 * GiB, 2.5)
    assert chunk.physical_bytes == int(10 * GiB / 2.5)
    with pytest.raises(ValueError):
        Chunk(2, 0, 2.0)
    with pytest.raises(ValueError):
        Chunk(3, GiB, 0.5)


def test_server_usage_accounting():
    server = StorageServer(0, logical_capacity=100 * GiB,
                           physical_capacity=50 * GiB)
    server.add_chunk(Chunk(1, 10 * GiB, 2.0))
    server.add_chunk(Chunk(2, 10 * GiB, 4.0))
    assert server.logical_used == 20 * GiB
    assert server.physical_used == int(10 * GiB / 2.0) + int(10 * GiB / 4.0)
    assert server.compression_ratio == pytest.approx(20 / 7.5, rel=1e-3)
    with pytest.raises(SchedulingError):
        server.add_chunk(Chunk(1, GiB, 2.0))
    server.remove_chunk(1)
    with pytest.raises(SchedulingError):
        server.remove_chunk(1)


def test_server_fits_checks_both_dimensions():
    server = StorageServer(0, logical_capacity=100 * GiB,
                           physical_capacity=10 * GiB)
    # Logical fits easily but physical would exceed 75%.
    incompressible = Chunk(1, 9 * GiB, 1.05)
    assert not server.fits(incompressible)
    compressible = Chunk(2, 9 * GiB, 3.0)
    assert server.fits(compressible)


def test_ghost_bytes_and_trim():
    server = StorageServer(0)
    server.add_chunk(Chunk(1, 10 * GiB, 2.0))
    server.ghost_physical_bytes = GiB
    assert server.reported_physical_used == server.physical_used + GiB
    released = server.enable_trim()
    assert released == GiB
    assert server.reported_physical_used == server.physical_used


# --------------------------------------------------------------------- #
# Cluster placement                                                      #
# --------------------------------------------------------------------- #


def test_placement_prefers_lowest_logical_usage():
    cluster = Cluster([StorageServer(i, 100 * GiB, 50 * GiB) for i in range(3)])
    cluster.servers[0].add_chunk(Chunk(100, 30 * GiB, 2.0))
    target = cluster.place_new_chunk(Chunk(1, 10 * GiB, 2.0))
    assert target.server_id in (1, 2)


def test_placement_fails_when_cluster_full():
    cluster = Cluster([StorageServer(0, 10 * GiB, 5 * GiB)])
    cluster.servers[0].add_chunk(Chunk(1, int(7.2 * GiB), 2.0))
    with pytest.raises(SchedulingError):
        cluster.place_new_chunk(Chunk(2, 2 * GiB, 2.0))


def test_synthesized_cluster_has_ratio_dispersion():
    cluster = synthesize_cluster(n_servers=40, seed=3)
    ratios = [s.compression_ratio for s in cluster.servers if s.chunks]
    assert len(ratios) == 40
    spread = max(ratios) / min(ratios)
    assert spread > 1.3  # Figure 9a: meaningful imbalance before scheduling
    c_avg = cluster.average_compression_ratio
    assert 2.0 < c_avg < 6.0


# --------------------------------------------------------------------- #
# Schedulers                                                             #
# --------------------------------------------------------------------- #


def test_logical_scheduler_balances_logical_usage_only():
    cluster = synthesize_cluster(n_servers=30, seed=5)
    # Unbalance it: dump extra chunks on server 0.
    for i in range(12):
        cluster.servers[0].add_chunk(Chunk(90_000 + i, 10 * GiB, 3.0))
    scheduler = LogicalOnlyScheduler()
    tasks = scheduler.rebalance(cluster)
    assert tasks
    average = cluster.average_logical_utilization
    assert all(
        s.logical_utilization <= average + scheduler.margin + 0.02
        for s in cluster.servers
    )


def test_compression_aware_scheduler_converges_ratios():
    """Figures 10b/11b: after scheduling, ~90% of servers sit inside the
    target compression-ratio band."""
    cluster = synthesize_cluster(n_servers=40, seed=3)
    scheduler = CompressionAwareScheduler(band_width=0.10)
    c_l, c_h = scheduler.band(cluster)
    before = band_coverage(cluster, c_l, c_h)
    tasks = scheduler.rebalance(cluster)
    after = band_coverage(cluster, c_l, c_h)
    assert tasks
    assert after > before
    assert after >= 0.85


def test_compression_aware_scheduler_preserves_all_chunks():
    cluster = synthesize_cluster(n_servers=20, seed=9)
    total_before = sum(len(s.chunks) for s in cluster.servers)
    logical_before = sum(s.logical_used for s in cluster.servers)
    CompressionAwareScheduler().rebalance(cluster)
    assert sum(len(s.chunks) for s in cluster.servers) == total_before
    assert sum(s.logical_used for s in cluster.servers) == logical_before


def test_wider_band_needs_fewer_tasks():
    """§4.2.3: lower c_l / higher c_h => fewer scheduling tasks."""
    narrow_cluster = synthesize_cluster(n_servers=30, seed=11)
    wide_cluster = synthesize_cluster(n_servers=30, seed=11)
    narrow = CompressionAwareScheduler(band_width=0.06).rebalance(narrow_cluster)
    wide = CompressionAwareScheduler(band_width=0.20).rebalance(wide_cluster)
    assert len(wide) <= len(narrow)


def test_scheduling_reduces_stranded_space():
    cluster = synthesize_cluster(n_servers=40, seed=3)
    wasted_before = (
        cluster.wasted_logical_fraction() + cluster.wasted_physical_fraction()
    )
    CompressionAwareScheduler().rebalance(cluster)
    wasted_after = (
        cluster.wasted_logical_fraction() + cluster.wasted_physical_fraction()
    )
    assert wasted_after < wasted_before


def test_cluster_trim_rollout_recovers_monitored_space():
    """§4.2.1: before TRIM, monitoring overestimates physical usage; the
    rollout dropped monitored usage ~3%.  Reproduce at cluster scale with
    ghost bytes on every server."""
    cluster = synthesize_cluster(n_servers=20, seed=13)
    total_true = sum(s.physical_used for s in cluster.servers)
    # Each server carries ~3% ghost space from untrimmed frees.
    for server in cluster.servers:
        server.ghost_physical_bytes = int(server.physical_used * 0.031)
    reported_before = sum(s.reported_physical_used for s in cluster.servers)
    assert reported_before > total_true
    released = sum(s.enable_trim() for s in cluster.servers)
    reported_after = sum(s.reported_physical_used for s in cluster.servers)
    assert reported_after == total_true
    drop = released / reported_before
    assert 0.02 < drop < 0.04  # the paper's ~3%


def test_find_chunk():
    cluster = synthesize_cluster(n_servers=5, seed=2)
    some_server = next(s for s in cluster.servers if s.chunks)
    chunk_id = next(iter(some_server.chunks))
    assert cluster.find_chunk(chunk_id) is some_server
    assert cluster.find_chunk(10**9) is None


def test_ratio_aware_placement_reduces_imbalance():
    """The placement extension steers chunks so servers end up closer to
    the cluster-average ratio than naive logical-only placement — fewer
    migrations needed later."""
    import random as _random

    def build(placer_name):
        cluster = Cluster(
            [StorageServer(i, 1024 * GiB, 384 * GiB) for i in range(20)]
        )
        rng = _random.Random(3)
        chunk_id = 0
        for _ in range(300):
            ratio = max(1.05, 3.5 * rng.lognormvariate(0.0, 0.4))
            chunk = Chunk(chunk_id, 10 * GiB, ratio)
            chunk_id += 1
            getattr(cluster, placer_name)(chunk)
        return cluster

    def spread(cluster):
        ratios = [s.compression_ratio for s in cluster.servers if s.chunks]
        return max(ratios) - min(ratios)

    naive = build("place_new_chunk")
    aware = build("place_new_chunk_ratio_aware")
    assert spread(aware) <= spread(naive)


def test_ratio_aware_placement_respects_limits():
    cluster = Cluster([StorageServer(0, 10 * GiB, 5 * GiB)])
    cluster.servers[0].add_chunk(Chunk(1, int(7.2 * GiB), 2.0))
    with pytest.raises(SchedulingError):
        cluster.place_new_chunk_ratio_aware(Chunk(2, 2 * GiB, 2.0))


# --------------------------------------------------------------------- #
# Migration execution (§4.2.3 "completion within one day")               #
# --------------------------------------------------------------------- #


def test_migration_makespan_scales_with_bytes():
    from repro.cluster.migration import MigrationExecutor

    executor = MigrationExecutor()
    small = executor.estimate([GiB] * 8)
    large = executor.estimate([10 * GiB] * 8)
    assert large.makespan_s > small.makespan_s
    assert large.moved_bytes == 80 * GiB


def test_migration_concurrency_shortens_makespan():
    from repro.cluster.migration import MigrationExecutor

    serial = MigrationExecutor(concurrent_streams=1).estimate([GiB] * 16)
    parallel = MigrationExecutor(concurrent_streams=8).estimate([GiB] * 16)
    assert parallel.makespan_s < serial.makespan_s / 3


def test_zone_plan_completes_within_a_day():
    """§4.2.3: band parameters are chosen offline so the resulting plan
    finishes within one day — verify our default band on a synthesized
    cluster does."""
    from repro.cluster.migration import MigrationExecutor

    cluster = synthesize_cluster(n_servers=40, seed=3)
    scheduler = CompressionAwareScheduler(band_width=0.10)
    # Capture chunk sizes before applying (the plan mutates placement).
    tasks = scheduler.rebalance(cluster)
    report = MigrationExecutor().report_for_plan(cluster, tasks)
    assert report.tasks == len(tasks)
    assert report.makespan_hours < 24.0


def test_wider_band_completes_faster():
    from repro.cluster.migration import MigrationExecutor

    executor = MigrationExecutor()
    narrow_cluster = synthesize_cluster(n_servers=30, seed=11)
    wide_cluster = synthesize_cluster(n_servers=30, seed=11)
    narrow_tasks = CompressionAwareScheduler(0.06).rebalance(narrow_cluster)
    wide_tasks = CompressionAwareScheduler(0.20).rebalance(wide_cluster)
    narrow = executor.report_for_plan(narrow_cluster, narrow_tasks)
    wide = executor.report_for_plan(wide_cluster, wide_tasks)
    assert wide.makespan_s <= narrow.makespan_s


# --------------------------------------------------------------------- #
# Costs (Table 2)                                                        #
# --------------------------------------------------------------------- #


def test_cost_model_reproduces_table2():
    assert cost_per_logical_gb("P4510", 1.0) == 1.00
    assert cost_per_logical_gb("P5510", 1.0) == 0.91
    assert cost_per_logical_gb("PolarCSD1.0", 2.35) == pytest.approx(0.62, abs=0.01)
    assert cost_per_logical_gb("PolarCSD2.0", 3.55) == pytest.approx(0.37, abs=0.01)


def test_cost_reduction_is_about_sixty_percent():
    saving = storage_cost_reduction("P5510", "PolarCSD2.0", 3.55)
    assert saving == pytest.approx(0.59, abs=0.03)


def test_cost_model_validation():
    with pytest.raises(ValueError):
        DEVICE_COSTS["P4510"].logical_cost(0.0)
    with pytest.raises(KeyError):
        cost_per_logical_gb("QLC9000", 1.0)
