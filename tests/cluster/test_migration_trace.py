"""Tracer spans across a migration's engine yields.

A chunk migration daemon yields through dozens of engine waits, so the
runtime emits its span tree retrospectively at cutover.  These tests pin
the property the per-layer breakdowns rely on: the three phase spans
tile the root exactly, so exclusive times always telescope to the
end-to-end migration latency.
"""

import math

import pytest

from repro.api import ReproConfig
from repro.bench.cluster_fig import build_skewed_runtime
from repro.cluster.runtime import ClusterRuntime
from repro.cluster.scheduler import CompressionAwareScheduler
from repro.common.units import MiB

PHASES = (
    "cluster.migrate.copy",
    "cluster.migrate.catchup",
    "cluster.migrate.cutover",
)


def _bare_runtime() -> ClusterRuntime:
    doc = {
        "store": {"volume_bytes": 16 * MiB},
        "engine": {"enabled": True},
        "cluster": {"shards": 2, "chunk_keys": 8},
    }
    return ClusterRuntime(ReproConfig.from_dict(doc))


def test_retrospective_trace_tiles_the_root():
    runtime = _bare_runtime()
    runtime._trace_migration(100.0, 400.0, 450.0, 700.0)
    trace = runtime.metrics.tracer.last
    assert trace is not None
    root = trace.root
    assert root.name == "cluster.migrate_chunk"
    assert [c.name for c in root.children] == list(PHASES)
    # Children tile [started, ended] with no gaps or overlap.
    assert root.children[0].start_us == root.start_us
    for left, right in zip(root.children, root.children[1:]):
        assert left.end_us == right.start_us
    assert root.children[-1].end_us == root.end_us
    # So the root keeps zero exclusive time and the phase exclusives sum
    # to the end-to-end latency.
    assert root.exclusive_us == 0.0
    assert trace.breakdown() == {
        "cluster.migrate_chunk": 0.0,
        "cluster.migrate.copy": 300.0,
        "cluster.migrate.catchup": 50.0,
        "cluster.migrate.cutover": 250.0,
    }
    assert sum(trace.breakdown().values()) == trace.total_us == 600.0


def test_trace_histograms_record_each_phase():
    runtime = _bare_runtime()
    runtime._trace_migration(0.0, 10.0, 30.0, 60.0)
    runtime._trace_migration(100.0, 140.0, 140.0, 200.0)
    reg = runtime.metrics
    total = reg.get("trace.cluster.migrate_chunk.total_us", layer="cluster")
    assert total.count == 2 and total.total == 160.0
    for name, want in zip(PHASES, (50.0, 20.0, 90.0)):
        hist = reg.get(f"trace.{name}.self_us", layer="cluster")
        assert hist.count == 2
        assert hist.total == pytest.approx(want)


def test_live_migration_spans_sum_to_end_to_end():
    """Integration: real rebalance migrations cross many engine yields,
    yet per-phase exclusive times still sum to the simulated end-to-end
    latency recorded on ``cluster.migration.chunk_us``."""
    runtime, expected = build_skewed_runtime(shards=2, chunks=4, seed=0)
    report = runtime.rebalance(CompressionAwareScheduler())
    assert report.tasks  # the skewed layout demands movement
    reg = runtime.metrics
    chunk_us = reg.get("cluster.migration.chunk_us")
    total = reg.get("trace.cluster.migrate_chunk.total_us", layer="cluster")
    assert total.count == chunk_us.count == len(report.tasks)
    phase_sum = math.fsum(
        reg.get(f"trace.{name}.self_us", layer="cluster").total
        for name in PHASES
    )
    root_self = reg.get(
        "trace.cluster.migrate_chunk.self_us", layer="cluster"
    )
    assert root_self.total == 0.0
    assert phase_sum == pytest.approx(total.total)
    assert total.total == pytest.approx(chunk_us.total)
    # The last published trace is a migration tree with the three phases.
    trace = reg.tracer.last
    assert trace.root.name == "cluster.migrate_chunk"
    assert sum(trace.breakdown().values()) == pytest.approx(trace.total_us)
    assert trace.total_us > 0.0
    # And the data all survived the moves the spans describe.
    for (table, key), value in expected.items():
        assert runtime.select(
            runtime.engine.now_us, table, key
        ).value == value
