"""Golden equality: the per-shard parallel cluster runtime must be
byte-for-byte indistinguishable from serial execution.

Every test here runs the same seeded schedule twice — once on
:class:`~repro.cluster.runtime.ClusterRuntime` and once on
:class:`~repro.cluster.parallel.ParallelClusterRuntime` with shards
pinned to different worker processes — and compares simulated clocks,
event sequence numbers, migration accounting, and per-shard metric
registries for exact equality."""

import itertools

import pytest

from repro.api import ReproConfig
from repro.cluster.parallel import ParallelClusterRuntime
from repro.cluster.runtime import ChunkState, ClusterRuntime
from repro.common.units import MiB
from repro.engine.core import EngineError, Timeout
from repro.obs import events as obs_events
from repro.storage import store as store_mod


def _config(shards=2, chunk_keys=16, **cluster_overrides):
    return ReproConfig.from_dict({
        "store": {"volume_bytes": 16 * MiB},
        "engine": {"enabled": True},
        "cluster": dict(
            {"shards": shards, "chunk_keys": chunk_keys},
            **cluster_overrides,
        ),
    })


def _fresh(workers, **kwargs):
    # Same node-name sequence for every leg: metric labels must line up
    # for registry equality (the perf harness does the same rewind).
    store_mod._node_counter = itertools.count()
    config = _config(**kwargs)
    if workers > 1:
        return ParallelClusterRuntime(config, workers=workers)
    return ClusterRuntime(config)


# -- construction & lifecycle ----------------------------------------------

def test_worker_count_clamps_to_shard_count():
    runtime = ParallelClusterRuntime(_config(shards=2), workers=8)
    try:
        assert runtime.workers == 2
    finally:
        runtime.close()


def test_close_is_idempotent_and_context_managed():
    with ParallelClusterRuntime(_config(shards=2), workers=2) as runtime:
        runtime.create_table("t")
        runtime.insert(0.0, "t", 1, b"v" * 32)
        runtime.close()
        runtime.close()


def test_lookahead_must_be_positive():
    with pytest.raises(EngineError, match="lookahead"):
        ParallelClusterRuntime(
            _config(shards=2), workers=2, lookahead_us=0.0
        )


def test_overstated_lookahead_fails_loudly_not_silently():
    # A floor far above the real commit latency must raise the
    # certificate error on the first remote write, never diverge.
    runtime = ParallelClusterRuntime(
        _config(shards=2), workers=2, lookahead_us=1e6
    )
    try:
        runtime.create_table("t")
        with pytest.raises(EngineError, match="lookahead certificate"):
            runtime.insert(0.0, "t", 1, b"v" * 32)
    finally:
        runtime.close()


# -- golden equality: basic read/write/delete -------------------------------

def _crud_trace(runtime):
    engine = runtime.engine
    runtime.create_table("t")
    trace = []
    for key in range(24):
        result = runtime.insert(
            engine.now_us, "t", key, bytes([key]) * (50 + key)
        )
        trace.append(("insert", key, result.done_us))
    for key in range(0, 24, 3):
        result = runtime.select(engine.now_us, "t", key)
        trace.append(("select", key, result.done_us, result.value))
    runtime.delete(engine.now_us, "t", 5)
    trace.append(("now", engine.now_us, engine._seq))
    trace.append(("ckpt", runtime.checkpoint(engine.now_us)))
    return trace


def test_crud_trace_matches_serial():
    serial = _fresh(1, shards=3, chunk_keys=4)
    expected = _crud_trace(serial)
    for workers in (2, 3):
        runtime = _fresh(workers, shards=3, chunk_keys=4)
        try:
            assert _crud_trace(runtime) == expected
            assert runtime.engine._seq == serial.engine._seq
        finally:
            runtime.close()


def test_per_shard_metric_registries_match_serial():
    serial = _fresh(1, shards=3, chunk_keys=4)
    _crud_trace(serial)
    runtime = _fresh(2, shards=3, chunk_keys=4)
    try:
        _crud_trace(runtime)
        assert runtime.store_metrics_states() == serial.store_metrics_states()
    finally:
        runtime.close()


# -- golden equality: cross-worker live migration (ISSUE satellite) ---------

def _migration_run(runtime):
    """The concurrent-writers migration schedule from test_runtime.py,
    instrumented: returns everything the ISSUE pins — dirty-journal
    catch-up rounds, cutover completion time, moved/caught-up pages —
    plus the full migration event stream."""
    engine = runtime.engine
    runtime.create_table("t")
    expected = {}
    for key in range(16):
        value = bytes([key]) * 200
        runtime.insert(engine.now_us, "t", key, value)
        expected[("t", key)] = value
    chunk = next(iter(runtime.chunks.values()))
    target_id = 1 - chunk.shard_id

    def writer():
        for i in range(30):
            key = i % 16
            value = bytes([(key + 100) % 256]) * 150
            yield from runtime.insert_proc("t", key, value)
            expected[("t", key)] = value
            yield Timeout(3.0)

    procs = [
        engine.spawn(writer()),
        engine.spawn(runtime.migrate_chunk_proc(chunk.chunk_id, target_id)),
    ]
    engine.run_until_complete(procs)
    assert chunk.shard_id == target_id
    assert chunk.state is ChunkState.SERVING
    assert runtime.verify_readable(expected) == len(expected)
    recorder = obs_events.recorder_active()
    migration_events = [
        (event.t_us, event.kind, dict(event.fields))
        for event in recorder.events(channel="migration")
    ]
    return {
        "copied": procs[1].value,
        "done_us": engine.now_us,
        "seq": engine._seq,
        "catchup_pages": runtime.metrics.counter(
            "cluster.migration.catchup_pages"
        ).value,
        "migration_events": migration_events,
    }


def _migration_summary(workers):
    runtime = _fresh(workers, shards=2, chunk_keys=16)
    obs_events.activate(obs_events.FlightRecorder(capacity=16384))
    try:
        return _migration_run(runtime)
    finally:
        obs_events.deactivate()
        runtime.close()


def test_cross_worker_migration_matches_serial():
    # shards=2, workers=2 pins shard 0 to worker 0 and shard 1 to
    # worker 1, so every migrated page crosses a process boundary: the
    # source read and the target write execute in different workers.
    serial = _migration_summary(1)
    # The schedule really exercised the dirty journal: writers landed
    # pages during the bulk copy, so catch-up rounds replayed deltas.
    assert serial["catchup_pages"] > 0
    rounds = [
        fields["rounds"]
        for _t, kind, fields in serial["migration_events"]
        if kind == "catchup_done"
    ]
    assert rounds and rounds[0] >= 1
    parallel = _migration_summary(2)
    assert parallel == serial
