"""The compaction scheduler: daemons, token throttle, debt visibility."""

import random

from repro.api import ReproConfig, build_store
from repro.common.units import DB_PAGE_SIZE
from repro.engine import Engine
from repro.obs.events import recording
from repro.storage.background import start_background
from repro.storage.compaction import CompactionScheduler
from repro.storage.redo import RedoRecord


def make_page(seed=0):
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += b"row|%08d|" % rng.randrange(10**8)
    return bytes(out[:DB_PAGE_SIZE])


def leveled_store(tokens=0):
    return build_store(ReproConfig.from_dict({
        "store": {
            "volume_bytes": 64 * 1024 * 1024,
            "node": {"redo_cache_bytes": 4 * 1024},
        },
        "consolidation": {
            "policy": "leveled",
            "l0_limit": 2,
            "base_level_bytes": 16 * 1024,
            "consolidate_period_us": 1_000.0,
            "compaction_tokens": tokens,
        },
    }))


def run_scenario(store, steps=30):
    """Seed pages, spill redo under a tiny cache, let the daemons work."""
    now = 0.0
    for page in range(4):
        now = store.write_page(now, page, make_page(page)).commit_us
    engine = Engine(start_us=now)
    store.bind_engine(engine)
    procs = start_background(store, engine, scrub_period_us=None)
    rng = random.Random(7)

    def writer():
        for step in range(steps):
            yield engine.timeout(400.0)
            page = step % 4
            store.write_redo(
                engine.now_us,
                [RedoRecord(100 + step, page, (step * 64) % 15000,
                            rng.randbytes(700))],
            )

    engine.run_until_complete([engine.spawn(writer())])
    # Let the scheduler catch up on the tail of the workload.
    engine.run_until_idle(limit_us=engine.now_us + 10_000.0)
    for proc in procs:
        proc.cancel()
    return engine


def test_scheduler_runs_policy_tasks_via_config_tree():
    """ReproConfig -> factory -> store -> node -> policy -> scheduler."""
    store = leveled_store()
    assert store.consolidation.policy == "leveled"
    assert store.leader.log_store.name == "leveled"
    run_scenario(store)
    tasks = store.metrics.get("storage.compaction.tasks")
    assert tasks is not None and tasks.value >= 1
    # The scheduler kept L0 at or below its trigger on every node.
    for node in store.nodes:
        assert len(node.log_store._groups[0]) <= store.consolidation.l0_limit


def test_token_throttle_builds_visible_compaction_debt():
    free = leveled_store(tokens=0)
    run_scenario(free)
    throttled = leveled_store(tokens=1)
    run_scenario(throttled)
    deferred = throttled.metrics.get("storage.compaction.deferred")
    assert deferred is not None and deferred.value >= 1
    assert free.metrics.get("storage.compaction.deferred") is None
    # Debt shows up where it hurts: foreground reads of a spilled page
    # fan out across more un-compacted runs, so they finish later.
    free_read = free.read_page(1e9, 1)
    throttled_read = throttled.read_page(1e9, 1)
    assert throttled_read.io_reads >= free_read.io_reads
    assert throttled_read.done_us >= free_read.done_us


def test_compaction_events_on_flight_recorder():
    store = leveled_store()
    with recording() as recorder:
        run_scenario(store)
    events = recorder.events(channel="compaction")
    assert events
    kinds = {e.kind for e in events}
    assert "task" in kinds
    sample = [e for e in events if e.kind == "task"][0]
    assert sample.fields["reason"] in ("l0-runs", "level-bytes")
    assert "node" in sample.fields


def test_single_level_scheduler_keeps_legacy_counter_only():
    """Default policy: the scheduler is the old consolidator loop —
    same counter, no compaction instruments."""
    store = build_store(ReproConfig.from_dict({
        "store": {"node": {"redo_cache_bytes": 4 * 1024}},
        "consolidation": {"consolidate_period_us": 1_000.0},
    }))
    run_scenario(store, steps=10)
    assert store.metrics.get("storage.background.consolidate_cycles").value >= 1
    assert store.metrics.get("storage.compaction.tasks") is None
    assert store.metrics.get("storage.compaction.deferred") is None


def test_scheduler_drain_is_synchronous():
    store = leveled_store()
    node = store.leader
    now = 0.0
    for rnd in range(4):
        now = node.log_store.evict(
            now,
            [RedoRecord(1 + rnd * 10 + p, p, 0, b"z" * 300) for p in range(3)],
        )
    assert node.log_store.plan_compactions()
    scheduler = CompactionScheduler(store, Engine(), tokens_per_cycle=0)
    done = scheduler.drain(node, now)
    assert done >= now
    assert node.log_store.plan_compactions() == []
