"""Object-storage tiering (§6 alternative space-saving approaches)."""

import random

import pytest

from repro.common.errors import ReproError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.storage.node import NodeConfig
from repro.storage.store import build_node
from repro.storage.tiering import ObjectStore, TieringManager


def make_page(seed=0):
    rng = random.Random(seed)
    words = [b"cold", b"archive", b"2025-01-01", b"history", b"ledger"]
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += rng.choice(words) + b":%07d;" % rng.randrange(10**7)
    return bytes(out[:DB_PAGE_SIZE])


@pytest.fixture
def tiered():
    node = build_node("tier", NodeConfig(), volume_bytes=64 * MiB)
    manager = TieringManager(node, ObjectStore())
    pages = {i: make_page(i) for i in range(12)}
    now = 0.0
    for page_no, page in pages.items():
        now = node.write_page(now, page_no, page).done_us
    return node, manager, pages, now


def test_archive_frees_local_space(tiered):
    node, manager, pages, now = tiered
    local_before = node.device_used_bytes
    archived, now = manager.archive_to_object_store(now, list(range(6)))
    assert node.device_used_bytes < local_before
    assert manager.archived_pages == 6
    assert archived.compressed_len < 6 * DB_PAGE_SIZE
    assert manager.remote.stored_bytes == archived.compressed_len
    # Local index no longer knows the archived pages.
    assert node.index.get(0) is None
    assert node.index.get(6) is not None


def test_archived_reads_are_correct_but_slow(tiered):
    node, manager, pages, now = tiered
    _, now = manager.archive_to_object_store(now, list(range(6)))
    local = manager.read_page(now, 7)
    remote = manager.read_page(local.done_us, 2)
    assert local.data == pages[7]
    assert remote.data == pages[2]
    # Object storage is orders of magnitude slower than local NVMe.
    assert (remote.done_us - local.done_us) > 10 * (local.done_us - now)


def test_restore_brings_pages_back(tiered):
    node, manager, pages, now = tiered
    _, now = manager.archive_to_object_store(now, [0, 1, 2])
    now = manager.restore(now, 1)
    assert manager.archived_pages == 0
    assert manager.remote.stored_bytes == 0
    for page_no in (0, 1, 2):
        result = node.read_page(now, page_no)
        assert result.data == pages[page_no]


def test_double_archive_rejected(tiered):
    node, manager, pages, now = tiered
    _, now = manager.archive_to_object_store(now, [0, 1])
    with pytest.raises(ReproError):
        manager.archive_to_object_store(now, [1, 2])
    with pytest.raises(ReproError):
        manager.archive_to_object_store(now, [])


def test_restore_of_unarchived_page_rejected(tiered):
    node, manager, pages, now = tiered
    with pytest.raises(ReproError):
        manager.restore(now, 5)


def test_object_store_latency_model():
    store = ObjectStore(request_overhead_us=15_000.0)
    done = store.put(0.0, "k", b"x" * 1024)
    assert done > 1_000.0  # dominated by request overhead
    blob, got = store.get(done, "k")
    assert blob == b"x" * 1024
    with pytest.raises(ReproError):
        store.get(got, "missing")


def test_object_store_accounting():
    store = ObjectStore()
    store.put(0.0, "a", b"x" * 100)
    store.put(0.0, "b", b"y" * 50)
    assert store.stored_bytes == 150
    store.delete("a")
    assert store.stored_bytes == 50
    store.delete("a")  # idempotent
    assert store.stats.puts == 2
