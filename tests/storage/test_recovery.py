"""Crash recovery: rebuild node state from WAL replay + durable redo."""

import random

import pytest

from repro.common.errors import WALError
from repro.common.units import DB_PAGE_SIZE, KiB, MiB
from repro.storage.index import CompressionInfo
from repro.storage.node import NodeConfig
from repro.storage.recovery import recover_node
from repro.storage.redo import RedoRecord
from repro.storage.store import build_node


def make_page(seed=0):
    rng = random.Random(seed)
    words = [b"ledger", b"entry", b"account", b"2026-07-04", b"credit"]
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += rng.choice(words) + b"|%08d|" % rng.randrange(10**8)
    return bytes(out[:DB_PAGE_SIZE])


def crash_and_recover(node):
    """Simulate a crash: all in-memory state is lost, devices survive."""
    return recover_node(node)


def test_recovery_restores_pages():
    node = build_node("r1", NodeConfig(), volume_bytes=64 * MiB)
    pages = {i: make_page(i) for i in range(10)}
    now = 0.0
    for page_no, page in pages.items():
        now = node.write_page(now, page_no, page).done_us
    recovered = crash_and_recover(node)
    for page_no, page in pages.items():
        assert recovered.read_page(now, page_no).data == page
    assert len(recovered.index) == len(pages)


def test_recovery_restores_index_metadata():
    node = build_node("r2", NodeConfig(), volume_bytes=64 * MiB)
    node.write_page(0.0, 1, make_page(1))
    before = node.index.get(1)
    recovered = crash_and_recover(node)
    after = recovered.index.get(1)
    assert after.status is before.status
    assert after.algorithm == before.algorithm
    assert after.lba == before.lba
    assert after.n_blocks == before.n_blocks
    assert after.payload_len == before.payload_len


def test_recovery_restores_allocator_exactly():
    node = build_node("r3", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(20):
        now = node.write_page(now, i, make_page(i)).done_us
    # Overwrites create frees in the WAL too.
    for i in range(0, 20, 3):
        now = node.write_page(now, i, make_page(i + 100)).done_us
    used_before = node.space.used_bytes
    recovered = crash_and_recover(node)
    assert recovered.space.used_bytes == used_before
    # New writes after recovery must not collide with existing data.
    now = recovered.write_page(now, 999, make_page(999)).done_us
    for i in range(20):
        expected = make_page(i + 100) if i % 3 == 0 else make_page(i)
        assert recovered.read_page(now, i).data == expected


def test_recovery_survives_overwrite_chains():
    node = build_node("r4", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for round_no in range(6):
        now = node.write_page(now, 1, make_page(round_no)).done_us
    recovered = crash_and_recover(node)
    assert recovered.read_page(now, 1).data == make_page(5)


def test_recovery_replays_unconsolidated_redo():
    """Redo that was committed but not yet folded into a page must survive
    the crash (it is durable on the performance device)."""
    node = build_node("r5", NodeConfig(), volume_bytes=64 * MiB)
    base = make_page(1)
    now = node.write_page(0.0, 1, base).done_us
    records = [RedoRecord(100 + i, 1, i * 50, b"CRASHSAFE") for i in range(4)]
    from repro.storage.redo import encode_records

    now = node.persist_redo(now, encode_records(records))
    node.add_redo(now, records)

    recovered = crash_and_recover(node)
    result = recovered.read_page(now, 1)
    assert result.consolidated
    expected = bytearray(base)
    for record in records:
        expected[record.offset : record.offset + len(record.data)] = record.data
    assert result.data == bytes(expected)


def test_recovery_does_not_reapply_consolidated_redo():
    """applied_lsn gates replay: redo folded into the page before the
    crash must not be applied twice (records are not idempotent across
    later writes)."""
    node = build_node("r6", NodeConfig(), volume_bytes=64 * MiB)
    base = make_page(2)
    now = node.write_page(0.0, 1, base).done_us
    from repro.storage.redo import encode_records

    old = [RedoRecord(10, 1, 0, b"OLDOLD")]
    now = node.persist_redo(now, encode_records(old))
    node.add_redo(now, old)
    now = node.read_page(now, 1).done_us  # consolidates, applied_lsn=10
    # The page is then legitimately overwritten with fresh content.
    fresh = make_page(3)
    now = node.write_page(now, 1, fresh).done_us

    recovered = crash_and_recover(node)
    result = recovered.read_page(now, 1)
    assert not result.consolidated  # nothing left to replay
    assert result.data == fresh


def test_recovery_restores_heavy_segments():
    node = build_node("r7", NodeConfig(), volume_bytes=64 * MiB)
    pages = {i: make_page(i + 50) for i in range(6)}
    now = 0.0
    for page_no, page in pages.items():
        now = node.write_page(now, page_no, page).done_us
    now = node.archive_range(now, list(pages))
    recovered = crash_and_recover(node)
    for page_no, page in pages.items():
        assert recovered.read_page(now, page_no).data == page
    assert recovered.index.get(0).status is CompressionInfo.HEAVY
    assert recovered.heavy.segment_count == 1


def test_recovery_restores_segment_allocations():
    """Heavy-segment blocks must be re-marked allocated after recovery, or
    new writes would overwrite archived data."""
    node = build_node("r10", NodeConfig(), volume_bytes=64 * MiB)
    pages = {i: make_page(i) for i in range(6)}
    now = 0.0
    for page_no, page in pages.items():
        now = node.write_page(now, page_no, page).done_us
    now = node.archive_range(now, list(pages))
    used_before = node.space.used_bytes
    recovered = crash_and_recover(node)
    assert recovered.space.used_bytes == used_before
    # Heavy traffic after recovery must not clobber the segment.
    for i in range(100, 140):
        now = recovered.write_page(now, i, make_page(i)).done_us
    for page_no, page in pages.items():
        assert recovered.read_page(now, page_no).data == page


def test_segment_released_when_last_page_overwritten():
    node = build_node("r11", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(4):
        now = node.write_page(now, i, make_page(i)).done_us
    now = node.archive_range(now, [0, 1, 2, 3])
    assert node.heavy.segment_count == 1
    used_archived = node.space.used_bytes
    # Overwriting three pages keeps the segment (page 3 still needs it)...
    for i in range(3):
        now = node.write_page(now, i, make_page(i + 50)).done_us
    assert node.heavy.segment_count == 1
    # ...but the last reference releases it.
    now = node.write_page(now, 3, make_page(53)).done_us
    assert node.heavy.segment_count == 0
    assert node.space.used_bytes < used_archived + 4 * DB_PAGE_SIZE


def test_recovery_detects_corrupt_wal():
    node = build_node("r8", NodeConfig(), volume_bytes=64 * MiB)
    node.write_page(0.0, 1, make_page(1))
    node.wal.corrupt_record(0)
    with pytest.raises(WALError):
        crash_and_recover(node)


def test_checkpoint_truncates_wal_and_recovery_still_works():
    from repro.storage.recovery import take_checkpoint

    node = build_node("cp1", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(12):
        now = node.write_page(now, i, make_page(i)).done_us
    records_before = node.wal.record_count
    take_checkpoint(node)
    assert node.wal.record_count < records_before
    # Post-checkpoint traffic layers on top of the snapshot.
    for i in range(12, 18):
        now = node.write_page(now, i, make_page(i)).done_us
    recovered = crash_and_recover(node)
    for i in range(18):
        assert recovered.read_page(now, i).data == make_page(i)
    assert recovered.space.used_bytes == node.space.used_bytes


def test_checkpoint_covers_heavy_segments():
    from repro.storage.recovery import take_checkpoint

    node = build_node("cp2", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    pages = {i: make_page(i + 30) for i in range(6)}
    for page_no, page in pages.items():
        now = node.write_page(now, page_no, page).done_us
    now = node.archive_range(now, list(pages))
    take_checkpoint(node)
    recovered = crash_and_recover(node)
    assert recovered.heavy.segment_count == 1
    for page_no, page in pages.items():
        assert recovered.read_page(now, page_no).data == page


def test_repeated_checkpoints_keep_wal_bounded():
    from repro.storage.recovery import take_checkpoint

    node = build_node("cp3", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    sizes = []
    for round_no in range(4):
        for i in range(8):
            now = node.write_page(now, i, make_page(round_no * 8 + i)).done_us
        take_checkpoint(node)
        sizes.append(node.wal.record_count)
    # The WAL does not grow across rounds of equal work + checkpoint.
    assert max(sizes) <= sizes[0] + 1
    recovered = crash_and_recover(node)
    for i in range(8):
        assert recovered.read_page(now, i).data == make_page(24 + i)


def test_recovered_node_accepts_new_traffic():
    node = build_node("r9", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(5):
        now = node.write_page(now, i, make_page(i)).done_us
    recovered = crash_and_recover(node)
    # A second crash after more writes also recovers cleanly.
    for i in range(5, 10):
        now = recovered.write_page(now, i, make_page(i)).done_us
    twice = crash_and_recover(recovered)
    for i in range(10):
        assert twice.read_page(now, i).data == make_page(i)


# -- torn WAL tails (crash mid-append) -----------------------------------------


def test_recovery_ignores_torn_wal_tail():
    """A record cut short mid-append was never acknowledged: replay stops
    there and every earlier write survives."""
    node = build_node("tt1", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(6):
        now = node.write_page(now, i, make_page(i)).done_us
    node.wal.tear_tail(3)
    recovered = crash_and_recover(node)
    # Pages 0..4 committed long before the torn record; page 5's final
    # WAL record may be the torn one, so no claim is made about it.
    for i in range(5):
        assert recovered.read_page(now, i).data == make_page(i)


def test_torn_tail_replay_is_idempotent():
    """Recovering twice from the same torn log converges to one state."""
    node = build_node("tt2", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(8):
        now = node.write_page(now, i, make_page(i + 40)).done_us
    node.wal.tear_tail(5)
    once = crash_and_recover(node)
    twice = crash_and_recover(once)
    assert len(once.index) == len(twice.index)
    for i in range(7):
        assert once.read_page(now, i).data == make_page(i + 40)
        assert twice.read_page(now, i).data == make_page(i + 40)


def test_checkpoint_round_trip_with_torn_tail():
    """Checkpoint snapshot + WAL suffix + torn tail: the snapshot and all
    fully-appended post-checkpoint records replay; the tail is dropped."""
    from repro.storage.recovery import take_checkpoint

    node = build_node("tt3", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(10):
        now = node.write_page(now, i, make_page(i)).done_us
    take_checkpoint(node)
    for i in range(10, 14):
        now = node.write_page(now, i, make_page(i)).done_us
    node.wal.tear_tail(4)
    recovered = crash_and_recover(node)
    for i in range(13):
        assert recovered.read_page(now, i).data == make_page(i)


def test_truncated_committed_record_raises():
    """Truncation is tolerated only at the tail: the same damage on a
    record that has successors means committed data was lost."""
    node = build_node("tt4", NodeConfig(), volume_bytes=64 * MiB)
    now = node.write_page(0.0, 1, make_page(1)).done_us
    node.wal.tear_tail(2)
    # A later append demotes the torn record to "committed" territory.
    node.write_page(now, 2, make_page(2))
    with pytest.raises(WALError):
        crash_and_recover(node)


def test_corrupt_committed_record_raises_after_checkpoint():
    """Bit rot inside the retained WAL suffix must fail loudly, not be
    silently skipped like a torn tail."""
    from repro.storage.recovery import take_checkpoint

    node = build_node("tt5", NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for i in range(4):
        now = node.write_page(now, i, make_page(i)).done_us
    take_checkpoint(node)
    for i in range(4, 8):
        now = node.write_page(now, i, make_page(i)).done_us
    node.wal.corrupt_record(node.wal.record_count - 2)
    with pytest.raises(WALError):
        crash_and_recover(node)
