"""Leader failover on the volume: crash, election, rejoin, repair."""

import pytest

from repro.common.errors import RaftError, ReproError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.consensus import RaftGroup, RaftState
from repro.engine import Engine
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


def make_records(n, lsn0=1, page_no=2):
    return [
        RedoRecord(lsn0 + i, page_no, 64 * i, b"f" * 80) for i in range(n)
    ]


def make_stack(seed=13):
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=seed)
    now = 0.0
    for p in range(8):
        now = store.write_page(
            now, p, bytes([p + 1]) * DB_PAGE_SIZE
        ).commit_us
    engine = Engine(start_us=now)
    group = RaftGroup(engine, 3, seed=seed, metrics=store.metrics).start()
    store.bind_engine(engine)
    store.attach_consensus(group)
    engine.run_until_idle(limit_us=engine.now_us + 40_000.0)
    assert group.leader_id is not None
    return store, engine, group


def test_leader_failover_requires_consensus():
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=13)
    with pytest.raises(ReproError, match="consensus"):
        store.fail_node(0)


def test_store_leadership_tracks_the_elected_node():
    store, engine, group = make_stack()
    assert store.leader_index == group.leader_id
    assert store.leader is store.nodes[group.leader_id]


def test_leader_crash_elects_successor_and_commits_resume():
    store, engine, group = make_stack()
    old = store.leader_index
    store.fail_node(old)
    # The pipeline's retry deadline (60 ms) dwarfs the 8-16 ms election
    # timeout, so one submission rides through the whole failover.
    commit = engine.run(store.write_redo_proc(make_records(3)))
    assert commit > 0.0
    assert store.leader_index != old
    assert store.leader_index == group.leader_id
    assert store.metrics.counter("raft.retries").value >= 1
    assert store.metrics.counter("storage.leader_changes").value >= 1


def test_crashed_leader_rejoins_as_repairing_follower():
    store, engine, group = make_stack()
    old = store.leader_index
    store.fail_node(old)
    engine.run_until_idle(limit_us=engine.now_us + 40_000.0)
    engine.run(store.write_redo_proc(make_records(2, lsn0=50)))
    store.recover_node(old, engine.now_us)
    node = group.nodes[old]
    assert node.alive
    assert node.state is RaftState.FOLLOWER
    assert node.repairing  # not serving until its log is proven current
    engine.run_until_idle(limit_us=engine.now_us + 30_000.0)
    assert not node.repairing
    assert node.commit_index >= len(group.committed) - 1
    assert group.tracker.violations == []


def test_reads_reroute_around_a_dead_leader():
    store, engine, group = make_stack()
    old = store.leader_index
    store.fail_node(old)
    result = store.read_page(engine.now_us, 3)
    assert result.data == bytes([4]) * DB_PAGE_SIZE
    engine.run_until_idle(limit_us=engine.now_us + 40_000.0)
    store.recover_node(old, engine.now_us)
    end = store.resync_missed(engine.now_us)
    assert end >= engine.now_us


def test_double_failover_keeps_acked_commits_durable():
    store, engine, group = make_stack(seed=29)
    acked = []
    for round_no in range(2):
        lead = store.leader_index
        store.fail_node(lead)
        commit = engine.run(
            store.write_redo_proc(make_records(2, lsn0=100 * (round_no + 1)))
        )
        acked.append(commit)
        engine.run_until_idle(limit_us=engine.now_us + 30_000.0)
        store.recover_node(lead, engine.now_us)
        engine.run_until_idle(limit_us=engine.now_us + 30_000.0)
    assert acked == sorted(acked)
    assert group.tracker.one_leader_per_term() == []
    assert group.tracker.fenced_commit_nothing() == []
    # Quorum durability of every acked batch.
    holders = sum(1 for n in store.nodes if n.durable_redo_blobs)
    assert holders >= store.quorum
