"""§6 alternatives: Reed-Solomon erasure coding and page dedup."""

import dataclasses
import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.csd.device import PlainSSD
from repro.csd.specs import P5510
from repro.storage.dedup import DedupIndex, dedup_ratio_of
from repro.storage.erasure import ECVolume, ReedSolomon, gf_inv, gf_mul, gf_pow
from repro.workloads.datagen import dataset_pages

# --------------------------------------------------------------------- #
# GF(256)                                                                 #
# --------------------------------------------------------------------- #


def test_gf_field_axioms_spot_checks():
    rng = random.Random(0)
    for _ in range(200):
        a, b, c = rng.randrange(1, 256), rng.randrange(1, 256), rng.randrange(256)
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_mul(a, b) == gf_mul(b, a)
        # Distributivity over XOR (field addition).
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)
    assert gf_mul(0, 17) == 0
    assert gf_pow(3, 0) == 1
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


# --------------------------------------------------------------------- #
# Reed-Solomon                                                            #
# --------------------------------------------------------------------- #


def test_encode_is_systematic():
    rs = ReedSolomon(4, 2)
    data = bytes(range(256)) * 16
    shards = rs.encode(data)
    assert len(shards) == 6
    assert b"".join(shards[:4])[: len(data)] == data


def test_decode_from_every_erasure_pattern():
    """RS(4,2) must survive *any* two erasures — exhaustively."""
    rs = ReedSolomon(4, 2)
    data = random.Random(1).randbytes(4096)
    shards = rs.encode(data)
    for gone in itertools.combinations(range(6), 2):
        holey = [
            None if i in gone else shards[i] for i in range(6)
        ]
        assert rs.decode(holey, len(data)) == data


def test_decode_fails_beyond_m_erasures():
    rs = ReedSolomon(4, 2)
    shards = rs.encode(b"x" * 1000)
    holey = [None, None, None] + list(shards[3:])
    with pytest.raises(ReproError):
        rs.decode(holey, 1000)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ReedSolomon(0, 2)
    with pytest.raises(ValueError):
        ReedSolomon(200, 100)
    rs = ReedSolomon(2, 1)
    with pytest.raises(ValueError):
        rs.decode([b"x"], 1)


@given(
    st.binary(min_size=1, max_size=2000),
    st.integers(2, 6),
    st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_rs_round_trip_random(data, k, m):
    rs = ReedSolomon(k, m)
    shards = rs.encode(data)
    rng = random.Random(len(data))
    gone = rng.sample(range(k + m), m)
    holey = [None if i in gone else s for i, s in enumerate(shards)]
    assert rs.decode(holey, len(data)) == data


# --------------------------------------------------------------------- #
# EC volume                                                               #
# --------------------------------------------------------------------- #


def _devices(count):
    spec = dataclasses.replace(
        P5510, logical_capacity=32 * MiB, physical_capacity=32 * MiB,
        jitter_sigma=0.0,
    )
    return [PlainSSD(spec, seed=i) for i in range(count)]


def test_ec_volume_round_trip_and_overhead():
    volume = ECVolume(_devices(6), k=4, m=2)
    page = dataset_pages("finance", 1, seed=0)[0]
    done = volume.write_page(0.0, 1, page)
    data, _ = volume.read_page(done, 1)
    assert data == page
    # 1.5x overhead vs 3x for the replication the paper uses.
    assert volume.storage_overhead == pytest.approx(1.5)


def test_ec_volume_survives_two_failures():
    volume = ECVolume(_devices(6), k=4, m=2)
    pages = {i: dataset_pages("wiki", 1, seed=i)[0] for i in range(4)}
    now = 0.0
    for page_no, page in pages.items():
        now = volume.write_page(now, page_no, page)
    volume.fail_device(0)
    volume.fail_device(4)  # one data + one parity
    for page_no, page in pages.items():
        data, now = volume.read_page(now, page_no)
        assert data == page


def test_ec_volume_fails_beyond_tolerance():
    volume = ECVolume(_devices(6), k=4, m=2)
    volume.write_page(0.0, 1, bytes(DB_PAGE_SIZE))
    for index in (0, 1, 2):
        volume.fail_device(index)
    with pytest.raises(ReproError):
        volume.read_page(1.0, 1)
    volume.recover_device(0)
    data, _ = volume.read_page(2.0, 1)
    assert data == bytes(DB_PAGE_SIZE)


def test_ec_volume_validates_device_count():
    with pytest.raises(ValueError):
        ECVolume(_devices(5), k=4, m=2)


# --------------------------------------------------------------------- #
# Dedup (the paper's negative result)                                     #
# --------------------------------------------------------------------- #


def test_db_pages_barely_dedup():
    """§6: record-level storage makes exact page matches rare — the dedup
    ratio over live database pages is ~1.0."""
    pages = []
    for name in ("finance", "fnb", "wiki"):
        pages.extend(dataset_pages(name, 8, seed=4))
    assert dedup_ratio_of(pages) < 1.05


def test_backup_streams_dedup_heavily():
    base = dataset_pages("finance", 8, seed=4)
    three_full_backups = base * 3
    assert dedup_ratio_of(three_full_backups) == pytest.approx(3.0)


def test_dedup_index_refcounting():
    index = DedupIndex()
    page_a = b"a" * DB_PAGE_SIZE
    page_b = b"b" * DB_PAGE_SIZE
    assert not index.write(1, page_a)
    assert index.write(2, page_a)      # duplicate
    assert not index.write(3, page_b)
    assert index.stats.unique_pages == 2
    assert index.stats.logical_pages == 3
    index.remove(2)
    assert index.stats.unique_pages == 2  # page_a still referenced by 1
    index.remove(1)
    assert index.stats.unique_pages == 1
    # Overwrite changes the fingerprint.
    index.write(3, page_a)
    assert index.stats.unique_pages == 1
    assert index.stats.dedup_ratio == 1.0
