"""The pluggable consolidation-policy family (single/leveled/tiered)."""

import dataclasses
import random

import pytest

from repro.common.errors import ReproError
from repro.common.units import LBA_SIZE, MiB
from repro.csd.device import PolarCSD
from repro.csd.specs import POLARCSD2
from repro.storage.allocator import SpaceManager
from repro.storage.consolidation import (
    POLICIES,
    ConsolidationConfig,
    LeveledPolicy,
    SingleLevelPolicy,
    TieredPolicy,
    make_policy,
)
from repro.storage.node import NodeConfig
from repro.storage.perpage_log import (
    LOG_BLOCK_CAPACITY,
    PerPageLogStore,
    ScatteredLogStore,
)
from repro.storage.redo import RedoRecord


def make_device(seed=0):
    spec = dataclasses.replace(
        POLARCSD2,
        logical_capacity=64 * MiB,
        physical_capacity=32 * MiB,
        jitter_sigma=0.0,
    )
    return PolarCSD(spec, seed=seed, block_capacity=1 * MiB)


def build(policy_name, **overrides):
    device = make_device()
    allocator = SpaceManager(64 * MiB)
    config = ConsolidationConfig(policy=policy_name, **overrides)
    policy = make_policy(config, NodeConfig(), device, allocator)
    return policy, device, allocator


def records_for(page, n, lsn0=1, size=100, seed=3):
    rng = random.Random(seed * 7919 + page)
    return [
        RedoRecord(lsn0 + i, page, (i * 128) % 15000, rng.randbytes(size))
        for i in range(n)
    ]


def drain(policy, now):
    while True:
        tasks = policy.plan_compactions()
        if not tasks:
            return now
        task = sorted(tasks, key=lambda t: (t.priority, t.level))[0]
        now = policy.compact(now, task)


# --------------------------------------------------------------------- #
# Selection                                                              #
# --------------------------------------------------------------------- #


def test_make_policy_selects_by_name():
    for name, cls in (
        ("single-level", SingleLevelPolicy),
        ("leveled", LeveledPolicy),
        ("tiered", TieredPolicy),
    ):
        policy, _, _ = build(name)
        assert isinstance(policy, cls)
        assert policy.name == name
    assert set(POLICIES) == {"single-level", "leveled", "tiered"}


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown consolidation.policy"):
        build("btree")


def test_single_level_respects_per_page_switch():
    device = make_device()
    allocator = SpaceManager(64 * MiB)
    per_page = make_policy(
        ConsolidationConfig(), NodeConfig(opt_per_page_log=True),
        device, allocator,
    )
    assert isinstance(per_page.store, PerPageLogStore)
    assert per_page.page_capacity_bytes == LOG_BLOCK_CAPACITY
    scattered = make_policy(
        ConsolidationConfig(), NodeConfig(opt_per_page_log=False),
        device, allocator,
    )
    assert isinstance(scattered.store, ScatteredLogStore)
    assert scattered.page_capacity_bytes is None


def test_config_validation():
    with pytest.raises(ValueError, match="l0_limit"):
        ConsolidationConfig(l0_limit=0).validate()
    with pytest.raises(ValueError, match="consolidate_period_us"):
        ConsolidationConfig(consolidate_period_us=0).validate()
    with pytest.raises(ValueError, match="compaction_tokens"):
        ConsolidationConfig(compaction_tokens=-1).validate()


# --------------------------------------------------------------------- #
# Single-level: transparent wrapper                                      #
# --------------------------------------------------------------------- #


def test_single_level_matches_raw_store_byte_for_byte():
    """The wrapper adds nothing: same bytes, same times, same layout."""
    policy, _, _ = build("single-level")
    raw = PerPageLogStore(make_device(), SpaceManager(64 * MiB))
    now_p, now_r = 0.0, 0.0
    for page in (3, 7):
        recs = records_for(page, 5)
        now_p = policy.evict(now_p, recs)
        now_r = raw.evict(now_r, recs)
    assert now_p == now_r
    for page in (3, 7, 99):
        got_p = policy.fetch(now_p, page)
        got_r = raw.fetch(now_r, page)
        assert got_p.records == got_r.records
        assert got_p.reads_issued == got_r.reads_issued
        assert got_p.done_us - now_p == got_r.done_us - now_r
        assert policy.blocks_for(page) == raw.blocks_for(page)
        assert policy.stored_bytes_for(page) == raw.stored_bytes_for(page)
    assert policy.allocated_blocks == raw.allocated_blocks
    assert policy.plan_compactions() == []
    with pytest.raises(ReproError):
        policy.compact(0.0, None)


# --------------------------------------------------------------------- #
# Run-based policies: round-trip + compaction mechanics                  #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", ["leveled", "tiered"])
def test_run_policy_round_trips_records(name):
    policy, _, _ = build(name)
    now = 0.0
    expect = {}
    for rnd in range(3):
        batch = []
        for page in range(6):
            recs = records_for(page, 2, lsn0=1 + rnd * 10 + page * 100)
            expect.setdefault(page, []).extend(recs)
            batch.extend(recs)
        now = policy.evict(now, batch)
    for page in range(6):
        got = policy.fetch(now, page)
        assert got.records == sorted(expect[page])
        assert got.reads_issued >= 1
        now = got.done_us
    assert sorted(policy.pages_with_logs()) == list(range(6))


def test_leveled_l0_merge_reduces_read_fanout():
    policy, _, _ = build("leveled", l0_limit=2)
    now = 0.0
    for rnd in range(4):
        now = policy.evict(
            now, [r for p in range(8) for r in records_for(p, 1, lsn0=1 + rnd)]
        )
    assert len(policy._groups[0]) > policy.config.l0_limit
    before = policy.fetch(now, 0)
    tasks = policy.plan_compactions()
    assert tasks and tasks[0].reason == "l0-runs"
    now = drain(policy, before.done_us)
    assert len(policy._groups[0]) == 0
    after = policy.fetch(now, 0)
    assert after.reads_issued < before.reads_issued
    assert after.records == before.records
    assert policy.compactions >= 1


def test_leveled_cascade_on_level_bytes():
    policy, _, _ = build(
        "leveled", l0_limit=1, base_level_bytes=8 * 1024, level_ratio=4
    )
    now = 0.0
    for rnd in range(12):
        now = policy.evict(
            now,
            [r for p in range(4) for r in records_for(p, 2, lsn0=1 + rnd * 50,
                                                      size=400)],
        )
        now = drain(policy, now)
    # Data cascaded past L1: its live bytes respect the geometric budget.
    l1_bytes = sum(run.live_bytes for run in policy._groups[1])
    assert l1_bytes <= 8 * 1024
    assert any(policy._groups[2:])


def test_tiered_fanout_merges_into_next_tier():
    policy, _, _ = build("tiered", tier_fanout=3)
    now = 0.0
    for rnd in range(3):
        now = policy.evict(now, records_for(5, 2, lsn0=1 + rnd * 10))
    tasks = policy.plan_compactions()
    assert tasks and tasks[0].reason == "tier-fanout"
    now = drain(policy, now)
    assert len(policy._groups[0]) == 0
    assert len(policy._groups[1]) == 1
    got = policy.fetch(now, 5)
    assert len(got.records) == 6


def test_discard_drops_records_and_frees_dead_runs():
    policy, device, allocator = build("leveled")
    now = policy.evict(0.0, records_for(1, 3) + records_for(2, 3))
    assert policy.allocated_blocks > 0
    policy.discard(1)
    assert policy.blocks_for(1) == 0
    assert policy.stored_bytes_for(1) == 0
    got = policy.fetch(now, 1)
    assert got.records == []
    # Page 2 survives in the same run.
    assert len(policy.fetch(now, 2).records) == 3
    policy.discard(2)
    # Every page dead -> the run's blocks are freed and trimmed.
    assert policy.allocated_blocks == 0


def test_compaction_drops_discarded_pages_from_rewrites():
    policy, _, _ = build("leveled", l0_limit=1)
    now = 0.0
    for rnd in range(3):
        now = policy.evict(
            now, records_for(1, 1, lsn0=1 + rnd) + records_for(2, 1, lsn0=50 + rnd)
        )
    policy.discard(1)
    before = policy.compaction_write_bytes
    now = drain(policy, now)
    assert policy.compaction_write_bytes > before
    assert policy.fetch(now, 1).records == []
    assert len(policy.fetch(now, 2).records) == 3
    # The rewrite carried only page 2's live bytes.
    assert policy.stored_bytes_for(1) == 0


def test_large_records_get_multi_block_chunks():
    policy, _, _ = build("leveled")
    big = RedoRecord(1, 4, 0, b"x" * (LOG_BLOCK_CAPACITY + 500))
    small = records_for(4, 1, lsn0=2)
    now = policy.evict(0.0, [big] + small)
    got = policy.fetch(now, 4)
    assert sorted(got.records) == sorted([big] + small)
    assert policy.allocated_blocks >= 3  # 2-block chunk + 1 small block
    now = drain(policy, got.done_us)
    got = policy.fetch(now, 4)
    assert sorted(got.records) == sorted([big] + small)


def test_evict_is_append_only_for_run_policies():
    """The WA story: re-evicting a page never rewrites earlier runs."""
    policy, device, _ = build("leveled", l0_limit=100)
    now = policy.evict(0.0, records_for(1, 1, size=600, seed=3))
    first = device.ftl.stats.nand_written_bytes
    now = policy.evict(now, records_for(1, 1, lsn0=10, size=600, seed=11))
    second = device.ftl.stats.nand_written_bytes - first
    # Single-level would rewrite ~2x the bytes on the second eviction.
    assert second <= first * 1.5

    single, sdevice, _ = build("single-level")
    now = single.evict(0.0, records_for(1, 1, size=600, seed=3))
    first = sdevice.ftl.stats.nand_written_bytes
    now = single.evict(now, records_for(1, 1, lsn0=10, size=600, seed=11))
    second = sdevice.ftl.stats.nand_written_bytes - first
    assert second > first  # the merged rewrite grows with history
