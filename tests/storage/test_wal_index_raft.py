"""WAL, page index, and replication-group semantics."""

import pytest

from repro.common.errors import RaftError, WALError
from repro.storage.index import CompressionInfo, IndexEntry, PageIndex
from repro.storage.raft import NetworkModel, Replica, ReplicationGroup
from repro.storage.wal import (
    WALRecordType,
    WriteAheadLog,
    decode_alloc,
    decode_index_put,
    decode_index_remove,
)

# --------------------------------------------------------------------- #
# WAL                                                                    #
# --------------------------------------------------------------------- #


def test_wal_append_and_replay_round_trip():
    wal = WriteAheadLog()
    wal.append_index_put(
        7, 100, 2, 5000, status=1, algorithm="lz4", applied_lsn=42,
    )
    wal.append_alloc(100, 2)
    wal.append_index_remove(7)
    wal.append_free(100, 2)
    records = list(wal.replay())
    assert [r.type for r in records] == [
        WALRecordType.INDEX_PUT,
        WALRecordType.ALLOC,
        WALRecordType.INDEX_REMOVE,
        WALRecordType.FREE,
    ]
    put = decode_index_put(records[0].payload)
    assert (put.page_no, put.lba, put.n_blocks, put.payload_len) == (
        7, 100, 2, 5000,
    )
    assert put.algorithm == "lz4"
    assert put.applied_lsn == 42
    assert decode_alloc(records[1].payload) == (100, 2)
    assert decode_index_remove(records[2].payload) == 7
    assert [r.lsn for r in records] == [1, 2, 3, 4]


def test_wal_segment_record_round_trip():
    from repro.storage.wal import decode_segment

    wal = WriteAheadLog()
    wal.append_segment(9, 123456, [(100, 32), (200, 8)], [5, 6, 7])
    record = next(iter(wal.replay()))
    assert record.type == WALRecordType.SEGMENT
    segment = decode_segment(record.payload)
    assert segment.segment_id == 9
    assert segment.compressed_len == 123456
    assert segment.pieces == ((100, 32), (200, 8))
    assert segment.page_nos == (5, 6, 7)


def test_wal_crc_detects_corruption():
    wal = WriteAheadLog()
    wal.append_alloc(1, 1)
    wal.corrupt_record(0)
    with pytest.raises(WALError):
        list(wal.replay())


def test_wal_truncate_below():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append_alloc(i, 1)
    dropped = wal.truncate_below(4)
    assert dropped == 3
    assert [r.lsn for r in wal.replay()] == [4, 5]
    # New appends continue the LSN sequence.
    assert wal.append_checkpoint() == 6


def test_wal_tracks_bytes():
    wal = WriteAheadLog()
    wal.append_alloc(1, 1)
    assert wal.appended_bytes > 0


# --------------------------------------------------------------------- #
# Page index                                                             #
# --------------------------------------------------------------------- #


def entry(**kwargs):
    defaults = dict(
        status=CompressionInfo.NORMAL,
        algorithm="zstd",
        lba=0,
        n_blocks=2,
        payload_len=5000,
    )
    defaults.update(kwargs)
    return IndexEntry(**defaults)


def test_index_put_get_remove():
    index = PageIndex()
    assert index.get(1) is None
    old = index.put(1, entry())
    assert old is None
    assert index.get(1).algorithm == "zstd"
    replaced = index.put(1, entry(lba=10))
    assert replaced.lba == 0
    assert index.remove(1).lba == 10
    assert 1 not in index


def test_index_entry_validation():
    with pytest.raises(ValueError):
        entry(n_blocks=0)
    with pytest.raises(ValueError):
        entry(payload_len=0)
    with pytest.raises(ValueError):
        entry(status=CompressionInfo.NORMAL, algorithm=None)
    with pytest.raises(ValueError):
        entry(status=CompressionInfo.HEAVY, segment_id=None)


def test_index_heavy_entry_carries_segment_info():
    heavy = entry(
        status=CompressionInfo.HEAVY,
        algorithm=None,
        segment_id=3,
        page_in_segment=5,
    )
    index = PageIndex()
    index.put(9, heavy)
    assert index.get(9).segment_id == 3
    assert index.stored_blocks == 0  # heavy blocks counted per segment


def test_index_logical_bytes():
    index = PageIndex()
    index.put(1, entry())
    index.put(2, entry())
    assert index.logical_bytes == 2 * 16 * 1024


# --------------------------------------------------------------------- #
# Replication                                                            #
# --------------------------------------------------------------------- #


def _persist(latency):
    return lambda start, payload: start + latency


def make_group(leader_lat=10.0, follower_lats=(12.0, 20.0), net=None):
    leader = Replica("leader", _persist(leader_lat))
    followers = [
        Replica(f"f{i}", _persist(lat)) for i, lat in enumerate(follower_lats)
    ]
    group = ReplicationGroup(
        leader, followers, net or NetworkModel(one_way_us=5.0, per_kib_us=0.0)
    )
    return group, leader, followers


def test_commit_waits_for_majority_not_all():
    group, _, _ = make_group()
    result = group.replicate(0.0, b"x" * 100)
    # Leader done at 10; follower acks at 5+12+5=22 and 5+20+5=30.
    # Quorum = 2 (leader + fastest follower) => commit at 22, not 30.
    assert result.leader_persist_us == 10.0
    assert result.commit_us == 22.0
    assert sorted(result.follower_acks_us) == [22.0, 30.0]


def test_commit_bounded_by_leader_when_leader_slow():
    group, _, _ = make_group(leader_lat=50.0)
    result = group.replicate(0.0, b"x")
    assert result.commit_us == 50.0


def test_one_follower_down_still_commits():
    group, _, followers = make_group()
    followers[0].alive = False
    result = group.replicate(0.0, b"x")
    assert result.commit_us == 30.0  # must wait for the slow follower


def test_no_quorum_raises():
    group, _, followers = make_group()
    for follower in followers:
        follower.alive = False
    with pytest.raises(RaftError):
        group.replicate(0.0, b"x")


def test_dead_leader_raises():
    group, leader, _ = make_group()
    leader.alive = False
    with pytest.raises(RaftError):
        group.replicate(0.0, b"x")


def test_payload_size_slows_replication():
    net = NetworkModel(one_way_us=5.0, per_kib_us=1.0)
    group, _, _ = make_group(net=net)
    small = group.replicate(0.0, b"x" * 1024).commit_us
    group2, _, _ = make_group(net=net)
    large = group2.replicate(0.0, b"x" * 64 * 1024).commit_us
    assert large > small


def test_group_requires_followers():
    with pytest.raises(RaftError):
        ReplicationGroup(Replica("l", _persist(1.0)), [])
