"""Pipeline retry semantics: transient quorum loss heals, fencing retries.

The legacy contract (``test_commit_pipeline``) pins the two ends:
fail-fast once the deadline exhausts, and analytic equivalence on the
untroubled path.  This file covers the middle — a commit submitted
during a transient outage must *wait out* the outage and succeed, the
``raft.retries`` counter must count the loop, and an epoch bump
mid-flight must fence the attempt and re-replicate.
"""

import pytest

from repro.common.errors import RaftError
from repro.common.units import MiB
from repro.engine import Engine
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


def make_records(n, lsn0=1):
    return [RedoRecord(lsn0 + i, 3, 64 * i, b"r" * 100) for i in range(n)]


def make_store(seed=5):
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=seed)
    engine = Engine()
    store.bind_engine(engine)
    return store, engine


def test_commit_survives_transient_quorum_loss():
    store, engine = make_store()
    store.fail_node(1)
    store.fail_node(2)

    def healer():
        yield engine.timeout(8_000.0)
        store.recover_node(1)
        store.recover_node(2)

    client = engine.spawn(store.write_redo_proc(make_records(2)))
    engine.run_until_complete([engine.spawn(healer()), client])
    assert client.error is None
    assert client.value >= 8_000.0  # waited through the outage
    assert store.metrics.counter("raft.retries").value >= 1


def test_exhausted_deadline_still_fails_fast():
    store, engine = make_store()
    store.fail_node(1)
    store.fail_node(2)
    with pytest.raises(RaftError, match="gave up"):
        engine.run(store.write_redo_proc(make_records(1)))
    assert store.metrics.counter("raft.retries").value >= 1


def test_success_path_draws_no_retries():
    store, engine = make_store()
    commit = engine.run(store.write_redo_proc(make_records(2)))
    assert commit > 0.0
    assert store.metrics.counter("raft.retries").value == 0


def test_epoch_bump_mid_flight_fences_then_retries():
    """Leadership moving while the fan-out is on the wire must fail that
    attempt (a deposed leader may not ack) and re-replicate under the
    new epoch."""
    store, engine = make_store()

    def usurper():
        yield engine.timeout(2.0)  # well inside the replication window
        store._leader_epoch += 1

    client = engine.spawn(store.write_redo_proc(make_records(2)))
    engine.run_until_complete([engine.spawn(usurper()), client])
    assert client.error is None
    assert store.metrics.counter("raft.retries").value >= 1
    # The batch still landed durably on the followers.
    assert any(node.durable_redo_blobs for node in store.nodes[1:])
