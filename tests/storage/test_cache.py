"""Byte-bounded LRU cache."""

import pytest

from repro.storage.cache import LRUCache


def test_put_get_and_hit_accounting():
    cache = LRUCache(100)
    cache.put("a", b"xxxx")
    assert cache.get("a") == b"xxxx"
    assert cache.get("b") is None
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_eviction_is_lru_order():
    cache = LRUCache(10)
    cache.put("a", b"xxxx")
    cache.put("b", b"xxxx")
    cache.get("a")  # a becomes most-recent
    evicted = cache.put("c", b"xxxx")
    assert [k for k, _ in evicted] == ["b"]
    assert "a" in cache and "c" in cache


def test_replace_updates_size():
    cache = LRUCache(10)
    cache.put("a", b"xxxxxxxx")
    cache.put("a", b"xx")
    assert cache.used_bytes == 2
    assert len(cache) == 1


def test_oversized_value_not_admitted():
    cache = LRUCache(4)
    evicted = cache.put("big", b"xxxxxxxx")
    assert evicted == []
    assert "big" not in cache
    assert cache.used_bytes == 0


def test_remove_and_clear():
    cache = LRUCache(100)
    cache.put("a", b"xx")
    assert cache.remove("a") == b"xx"
    assert cache.remove("a") is None
    cache.put("b", b"xx")
    cache.clear()
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_peek_does_not_touch_recency():
    cache = LRUCache(8)
    cache.put("a", b"xxxx")
    cache.put("b", b"xxxx")
    cache.peek("a")  # should NOT refresh a
    evicted = cache.put("c", b"xxxx")
    assert [k for k, _ in evicted] == ["a"]


def test_custom_sizer():
    cache = LRUCache(10, sizer=lambda v: v[0])
    cache.put("a", (6, "payload"))
    evicted = cache.put("b", (6, "payload"))
    assert [k for k, _ in evicted] == ["a"]


def test_zero_capacity_rejects_everything():
    cache = LRUCache(0)
    cache.put("a", b"x")
    assert "a" not in cache


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_pinned_entries_survive_eviction_pressure():
    cache = LRUCache(8)
    cache.put("a", b"xxxx")
    cache.pin("a")
    cache.put("b", b"xxxx")
    evicted = cache.put("c", b"xxxx")  # over capacity: must skip pinned a
    assert "a" in cache
    assert [k for k, _ in evicted] == ["b"]
    cache.unpin("a")
    # The pin-skip refreshed a's recency, so c is now the LRU victim.
    evicted = cache.put("d", b"xxxx")
    assert [k for k, _ in evicted] == ["c"]
    assert "a" in cache


def test_all_pinned_overflows_gracefully():
    cache = LRUCache(8)
    cache.put("a", b"xxxx")
    cache.put("b", b"xxxx")
    cache.pin("a")
    cache.pin("b")
    evicted = cache.put("c", b"xxxx")
    # Nothing evictable: the cache temporarily exceeds capacity.
    assert evicted == [] or all(k == "c" for k, _ in evicted)
    assert "a" in cache and "b" in cache


def test_pin_unknown_key_is_noop():
    cache = LRUCache(8)
    cache.pin("ghost")
    cache.put("a", b"xxxx")
    cache.put("b", b"xxxx")
    evicted = cache.put("c", b"xxxx")
    assert [k for k, _ in evicted] == ["a"]


def test_remove_clears_pin():
    cache = LRUCache(8)
    cache.put("a", b"xxxx")
    cache.pin("a")
    cache.remove("a")
    cache.put("a", b"xxxx")  # re-inserted unpinned
    cache.put("b", b"xxxx")
    evicted = cache.put("c", b"xxxx")
    assert [k for k, _ in evicted] == ["a"]


def test_multi_eviction_until_fits():
    cache = LRUCache(12)
    cache.put("a", b"xxxx")
    cache.put("b", b"xxxx")
    cache.put("c", b"xxxx")
    # 10 bytes: must evict a, b, and c before d fits under 12.
    evicted = cache.put("d", b"xxxxxxxxxx")
    assert [k for k, _ in evicted] == ["a", "b", "c"]
    assert cache.used_bytes == 10
    assert "d" in cache
