"""Group commit, pipelined replica fan-out, and engine-mode recovery."""

import pytest

from repro.common.errors import RaftError
from repro.common.units import MiB
from repro.engine import Engine
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


def make_records(n, lsn0=1, page_no=7, size=120):
    return [
        RedoRecord(lsn0 + i, page_no, 64 * i, b"x" * size) for i in range(n)
    ]


def make_store(seed=5):
    return PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=seed)


# --------------------------------------------------------------------- #
# Analytic equivalence                                                   #
# --------------------------------------------------------------------- #


def test_single_client_matches_sync_write_redo():
    """One client, window 0: the pipeline degenerates to the synchronous
    path's arithmetic (leader persist overlapped with follower RTT +
    persist + ack, commit at quorum)."""
    sync_store = make_store()
    sync_commit = sync_store.write_redo(1000.0, make_records(3))

    eng_store = make_store()
    engine = Engine(start_us=1000.0)
    eng_store.bind_engine(engine)
    eng_commit = engine.run(eng_store.write_redo_proc(make_records(3)))
    assert eng_commit == pytest.approx(sync_commit)


def test_sequential_commits_match_sync_sequence():
    sync_store = make_store()
    now = 500.0
    sync_commits = []
    for i in range(4):
        now = sync_store.write_redo(now, make_records(2, lsn0=10 * i + 1))
        sync_commits.append(now)

    eng_store = make_store()
    engine = Engine(start_us=500.0)
    eng_store.bind_engine(engine)
    eng_commits = []
    for i in range(4):
        commit = engine.run(
            eng_store.write_redo_proc(make_records(2, lsn0=10 * i + 1))
        )
        eng_commits.append(commit)
    assert eng_commits == pytest.approx(sync_commits)


# --------------------------------------------------------------------- #
# Group commit                                                           #
# --------------------------------------------------------------------- #


def test_concurrent_commits_batch():
    """Commits arriving while a flush is in flight join the next batch:
    batch size emerges from load without any window tuning."""
    store = make_store()
    engine = Engine()
    store.bind_engine(engine)
    n = 12
    commits = []

    def client(i):
        commit = yield from store.write_redo_proc(
            make_records(1, lsn0=100 + i)
        )
        commits.append(commit)

    engine.run_until_complete(
        [engine.spawn(client(i)) for i in range(n)]
    )
    assert len(commits) == n
    batches = store.metrics.get("storage.group_commit.batches").value
    batched = store.metrics.get("storage.group_commit.commits").value
    assert batched == n
    # The first commit flushes alone; the other 11 pile up behind that
    # in-flight flush and share batches.
    assert batches < n
    hist = store.metrics.get("storage.group_commit.batch_size")
    assert hist.max >= 2
    # Every member of one batch shares its commit time; commits are
    # globally non-decreasing in flush order.
    assert sorted(commits) == commits or len(set(commits)) < n


def test_commit_window_holds_flush_open():
    """An explicit window delays the flush so staggered commits batch."""
    store = make_store()
    engine = Engine()
    store.bind_engine(engine, group_commit_window_us=50.0)

    def client(i, delay):
        yield engine.timeout(delay)
        commit = yield from store.write_redo_proc(
            make_records(1, lsn0=200 + i)
        )
        return commit

    a = engine.spawn(client(0, 0.0))
    b = engine.spawn(client(1, 10.0))
    engine.run_until_complete([a, b])
    assert a.value == b.value  # same batch, same commit time
    assert store.metrics.get("storage.group_commit.batches").value == 1


def test_window_zero_single_client_unaffected_by_window_param():
    base = make_store()
    e1 = Engine()
    base.bind_engine(e1, group_commit_window_us=0.0)
    c1 = e1.run(base.write_redo_proc(make_records(2)))

    windowed = make_store()
    e2 = Engine()
    windowed.bind_engine(e2, group_commit_window_us=40.0)
    c2 = e2.run(windowed.write_redo_proc(make_records(2)))
    assert c2 == pytest.approx(c1 + 40.0)


# --------------------------------------------------------------------- #
# Pipelined fan-out under failures                                       #
# --------------------------------------------------------------------- #


def test_commit_survives_one_follower_down():
    store = make_store()
    store.fail_node(2)
    engine = Engine()
    store.bind_engine(engine)
    commit = engine.run(store.write_redo_proc(make_records(2)))
    assert commit > 0.0
    # The dead follower's pages are tracked for resync.
    assert store._missed[2]


def test_no_quorum_fails_commit_without_deadlock():
    store = make_store()
    store.fail_node(1)
    store.fail_node(2)
    engine = Engine()
    store.bind_engine(engine)
    with pytest.raises(RaftError):
        engine.run(store.write_redo_proc(make_records(2)))


def test_no_quorum_fails_every_member_of_the_batch():
    store = make_store()
    engine = Engine()
    store.bind_engine(engine)
    store.fail_node(1)
    store.fail_node(2)
    failures = []

    def client(i):
        try:
            yield from store.write_redo_proc(make_records(1, lsn0=300 + i))
        except RaftError:
            failures.append(i)

    engine.run_until_complete([engine.spawn(client(i)) for i in range(5)])
    assert sorted(failures) == [0, 1, 2, 3, 4]


def test_commit_fires_before_slowest_follower_finishes():
    """Pipelining: with 3 replicas quorum needs only the faster
    follower's ack, so the commit event fires while the slower
    follower's pipeline is still in flight — draining the remaining
    events advances simulated time past the commit."""
    store = make_store()
    engine = Engine()
    store.bind_engine(engine)
    commit = engine.run(store.write_redo_proc(make_records(3)))
    drained = engine.run_until_idle()
    assert drained >= commit
    # Both followers eventually persisted the batch even though only one
    # ack gated the commit.
    for node in store.nodes[1:]:
        assert node.durable_redo_blobs


# --------------------------------------------------------------------- #
# S1: time flows from the clock — recovery can never rewind              #
# --------------------------------------------------------------------- #


def test_recovery_cannot_move_time_backwards_sync():
    store = make_store()
    now = store.write_redo(2_000_000.0, make_records(3))
    assert now > 2_000_000.0
    store.fail_node(2)
    # A defaulted/stale timestamp must not schedule recovery I/O before
    # commits that already happened.
    done = store.recover_node(2)
    assert done >= now
    store.fail_node(2)
    done2 = store.recover_node(2, now_us=1.0)  # stale explicit timestamp
    assert done2 >= done


def test_recovery_cannot_move_time_backwards_engine():
    store = make_store()
    engine = Engine(start_us=3_000_000.0)
    store.bind_engine(engine)
    commit = engine.run(store.write_redo_proc(make_records(2)))
    store.fail_node(1)
    done = store.recover_node(1)
    assert done >= commit
    # The rebuilt node is rebound: its devices keep serving engine procs.
    commit2 = engine.run(store.write_redo_proc(make_records(2, lsn0=50)))
    assert commit2 >= done


def test_recovery_explicit_future_time_respected():
    store = make_store()
    now = store.write_redo(1_000.0, make_records(2))
    store.fail_node(2)
    done = store.recover_node(2, now_us=now + 500_000.0)
    assert done >= now + 500_000.0
