"""Two-level space allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AllocationError, OutOfSpaceError
from repro.common.units import EXTENT_SIZE, KiB, LBA_SIZE, MiB
from repro.storage.allocator import (
    BLOCKS_PER_EXTENT,
    BitmapAllocator,
    GlobalAllocator,
    SpaceManager,
)


def test_extent_geometry():
    assert BLOCKS_PER_EXTENT == 32  # 128 KiB / 4 KiB


def test_global_allocator_hands_out_distinct_extents():
    alloc = GlobalAllocator(1 * MiB)  # 8 extents
    extents = [alloc.allocate_extent() for _ in range(8)]
    assert len(set(extents)) == 8
    with pytest.raises(OutOfSpaceError):
        alloc.allocate_extent()


def test_global_allocator_recycles_freed_extents():
    alloc = GlobalAllocator(1 * MiB)
    extent = alloc.allocate_extent()
    alloc.free_extent(extent)
    assert alloc.free_extents == 8
    assert alloc.allocate_extent() == extent  # recycled first


def test_global_allocator_rejects_double_free():
    alloc = GlobalAllocator(1 * MiB)
    extent = alloc.allocate_extent()
    alloc.free_extent(extent)
    with pytest.raises(AllocationError):
        alloc.free_extent(extent)


def test_global_allocator_restore():
    alloc = GlobalAllocator(1 * MiB)
    alloc.restore({0, 3, 5})
    assert alloc.allocated_extents == 3
    assert alloc.free_extents == 5
    got = {alloc.allocate_extent() for _ in range(5)}
    assert got == {1, 2, 4, 6, 7}


def test_global_allocator_restore_validates_range():
    alloc = GlobalAllocator(1 * MiB)
    with pytest.raises(AllocationError):
        alloc.restore({100})


def test_bitmap_allocates_contiguous_runs():
    bitmap = BitmapAllocator(GlobalAllocator(1 * MiB))
    first = bitmap.allocate(4)
    second = bitmap.allocate(4)
    assert second == first + 4  # packs into the same extent
    assert bitmap.used_blocks == 8


def test_bitmap_reuses_freed_holes():
    bitmap = BitmapAllocator(GlobalAllocator(1 * MiB))
    a = bitmap.allocate(4)
    bitmap.allocate(4)
    bitmap.free(a, 4)
    c = bitmap.allocate(2)
    assert c == a  # first-fit lands in the hole


def test_bitmap_releases_empty_extent_to_global():
    global_alloc = GlobalAllocator(1 * MiB)
    bitmap = BitmapAllocator(global_alloc)
    lba = bitmap.allocate(4)
    assert global_alloc.allocated_extents == 1
    bitmap.free(lba, 4)
    assert global_alloc.allocated_extents == 0


def test_bitmap_rejects_oversized_and_double_ops():
    bitmap = BitmapAllocator(GlobalAllocator(1 * MiB))
    with pytest.raises(AllocationError):
        bitmap.allocate(BLOCKS_PER_EXTENT + 1)
    with pytest.raises(AllocationError):
        bitmap.allocate(0)
    lba = bitmap.allocate(2)
    bitmap.free(lba, 2)
    with pytest.raises(AllocationError):
        bitmap.free(lba, 2)


def test_bitmap_rejects_cross_extent_free():
    bitmap = BitmapAllocator(GlobalAllocator(1 * MiB))
    bitmap.allocate(32)
    with pytest.raises(AllocationError):
        bitmap.free(30, 4)


def test_space_manager_rounds_to_blocks():
    manager = SpaceManager(1 * MiB)
    manager.allocate_blocks(5000)  # needs 2 blocks
    assert manager.used_bytes == 2 * LBA_SIZE
    assert manager.reserved_bytes == EXTENT_SIZE


def test_space_manager_exhaustion():
    manager = SpaceManager(256 * KiB)  # 2 extents = 64 blocks
    for _ in range(64):
        manager.allocate_blocks(LBA_SIZE)
    with pytest.raises(OutOfSpaceError):
        manager.allocate_blocks(LBA_SIZE)


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(1, 8)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_allocator_never_double_allocates(ops):
    """Property: across arbitrary alloc/free interleavings, live ranges
    never overlap and used_blocks is exact."""
    bitmap = BitmapAllocator(GlobalAllocator(4 * MiB))
    live = {}  # start -> n
    for is_alloc, n in ops:
        if is_alloc or not live:
            try:
                start = bitmap.allocate(n)
            except OutOfSpaceError:
                continue
            for existing, existing_n in live.items():
                assert start + n <= existing or start >= existing + existing_n
            live[start] = n
        else:
            start, n_existing = next(iter(live.items()))
            bitmap.free(start, n_existing)
            del live[start]
    assert bitmap.used_blocks == sum(live.values())
