"""Redo records, consolidation, and the two evicted-log stores."""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.csd.device import PolarCSD
from repro.csd.specs import POLARCSD2
from repro.storage.allocator import SpaceManager
from repro.storage.perpage_log import PerPageLogStore, ScatteredLogStore
from repro.storage.redo import (
    RedoRecord,
    apply_records,
    decode_records,
    encode_records,
)

# --------------------------------------------------------------------- #
# Redo records                                                           #
# --------------------------------------------------------------------- #


def test_record_validation():
    with pytest.raises(ValueError):
        RedoRecord(1, 0, DB_PAGE_SIZE, b"x")  # offset out of page
    with pytest.raises(ValueError):
        RedoRecord(1, 0, DB_PAGE_SIZE - 2, b"xxxx")  # writes past end
    with pytest.raises(ValueError):
        RedoRecord(1, 0, 0, b"")  # empty


def test_encode_decode_round_trip():
    records = [
        RedoRecord(3, 7, 100, b"hello"),
        RedoRecord(1, 7, 0, b"\x00\x01"),
        RedoRecord(2, 9, 16000, b"tail"),
    ]
    assert decode_records(encode_records(records)) == records


def test_apply_records_in_lsn_order():
    page = bytes(DB_PAGE_SIZE)
    records = [
        RedoRecord(2, 0, 0, b"BBBB"),
        RedoRecord(1, 0, 0, b"AAAA"),  # older write, applied first
        RedoRecord(3, 0, 2, b"CC"),
    ]
    image = apply_records(page, records)
    assert image[:4] == b"BBCC"  # lsn1 then lsn2 then lsn3


def test_apply_is_idempotent_per_lsn():
    page = bytes(DB_PAGE_SIZE)
    record = RedoRecord(1, 0, 0, b"XYZ")
    image = apply_records(page, [record, record])
    assert image[:3] == b"XYZ"


def test_apply_rejects_bad_page_size():
    with pytest.raises(ValueError):
        apply_records(b"short", [])


@given(
    st.lists(
        st.tuples(
            st.integers(1, 1000),
            st.integers(0, DB_PAGE_SIZE - 64),
            st.binary(min_size=1, max_size=64),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_apply_equals_naive_replay(ops):
    """Property: apply_records == applying each write in LSN order."""
    records = [RedoRecord(lsn, 0, off, data) for lsn, off, data in ops]
    expected = bytearray(DB_PAGE_SIZE)
    seen = set()
    for record in sorted(records):
        if record.lsn in seen:
            continue
        seen.add(record.lsn)
        expected[record.offset : record.offset + len(record.data)] = record.data
    assert apply_records(bytes(DB_PAGE_SIZE), records) == bytes(expected)


# --------------------------------------------------------------------- #
# Log stores                                                             #
# --------------------------------------------------------------------- #


def make_device():
    spec = dataclasses.replace(
        POLARCSD2,
        logical_capacity=64 * MiB,
        physical_capacity=16 * MiB,
        jitter_sigma=0.0,
    )
    return PolarCSD(spec, block_capacity=1 * MiB)


def make_stores():
    device = make_device()
    allocator = SpaceManager(device.spec.logical_capacity)
    return (
        ScatteredLogStore(device, allocator),
        PerPageLogStore(make_device(), SpaceManager(64 * MiB)),
    )


def _records(page_no, count, lsn_start=1, size=100, seed=0):
    rng = random.Random(seed)
    return [
        RedoRecord(
            lsn_start + i,
            page_no,
            rng.randrange(0, DB_PAGE_SIZE - size),
            bytes(rng.randrange(256) for _ in range(size)),
        )
        for i in range(count)
    ]


def test_scattered_store_round_trip():
    scattered, _ = make_stores()
    records = _records(5, 10)
    scattered.evict(0.0, records)
    result = scattered.fetch(1000.0, 5)
    assert result.records == sorted(records)
    assert result.reads_issued >= 1


def test_scattered_store_interleaving_causes_read_amplification():
    """Records of many pages interleaved in arrival order land in shared
    blocks: fetching one page needs multiple reads (Figure 6a)."""
    scattered, _ = make_stores()
    lsn = 1
    for round_no in range(6):
        batch = []
        for page in range(8):
            batch.extend(_records(page, 2, lsn_start=lsn, size=200, seed=lsn))
            lsn += 2
        scattered.evict(round_no * 1000.0, batch)
    result = scattered.fetch(1e6, 3)
    assert result.reads_issued > 1
    assert all(r.page_no == 3 for r in result.records)
    assert len(result.records) == 12


def test_per_page_store_always_single_read():
    """Opt#3: no matter how interleaved the evictions, fetching any page is
    exactly one I/O (Figure 6b)."""
    _, per_page = make_stores()
    lsn = 1
    for round_no in range(6):
        batch = []
        for page in range(8):
            batch.extend(_records(page, 2, lsn_start=lsn, size=200, seed=lsn))
            lsn += 2
        per_page.evict(round_no * 1000.0, batch)
    result = per_page.fetch(1e6, 3)
    assert result.reads_issued == 1
    assert len(result.records) == 12
    assert all(r.page_no == 3 for r in result.records)


def test_per_page_store_unknown_page_is_free():
    _, per_page = make_stores()
    result = per_page.fetch(0.0, 999)
    assert result.records == []
    assert result.reads_issued == 0
    assert result.done_us == 0.0


def test_per_page_store_discard_releases_block():
    _, per_page = make_stores()
    per_page.evict(0.0, _records(1, 3))
    assert per_page.allocated_blocks == 1
    per_page.discard(1)
    assert per_page.allocated_blocks == 0
    assert per_page.fetch(0.0, 1).records == []


def test_per_page_store_merges_across_evictions():
    _, per_page = make_stores()
    first = _records(1, 3, lsn_start=1, seed=1)
    second = _records(1, 3, lsn_start=10, seed=2)
    per_page.evict(0.0, first)
    per_page.evict(100.0, second)
    result = per_page.fetch(1000.0, 1)
    assert result.records == sorted(first + second)
    assert result.reads_issued == 1


def test_per_page_space_decoupling():
    """The dedicated 4 KB block per page costs logical space but almost no
    physical space on the CSD — the property that makes Opt#3 affordable
    (vs ~25% amplification on a conventional SSD)."""
    device = make_device()
    allocator = SpaceManager(device.spec.logical_capacity)
    store = PerPageLogStore(device, allocator)
    for page in range(64):
        store.evict(0.0, _records(page, 1, lsn_start=page * 10 + 1, size=40))
    logical = store.allocated_blocks * 4096
    physical = device.physical_used_bytes
    assert logical == 64 * 4096
    assert physical < logical * 0.25  # small records compress away
