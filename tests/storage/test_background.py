"""Background maintenance daemons on the event kernel."""

import random

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.engine import Engine
from repro.storage.background import (
    consolidator_proc,
    scrubber_proc,
    start_background,
)
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


def make_page(seed=0):
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += b"row|%08d|" % rng.randrange(10**8)
    return bytes(out[:DB_PAGE_SIZE])


def make_store(seed=9):
    return PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=seed)


def test_scrubber_daemon_steals_device_time():
    store = make_store()
    now = 0.0
    for i in range(6):
        now = store.write_page(now, i, make_page(i)).commit_us
    engine = Engine(start_us=now)
    store.bind_engine(engine)
    procs = start_background(
        store, engine, scrub_period_us=2_000.0, consolidate_period_us=None
    )

    def client():
        for i in range(6):
            yield engine.timeout(3_000.0)
            store.read_page(engine.now_us, i % 6)

    engine.run_until_complete([engine.spawn(client())])
    cycles = store.metrics.get("storage.background.scrub_cycles").value
    assert cycles >= 2
    assert store.metrics.get("chaos.scrub_pages").value > 0
    for proc in procs:
        proc.cancel()


def test_consolidator_drains_cached_redo():
    store = make_store()
    page = make_page(1)
    now = store.write_page(0.0, 3, page).commit_us
    # Leave un-materialized redo in the cache.
    now = store.write_redo(
        now, [RedoRecord(1, 3, 0, b"Y" * 64), RedoRecord(2, 3, 64, b"Z" * 64)]
    )
    assert store.leader.redo_cache.get(3)
    engine = Engine(start_us=now)
    store.bind_engine(engine)
    engine.spawn(consolidator_proc(store, engine, period_us=1_000.0))
    engine.run_until_idle(limit_us=now + 5_000.0)
    assert not store.leader.redo_cache.get(3)
    assert (
        store.metrics.get("storage.background.consolidate_cycles").value >= 1
    )
    # The materialized page reflects the consolidated redo.
    data = store.read_page(engine.now_us, 3).data
    assert data[:64] == b"Y" * 64


def test_deferred_gc_daemon_drains_banked_work():
    store = make_store()
    engine = Engine()
    store.bind_engine(engine, defer_gc=True)
    start_background(
        store,
        engine,
        scrub_period_us=None,
        consolidate_period_us=None,
        gc_period_us=500.0,
    )

    def writer():
        for i in range(40):
            yield from store.leader.data_device.write_proc(
                i * 8, make_page(i)[: 4 * 1024]
            )

    engine.run_until_complete([engine.spawn(writer())])
    banked = store.leader.data_device._pending_gc_us
    engine.run_until_idle(limit_us=engine.now_us + 200_000.0)
    assert store.leader.data_device._pending_gc_us <= banked


def test_scrubber_repairs_corruption_in_background():
    from repro.chaos.plan import FaultKind, FaultPlan, FaultRule

    store = make_store()
    plan = FaultPlan(seed=3)
    plan.add(
        FaultRule(
            FaultKind.BIT_FLIP,
            scope=f"{store.leader.name}:data",
            max_count=1,
        )
    )
    plan.attach_to_store(store)
    # Incompressible payload: the flip must land in real bytes.
    page = random.Random(11).randbytes(DB_PAGE_SIZE)
    now = store.write_page(0.0, 1, page).commit_us
    assert plan.total_injected == 1
    engine = Engine(start_us=now)
    store.bind_engine(engine)
    engine.spawn(scrubber_proc(store, engine, period_us=1_000.0))
    engine.run_until_idle(limit_us=now + 20_000.0)
    repaired = [
        inst
        for inst in store.metrics.instruments()
        if inst.name == "chaos.repaired" and inst.value > 0
    ]
    assert repaired
