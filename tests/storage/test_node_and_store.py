"""Storage node + replicated PolarStore: end-to-end behaviour."""

import random

import pytest

from repro.common.errors import RaftError, ReproError
from repro.common.units import DB_PAGE_SIZE, KiB, MiB
from repro.csd.specs import P5510, POLARCSD2
from repro.storage.index import CompressionInfo
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import CompressionMode, PolarStore, build_node


def make_page(seed=0, compressible=True):
    if not compressible:
        return random.Random(seed).randbytes(DB_PAGE_SIZE)
    rng = random.Random(seed)
    words = [b"account", b"balance", b"status=active", b"2026-07-04", b"txn"]
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += rng.choice(words) + b"|%06d|" % rng.randrange(10**6)
    return bytes(out[:DB_PAGE_SIZE])


@pytest.fixture
def node():
    return build_node("test", NodeConfig(), volume_bytes=64 * MiB, seed=3)


@pytest.fixture
def store():
    return PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=5)


# --------------------------------------------------------------------- #
# Single node                                                            #
# --------------------------------------------------------------------- #


def test_write_read_round_trip(node):
    page = make_page(1)
    node.write_page(0.0, 7, page)
    result = node.read_page(1000.0, 7)
    assert result.data == page
    assert result.done_us > 1000.0


def test_compressed_page_uses_fewer_blocks(node):
    page = make_page(2)
    node.write_page(0.0, 1, page)
    entry = node.index.get(1)
    assert entry.status is CompressionInfo.NORMAL
    assert entry.n_blocks < 4
    assert node.device_used_bytes < DB_PAGE_SIZE


def test_incompressible_page_stored_raw(node):
    page = make_page(3, compressible=False)
    node.write_page(0.0, 1, page)
    entry = node.index.get(1)
    assert entry.status is CompressionInfo.UNCOMPRESSED
    assert entry.n_blocks == 4
    assert node.read_page(1.0, 1).data == page


def test_overwrite_frees_old_space(node):
    node.write_page(0.0, 1, make_page(1))
    used_once = node.device_used_bytes
    for seed in range(2, 8):
        node.write_page(seed * 1000.0, 1, make_page(seed))
    # Space stays bounded: old versions are freed.
    assert node.device_used_bytes <= used_once + 4 * KiB


def test_read_missing_page_raises(node):
    with pytest.raises(ReproError):
        node.read_page(0.0, 42)


def test_compression_ratio_reported(node):
    for i in range(16):
        node.write_page(i * 1000.0, i, make_page(i))
    assert node.compression_ratio() > 2.0


def test_software_compression_off_stores_raw():
    node = build_node(
        "hw-only",
        NodeConfig(software_compression=False),
        volume_bytes=64 * MiB,
    )
    node.write_page(0.0, 1, make_page(1))
    assert node.index.get(1).status is CompressionInfo.UNCOMPRESSED
    # The CSD still compresses in hardware.
    assert node.physical_used_bytes < DB_PAGE_SIZE


def test_dual_layer_beats_hardware_only():
    """Figure 14: software (zstd) + hardware achieves a higher ratio than
    hardware alone on the same data.  Algorithm selection is off: the
    paper's "+dual-layer" configuration uses zstd by default."""
    dual = build_node(
        "dual",
        NodeConfig(opt_algorithm_selection=False),
        volume_bytes=64 * MiB,
    )
    hw = build_node(
        "hw", NodeConfig(software_compression=False), volume_bytes=64 * MiB
    )
    for i in range(24):
        page = make_page(i)
        dual.write_page(i * 1e3, i, page)
        hw.write_page(i * 1e3, i, page)
    # On word-soup pages the margin is modest; the Figure 14 benchmark
    # exercises realistic datasets where it reaches the paper's 21–50%.
    assert dual.compression_ratio() > hw.compression_ratio() * 1.02


def test_algorithm_selection_tracks_last_used(node):
    page = make_page(5)
    node.write_page(0.0, 1, page, update_percent=1.0)
    first = node.index.get(1).algorithm
    # Small update with low CPU: no re-evaluation, same algorithm.
    node.write_page(1e3, 1, page, update_percent=0.05)
    assert node.index.get(1).algorithm == first


def test_storage_memory_cache_skips_device_reads():
    """§3.3.3: the storage software's memory cache serves repeat reads
    without device I/O or decompression."""
    node = build_node(
        "cache", NodeConfig(page_cache_bytes=1024 * 1024),
        volume_bytes=64 * MiB,
    )
    page = make_page(7)
    node.write_page(0.0, 1, page)
    cold = node.read_page(1e3, 1)
    warm = node.read_page(cold.done_us + 1e3, 1)
    assert cold.io_reads == 1
    assert warm.io_reads == 0
    assert warm.data == page
    assert warm.done_us == cold.done_us + 1e3  # free hit


def test_storage_memory_cache_invalidated_on_write():
    node = build_node(
        "cache2", NodeConfig(page_cache_bytes=1024 * 1024),
        volume_bytes=64 * MiB,
    )
    node.write_page(0.0, 1, make_page(1))
    node.read_page(1e3, 1)  # cached
    fresh = make_page(2)
    node.write_page(2e3, 1, fresh)
    result = node.read_page(3e3, 1)
    assert result.data == fresh
    assert result.io_reads == 1  # cache was invalidated


def test_redo_cache_and_consolidated_read(node):
    base = make_page(1)
    node.write_page(0.0, 1, base)
    records = [RedoRecord(i + 1, 1, i * 100, b"REDO" * 4) for i in range(5)]
    node.add_redo(1e3, records)
    result = node.read_page(2e3, 1)
    assert result.consolidated
    expected = bytearray(base)
    for record in records:
        expected[record.offset : record.offset + len(record.data)] = record.data
    assert result.data == bytes(expected)
    # Second read needs no consolidation.
    again = node.read_page(1e6, 1)
    assert not again.consolidated
    assert again.data == bytes(expected)


def test_consolidation_of_page_born_from_redo(node):
    records = [RedoRecord(1, 9, 0, b"NEWPAGE!")]
    node.add_redo(0.0, records)
    result = node.read_page(1.0, 9)
    assert result.data[:8] == b"NEWPAGE!"
    assert result.data[8:] == bytes(DB_PAGE_SIZE - 8)


def test_redo_cache_spills_to_log_store():
    node = build_node(
        "spill", NodeConfig(redo_cache_bytes=1 * KiB), volume_bytes=64 * MiB
    )
    node.write_page(0.0, 1, make_page(1))
    batch = [RedoRecord(i + 1, 1, 0, b"x" * 150) for i in range(10)]
    node.add_redo(1e3, batch)
    assert node.log_store.blocks_for(1) >= 1
    result = node.read_page(2e3, 1)
    assert result.io_reads >= 2  # base page + spilled logs
    assert result.data[:150] == b"x" * 150


def test_per_page_log_overflow_consolidates_instead():
    """When one page accumulates more redo than its 4 KB log slot can hold,
    the node folds the logs into the page image rather than overflowing."""
    node = build_node(
        "overflow", NodeConfig(redo_cache_bytes=2 * KiB), volume_bytes=64 * MiB
    )
    node.write_page(0.0, 1, make_page(1))
    big = [RedoRecord(i + 1, 1, 0, b"y" * 500) for i in range(20)]
    node.add_redo(1e3, big)
    # The page was consolidated: no pending redo anywhere, data is current.
    assert node.log_store.blocks_for(1) == 0
    result = node.read_page(2e3, 1)
    assert not result.consolidated
    assert result.data[:500] == b"y" * 500


def test_archive_range_round_trip(node):
    pages = {i: make_page(i + 100) for i in range(8)}
    for page_no, page in pages.items():
        node.write_page(page_no * 1e3, page_no, page)
    before = node.device_used_bytes
    node.archive_range(1e6, list(pages))
    after = node.device_used_bytes
    assert after < before  # heavy compression shrank the range
    for page_no, page in pages.items():
        assert node.read_page(2e6, page_no).data == page
    assert node.index.get(0).status is CompressionInfo.HEAVY


def test_archive_large_range_spans_multiple_pieces(node):
    """A segment whose compressed size exceeds one 128 KiB extent must be
    stored as multiple contiguous pieces and still read back correctly."""
    rng = random.Random(42)
    pages = {}
    now = 0.0
    for i in range(16):
        # Barely-compressible pages keep the segment large.
        page = bytes(
            rng.choice(b"abcdefghijklmnopqrstuvwxyz0123456789")
            for _ in range(DB_PAGE_SIZE)
        )
        pages[i] = page
        now = node.write_page(now, i, page).done_us
    now = node.archive_range(now, list(pages))
    meta = node.heavy.get(node.index.get(0).segment_id)
    assert len(meta.pieces) > 1
    for page_no, page in pages.items():
        assert node.read_page(now, page_no).data == page


def test_archive_read_uses_segment_buffer(node):
    for i in range(4):
        node.write_page(i * 1e3, i, make_page(i))
    node.archive_range(1e6, [0, 1, 2, 3])
    node.read_page(2e6, 0)
    hits_before = node.heavy.buffer_hits
    node.read_page(3e6, 1)  # same segment: served from the buffer
    assert node.heavy.buffer_hits == hits_before + 1


# --------------------------------------------------------------------- #
# Replicated store                                                       #
# --------------------------------------------------------------------- #


def test_store_write_commits_after_quorum(store):
    page = make_page(1)
    committed = store.write_page(0.0, 1, page)
    assert committed.commit_us > 0
    # All three replicas hold the page.
    for node in store.nodes:
        assert node.index.get(1) is not None
    assert store.read_page(1e3, 1).data == page


def test_store_survives_one_follower_failure(store):
    store.fail_node(2)
    committed = store.write_page(0.0, 1, make_page(1))
    assert committed.commit_us > 0
    assert store.nodes[2].index.get(1) is None  # failed node missed it


def test_store_loses_quorum_with_two_failures(store):
    store.fail_node(1)
    store.fail_node(2)
    with pytest.raises(RaftError):
        store.write_page(0.0, 1, make_page(1))


def test_store_redo_write_is_fast_with_bypass(store):
    records = [RedoRecord(1, 1, 0, b"y" * 256)]
    commit = store.write_redo(0.0, records)
    assert commit < 120.0  # Optane + one RTT, well under data-device writes


def test_store_redo_slower_without_bypass():
    fast = PolarStore(NodeConfig(opt_bypass_redo=True), volume_bytes=64 * MiB)
    slow = PolarStore(NodeConfig(opt_bypass_redo=False), volume_bytes=64 * MiB)
    records = [RedoRecord(1, 1, 0, bytes(1024) + b"z" * 512)]
    fast_commit = fast.write_redo(0.0, records)
    slow_commit = slow.write_redo(0.0, records)
    assert fast_commit < slow_commit


def test_store_none_mode_bypasses_software_compression(store):
    page = make_page(4)
    store.write_page(0.0, 2, page, mode=CompressionMode.NONE)
    assert store.leader.index.get(2).status is CompressionInfo.UNCOMPRESSED
    assert store.read_page(1e3, 2).data == page


def test_store_non_page_aligned_write_reverts_to_none(store):
    blob = b"q" * (5 * KiB)
    store.write_page(0.0, 3, blob)
    assert store.leader.index.get(3).status is CompressionInfo.UNCOMPRESSED
    # Round-trips through the raw path.
    raw = store.leader.read_page(1e3, 3)
    assert raw.data[: len(blob)] == blob


def test_partial_write_decompresses_and_stores_raw(node):
    """§3.2.3 no-compression rule: a partial write into a compressed range
    reads + decompresses the old data and rewrites the page uncompressed."""
    page = make_page(8)
    node.write_page(0.0, 1, page)
    assert node.index.get(1).status is CompressionInfo.NORMAL
    node.write_partial(1e3, 1, 100, b"PATCHED-BYTES")
    entry = node.index.get(1)
    assert entry.status is CompressionInfo.UNCOMPRESSED
    expected = bytearray(page)
    expected[100 : 100 + 13] = b"PATCHED-BYTES"
    assert node.read_page(2e3, 1).data == bytes(expected)


def test_partial_write_to_missing_page_starts_from_zero(node):
    node.write_partial(0.0, 77, 0, b"HEAD")
    data = node.read_page(1e3, 77).data
    assert data[:4] == b"HEAD"
    assert data[4:] == bytes(DB_PAGE_SIZE - 4)


def test_partial_write_bounds_checked(node):
    with pytest.raises(ReproError):
        node.write_partial(0.0, 1, DB_PAGE_SIZE - 2, b"xxxx")
    with pytest.raises(ReproError):
        node.write_partial(0.0, 1, -1, b"x")
    with pytest.raises(ReproError):
        node.write_partial(0.0, 1, 0, b"")


def test_store_partial_write_replicates(store):
    page = make_page(9)
    store.write_page(0.0, 4, page)
    commit = store.write_partial(1e3, 4, 0, b"ZZZZ")
    assert commit > 1e3
    for node in store.nodes:
        assert node.index.get(4).status is CompressionInfo.UNCOMPRESSED
        assert node.read_page(2e3, 4).data[:4] == b"ZZZZ"


def test_store_heavy_mode_requires_archive_api(store):
    with pytest.raises(ReproError):
        store.write_page(0.0, 1, make_page(1), mode=CompressionMode.HEAVY)


def test_store_archive_applies_to_all_replicas(store):
    for i in range(4):
        store.write_page(i * 1e3, i, make_page(i))
    store.archive_range(1e6, [0, 1, 2, 3])
    for node in store.nodes:
        assert node.index.get(0).status is CompressionInfo.HEAVY


def test_hardware_only_cluster_matches_c1_shape():
    """C1: PolarCSD1.0, software compression and Opt#2/3 disabled."""
    from repro.csd.specs import POLARCSD1

    config = NodeConfig(
        software_compression=False,
        opt_algorithm_selection=False,
        opt_per_page_log=False,
    )
    store = PolarStore(config, data_spec=POLARCSD1, volume_bytes=64 * MiB)
    for i in range(12):
        store.write_page(i * 1e3, i, make_page(i))
    ratio = store.compression_ratio()
    assert 1.5 < ratio < 5.0  # hardware gzip only
