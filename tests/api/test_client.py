"""Golden equivalence: the PolarStore facade vs the legacy entry points.

The redesign's contract is that ``PolarStore.open`` changes how the
stack is wired, never what it computes: every operation routed through
the client must reproduce the legacy constructors' simulated timings,
I/O counts, and byte accounting *exactly*.
"""

import pytest

from repro.api import PolarStore, ReproConfig, build_db
from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.db.database import PolarDB
from repro.engine import Engine
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore as StorageVolume

CONFIG_DOC = {"store": {"volume_bytes": 32 * MiB, "seed": 3}}


def _op_tuple(result):
    return (result.done_us, result.io_reads, result.redo_bytes, result.value)


def _dml_script(run):
    """One mixed DML sequence; ``run(op, *args)`` executes and returns
    the OpResult.  Returns the list of observed result tuples."""
    observed = []
    for key in range(40):
        observed.append(run("insert", "t", key, bytes([key % 5]) * 64))
    for key in (3, 17, 39):
        observed.append(run("update", "t", key, b"updated" * 8))
    for key in (0, 21):
        observed.append(run("select", "t", key))
    observed.append(run("range_select", "t", 5, 25))
    observed.append(run("delete", "t", 11))
    return observed


def test_sync_ops_match_legacy_exactly():
    # Legacy: hand-threaded now_us through a PolarDB.
    legacy_db = PolarDB(
        store=StorageVolume(NodeConfig(), volume_bytes=32 * MiB, seed=3)
    )
    legacy_db.create_table("t")
    clock = {"now": 0.0}

    def run_legacy(op, *args):
        result = getattr(legacy_db, op)(clock["now"], *args)
        clock["now"] = result.done_us
        return _op_tuple(result)

    # Facade: the client keeps the cursor itself.
    client = PolarStore.open(CONFIG_DOC)
    client.create_table("t")

    def run_client(op, *args):
        return _op_tuple(getattr(client, op)(*args))

    assert _dml_script(run_legacy) == _dml_script(run_client)
    assert client.now_us == clock["now"]


def test_engine_ops_match_legacy_exactly():
    # Legacy: explicit Engine + bind_engine + engine.run(db.*_proc(...)).
    legacy_db = PolarDB(
        store=StorageVolume(NodeConfig(), volume_bytes=32 * MiB, seed=3)
    )
    legacy_db.create_table("t")
    engine = Engine()
    legacy_db.bind_engine(engine, group_commit_window_us=25.0)

    def run_legacy(op, *args):
        return _op_tuple(engine.run(getattr(legacy_db, op + "_proc")(*args)))

    client = PolarStore.open(
        dict(CONFIG_DOC, engine={"enabled": True,
                                 "group_commit_window_us": 25.0})
    )
    client.create_table("t")

    def run_client(op, *args):
        return _op_tuple(getattr(client, op)(*args))

    assert _dml_script(run_legacy) == _dml_script(run_client)
    assert client.now_us == engine.now_us


def test_volume_page_io_matches_legacy_exactly():
    volume = StorageVolume(NodeConfig(), volume_bytes=32 * MiB, seed=3)
    now = 0.0
    legacy = []
    for page_no in range(8):
        committed = volume.write_page(now, page_no, bytes([page_no]) * 4096)
        now = committed.commit_us
        legacy.append((committed.commit_us, committed.prepared.device_bytes))
    read = volume.read_page(now, 5)
    legacy.append((read.done_us, len(read.data)))

    client = PolarStore.open(CONFIG_DOC)
    observed = []
    for page_no in range(8):
        committed = client.write_page(page_no, bytes([page_no]) * 4096)
        observed.append(
            (committed.commit_us, committed.prepared.device_bytes)
        )
    read = client.read_page(5)
    observed.append((read.done_us, len(read.data)))
    assert observed == legacy


def test_ro_node_select_routing_matches_legacy():
    legacy_db = PolarDB(
        store=StorageVolume(NodeConfig(), volume_bytes=32 * MiB, seed=3)
    )
    legacy_db.create_table("t")
    now = legacy_db.insert(0.0, "t", 1, b"row").done_us
    legacy = legacy_db.select(now, "t", 1, ro_index=0)

    client = PolarStore.open(CONFIG_DOC)
    client.create_table("t")
    client.insert("t", 1, b"row")
    observed = client.select("t", 1, ro_index=0)
    assert _op_tuple(observed) == _op_tuple(legacy)


def test_bulk_load_and_checkpoint_match_legacy():
    rows = [(k, bytes([k % 3]) * 48) for k in range(64)]
    legacy_db = PolarDB(
        store=StorageVolume(NodeConfig(), volume_bytes=32 * MiB, seed=3)
    )
    legacy_db.create_table("t")
    loaded = legacy_db.bulk_load(0.0, "t", rows)
    legacy_done = legacy_db.checkpoint(loaded)

    client = PolarStore.open(CONFIG_DOC)
    client.create_table("t")
    client.bulk_load("t", rows)
    assert client.checkpoint() == legacy_done


def test_open_accepts_config_dict_kwargs_and_none():
    assert PolarStore.open().sharded is False
    assert PolarStore.open(ReproConfig()).sharded is False
    assert PolarStore.open({"cluster": {"shards": 2}}).sharded is True
    assert PolarStore.open(cluster={"shards": 2}).sharded is True


def test_open_rejects_mixed_and_bad_usage():
    with pytest.raises(TypeError, match="PolarStore.open"):
        PolarStore()
    with pytest.raises(ValueError, match="not both"):
        PolarStore.open({"cluster": {"shards": 2}}, store={})
    with pytest.raises(ValueError, match="replace"):
        PolarStore.open(ReproConfig(), store={})
    with pytest.raises(TypeError, match="ReproConfig"):
        PolarStore.open(42)


def test_single_volume_client_surface():
    client = PolarStore.open(CONFIG_DOC)
    assert client.engine is None
    assert client.store is client.db.store
    assert client.metrics is client.db.metrics
    with pytest.raises(ReproError, match="shards"):
        client.rebalance()


def test_sharded_client_surface():
    client = PolarStore.open(cluster={"shards": 2}, engine={"enabled": True})
    assert client.sharded
    assert client.engine is client.runtime.engine
    with pytest.raises(ReproError, match="single volume"):
        client.store
    # Adopting a foreign engine is refused; the runtime's own is a no-op.
    with pytest.raises(ReproError, match="engine"):
        client.bind_engine(Engine())
    client.bind_engine(client.engine)


def test_client_works_with_sysbench_driver():
    from repro.workloads.sysbench import prepare_table, run_sysbench

    client = PolarStore.open(CONFIG_DOC)
    loaded = prepare_table(client, rows=80, seed=0)
    result = run_sysbench(
        client, "point_select", duration_s=0.01, threads=2,
        key_range=80, start_us=loaded, seed=0,
    )
    assert result.transactions > 0

    legacy_db = build_db(ReproConfig.from_dict(CONFIG_DOC))
    loaded_legacy = prepare_table(legacy_db, rows=80, seed=0)
    legacy = run_sysbench(
        legacy_db, "point_select", duration_s=0.01, threads=2,
        key_range=80, start_us=loaded_legacy, seed=0,
    )
    assert loaded == loaded_legacy
    assert result.transactions == legacy.transactions
    assert result.tps == legacy.tps
