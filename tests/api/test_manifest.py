"""The public-API stability manifest stays in sync with the code."""

import json

from repro.api import manifest


def test_manifest_matches_code():
    drift = manifest.diff_manifest()
    assert drift == "", f"\n{drift}"


def test_manifest_tracks_both_surfaces():
    recorded = manifest.load_manifest()
    assert set(recorded) == set(manifest.TRACKED_MODULES)
    api = recorded["repro.api"]["symbols"]
    assert "PolarStore" in api
    assert "open" in api["PolarStore"]["members"]
    runtime = recorded["repro.cluster.runtime"]["symbols"]
    assert "ClusterRuntime" in runtime
    members = runtime["ClusterRuntime"]["members"]
    for method in ("rebalance", "migrate_chunk_proc", "insert_proc",
                   "verify_readable"):
        assert method in members, method


def test_manifest_file_is_normalized():
    """The checked-in file is exactly what --update writes (sorted keys,
    two-space indent, trailing newline) so diffs stay minimal."""
    with open(manifest.MANIFEST_PATH) as handle:
        raw = handle.read()
    expected = json.dumps(
        manifest.build_manifest(), indent=2, sort_keys=True
    ) + "\n"
    assert raw == expected


def test_drift_is_detected_and_explained(monkeypatch):
    current = manifest.build_manifest()
    mutated = json.loads(json.dumps(current))
    mutated["repro.api"]["symbols"].pop("PolarStoreClient")
    monkeypatch.setattr(manifest, "load_manifest", lambda: mutated)
    drift = manifest.diff_manifest()
    assert "PolarStoreClient: added" in drift
    assert "--update" in drift
