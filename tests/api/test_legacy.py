"""The deprecation shims for pre-facade entry points."""

import pytest

from repro.api import legacy
from repro.common.units import MiB
from repro.db.database import PolarDB as RealPolarDB
from repro.storage.node import NodeConfig, StorageNode
from repro.storage.store import PolarStore as RealVolume


def test_build_node_shim_warns_and_delegates():
    with pytest.warns(DeprecationWarning, match="legacy entry point"):
        node = legacy.build_node("n0", NodeConfig(), volume_bytes=16 * MiB)
    assert isinstance(node, StorageNode)


def test_polar_volume_shim_warns_and_delegates():
    with pytest.warns(DeprecationWarning, match="PolarStore.open"):
        volume = legacy.PolarVolume(NodeConfig(), volume_bytes=16 * MiB)
    assert isinstance(volume, RealVolume)
    committed = volume.write_page(0.0, 1, b"x" * 4096)
    assert committed.commit_us > 0


def test_polar_db_shim_warns_and_delegates():
    with pytest.warns(DeprecationWarning, match="legacy entry point"):
        db = legacy.PolarDB(volume_bytes=16 * MiB, seed=0)
    assert isinstance(db, RealPolarDB)
    db.create_table("t")
    assert db.insert(0.0, "t", 1, b"v").done_us > 0


def test_unshimmed_imports_stay_silent(recwarn):
    """The original import paths keep working without any warning —
    only the explicit ``repro.api.legacy`` route announces itself."""
    from repro.db.database import PolarDB  # noqa: F401
    from repro.storage.store import PolarStore, build_node  # noqa: F401

    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]
    assert not deprecations
