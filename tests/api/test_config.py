"""The typed configuration tree (repro.api.config)."""

import dataclasses

import pytest

from repro.api.config import (
    ClusterSection,
    PerfConfig,
    ReproConfig,
    StoreSection,
    resolve_spec,
)
from repro.common.units import MiB
from repro.csd.specs import OPTANE_P5800X, POLARCSD2
from repro.storage.node import NodeConfig


def test_defaults_validate():
    config = ReproConfig()
    assert config.validate() is config
    assert config.cluster.shards == 0
    assert config.store.node.software_compression is not None


def test_dict_round_trip():
    config = ReproConfig.from_dict({
        "store": {"volume_bytes": 32 * MiB, "seed": 7},
        "engine": {"enabled": True, "group_commit_window_us": 25.0},
        "cluster": {"shards": 3, "chunk_keys": 4},
    })
    assert config.store.volume_bytes == 32 * MiB
    assert config.engine.group_commit_window_us == 25.0
    assert config.cluster.shards == 3
    # to_dict -> from_dict is the identity.
    assert ReproConfig.from_dict(config.to_dict()) == config


def test_partial_dict_keeps_defaults():
    config = ReproConfig.from_dict({"cluster": {"shards": 2}})
    assert config.store.volume_bytes == ReproConfig().store.volume_bytes
    assert config.cluster.chunk_keys == ClusterSection().chunk_keys


def test_nested_node_config_from_dict():
    config = ReproConfig.from_dict({
        "store": {"node": {"software_compression": False}},
    })
    assert isinstance(config.store.node, NodeConfig)
    assert config.store.node.software_compression is False


def test_unknown_section_rejected():
    with pytest.raises(ValueError, match="unknown config sections"):
        ReproConfig.from_dict({"storage": {}})


def test_unknown_key_rejected():
    with pytest.raises(ValueError, match="store"):
        ReproConfig.from_dict({"store": {"volume_byte": 1}})


def test_unknown_node_key_rejected():
    with pytest.raises(ValueError, match="store.node"):
        ReproConfig.from_dict({"store": {"node": {"not_a_switch": True}}})


def test_single_shard_is_ambiguous():
    with pytest.raises(ValueError, match="ambiguous"):
        ReproConfig.from_dict({"cluster": {"shards": 1}})


def test_unknown_device_spec_rejected():
    with pytest.raises(ValueError, match="unknown device spec"):
        ReproConfig.from_dict({"device": {"data_spec": "P9999"}})


def test_resolve_spec_returns_device_specs():
    assert resolve_spec("POLARCSD2") is POLARCSD2
    assert resolve_spec("OPTANE_P5800X") is OPTANE_P5800X


def test_sections_are_plain_dataclasses():
    config = ReproConfig()
    doc = config.to_dict()
    assert set(doc) == {"store", "device", "engine", "db", "cluster",
                        "perf", "net", "consolidation", "parallel"}
    # Every leaf is JSON-able (asdict flattened the NodeConfig too).
    assert isinstance(doc["store"]["node"], dict)


def test_perf_defaults_off():
    config = ReproConfig()
    assert config.perf == PerfConfig()
    assert config.perf.enabled is False
    assert config.perf.pool_workers == -1  # auto-size when enabled
    assert config.perf.zero_copy is True


def test_perf_dict_round_trip():
    config = ReproConfig.from_dict({
        "perf": {
            "enabled": True,
            "pool_workers": 3,
            "pool_kind": "thread",
            "memo_capacity_bytes": 8 * MiB,
            "zero_copy": False,
            "arena_slots": 4,
        },
    })
    assert config.perf.enabled is True
    assert config.perf.pool_workers == 3
    assert config.perf.pool_kind == "thread"
    assert config.perf.memo_capacity_bytes == 8 * MiB
    assert config.perf.zero_copy is False
    assert config.perf.arena_slots == 4
    # Strict identity both ways.
    assert ReproConfig.from_dict(config.to_dict()) == config
    assert config.to_dict()["perf"] == {
        "enabled": True,
        "pool_workers": 3,
        "pool_kind": "thread",
        "memo_capacity_bytes": 8 * MiB,
        "zero_copy": False,
        "arena_slots": 4,
    }


def test_perf_unknown_key_rejected():
    with pytest.raises(ValueError, match="perf"):
        ReproConfig.from_dict({"perf": {"pool_size": 4}})


def test_perf_validation_rejects_bad_values():
    with pytest.raises(ValueError, match="pool_kind"):
        ReproConfig.from_dict({"perf": {"pool_kind": "fibers"}}).validate()
    with pytest.raises(ValueError, match="pool_workers"):
        ReproConfig.from_dict({"perf": {"pool_workers": -2}}).validate()
    with pytest.raises(ValueError, match="memo_capacity_bytes"):
        ReproConfig.from_dict(
            {"perf": {"memo_capacity_bytes": -1}}
        ).validate()
    with pytest.raises(ValueError, match="arena_slots"):
        ReproConfig.from_dict({"perf": {"arena_slots": 0}}).validate()


def test_per_instance_sections_do_not_alias():
    a, b = ReproConfig(), ReproConfig()
    a.cluster.shards = 5
    assert b.cluster.shards == 0
    assert a.store is not b.store


def test_replace_builds_variants():
    base = ReproConfig()
    variant = dataclasses.replace(
        base, cluster=dataclasses.replace(base.cluster, shards=2)
    )
    assert variant.validate().cluster.shards == 2
    assert base.cluster.shards == 0
