"""The Transport seam: capability gating, LocalTransport dispatch,
and the op vocabulary shared with the wire protocol."""

import pytest

from repro.api import ReproConfig
from repro.api.transport import (
    TRANSPORT_OPS,
    LocalTransport,
    Transport,
    TransportCapabilityError,
)
from repro.common.errors import ReproError


def test_abstract_transport_gates_in_process_capabilities():
    transport = Transport()
    for attr in ("config", "db", "runtime", "store", "engine", "metrics"):
        with pytest.raises(TransportCapabilityError, match="abstract"):
            getattr(transport, attr)


def test_transport_ops_match_the_wire_vocabulary():
    from repro.net.protocol import OPS

    wire_data_ops = {
        spec.name for spec in OPS if not spec.control
    } - {"flush"}
    assert wire_data_ops == set(TRANSPORT_OPS)


def test_local_transport_engine_dispatch_and_cursor():
    transport = LocalTransport(
        ReproConfig.from_dict({"engine": {"enabled": True}})
    )
    assert transport.kind == "local"
    assert not transport.sharded
    assert transport.engine is not None
    transport.call("create_table", "t")
    insert = transport.call("insert", "t", 1, b"v" * 32)
    assert transport.now_us >= insert.done_us
    before = transport.now_us
    transport.advance_to(before + 1000.0)
    assert transport.now_us == before + 1000.0
    assert transport.advance_to(0.0) == before + 1000.0  # never backward
    select = transport.call("select", "t", 1)
    assert select.value == b"v" * 32


def test_local_transport_sync_dispatch_without_engine():
    transport = LocalTransport(ReproConfig.from_dict({}))
    assert transport.engine is None
    transport.call("create_table", "t")
    transport.call("insert", "t", 7, b"x")
    assert transport.call("select", "t", 7).value == b"x"
    logical, physical = transport.call("space")
    assert logical >= 0 and physical >= 0


def test_unknown_op_rejected():
    transport = LocalTransport(ReproConfig.from_dict({}))
    with pytest.raises(ReproError, match="unknown transport op"):
        transport.call("drop_database")


def test_describe_reports_deployment_shape():
    local = LocalTransport(
        ReproConfig.from_dict({"engine": {"enabled": True}})
    )
    doc = local.describe()
    assert doc["kind"] == "local"
    assert doc["engine"] is True
    assert doc["sharded"] is False


def test_sharded_local_transport_routes_and_guards():
    transport = LocalTransport(
        ReproConfig.from_dict({"cluster": {"shards": 2}})
    )
    assert transport.sharded
    assert transport.runtime is not None
    transport.call("create_table", "t")
    transport.call("insert", "t", 5, b"row")
    assert transport.call("select", "t", 5).value == b"row"
    with pytest.raises(ReproError, match="no single volume"):
        transport.store
    with pytest.raises(ReproError, match="bound to its runtime"):
        transport.adopt_engine(object())
    transport.adopt_engine(transport.engine)  # same kernel: no-op


def test_adopt_engine_binds_single_volume_deployment():
    from repro.engine import Engine

    transport = LocalTransport(ReproConfig.from_dict({}))
    assert transport.engine is None
    engine = Engine()
    transport.adopt_engine(engine)
    assert transport.engine is engine
    transport.call("create_table", "t")
    result = transport.call("insert", "t", 1, b"v")
    assert result.done_us > 0


def test_close_is_idempotent():
    transport = LocalTransport(ReproConfig.from_dict({}))
    transport.close()
    transport.close()
    assert transport.db is None and transport.engine is None
