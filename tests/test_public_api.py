"""Top-level package API and miscellaneous integration seams."""

import random

import pytest

import repro


def test_lazy_public_exports():
    assert repro.PolarStore.__name__ == "PolarStore"
    assert repro.NodeConfig.__name__ == "NodeConfig"
    assert repro.PolarDB.__name__ == "PolarDB"
    assert callable(repro.run_sysbench)
    assert "PolarCSD" in dir(repro)
    with pytest.raises(AttributeError):
        repro.NotAThing


def test_quick_end_to_end_via_exports():
    store = repro.PolarStore(repro.NodeConfig(), volume_bytes=32 * 2**20)
    pages = repro.dataset_pages("wiki", 2, seed=0)
    now = store.write_page(0.0, 1, pages[0]).commit_us
    assert store.read_page(now, 1).data == pages[0]


def test_algorithm_distribution_matches_index():
    from repro.common.units import MiB
    from repro.storage.store import build_node

    node = build_node("dist", repro.NodeConfig(), volume_bytes=64 * MiB)
    now = 0.0
    for page_no, page in enumerate(repro.dataset_pages("finance", 10, seed=1)):
        now = node.write_page(now, page_no, page).done_us
    distribution = node.algorithm_distribution()
    assert sum(distribution.values()) <= 10
    assert set(distribution) <= {"lz4", "zstd"}
    assert sum(distribution.values()) >= 8  # most finance pages compress


def test_fault_injected_device_still_round_trips():
    import dataclasses

    from repro.csd.device import PolarCSD
    from repro.csd.specs import POLARCSD2
    from repro.common.units import MiB

    spec = dataclasses.replace(
        POLARCSD2, logical_capacity=32 * MiB, physical_capacity=16 * MiB,
    )
    device = PolarCSD(spec, seed=3, inject_faults=True, block_capacity=1 * MiB)
    data = repro.dataset_pages("fnb", 1, seed=2)[0]
    now = 0.0
    for i in range(50):
        now = device.write(now, (i % 8) * 4, data).done_us
        now = device.read(now, (i % 8) * 4, len(data)).done_us
    assert device.read(now, 0, len(data)).data == data
