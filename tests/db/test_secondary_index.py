"""Secondary indexes: composite keys, duplicates, update-index moves."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.db.bufferpool import OpContext
from repro.db.database import PolarDB
from repro.db.secondary import composite_key, split_composite
from repro.storage.node import NodeConfig


def make_db():
    db = PolarDB(config=NodeConfig(), volume_bytes=128 * MiB, ro_nodes=0,
                 buffer_pool_pages=128, seed=23)
    db.create_table("t")
    return db


def test_composite_key_round_trip():
    key = composite_key(7, 1234)
    assert split_composite(key) == (7, 1234)
    assert composite_key(7, 0) < composite_key(7, 99) < composite_key(8, 0)
    with pytest.raises(ReproError):
        composite_key(1 << 33, 0)
    with pytest.raises(ReproError):
        composite_key(0, -1)


def test_index_insert_and_lookup_with_duplicates():
    db = make_db()
    index = db.rw.create_secondary_index("t", "k_idx")
    ctx = OpContext(0.0)
    # Three rows share k=5, one has k=9.
    for primary in (10, 20, 30):
        index.insert(ctx, 5, primary, db.rw._next_lsn)
    index.insert(ctx, 9, 40, db.rw._next_lsn)
    assert sorted(index.lookup(ctx, 5)) == [10, 20, 30]
    assert index.lookup(ctx, 9) == [40]
    assert index.lookup(ctx, 6) == []


def test_update_index_moves_entry():
    """The sysbench U-I mechanics: the row's indexed column changes, the
    index entry relocates, the row itself does not."""
    db = make_db()
    index = db.rw.create_secondary_index("t", "k_idx")
    now = db.insert(0.0, "t", 100, b"row-100|k=5").done_us
    ctx = OpContext(now)
    index.insert(ctx, 5, 100, db.rw._next_lsn)
    index.move(ctx, 5, 8, 100, db.rw._next_lsn)
    assert index.lookup(ctx, 5) == []
    assert index.lookup(ctx, 8) == [100]
    # Moving a missing entry is an error.
    with pytest.raises(ReproError):
        index.move(ctx, 5, 9, 100, db.rw._next_lsn)
    # No-op move is fine.
    index.move(ctx, 8, 8, 100, db.rw._next_lsn)
    assert index.lookup(ctx, 8) == [100]


def test_range_lookup_spans_secondary_values():
    db = make_db()
    index = db.rw.create_secondary_index("t", "k_idx")
    ctx = OpContext(0.0)
    rng = random.Random(1)
    entries = set()
    for primary in range(200):
        secondary = rng.randrange(20)
        index.insert(ctx, secondary, primary, db.rw._next_lsn)
        entries.add((secondary, primary))
    got = set(index.lookup_range(ctx, 5, 9))
    expected = {(s, p) for s, p in entries if 5 <= s <= 9}
    assert got == expected


def test_index_pages_flow_through_storage():
    """Index pages are ordinary pages: after the redo ships, storage can
    rebuild them like any other page."""
    db = make_db()
    index = db.rw.create_secondary_index("t", "k_idx")
    ctx = OpContext(0.0)
    for primary in range(300):
        index.insert(ctx, primary % 16, primary, db.rw._next_lsn)
    db.rw.pool.drain_touched()  # index build: skip redo for brevity
    # DML-driven maintenance *does* ship redo.
    now = db.insert(1e3, "t", 1, b"row-1").done_us
    ctx2 = OpContext(now)
    index.insert(ctx2, 3, 1, db.rw._next_lsn)
    done, redo = db.rw._commit(ctx2)
    assert redo > 0


def test_duplicate_index_name_rejected():
    db = make_db()
    db.rw.create_secondary_index("t", "k_idx")
    with pytest.raises(ReproError):
        db.rw.create_secondary_index("t", "k_idx")
    with pytest.raises(ReproError):
        db.rw.create_secondary_index("missing", "x")


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 500)),
        min_size=1, max_size=150, unique=True,
    )
)
@settings(max_examples=20, deadline=None)
def test_index_matches_model(pairs):
    db = make_db()
    index = db.rw.create_secondary_index("t", "k_idx")
    ctx = OpContext(0.0)
    for secondary, primary in pairs:
        index.insert(ctx, secondary, primary, db.rw._next_lsn)
    for secondary in {s for s, _ in pairs}:
        expected = sorted(p for s, p in pairs if s == secondary)
        assert sorted(index.lookup(ctx, secondary)) == expected
