"""BufferPool write-back mode and device parallelism units."""

import dataclasses

import pytest

from repro.common.units import KiB, MiB
from repro.csd.device import PlainSSD
from repro.csd.specs import P5510
from repro.db.bufferpool import BufferPool, OpContext
from repro.db.page import Page, PageType


class _RecordingStore:
    """Minimal store capturing write-backs."""

    def __init__(self):
        self.writes = []
        self.pages = {}

    def write_page(self, start_us, page_no, data):
        self.writes.append(page_no)
        self.pages[page_no] = data

        class R:
            done_us = start_us + 10.0
            commit_us = start_us + 10.0

        return R()

    def read_page(self, start_us, page_no):
        class R:
            data = self.pages[page_no]
            done_us = start_us + 5.0

        R.data = self.pages[page_no]
        return R()


def test_writeback_pool_flushes_dirty_pages_on_eviction():
    store = _RecordingStore()
    pool = BufferPool(2, store, writeback=True)
    ctx = OpContext(0.0)
    a = pool.new_page(1, PageType.LEAF, ctx)
    a.insert(1, b"x", 1)
    pool.new_page(2, PageType.LEAF, ctx)
    pool.new_page(3, PageType.LEAF, ctx)  # evicts page 1 (dirty)
    assert store.writes == [1]
    # The evicted page can be re-read from the store.
    page = pool.get_page(ctx, 1)
    assert page.get(1) == b"x"


def test_default_pool_drops_dirty_pages_silently():
    store = _RecordingStore()
    pool = BufferPool(2, store, writeback=False)
    ctx = OpContext(0.0)
    a = pool.new_page(1, PageType.LEAF, ctx)
    a.insert(1, b"x", 1)
    pool.new_page(2, PageType.LEAF, ctx)
    pool.new_page(3, PageType.LEAF, ctx)
    assert store.writes == []  # PolarDB mode: storage rebuilds from redo


def test_clean_pages_evict_without_writeback():
    store = _RecordingStore()
    pool = BufferPool(2, store, writeback=True)
    ctx = OpContext(0.0)
    page = pool.new_page(1, PageType.LEAF, ctx)
    page.drain_mods()
    page.dirty = False
    pool.new_page(2, PageType.LEAF, ctx)
    pool.new_page(3, PageType.LEAF, ctx)
    assert store.writes == []


def test_device_parallelism_allows_concurrent_service():
    spec = dataclasses.replace(
        P5510, logical_capacity=32 * MiB, physical_capacity=32 * MiB,
        jitter_sigma=0.0,
    )
    serial = PlainSSD(spec, parallelism=1)
    parallel = PlainSSD(spec, parallelism=4)
    data = b"z" * (16 * KiB)
    for device in (serial, parallel):
        for i in range(4):
            device.write(0.0, i * 4, data)
    # Four simultaneous reads: the parallel device overlaps them.
    serial_done = max(
        serial.read(0.0, i * 4, 16 * KiB).done_us for i in range(4)
    )
    parallel_done = max(
        parallel.read(0.0, i * 4, 16 * KiB).done_us for i in range(4)
    )
    assert parallel_done < serial_done / 2.5
