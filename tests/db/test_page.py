"""Slotted page format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.common.units import DB_PAGE_SIZE
from repro.db.page import Page, PageType
from repro.storage.redo import RedoRecord, apply_records


def test_new_page_round_trips_through_bytes():
    page = Page.new(7, PageType.LEAF)
    parsed = Page.parse(page.to_bytes())
    assert parsed.page_no == 7
    assert parsed.page_type is PageType.LEAF
    assert parsed.n_slots == 0


def test_parse_rejects_bad_input():
    with pytest.raises(CorruptionError):
        Page.parse(b"short")
    with pytest.raises(CorruptionError):
        Page.parse(bytes(DB_PAGE_SIZE))  # zero magic


def test_insert_get():
    page = Page.new(1, PageType.LEAF)
    assert page.insert(10, b"ten", lsn=1)
    assert page.insert(5, b"five", lsn=2)
    assert page.insert(20, b"twenty", lsn=3)
    assert page.get(10) == b"ten"
    assert page.get(5) == b"five"
    assert page.get(20) == b"twenty"
    assert page.get(15) is None
    assert page.keys() == [5, 10, 20]  # kept sorted
    assert page.min_key() == 5


def test_insert_duplicate_key_rejected():
    page = Page.new(1, PageType.LEAF)
    page.insert(1, b"a", 1)
    with pytest.raises(CorruptionError):
        page.insert(1, b"b", 2)


def test_insert_until_full_returns_false():
    page = Page.new(1, PageType.LEAF)
    key = 0
    while page.insert(key, b"v" * 100, key + 1):
        key += 1
    assert key > 100  # a 16 KiB page holds >100 such records
    assert not page.fits(100)


def test_update_in_place_and_grow():
    page = Page.new(1, PageType.LEAF)
    page.insert(1, b"original--", 1)
    assert page.update(1, b"short", 2)  # shrinking update, in place
    assert page.get(1) == b"short"
    assert page.update(1, b"a much longer value than before", 3)
    assert page.get(1) == b"a much longer value than before"
    assert not page.update(99, b"x", 4)  # missing key


def test_delete_and_reinsert():
    page = Page.new(1, PageType.LEAF)
    page.insert(3, b"x", 1)
    page.insert(1, b"y", 2)
    assert page.delete(3, 3)
    assert page.get(3) is None
    assert page.keys() == [1]
    assert not page.delete(3, 4)  # already gone
    # Reinsert revives the tombstone slot.
    assert page.insert(3, b"z", 5)
    assert page.get(3) == b"z"


def test_page_lsn_advances_with_mutations():
    page = Page.new(1, PageType.LEAF)
    page.insert(1, b"a", lsn=17)
    assert page.page_lsn == 17
    page.update(1, b"b", lsn=23)
    assert page.page_lsn == 23


def test_rebuild_replaces_contents():
    page = Page.new(1, PageType.LEAF)
    for i in range(10):
        page.insert(i, b"old%d" % i, i + 1)
    page.rebuild([(100, b"new-a"), (200, b"new-b")], lsn=50)
    assert page.keys() == [100, 200]
    assert page.get(100) == b"new-a"
    assert page.get(5) is None
    assert page.page_lsn == 50


def test_mods_replay_to_identical_image():
    """The core redo property: applying the drained modifications to the
    original image reproduces the current image byte-for-byte."""
    page = Page.new(1, PageType.LEAF)
    page.drain_mods()
    before = page.to_bytes()
    page.insert(5, b"five", 1)
    page.insert(2, b"two", 2)
    page.update(5, b"FIVE", 3)
    page.delete(2, 4)
    records = [
        RedoRecord(i + 1, 1, offset, data)
        for i, (offset, data) in enumerate(page.drain_mods())
    ]
    assert apply_records(before, records) == page.to_bytes()


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.binary(min_size=1, max_size=40)),
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=50, deadline=None)
def test_page_behaves_like_dict(ops):
    """Property: a page with mixed insert/update/delete mirrors a dict."""
    page = Page.new(1, PageType.LEAF)
    model = {}
    lsn = 1
    for key, value in ops:
        if key in model:
            if value[0] % 3 == 0:
                page.delete(key, lsn)
                del model[key]
            else:
                if page.update(key, value, lsn):
                    model[key] = value
        else:
            if page.insert(key, value, lsn):
                model[key] = value
        lsn += 1
    assert sorted(page.keys()) == sorted(model)
    for key, value in model.items():
        assert page.get(key) == value


@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.binary(min_size=1, max_size=60)),
        min_size=1,
        max_size=100,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=50, deadline=None)
def test_mods_replay_property(ops):
    """Property: redo replay reproduces the page for arbitrary inserts."""
    page = Page.new(1, PageType.LEAF)
    page.drain_mods()
    before = page.to_bytes()
    applied = 0
    for key, value in ops:
        if page.insert(key, value, applied + 1):
            applied += 1
    records = [
        RedoRecord(i + 1, 1, offset, data)
        for i, (offset, data) in enumerate(page.drain_mods())
    ]
    assert apply_records(before, records) == page.to_bytes()
