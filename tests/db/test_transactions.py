"""Multi-statement transactions: group commit and rollback."""

import pytest

from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.db.database import PolarDB
from repro.storage.node import NodeConfig


def make_db():
    db = PolarDB(config=NodeConfig(), volume_bytes=128 * MiB, ro_nodes=0,
                 buffer_pool_pages=64, seed=17)
    db.create_table("t")
    return db


def value_for(key, tag=b""):
    return (b"txn-row-%010d-" % key) + tag + b"x" * 60


def test_commit_makes_all_statements_visible():
    db = make_db()
    txn = db.rw.begin(0.0)
    txn.insert("t", 1, value_for(1))
    txn.insert("t", 2, value_for(2))
    txn.update("t", 1, value_for(1, b"v2"))
    done = txn.commit()
    assert done > 0
    assert db.select(done, "t", 1).value == value_for(1, b"v2")
    assert db.select(done, "t", 2).value == value_for(2)


def test_commit_is_one_replicated_redo_write():
    db = make_db()
    before = len(db.store.redo_commit_stats)
    txn = db.rw.begin(0.0)
    for key in range(5):
        txn.insert("t", key, value_for(key))
    txn.commit()
    # Five statements, exactly one group-commit round trip.
    assert len(db.store.redo_commit_stats) == before + 1


def test_rollback_restores_previous_values():
    db = make_db()
    now = db.insert(0.0, "t", 1, value_for(1)).done_us
    txn = db.rw.begin(now)
    txn.update("t", 1, value_for(1, b"doomed"))
    txn.insert("t", 2, value_for(2))
    txn.rollback()
    assert db.select(now + 1e3, "t", 1).value == value_for(1)
    assert db.select(now + 1e3, "t", 2).value is None


def test_rollback_ships_no_redo():
    db = make_db()
    now = db.insert(0.0, "t", 1, value_for(1)).done_us
    before = len(db.store.redo_commit_stats)
    txn = db.rw.begin(now)
    txn.update("t", 1, value_for(1, b"nope"))
    txn.rollback()
    assert len(db.store.redo_commit_stats) == before


def test_rollback_across_page_splits():
    """A transaction that causes splits rolls back cleanly: old keys keep
    their values, new keys vanish, and the tree still works afterwards."""
    db = make_db()
    now = 0.0
    for key in range(0, 200, 2):  # pre-existing even keys
        now = db.insert(now, "t", key, value_for(key)).done_us
    txn = db.rw.begin(now)
    for key in range(1, 399, 2):  # odd keys force splits
        txn.insert("t", key, value_for(key, b"tmp"))
    txn.rollback()
    for key in range(0, 200, 20):
        assert db.select(now + 1e4, "t", key).value == value_for(key)
    assert db.select(now + 1e4, "t", 33).value is None
    # The tree remains fully usable after the rolled-back splits.
    done = db.insert(now + 2e4, "t", 1001, value_for(1001)).done_us
    assert db.select(done, "t", 1001).value == value_for(1001)


def test_committed_data_survives_storage_consolidation():
    db = make_db()
    txn = db.rw.begin(0.0)
    for key in range(30):
        txn.insert("t", key, value_for(key))
    done = txn.commit()
    db.checkpoint(done)  # fold txn redo into pages at the storage layer
    fresh = PolarDB(store=db.store, buffer_pool_pages=64)
    fresh.rw.trees = db.rw.trees
    assert fresh.select(done + 1e4, "t", 17).value == value_for(17)


def test_terminal_states_are_final():
    db = make_db()
    txn = db.rw.begin(0.0)
    txn.insert("t", 1, value_for(1))
    txn.commit()
    with pytest.raises(ReproError):
        txn.insert("t", 2, value_for(2))
    with pytest.raises(ReproError):
        txn.rollback()

    txn2 = db.rw.begin(1e5)
    txn2.rollback()
    with pytest.raises(ReproError):
        txn2.commit()


def test_select_inside_transaction_sees_own_writes():
    db = make_db()
    txn = db.rw.begin(0.0)
    txn.insert("t", 5, value_for(5))
    assert txn.select("t", 5).value == value_for(5)
    txn.rollback()
    assert db.select(1e4, "t", 5).value is None


def test_empty_transaction_commit_is_free():
    db = make_db()
    before = len(db.store.redo_commit_stats)
    txn = db.rw.begin(0.0)
    txn.commit()
    assert len(db.store.redo_commit_stats) == before
