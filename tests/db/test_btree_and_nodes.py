"""B+tree, RW/RO nodes, and end-to-end storage consolidation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.db.bufferpool import BufferPool, OpContext
from repro.db.database import PolarDB
from repro.db.page import PageType
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore


def make_db(**kwargs):
    kwargs.setdefault("volume_bytes", 128 * MiB)
    kwargs.setdefault("ro_nodes", 1)
    db = PolarDB(**kwargs)
    db.create_table("t")
    return db


def value_for(key, size=80):
    base = b"row-%010d|" % key
    return (base * (size // len(base) + 1))[:size]


# --------------------------------------------------------------------- #
# B+tree                                                                 #
# --------------------------------------------------------------------- #


def test_insert_and_point_select():
    db = make_db()
    now = 0.0
    for key in [5, 1, 9, 3, 7]:
        now = db.insert(now, "t", key, value_for(key)).done_us
    for key in [1, 3, 5, 7, 9]:
        result = db.select(now, "t", key)
        assert result.value == value_for(key)
    assert db.select(now, "t", 2).value is None


def test_tree_splits_and_stays_correct():
    db = make_db()
    now = 0.0
    keys = list(range(500))
    random.Random(0).shuffle(keys)
    for key in keys:
        now = db.insert(now, "t", key, value_for(key)).done_us
    assert db.rw.tree("t").height >= 2  # must have split
    for key in random.Random(1).sample(keys, 50):
        assert db.select(now, "t", key).value == value_for(key)


def test_range_scan():
    db = make_db()
    now = 0.0
    for key in range(200):
        now = db.insert(now, "t", key, value_for(key)).done_us
    result = db.range_select(now, "t", 50, 59)
    assert result.value == b"".join(value_for(k) for k in range(50, 60))


def test_update_and_delete_through_tree():
    db = make_db()
    now = 0.0
    for key in range(100):
        now = db.insert(now, "t", key, value_for(key)).done_us
    now = db.update(now, "t", 42, b"updated!" * 10).done_us
    assert db.select(now, "t", 42).value == b"updated!" * 10
    now = db.delete(now, "t", 42).done_us
    assert db.select(now, "t", 42).value is None
    with pytest.raises(ReproError):
        db.delete(now, "t", 42)
    with pytest.raises(ReproError):
        db.update(now, "t", 9999, b"x")


def test_bulk_load_then_verify():
    db = make_db()
    rows = [(k, value_for(k)) for k in range(1000)]
    now = db.bulk_load(0.0, "t", rows)
    for key in (0, 123, 999):
        assert db.select(now, "t", key).value == value_for(key)


@given(st.lists(st.integers(0, 10_000), unique=True, min_size=1, max_size=300))
@settings(max_examples=20, deadline=None)
def test_tree_orders_arbitrary_keys(keys):
    db = make_db()
    now = 0.0
    for key in keys:
        now = db.insert(now, "t", key, value_for(key, 40)).done_us
    sample = keys if len(keys) <= 30 else random.Random(2).sample(keys, 30)
    for key in sample:
        assert db.select(now, "t", key).value == value_for(key, 40)


# --------------------------------------------------------------------- #
# Redo flow: evicted pages are rebuilt by storage                        #
# --------------------------------------------------------------------- #


def test_evicted_pages_are_reconstructed_from_redo():
    """The defining property of the architecture: the RW node never writes
    pages, yet after cache eviction the storage layer serves pages that
    contain every committed row (consolidated from redo)."""
    db = make_db(buffer_pool_pages=4)  # tiny pool forces evictions
    now = 0.0
    for key in range(300):
        now = db.insert(now, "t", key, value_for(key)).done_us
    # Fresh reads must see everything even though most pages were evicted.
    for key in random.Random(3).sample(range(300), 40):
        assert db.select(now, "t", key).value == value_for(key)


def test_ro_node_reads_through_storage():
    db = make_db(buffer_pool_pages=64)
    now = 0.0
    for key in range(200):
        now = db.insert(now, "t", key, value_for(key)).done_us
    for key in (0, 57, 199):
        result = db.select(now, "t", key, ro_index=0)
        assert result.value == value_for(key)


def test_ro_node_miss_costs_more_than_hit():
    db = make_db()
    now = 0.0
    for key in range(50):
        now = db.insert(now, "t", key, value_for(key)).done_us
    cold = db.select(now, "t", 25, ro_index=0)
    warm = db.select(cold.done_us, "t", 25, ro_index=0)
    assert cold.io_reads > 0
    assert warm.io_reads == 0
    assert warm.latency_us(cold.done_us) < cold.latency_us(now)


def test_insert_latency_includes_redo_commit():
    db = make_db()
    result = db.insert(0.0, "t", 1, value_for(1))
    # Must at least pay the execute CPU + replicated Optane write.
    assert result.latency_us(0.0) > 30.0
    assert result.redo_bytes > 0


def test_select_generates_no_redo():
    db = make_db()
    now = db.insert(0.0, "t", 1, value_for(1)).done_us
    before = db.rw.current_lsn
    db.select(now, "t", 1)
    assert db.rw.current_lsn == before


def test_compression_ratio_of_loaded_database():
    db = make_db()
    rows = [(k, value_for(k, 120)) for k in range(2000)]
    now = db.bulk_load(0.0, "t", rows)
    db.checkpoint(now)  # materialize pages at the storage layer
    assert db.compression_ratio() > 2.0
    assert db.physical_bytes < db.logical_bytes


def test_duplicate_table_rejected():
    db = make_db()
    with pytest.raises(ReproError):
        db.create_table("t")


def test_bufferpool_hit_tracking():
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB)
    pool = BufferPool(8, store)
    page = pool.new_page(1, PageType.LEAF)
    ctx = OpContext(0.0)
    assert pool.get_page(ctx, 1) is page
    assert ctx.io_reads == 0  # hit
