"""Fault injection (Fig 8) and host-FTL accounting (§4.1.1)."""

import numpy as np
import pytest

from repro.common.units import GiB
from repro.csd.faults import (
    PLAIN_SSD_FAULTS,
    POLARCSD1_FAULTS,
    POLARCSD2_FAULTS,
    FaultCause,
    FaultProfile,
    profile_for,
)
from repro.csd.host_ftl import (
    CPU_CORES_PER_DEVICE,
    contention_risk,
    host_ftl_footprint,
)
from repro.csd.specs import OPTANE_P4800X, P4510, POLARCSD1, POLARCSD2


def _tail_fraction(profile, n, is_read, threshold_us=4000.0, seed=0):
    rng = np.random.default_rng(seed)
    extra = profile.sample_extra_us(rng, n, is_read)
    return float((extra > threshold_us).mean())


def test_gen1_tail_is_roughly_37x_gen2():
    """Figure 8: PolarCSD1.0 shows ~36.7× more ≥4 ms reads and ~38.8× more
    ≥4 ms writes than PolarCSD2.0."""
    n = 4_000_000
    gen1_read = _tail_fraction(POLARCSD1_FAULTS, n, is_read=True)
    gen2_read = _tail_fraction(POLARCSD2_FAULTS, n, is_read=True)
    gen1_write = _tail_fraction(POLARCSD1_FAULTS, n, is_read=False)
    gen2_write = _tail_fraction(POLARCSD2_FAULTS, n, is_read=False)
    assert gen2_read > 0
    assert gen2_write > 0
    assert 10 < gen1_read / gen2_read < 120
    assert 10 < gen1_write / gen2_write < 120


def test_gen2_absolute_rates_land_near_paper():
    n = 8_000_000
    read = _tail_fraction(POLARCSD2_FAULTS, n, is_read=True)
    write = _tail_fraction(POLARCSD2_FAULTS, n, is_read=False)
    # Paper: 7.91e-7 reads, 1.05e-6 writes; allow generous sampling slack.
    assert 1e-7 < read < 5e-6
    assert 2e-7 < write < 6e-6


def test_spikes_are_rare():
    rng = np.random.default_rng(1)
    extra = POLARCSD1_FAULTS.sample_extra_us(rng, 100_000, is_read=True)
    assert (extra > 0).mean() < 1e-3


def test_sample_one_matches_vector_api():
    rng = np.random.default_rng(2)
    value = POLARCSD1_FAULTS.sample_one_us(rng, is_read=True)
    assert value >= 0.0


def test_profile_lookup():
    assert profile_for(POLARCSD1.name) is POLARCSD1_FAULTS
    assert profile_for(POLARCSD2.name) is POLARCSD2_FAULTS
    assert profile_for(OPTANE_P4800X.name) is None
    assert profile_for(P4510.name) is PLAIN_SSD_FAULTS


def test_host_ftl_footprint_matches_paper():
    footprint = host_ftl_footprint(POLARCSD1, devices=12)
    assert footprint.dram_gib == pytest.approx(184.32, rel=1e-6)
    assert footprint.cpu_cores == 12 * CPU_CORES_PER_DEVICE == 24


def test_device_managed_ftl_has_no_host_footprint():
    footprint = host_ftl_footprint(POLARCSD2, devices=12)
    assert footprint.dram_bytes == 0
    assert footprint.cpu_cores == 0


def test_contention_risk_monotone_in_devices():
    host_dram = 256 * GiB
    host_cores = 32
    small = contention_risk(host_ftl_footprint(POLARCSD1, 6), host_dram, host_cores)
    large = contention_risk(host_ftl_footprint(POLARCSD1, 12), host_dram, host_cores)
    assert small < large
    assert large > 0.7  # 12 gen-1 devices nearly exhaust a 256 GiB host


def test_contention_risk_validates_inputs():
    footprint = host_ftl_footprint(POLARCSD1, 1)
    with pytest.raises(ValueError):
        contention_risk(footprint, 0, 10)


# -- sample_extra_us edge cases ------------------------------------------------


def _profile(read_p, write_p=None, median_us=5_000.0):
    write_p = read_p if write_p is None else write_p
    return FaultProfile(
        name="edge",
        read_causes=(FaultCause("r", read_p, median_us=median_us, sigma=0.5),),
        write_causes=(
            FaultCause("w", write_p, median_us=median_us, sigma=0.5),
        ),
    )


def test_sample_extra_us_count_zero_returns_empty():
    profile = _profile(0.5)
    for is_read in (True, False):
        extra = profile.sample_extra_us(
            np.random.default_rng(0), 0, is_read
        )
        assert extra.shape == (0,)
        assert extra.sum() == 0.0


def test_sample_extra_us_probability_zero_never_spikes():
    profile = _profile(0.0)
    extra = profile.sample_extra_us(np.random.default_rng(0), 4096, True)
    assert not extra.any()


def test_sample_extra_us_probability_one_always_spikes():
    profile = _profile(1.0)
    extra = profile.sample_extra_us(np.random.default_rng(0), 1024, False)
    assert (extra > 0.0).all()
    # Lognormal around the median: the sample median lands near it.
    assert 2_500.0 < float(np.median(extra)) < 10_000.0


def test_sample_extra_us_deterministic_under_fixed_seed():
    profile = _profile(0.3)
    a = profile.sample_extra_us(np.random.default_rng(9), 512, True)
    b = profile.sample_extra_us(np.random.default_rng(9), 512, True)
    assert np.array_equal(a, b)


def test_read_and_write_causes_are_independent():
    profile = _profile(read_p=1.0, write_p=0.0)
    rng = np.random.default_rng(0)
    assert profile.sample_extra_us(rng, 64, True).all()
    assert not profile.sample_extra_us(rng, 64, False).any()
