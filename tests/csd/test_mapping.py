"""L2P entry codecs and the paper's DRAM arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import GiB, TiB
from repro.csd.mapping import (
    BASE_ENTRY_BYTES,
    L2PEntryCodecV1,
    L2PEntryCodecV2,
    MAPPING_LBA_SIZE,
    ftl_dram_bytes,
)

v1 = L2PEntryCodecV1()
v2 = L2PEntryCodecV2()


def test_entry_sizes_match_paper():
    # §3.2.2: 5-byte base + 3 bytes (12-bit offset + 12-bit length) = 8 B.
    assert v1.entry_bytes == BASE_ENTRY_BYTES + 3
    # §4.1.2: gen-2 encodes offset+length in 2 bytes = 7 B.
    assert v2.entry_bytes == BASE_ENTRY_BYTES + 2


def test_gen1_dram_footprint_matches_paper():
    # §4.1.1: 7.68 TB × 8 B / 4 KB = 15.36 GB per device.
    per_device = ftl_dram_bytes(int(7.68 * TiB), v1.entry_bytes)
    assert per_device == pytest.approx(15.36 * GiB, rel=1e-6)
    # 12 devices ≈ 184.32 GB per host.
    assert 12 * per_device == pytest.approx(184.32 * GiB, rel=1e-6)


def test_gen2_exposes_more_logical_space_with_same_dram():
    gen1_dram = ftl_dram_bytes(int(7.68 * TiB), v1.entry_bytes)
    gen2_dram = ftl_dram_bytes(int(9.60 * TiB), v2.entry_bytes)
    # §4.1.2: the 7-byte entry lets 9.6 TB logical fit in ~the same DRAM.
    assert gen2_dram <= gen1_dram * 1.10


@given(
    frame=st.integers(0, (1 << 40) - 1),
    offset=st.integers(0, MAPPING_LBA_SIZE - 1),
    length=st.integers(1, MAPPING_LBA_SIZE),
)
@settings(max_examples=200, deadline=None)
def test_v1_round_trip(frame, offset, length):
    entry = v1.decode(v1.encode(frame, offset, length))
    assert (entry.frame, entry.offset, entry.length) == (frame, offset, length)


@given(
    frame=st.integers(0, (1 << 40) - 1),
    offset_units=st.integers(0, MAPPING_LBA_SIZE // 16 - 1),
    length=st.integers(1, MAPPING_LBA_SIZE),
)
@settings(max_examples=200, deadline=None)
def test_v2_round_trip_with_granularity(frame, offset_units, length):
    offset = offset_units * 16
    entry = v2.decode(v2.encode(frame, offset, length))
    assert entry.frame == frame
    assert entry.offset == offset
    # Length is recovered at 16-byte granularity, always >= actual.
    assert entry.length >= length
    assert entry.length - length < 16
    assert entry.length == v2.stored_length(length)


def test_v1_stored_length_is_exact():
    assert v1.stored_length(1) == 1
    assert v1.stored_length(4096) == 4096


def test_v2_stored_length_rounds_to_16():
    assert v2.stored_length(1) == 16
    assert v2.stored_length(16) == 16
    assert v2.stored_length(17) == 32
    assert v2.stored_length(4096) == 4096


def test_v2_rejects_unaligned_offset():
    with pytest.raises(ValueError):
        v2.encode(0, 7, 100)


@pytest.mark.parametrize("codec", [v1, v2])
def test_bounds_checks(codec):
    with pytest.raises(ValueError):
        codec.encode(1 << 40, 0, 100)
    with pytest.raises(ValueError):
        codec.encode(0, MAPPING_LBA_SIZE, 100)
    with pytest.raises(ValueError):
        codec.encode(0, 0, 0)
    with pytest.raises(ValueError):
        codec.encode(0, 0, MAPPING_LBA_SIZE + 1)
    with pytest.raises(ValueError):
        codec.decode(b"\x00" * 3)


def test_gen2_waste_is_bounded():
    """Coarsening to 16-byte offsets wastes at most 15 bytes per block —
    under 0.4% of a 4 KiB block, the trade §4.1.2 accepts."""
    worst = max(v2.stored_length(n) - n for n in range(1, 4097))
    assert worst == 15
