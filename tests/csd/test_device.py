"""Device models: data integrity, latency orderings, space accounting."""

import random

import pytest

from repro.common.errors import DeviceError
from repro.common.units import KiB, MiB
from repro.csd.device import PlainSSD, PolarCSD
from repro.csd.specs import (
    OPTANE_P4800X,
    P4510,
    P5510,
    POLARCSD1,
    POLARCSD2,
    DeviceSpec,
)
import dataclasses


def quiet(spec: DeviceSpec) -> DeviceSpec:
    """Spec with jitter disabled for deterministic latency assertions."""
    return dataclasses.replace(spec, jitter_sigma=0.0)


def make_csd(spec=POLARCSD2, **kwargs):
    kwargs.setdefault("physical_capacity", 16 * MiB)
    kwargs.setdefault("block_capacity", 1 * MiB)
    return PolarCSD(quiet(spec), **kwargs)


def _compressible(size, seed=0):
    rng = random.Random(seed)
    words = [b"order", b"customer", b"balance", b"state", b"2026"]
    out = bytearray()
    while len(out) < size:
        out += rng.choice(words) + b","
    return bytes(out[:size])


def test_plain_ssd_round_trip():
    dev = PlainSSD(quiet(P4510))
    data = _compressible(16 * KiB)
    dev.write(0.0, lba=8, data=data)
    completion = dev.read(100.0, lba=8, nbytes=16 * KiB)
    assert completion.data == data
    assert completion.latency_us > 0


def test_plain_ssd_rejects_unaligned_io():
    dev = PlainSSD(quiet(P4510))
    with pytest.raises(DeviceError):
        dev.write(0.0, 0, b"x" * 1000)
    with pytest.raises(DeviceError):
        dev.read(0.0, 0, 1000)


def test_plain_ssd_read_of_unwritten_lba_fails():
    with pytest.raises(DeviceError):
        PlainSSD(quiet(P4510)).read(0.0, 42, 4096)


def test_csd_round_trip_and_compression():
    dev = make_csd()
    data = _compressible(16 * KiB)
    dev.write(0.0, lba=0, data=data)
    completion = dev.read(50.0, lba=0, nbytes=16 * KiB)
    assert completion.data == data
    # Physically the CSD stored far less than 16 KiB.
    assert dev.physical_used_bytes < len(data) / 2
    assert dev.compression_ratio > 2.0
    assert dev.logical_used_bytes == 16 * KiB


def test_csd_incompressible_data_stores_full_size():
    dev = make_csd()
    data = random.Random(3).randbytes(16 * KiB)
    dev.write(0.0, 0, data)
    assert dev.physical_used_bytes >= 15 * KiB
    assert dev.read(1.0, 0, 16 * KiB).data == data


def test_csd_write_faster_than_plain_read_slower():
    """Figure 7's qualitative result on compressible data: the CSD writes
    faster than the plain SSD of the same PCIe generation (fewer NAND bytes,
    write-buffer ack) but reads slower (decompression + indirection)."""
    csd = make_csd(POLARCSD2)
    ssd = PlainSSD(quiet(P5510))
    data = _compressible(16 * KiB)
    csd_write = csd.write(0.0, 0, data).latency_us
    ssd_write = ssd.write(0.0, 0, data).latency_us
    csd_read = csd.read(1000.0, 0, 16 * KiB).latency_us
    ssd_read = ssd.read(1000.0, 0, 16 * KiB).latency_us
    assert csd_write < ssd_write
    assert csd_read > ssd_read


def test_csd_latency_improves_with_compressibility():
    """Figure 7: higher compression ratios mean fewer NAND bytes and lower
    latency on the CSD."""
    incompressible = random.Random(1).randbytes(16 * KiB)
    compressible = _compressible(16 * KiB)
    dev = make_csd()
    hard = dev.write(0.0, 0, incompressible).latency_us
    easy = dev.write(10_000.0, 4, compressible).latency_us
    assert easy < hard
    hard_read = dev.read(20_000.0, 0, 16 * KiB).latency_us
    easy_read = dev.read(30_000.0, 4, 16 * KiB).latency_us
    assert easy_read < hard_read


def test_optane_is_fast_and_stable():
    optane = PlainSSD(quiet(OPTANE_P4800X))
    ssd = PlainSSD(quiet(P4510))
    data = _compressible(16 * KiB)
    assert optane.write(0.0, 0, data).latency_us < ssd.write(0.0, 0, data).latency_us / 2
    assert optane.read(1e3, 0, 16 * KiB).latency_us < ssd.read(1e3, 0, 16 * KiB).latency_us / 4


def test_pcie4_devices_beat_pcie3():
    data = _compressible(16 * KiB)
    gen3 = PlainSSD(quiet(P4510)).read(0.0, 0, 4096) if False else None
    p4510 = PlainSSD(quiet(P4510))
    p5510 = PlainSSD(quiet(P5510))
    p4510.write(0.0, 0, data)
    p5510.write(0.0, 0, data)
    assert (
        p5510.read(1e3, 0, 16 * KiB).latency_us
        < p4510.read(1e3, 0, 16 * KiB).latency_us
    )


def test_queueing_increases_latency_under_depth():
    dev = PlainSSD(quiet(P4510))
    data = _compressible(16 * KiB)
    dev.write(0.0, 0, data)
    # Two reads issued at the same instant: the second queues.
    first = dev.read(0.0, 0, 16 * KiB)
    second = dev.read(0.0, 0, 16 * KiB)
    assert second.done_us > first.done_us
    assert second.latency_us > first.latency_us


def test_csd_trim_releases_physical_space():
    dev = make_csd()
    dev.write(0.0, 0, _compressible(16 * KiB))
    before = dev.physical_used_bytes
    dev.trim(0, 16 * KiB)
    assert dev.physical_used_bytes < before
    assert dev.physical_used_bytes == 0


def test_csd_sustained_overwrites_trigger_gc():
    dev = make_csd(physical_capacity=1 * MiB, block_capacity=128 * KiB)
    rng = random.Random(7)
    data = [_compressible(16 * KiB, seed=s) for s in range(8)]
    now = 0.0
    for i in range(600):
        lba = rng.randrange(48) * 4
        completion = dev.write(now, lba, rng.choice(data))
        now = completion.done_us
    assert dev.ftl.stats.gc_runs > 0
    # Data integrity after heavy GC.
    check = dev.read(now, 0, 16 * KiB)
    assert len(check.data) == 16 * KiB


def test_plain_device_rejects_csd_construction():
    with pytest.raises(DeviceError):
        PolarCSD(quiet(P4510))
