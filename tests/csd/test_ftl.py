"""FTL: mapping, GC, TRIM, and space-accounting invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DeviceError, OutOfSpaceError
from repro.common.units import KiB, MiB
from repro.csd.ftl import FTL
from repro.csd.mapping import L2PEntryCodecV2


def small_ftl(**kwargs):
    # 16 blocks of 64 KiB = 1 MiB physical.
    kwargs.setdefault("block_capacity", 64 * KiB)
    return FTL(1 * MiB, **kwargs)


def test_write_then_read_round_trips_location():
    ftl = small_ftl()
    ftl.write(lba=5, compressed_len=1000)
    block_id, offset, stored = ftl.read(5)
    assert stored == 1000
    assert ftl.nand.blocks[block_id].write_ptr >= offset + stored


def test_read_unmapped_lba_fails():
    with pytest.raises(DeviceError):
        small_ftl().read(0)


def test_rejects_bad_lengths():
    ftl = small_ftl()
    with pytest.raises(DeviceError):
        ftl.write(0, 0)
    with pytest.raises(DeviceError):
        ftl.write(0, 4097)
    with pytest.raises(DeviceError):
        ftl.write(-1, 100)


def test_overwrite_leaves_stale_bytes_and_updates_mapping():
    ftl = small_ftl()
    ftl.write(0, 2000)
    first = ftl.read(0)
    ftl.write(0, 1500)
    second = ftl.read(0)
    assert second != first
    assert ftl.live_bytes == 1500
    assert ftl.nand.written_bytes == 3500  # stale bytes remain until erase


def test_byte_granular_packing():
    """Several compressed payloads pack into one 4 KiB frame-worth of NAND,
    which is the whole point of byte-granular PBAs."""
    ftl = small_ftl()
    for lba in range(8):
        ftl.write(lba, 500)
    assert ftl.live_bytes == 4000
    # All 8 payloads landed in one erase block.
    used_blocks = {ftl.read(lba)[0] for lba in range(8)}
    assert len(used_blocks) == 1


def test_trim_reclaims_space():
    ftl = small_ftl()
    ftl.write(0, 3000)
    ftl.trim(0)
    assert not ftl.is_mapped(0)
    assert ftl.live_bytes == 0
    assert ftl.stats.trims == 1
    ftl.trim(0)  # idempotent
    assert ftl.stats.trims == 1


def test_disabled_trim_leaves_ghost_bytes():
    ftl = small_ftl(trim_enabled=False)
    ftl.write(0, 3000)
    ftl.write(1, 1000)
    ftl.trim(0)
    # Device still believes LBA 0 is live.
    assert ftl.live_bytes == 4000
    assert ftl.host_live_bytes == 1000
    assert ftl.untrimmed_ghost_bytes == 3000


def test_enable_trim_releases_ghosts():
    ftl = small_ftl(trim_enabled=False)
    ftl.write(0, 3000)
    ftl.trim(0)
    ftl.enable_trim()
    assert ftl.live_bytes == 0
    assert ftl.untrimmed_ghost_bytes == 0


def test_overwrite_of_untrimmed_lba_clears_ghost():
    ftl = small_ftl(trim_enabled=False)
    ftl.write(0, 3000)
    ftl.trim(0)
    ftl.write(0, 800)
    assert ftl.untrimmed_ghost_bytes == 0
    assert ftl.host_live_bytes == 800


def test_gc_reclaims_stale_space_under_overwrites():
    ftl = small_ftl()
    rng = random.Random(0)
    # Keep ~40% of physical space live but overwrite constantly: GC must
    # keep up indefinitely.
    for _ in range(3000):
        ftl.write(rng.randrange(100), rng.randint(2000, 4096))
    assert ftl.stats.gc_runs > 0
    assert ftl.stats.write_amplification > 1.0
    assert ftl.live_bytes <= 100 * 4096


def test_gc_preserves_all_mappings():
    ftl = small_ftl()
    rng = random.Random(1)
    expected = {}
    for _ in range(2000):
        lba = rng.randrange(64)
        length = rng.randint(100, 4096)
        ftl.write(lba, length)
        expected[lba] = length
    for lba, length in expected.items():
        assert ftl.read(lba)[2] == length
    assert ftl.live_bytes == sum(expected.values())


def test_out_of_space_when_truly_full():
    ftl = small_ftl()
    with pytest.raises(OutOfSpaceError):
        for lba in range(100000):
            ftl.write(lba, 4096)  # all live, nothing reclaimable


def test_gc_policy_validation():
    with pytest.raises(ValueError):
        small_ftl(gc_policy="oracle")


def test_cost_benefit_policy_reclaims_correctly():
    ftl = small_ftl(gc_policy="cost-benefit")
    rng = random.Random(4)
    expected = {}
    for _ in range(2500):
        lba = rng.randrange(80)
        length = rng.randint(500, 4096)
        ftl.write(lba, length)
        expected[lba] = length
    assert ftl.stats.gc_runs > 0
    for lba, length in expected.items():
        assert ftl.read(lba)[2] == length
    assert ftl.live_bytes == sum(expected.values())


def test_policies_diverge_in_victim_choice():
    """Under hot/cold skew the two policies pick different victims (age
    matters to cost-benefit), yet both preserve every mapping."""
    results = {}
    for policy in ("greedy", "cost-benefit"):
        ftl = FTL(512 * KiB, block_capacity=32 * KiB, gc_policy=policy)
        rng = random.Random(9)
        for i in range(1500):
            # LBA 0-3 are blisteringly hot; 4-40 are cold.
            lba = rng.randrange(4) if rng.random() < 0.8 else rng.randrange(4, 40)
            ftl.write(lba, rng.randint(1000, 4000))
        results[policy] = ftl.stats.gc_relocated_bytes
    assert all(v >= 0 for v in results.values())


def test_v2_codec_rounds_stored_lengths():
    ftl = small_ftl(codec=L2PEntryCodecV2())
    ftl.write(0, 1001)
    assert ftl.read(0)[2] == 1008  # next 16-byte multiple
    assert ftl.live_bytes == 1008


@given(
    st.lists(
        st.tuples(st.integers(0, 31), st.integers(1, 4096)),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=50, deadline=None)
def test_space_accounting_invariant(ops):
    """live_bytes always equals the sum of current mappings' stored sizes,
    regardless of the overwrite/GC history."""
    ftl = FTL(512 * KiB, block_capacity=32 * KiB)
    current = {}
    for lba, length in ops:
        ftl.write(lba, length)
        current[lba] = length
    assert ftl.live_bytes == sum(current.values())
    assert ftl.mapped_lbas == len(current)
    # No block ever exceeds its capacity and live <= written everywhere.
    for block in ftl.nand.blocks:
        assert 0 <= block.live_bytes <= block.write_ptr <= block.capacity
