"""Golden A/B: the policy refactor changed nothing on the default path.

Two independent equivalence proofs:

1. **Wrapper transparency** — the pinned perf scenarios fingerprint
   identically whether nodes get the default :class:`SingleLevelPolicy`
   or the raw pre-refactor log stores (``make_policy`` monkeypatched
   away).  Same bytes, same simulated times, same metrics.

2. **Scheduler transparency** — a daemon-driven engine scenario
   fingerprints identically under the new ``consolidator_proc`` (the
   :class:`CompactionScheduler`) and under a verbatim copy of the
   pre-refactor consolidator loop.
"""

import hashlib
import itertools
import random

import repro.storage.store as store_mod
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.engine import Engine
from repro.perf import harness
from repro.storage.background import scrubber_proc, start_background
from repro.storage.node import NodeConfig
from repro.storage.perpage_log import PerPageLogStore, ScatteredLogStore
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


def _scenario_fingerprint(scenario):
    # Node names feed metric labels; reset the counter so both A/B legs
    # name their nodes identically inside one process.
    store_mod._node_counter = itertools.count()
    return harness._timed(scenario, quick=True).fingerprint


def _raw_make_policy(consolidation, node_config, device, allocator):
    """The pre-refactor constructor path: a bare log store, no policy."""
    if node_config.opt_per_page_log:
        return PerPageLogStore(device, allocator)
    return ScatteredLogStore(device, allocator)


def test_pinned_scenarios_identical_with_raw_stores(monkeypatch):
    scenarios = (harness.scenario_sysbench8, harness.scenario_chaos_smoke)
    wrapped = [_scenario_fingerprint(s) for s in scenarios]
    monkeypatch.setattr("repro.storage.node.make_policy", _raw_make_policy)
    raw = [_scenario_fingerprint(s) for s in scenarios]
    assert wrapped == raw


# --------------------------------------------------------------------- #
# Scheduler vs the pre-refactor consolidator loop                        #
# --------------------------------------------------------------------- #


def _legacy_consolidator_proc(store, engine, period_us):
    """Verbatim copy of consolidator_proc as of the pre-refactor commit."""
    cycles = store.metrics.counter("storage.background.consolidate_cycles")
    while True:
        yield engine.timeout(period_us)
        for i, node in enumerate(store.nodes):
            if not store._alive[i]:
                continue
            done = node.consolidate_pending(engine.now_us)
            if done > engine.now_us:
                yield engine.sleep_until(done)
        cycles.inc()


def _make_page(seed):
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += b"row|%08d|" % rng.randrange(10**8)
    return bytes(out[:DB_PAGE_SIZE])


def _daemon_fingerprint(spawn_daemons):
    """Engine scenario under background daemons started by the callable."""
    store_mod._node_counter = itertools.count()
    store = PolarStore(
        NodeConfig(redo_cache_bytes=8 * 1024), volume_bytes=64 * MiB, seed=9
    )
    now = 0.0
    for i in range(8):
        now = store.write_page(now, i, _make_page(i)).commit_us
    engine = Engine(start_us=now)
    store.bind_engine(engine)
    procs = spawn_daemons(store, engine)
    rng = random.Random(4)
    digest = hashlib.sha256()

    def client():
        for step in range(40):
            yield engine.timeout(700.0)
            page = step % 8
            store.write_redo(
                engine.now_us,
                [RedoRecord(100 + step, page,
                            (step * 96) % (DB_PAGE_SIZE - 128),
                            rng.randbytes(96))],
            )
            if step % 5 == 0:
                result = store.read_page(engine.now_us, page)
                digest.update(result.data)
                digest.update(b"%.6f" % result.done_us)

    engine.run_until_complete([engine.spawn(client())])
    digest.update(b"%.6f" % engine.now_us)
    for proc in procs:
        proc.cancel()
    digest.update(harness._metrics_digest(store.metrics).encode())
    return digest.hexdigest()


def test_scheduler_matches_legacy_consolidator_loop():
    def new_daemons(store, engine):
        return start_background(
            store, engine,
            scrub_period_us=9_000.0, consolidate_period_us=2_000.0,
        )

    def legacy_daemons(store, engine):
        # Same spawn order and names as the pre-refactor start_background.
        return [
            engine.spawn(
                scrubber_proc(store, engine, 9_000.0), name="bg-scrubber"
            ),
            engine.spawn(
                _legacy_consolidator_proc(store, engine, 2_000.0),
                name="bg-consolidator",
            ),
        ]

    assert _daemon_fingerprint(new_daemons) == _daemon_fingerprint(
        legacy_daemons
    )
