"""Wall-clock fast path (repro.perf): correctness, not speed."""
