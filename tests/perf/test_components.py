"""Unit coverage for the fast-path building blocks (memo, pool, arena)."""

import pytest

from repro.perf.runtime import (
    configure_from_env,
    deactivate,
    perf_active,
)

from repro.compression.base import get_codec
from repro.perf.arena import PageArena
from repro.perf.memo import (
    CodecMemoCache,
    memo_key_compress,
    memo_key_decompress,
)
from repro.perf.pool import CodecPool, default_workers
from repro.perf.runtime import PerfRuntime


PAGE = (b"polar" * 4096)[: 16 * 1024]


# -- memo -------------------------------------------------------------------


def test_memo_hit_and_miss_counters():
    memo = CodecMemoCache(1 << 20)
    key = memo_key_compress("lz4", PAGE)
    assert memo.get(key) is None
    memo.put(key, (b"payload", 123))
    assert memo.get(key) == (b"payload", 123)
    stats = memo.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert 0.0 < stats["hit_rate"] < 1.0


def test_memo_keys_are_content_addressed():
    # Same bytes through different buffer types -> same key; one flipped
    # bit -> different key.  This is what makes serving corrupted bytes
    # from the memo structurally impossible.
    assert memo_key_compress("lz4", PAGE) == memo_key_compress(
        "lz4", memoryview(bytearray(PAGE))
    )
    flipped = bytearray(PAGE)
    flipped[100] ^= 0x01
    assert memo_key_compress("lz4", PAGE) != memo_key_compress(
        "lz4", flipped
    )
    assert memo_key_compress("lz4", PAGE) != memo_key_compress(
        "zstd", PAGE
    )
    assert memo_key_compress("lz4", PAGE) != memo_key_decompress(
        "lz4", PAGE
    )


def test_memo_evicts_lru_under_pressure():
    memo = CodecMemoCache(3000)
    for i in range(8):
        memo.put(("c", "lz4", bytes([i]) * 16), (bytes(900), i))
    stats = memo.stats()
    assert stats["evictions"] > 0
    assert memo.used_bytes <= 3000
    # The newest entry survived; the oldest was evicted.
    assert memo.get(("c", "lz4", bytes([7]) * 16)) is not None
    assert memo.get(("c", "lz4", bytes([0]) * 16)) is None


def test_memo_zero_capacity_disabled_in_runtime():
    runtime = PerfRuntime(memo_capacity_bytes=0)
    assert runtime.memo is None
    payload, crc = runtime.compress("lz4", PAGE)
    assert get_codec("lz4").decompress(payload) == PAGE
    assert runtime.codec_calls_saved == 0
    runtime.shutdown()


# -- pool -------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["thread", "process", "serial"])
def test_pool_roundtrip_matches_inline(kind):
    pool = CodecPool(2, kind)
    try:
        expected = get_codec("lz4").compress(PAGE)
        pending = pool.submit_compress("lz4", PAGE)
        payload, crc = pending.result()
        assert payload == expected
        back = pool.submit_decompress("lz4", payload).result()
        assert back == PAGE
        stats = pool.stats()
        assert stats["submitted"] == 2 and stats["completed"] == 2
    finally:
        pool.shutdown()


def test_pool_results_resolve_in_submission_order():
    pool = CodecPool(2, "thread")
    try:
        pages = [bytes([i]) * 16384 for i in range(6)]
        pendings = [pool.submit_compress("lz4", p) for p in pages]
        results = [p.result()[0] for p in pendings]
        assert results == [get_codec("lz4").compress(p) for p in pages]
    finally:
        pool.shutdown()


def test_default_workers_positive():
    assert default_workers() >= 1


# -- arena ------------------------------------------------------------------


def test_arena_reuses_released_buffers():
    arena = PageArena(slots=2)
    buf = arena.borrow(16 * 1024)
    assert len(buf) == 16 * 1024
    arena.release(buf)
    again = arena.borrow(16 * 1024)
    assert again is buf
    stats = arena.stats()
    assert stats["reuses"] == 1
    assert arena.reuse_rate > 0.0


def test_arena_bounded_by_slots():
    arena = PageArena(slots=1)
    a, b = arena.borrow(1024), arena.borrow(1024)
    arena.release(a)
    arena.release(b)  # beyond capacity: dropped, not hoarded
    assert arena.borrow(1024) is a
    assert arena.borrow(1024) is not b


# -- runtime orchestration --------------------------------------------------


def test_runtime_compress_is_memoized_and_correct():
    runtime = PerfRuntime(memo_capacity_bytes=1 << 20)
    try:
        first = runtime.compress("zstd", PAGE)
        second = runtime.compress("zstd", PAGE)
        assert first == second
        assert runtime.codec_calls_saved == 1
        assert get_codec("zstd").decompress(first[0]) == PAGE
    finally:
        runtime.shutdown()


def test_runtime_compress_pair_matches_serial_codecs():
    runtime = PerfRuntime(
        pool_workers=2, pool_kind="thread", memo_capacity_bytes=1 << 20
    )
    try:
        out = runtime.compress_pair(PAGE)
        assert set(out) == {"lz4", "zstd"}
        for codec_name, (payload, _crc) in out.items():
            assert payload == get_codec(codec_name).compress(PAGE)
        assert runtime.pool.stats()["batches"] == 1
        # Second evaluation of the same page is served from the memo.
        runtime.compress_pair(PAGE)
        assert runtime.codec_calls_saved == 2
    finally:
        runtime.shutdown()


def test_configure_from_env(monkeypatch):
    try:
        monkeypatch.delenv("REPRO_PERF", raising=False)
        deactivate()
        configure_from_env()
        assert perf_active() is None  # unset leaves things off
        monkeypatch.setenv("REPRO_PERF", "0")
        configure_from_env()
        assert perf_active() is None
        monkeypatch.setenv(
            "REPRO_PERF", "pool=2,memo=8,kind=thread"
        )
        configure_from_env()
        runtime = perf_active()
        assert runtime is not None
        assert runtime.pool.workers == 2
        assert runtime.pool.kind == "thread"
        assert runtime.memo.capacity_bytes == 8 * 1024 * 1024
        monkeypatch.setenv("REPRO_PERF", "pool=oops")
        with pytest.raises(ValueError):
            configure_from_env()
        monkeypatch.setenv("REPRO_PERF", "turbo=9")
        with pytest.raises(ValueError):
            configure_from_env()
    finally:
        deactivate()


def test_runtime_decompress_roundtrip():
    runtime = PerfRuntime(memo_capacity_bytes=1 << 20)
    try:
        payload = get_codec("lz4").compress(PAGE)
        assert runtime.decompress("lz4", payload, verified=True) == PAGE
        assert runtime.decompress("lz4", payload, verified=True) == PAGE
        assert runtime.codec_calls_saved == 1
    finally:
        runtime.shutdown()
