"""Golden A/B equivalence: the fast path may only change wall-clock.

Each test runs the same seeded workload twice — serial reference, then
with a configured :class:`~repro.perf.runtime.PerfRuntime` — and
asserts byte-identical outputs and identical simulated timestamps.
This is the contract everything in ``repro.perf`` hangs off: memo hits,
pooled codec calls, and zero-copy buffer handling are invisible to the
simulated universe.
"""

import hashlib
import itertools

import numpy as np
import pytest

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.perf import harness
from repro.perf.runtime import PerfRuntime, configure, deactivate
from repro.storage import store as store_mod
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


@pytest.fixture(autouse=True)
def _clean_runtime():
    deactivate()
    yield
    deactivate()


def _mixed_pages(n, seed):
    rng = np.random.default_rng(seed)
    pages = []
    for i in range(n):
        if i % 3 == 0:  # compressible: long zero runs + a stripe
            data = np.zeros(DB_PAGE_SIZE, dtype=np.uint8)
            data[:512] = rng.integers(0, 256, 512, dtype=np.uint8)
        else:
            data = rng.integers(0, 256, DB_PAGE_SIZE, dtype=np.uint8)
        pages.append(data.tobytes())
    return pages


def _store_trace():
    """One compact write/redo/checkpoint/scrub/read pass; full trace."""
    store_mod._node_counter = itertools.count()
    store = PolarStore(NodeConfig(), volume_bytes=16 * MiB, seed=11)
    trace = hashlib.sha256()
    now = 0.0
    pages = _mixed_pages(10, seed=11)
    for page_no, page in enumerate(pages):
        commit = store.write_page(now, page_no, page)
        now = commit.commit_us
        trace.update(f"w{page_no}:{now!r};".encode())
    lsn = 0
    for page_no in (0, 3, 6):
        records = []
        for k in range(3):
            lsn += 1
            records.append(RedoRecord(
                page_no=page_no, lsn=lsn, offset=128 * k,
                data=bytes([lsn]) * 64,
            ))
        now = store.write_redo(now, records)
        trace.update(f"r{page_no}:{now!r};".encode())
    now = store.checkpoint(now)
    trace.update(f"ckpt:{now!r};".encode())
    now = store.scrub(now)
    trace.update(f"scrub:{now!r};".encode())
    for page_no in range(len(pages)):
        result = store.read_page(now, page_no)
        now = result.done_us
        trace.update(f"p{page_no}:{now!r}:".encode())
        trace.update(bytes(result.data))
    trace.update(harness._metrics_digest(store.metrics).encode())
    return trace.hexdigest()


@pytest.mark.parametrize(
    "spec",
    [
        {"pool_workers": 0, "memo_capacity_bytes": 8 * MiB},
        {"pool_workers": 2, "pool_kind": "thread",
         "memo_capacity_bytes": 8 * MiB},
        {"pool_workers": 2, "pool_kind": "thread",
         "memo_capacity_bytes": 8 * MiB, "zero_copy": False},
    ],
    ids=["memo-only", "memo+pool", "no-zero-copy"],
)
def test_store_pipeline_golden(spec):
    serial = _store_trace()
    runtime = PerfRuntime(**spec)
    configure(runtime)
    fast = _store_trace()
    stats = runtime.stats()
    deactivate()
    assert fast == serial
    # The fast path actually engaged: duplicate codec work was elided.
    assert stats["codec_calls_saved"] > 0


def test_sysbench_scenario_golden():
    """The harness's own headline scenario, quick profile: the full DB
    stack (B+tree, buffer pool, group commit, checkpoint, scrub) is
    byte- and sim-time-identical under the fast path."""
    serial = harness._timed(harness.scenario_sysbench8, quick=True)
    runtime = PerfRuntime(
        pool_workers=2, pool_kind="thread", memo_capacity_bytes=8 * MiB
    )
    configure(runtime)
    fast = harness._timed(harness.scenario_sysbench8, quick=True)
    saved = runtime.codec_calls_saved
    deactivate()
    assert fast.fingerprint == serial.fingerprint
    assert fast.sim_us == serial.sim_us
    assert fast.pages == serial.pages
    assert saved > 0
