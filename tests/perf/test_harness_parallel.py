"""The perf harness's third leg (parallel workers), its error
containment, and the parallel regression gates."""

import pytest

from repro.perf import harness as ph
from repro.perf.harness import (
    PARALLEL_SPEEDUP_FLOOR,
    ScenarioRun,
    check_regression,
    run_harness,
)


def _fake_scenario(fingerprint="fp-ok"):
    def fn(quick=False, workers=1):
        return ScenarioRun(
            fingerprint=fingerprint, pages=3, sim_us=10.0, wall_s=0.0,
            detail={"workers": workers},
        )

    return fn


def _boom_scenario(quick=False, workers=1):
    raise RuntimeError("scenario-blew-up")


@pytest.fixture
def fake_scenarios(monkeypatch):
    monkeypatch.setitem(ph.SCENARIOS, "ok", _fake_scenario())
    monkeypatch.setitem(ph.SCENARIOS, "boom", _boom_scenario)
    yield


def test_failing_scenario_does_not_stop_the_rest(fake_scenarios):
    # 'boom' comes first; 'ok' must still run and report (the old
    # driver aborted the loop at the first raise, so a single broken
    # scenario hid every later result).
    scoreboard = run_harness(["boom", "ok"], verbose=False)
    assert set(scoreboard["scenarios"]) == {"boom", "ok"}
    boom = scoreboard["scenarios"]["boom"]
    assert boom["identical"] is False
    assert "scenario-blew-up" in boom["error"]
    assert scoreboard["scenarios"]["ok"]["identical"] is True


def test_errored_scenario_is_a_check_violation(fake_scenarios):
    scoreboard = run_harness(["boom", "ok"], verbose=False)
    failures = check_regression(scoreboard, {"scenarios": {}})
    assert any("scenario raised" in f for f in failures)
    assert all("ok" != f.split(":")[0] for f in failures)


def test_parallel_leg_runs_and_reports(fake_scenarios):
    scoreboard = run_harness(["ok"], verbose=False, workers=2)
    row = scoreboard["scenarios"]["ok"]
    assert row["workers"] == 2
    assert row["parallel"]["identical"] is True
    assert scoreboard["workers"] == 2


def _board(cpu_count, parallel):
    return {
        "cpu_count": cpu_count,
        "scenarios": {
            "cluster_ingest": {
                "identical": True,
                "speedup": 2.0,
                "parallel": parallel,
            },
        },
    }


def test_parallel_divergence_is_always_a_violation():
    board = _board(1, {"identical": False, "speedup": 3.0})
    failures = check_regression(board, {"scenarios": {}})
    assert any("parallel-leg output DIVERGED" in f for f in failures)


def test_parallel_speedup_gate_needs_two_cores():
    slow = {"identical": True, "speedup": 1.01}
    # 1-core host: honest ~1x speedup is not a regression.
    assert not check_regression(_board(1, slow), {"scenarios": {}})
    # 2-core host: the floor applies.
    failures = check_regression(_board(2, slow), {"scenarios": {}})
    assert any("parallel speedup" in f for f in failures)
    fast = {"identical": True, "speedup": PARALLEL_SPEEDUP_FLOOR + 0.1}
    assert not check_regression(_board(2, fast), {"scenarios": {}})


def test_real_parallel_leg_is_byte_identical_quick():
    scoreboard = run_harness(
        ["cluster_ingest"], quick=True, verbose=False, workers=2
    )
    row = scoreboard["scenarios"]["cluster_ingest"]
    assert row["identical"] is True
    assert row["parallel"]["identical"] is True
