"""Bench harness: table rendering and persistence."""

import json
import os

import pytest

from repro.bench.harness import (
    ExperimentResult,
    render_table,
    save_result,
)


def sample():
    result = ExperimentResult(
        "unit_test_experiment", "a test table", ["name", "value", "big"],
    )
    result.add("alpha", 1.2345, 123456.0)
    result.add("beta", 0.00042, 2.0)
    result.note("a note")
    return result


def test_add_validates_arity():
    result = sample()
    with pytest.raises(ValueError):
        result.add("only-one")


def test_render_contains_all_cells_and_notes():
    text = render_table(sample())
    assert "unit_test_experiment" in text
    assert "alpha" in text and "beta" in text
    assert "1.23" in text
    assert "123,456" in text  # thousands formatting
    assert "0.00042" in text  # small-number formatting
    assert "note: a note" in text


def test_render_empty_table():
    result = ExperimentResult("empty", "no rows", ["a", "b"])
    text = render_table(result)
    assert "empty" in text


def test_save_result_round_trips(tmp_path):
    path = save_result(sample(), directory=str(tmp_path))
    assert os.path.exists(path)
    with open(path.replace(".txt", ".json")) as handle:
        data = json.load(handle)
    assert data["experiment"] == "unit_test_experiment"
    assert data["rows"][0][0] == "alpha"
    assert data["notes"] == ["a note"]


def test_to_dict_shape():
    data = sample().to_dict()
    assert set(data) == {"experiment", "description", "columns", "rows",
                         "notes"}
