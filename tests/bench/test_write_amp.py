"""The write-amplification crossover benchmark (quick mode)."""

from repro.bench.write_amp import CORPORA, run_write_amp


def test_quick_crossover_holds_and_is_deterministic():
    result, crossover = run_write_amp(quick=True, quiet=True, save=False)
    assert crossover is True
    assert result.experiment == "write_amp_quick"
    # 2 corpora x 3 policies, every ratio positive.
    assert len(result.rows) == 6
    for row in result.rows:
        corpus, policy, wa, sa, ra = row[:5]
        assert corpus in CORPORA
        assert wa > 0 and sa > 0 and ra >= 1.0
    again, _ = run_write_amp(quick=True, quiet=True, save=False)
    assert again.rows == result.rows


def test_policy_filter_skips_crossover_verdict():
    result, crossover = run_write_amp(
        quick=True, quiet=True, save=False, policies=["leveled"]
    )
    assert crossover is None
    assert result.experiment == "write_amp_leveled_quick"
    assert {row[1] for row in result.rows} == {"leveled"}
