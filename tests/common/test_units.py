"""Unit and alignment arithmetic."""

import pytest

from repro.common.units import (
    DB_PAGE_SIZE,
    EXTENT_SIZE,
    GiB,
    KiB,
    LBA_SIZE,
    MiB,
    align_down,
    align_up,
    ceil_div,
    human_bytes,
    is_aligned,
)


def test_constants_are_consistent():
    assert DB_PAGE_SIZE == 16 * KiB
    assert LBA_SIZE == 4 * KiB
    assert EXTENT_SIZE == 128 * KiB
    assert DB_PAGE_SIZE % LBA_SIZE == 0
    assert EXTENT_SIZE % LBA_SIZE == 0


@pytest.mark.parametrize(
    "value,alignment,expected",
    [
        (0, 4096, 0),
        (1, 4096, 4096),
        (4096, 4096, 4096),
        (4097, 4096, 8192),
        (16 * KiB, 4 * KiB, 16 * KiB),
    ],
)
def test_align_up(value, alignment, expected):
    assert align_up(value, alignment) == expected


@pytest.mark.parametrize(
    "value,alignment,expected",
    [
        (0, 4096, 0),
        (1, 4096, 0),
        (4096, 4096, 4096),
        (8191, 4096, 4096),
    ],
)
def test_align_down(value, alignment, expected):
    assert align_down(value, alignment) == expected


def test_is_aligned():
    assert is_aligned(8192, 4096)
    assert not is_aligned(8191, 4096)
    assert is_aligned(0, 4096)


def test_ceil_div():
    assert ceil_div(0, 4) == 0
    assert ceil_div(1, 4) == 1
    assert ceil_div(4, 4) == 1
    assert ceil_div(5, 4) == 2


def test_bad_alignment_rejected():
    with pytest.raises(ValueError):
        align_up(1, 0)
    with pytest.raises(ValueError):
        align_down(1, -4)
    with pytest.raises(ValueError):
        is_aligned(1, 0)
    with pytest.raises(ValueError):
        ceil_div(1, 0)


def test_human_bytes():
    assert human_bytes(512) == "512 B"
    assert human_bytes(1536) == "1.50 KiB"
    assert human_bytes(3 * GiB) == "3.00 GiB"
    assert human_bytes(-2 * MiB) == "-2.00 MiB"
