"""Simulated clock and contention resources."""

import pytest

from repro.common.clock import Resource, ResourcePool, SimClock


def test_clock_starts_at_zero_and_advances():
    clock = SimClock()
    assert clock.now_us == 0.0
    clock.advance(12.5)
    assert clock.now_us == 12.5
    assert clock.now_s == pytest.approx(12.5e-6)


def test_clock_advance_to_never_goes_backwards():
    clock = SimClock(100.0)
    clock.advance_to(50.0)
    assert clock.now_us == 100.0
    clock.advance_to(150.0)
    assert clock.now_us == 150.0


def test_clock_rejects_negative_advance():
    with pytest.raises(ValueError):
        SimClock().advance(-1.0)


def test_resource_serves_idle_request_immediately():
    res = Resource("disk")
    assert res.serve(start_us=10.0, service_us=5.0) == 15.0


def test_resource_queues_back_to_back_requests():
    res = Resource("disk")
    first = res.serve(0.0, 10.0)
    second = res.serve(2.0, 10.0)  # arrives while busy
    assert first == 10.0
    assert second == 20.0  # waits for the first to finish


def test_resource_idle_gap_not_counted_busy():
    res = Resource("disk")
    res.serve(0.0, 5.0)
    res.serve(100.0, 5.0)
    assert res.total_busy_us == 10.0
    assert res.utilization(elapsed_us=105.0) == pytest.approx(10.0 / 105.0)


def test_resource_rejects_negative_service():
    with pytest.raises(ValueError):
        Resource().serve(0.0, -1.0)


def test_pool_spreads_load_across_servers():
    pool = ResourcePool("nand", servers=2)
    first = pool.serve(0.0, 10.0)
    second = pool.serve(0.0, 10.0)  # goes to the second, idle server
    third = pool.serve(0.0, 10.0)  # must queue
    assert first == 10.0
    assert second == 10.0
    assert third == 20.0


def test_pool_requires_positive_servers():
    with pytest.raises(ValueError):
        ResourcePool("x", 0)
