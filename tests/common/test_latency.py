"""Latency models and statistics."""

import pytest

from repro.common.latency import LatencyModel, LatencyStats, percentile


def test_deterministic_model_returns_base():
    model = LatencyModel(base_us=80.0)
    assert all(model.sample() == 80.0 for _ in range(10))


def test_jittered_model_is_reproducible_and_positive():
    a = LatencyModel(80.0, sigma=0.3, seed=7)
    b = LatencyModel(80.0, sigma=0.3, seed=7)
    samples_a = [a.sample() for _ in range(100)]
    samples_b = [b.sample() for _ in range(100)]
    assert samples_a == samples_b
    assert all(s > 0 for s in samples_a)
    assert len(set(samples_a)) > 1


def test_scaled_model():
    model = LatencyModel(10.0)
    assert model.scaled(2.5).sample() == 25.0


def test_model_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LatencyModel(-1.0)
    with pytest.raises(ValueError):
        LatencyModel(1.0, sigma=-0.1)


def test_percentile_nearest_rank():
    data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 50) == 5.0
    assert percentile(data, 95) == 10.0
    assert percentile(data, 100) == 10.0


def test_percentile_rejects_empty_and_bad_pct():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_stats_summaries():
    stats = LatencyStats()
    stats.extend(float(i) for i in range(1, 101))
    assert stats.count == 100
    assert stats.mean_us == pytest.approx(50.5)
    assert stats.p50_us == 50.0
    assert stats.p95_us == 95.0
    assert stats.p99_us == 99.0
    assert stats.max_us == 100.0


def test_stats_fraction_above():
    stats = LatencyStats()
    stats.extend([1.0, 2.0, 3.0, 4000.0, 5000.0])
    assert stats.fraction_above(4000.0) == pytest.approx(1 / 5)
    assert stats.fraction_above(0.5) == 1.0
    assert LatencyStats().fraction_above(1.0) == 0.0


def test_stats_merge_does_not_mutate():
    a = LatencyStats([1.0])
    b = LatencyStats([2.0])
    merged = a.merged(b)
    assert merged.samples == [1.0, 2.0]
    assert a.samples == [1.0]
    assert b.samples == [2.0]
