"""Deterministic RNG helpers and device-spec arithmetic."""

import pytest

from repro.common.rng import derive_seed, make_rng
from repro.common.units import KiB, TiB
from repro.csd.specs import (
    OPTANE_P4800X,
    OPTANE_P5800X,
    P4510,
    P5510,
    POLARCSD1,
    POLARCSD2,
)


def test_derive_seed_is_stable_and_label_sensitive():
    a = derive_seed(42, "ftl", 0)
    b = derive_seed(42, "ftl", 0)
    c = derive_seed(42, "ftl", 1)
    d = derive_seed(43, "ftl", 0)
    assert a == b
    assert len({a, c, d}) == 3
    assert 0 <= a < 2**63


def test_make_rng_streams_are_independent():
    rng_a = make_rng(7, "device", 1)
    rng_b = make_rng(7, "device", 2)
    seq_a = [rng_a.random() for _ in range(5)]
    seq_b = [rng_b.random() for _ in range(5)]
    assert seq_a != seq_b
    fresh = make_rng(7, "device", 1)
    assert seq_a == [fresh.random() for _ in range(5)]


def test_spec_latency_helpers_scale_linearly():
    assert P5510.transfer_us(32 * KiB) == pytest.approx(
        2 * P5510.transfer_us(16 * KiB)
    )
    assert P4510.nand_read_us(16 * KiB) > 0
    assert POLARCSD2.nand_write_us(8 * KiB) == pytest.approx(
        POLARCSD2.nand_write_us_per_kib * 8
    )


def test_capacity_provisioning_matches_paper():
    # §3.2.2: gen-1 exposes 7.68 TB logical over >=3.2 TB NAND (ratio 2.4).
    assert POLARCSD1.logical_capacity == int(7.68 * TiB)
    assert POLARCSD1.physical_capacity == int(3.20 * TiB)
    assert POLARCSD1.logical_capacity / POLARCSD1.physical_capacity == (
        pytest.approx(2.4)
    )
    # §4.1.2: gen-2 grows NAND to 3.84 TB and exposes 9.6 TB (still 2.5x).
    assert POLARCSD2.logical_capacity == int(9.60 * TiB)
    assert POLARCSD2.physical_capacity == int(3.84 * TiB)


def test_compression_flags():
    assert POLARCSD1.has_compression and POLARCSD1.host_managed_ftl
    assert POLARCSD2.has_compression and not POLARCSD2.host_managed_ftl
    for spec in (P4510, P5510, OPTANE_P4800X, OPTANE_P5800X):
        assert not spec.has_compression


def test_pcie_generations():
    assert P4510.pcie_gen == POLARCSD1.pcie_gen == 3
    assert P5510.pcie_gen == POLARCSD2.pcie_gen == OPTANE_P5800X.pcie_gen == 4
    # Gen-4 transfer is faster per KiB.
    assert P5510.transfer_us_per_kib < P4510.transfer_us_per_kib
