"""Model-based testing: PolarStore vs a plain dict across random op mixes.

Whatever interleaving of full writes, raw writes, partial writes, archive
operations, and crash-recoveries occurs, reads must always return exactly
what a dictionary model says — and space accounting must stay consistent.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.storage.node import NodeConfig
from repro.storage.recovery import recover_node
from repro.storage.store import build_node

_WORDS = [b"alpha", b"bravo", b"charlie", b"delta", b"echo", b"foxtrot"]


def _page(seed: int) -> bytes:
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < DB_PAGE_SIZE:
        out += rng.choice(_WORDS) + b"%04d" % rng.randrange(10000)
    return bytes(out[:DB_PAGE_SIZE])


op_strategy = st.one_of(
    st.tuples(st.just("write"), st.integers(0, 11), st.integers(0, 10**6)),
    st.tuples(st.just("raw"), st.integers(0, 11), st.integers(0, 10**6)),
    st.tuples(
        st.just("partial"),
        st.integers(0, 11),
        st.integers(0, DB_PAGE_SIZE - 64),
    ),
    st.tuples(st.just("archive"), st.integers(0, 1), st.integers(0, 1)),
    st.tuples(st.just("recover"), st.integers(0, 1), st.integers(0, 1)),
)


@given(st.lists(op_strategy, min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_store_matches_model(ops):
    from repro.storage.store import CompressionMode  # noqa: F401

    node = build_node("model", NodeConfig(), volume_bytes=64 * MiB)
    model = {}
    now = 0.0
    for op, a, b in ops:
        if op == "write":
            page = _page(b)
            now = node.write_page(now, a, page).done_us
            model[a] = page
        elif op == "raw":
            # No-compression mode: a whole-page partial write stores the
            # image uncompressed.
            page = _page(b ^ 0x5555)
            now = node.write_partial(now, a, 0, page).done_us
            model[a] = page
        elif op == "partial":
            patch = b"PATCH-%04d" % (a * 13)
            if a in model:
                image = bytearray(model[a])
            else:
                image = bytearray(DB_PAGE_SIZE)
            image[b : b + len(patch)] = patch
            model[a] = bytes(image)
            now = node.write_partial(now, a, b, patch).done_us
        elif op == "archive":
            pages = sorted(model)
            if len(pages) >= 2:
                targets = pages[: len(pages) // 2 + 1]
                now = node.archive_range(now, targets)
        elif op == "recover":
            node = recover_node(node)
    # Every page the model knows reads back byte-exact.
    for page_no, expected in model.items():
        assert node.read_page(now, page_no).data == expected
    # Space accounting: logical matches the model's page count.
    assert node.logical_used_bytes == len(model) * DB_PAGE_SIZE
    # The software layer never uses more device space than raw storage
    # of every page would.
    assert node.device_used_bytes <= len(model) * DB_PAGE_SIZE + 4096
