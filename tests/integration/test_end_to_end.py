"""Cross-layer integration: the full stack under faults and pressure."""

import random

import pytest

from repro.common.errors import OutOfSpaceError, RaftError
from repro.common.units import DB_PAGE_SIZE, KiB, MiB
from repro.db.database import PolarDB
from repro.storage.node import NodeConfig
from repro.storage.recovery import recover_node
from repro.storage.store import PolarStore
from repro.workloads.sysbench import prepare_table, run_sysbench


def test_workload_survives_follower_failure_and_recovery():
    """A follower dies mid-workload; commits continue on the majority;
    after 'replacement' the cluster still serves consistent data."""
    store = PolarStore(NodeConfig(), volume_bytes=128 * MiB, seed=31)
    db = PolarDB(store=store, buffer_pool_pages=12)
    now = prepare_table(db, rows=500, seed=31)

    first = run_sysbench(db, "update_non_index", duration_s=30.0, threads=8,
                         key_range=500, start_us=now, seed=1,
                         max_transactions=30)
    store.fail_node(2)
    second = run_sysbench(db, "update_non_index", duration_s=30.0, threads=8,
                          key_range=500, start_us=now + 40e6, seed=2,
                          max_transactions=30)
    assert second.transactions == 30  # majority keeps committing
    store.recover_node(2)
    third = run_sysbench(db, "read_write", duration_s=30.0, threads=8,
                         key_range=500, start_us=now + 80e6, seed=3,
                         max_transactions=10)
    assert third.transactions == 10
    # Reads on the leader are consistent with the committed updates.
    check = db.select(now + 120e6, "sbtest", 42)
    assert check.value is not None


def test_workload_halts_without_quorum_then_resumes():
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=7)
    db = PolarDB(store=store, buffer_pool_pages=12)
    now = prepare_table(db, rows=100, seed=7)
    store.fail_node(1)
    store.fail_node(2)
    with pytest.raises(RaftError):
        db.insert(now, "sbtest", 10_000, b"blocked")
    store.recover_node(1)
    # (The failed statement already mutated the buffer-pool page; real
    # engines roll that back — here we simply use a fresh key.)
    result = db.insert(now + 1e3, "sbtest", 10_001, b"unblocked")
    assert result.done_us > now


def test_leader_crash_recovery_preserves_committed_data():
    """Crash the leader after a workload; rebuild it from its WAL; every
    committed row must still be readable (consolidating durable redo)."""
    store = PolarStore(NodeConfig(), volume_bytes=128 * MiB, seed=13)
    db = PolarDB(store=store, buffer_pool_pages=8)
    now = prepare_table(db, rows=400, seed=13)
    run = run_sysbench(db, "read_write", duration_s=30.0, threads=8,
                       key_range=400, start_us=now, seed=5,
                       max_transactions=20)
    assert run.transactions == 20

    # Crash + recover the leader node in place.
    store.nodes[0] = recover_node(store.leader)

    # The recovered leader serves reads; spot-check several keys through a
    # fresh compute node (cold buffer pool) against a surviving follower.
    fresh = PolarDB(store=store, buffer_pool_pages=64)
    fresh.rw.trees = db.rw.trees  # same catalog
    for key in random.Random(3).sample(range(400), 12):
        value = fresh.select(now + 120e6, "sbtest", key).value
        assert value is not None
        assert b"sbtest|%010d|" % key in value


def test_volume_exhaustion_raises_cleanly():
    store = PolarStore(
        NodeConfig(software_compression=False),
        volume_bytes=2 * MiB,
        seed=3,
    )
    incompressible = random.Random(1).randbytes(DB_PAGE_SIZE)
    with pytest.raises(OutOfSpaceError):
        now = 0.0
        for page_no in range(4096):
            now = store.write_page(now, page_no, incompressible).commit_us


def test_archive_then_update_then_recover():
    """Pages move heavy -> normal -> crash -> recover without losing
    anything."""
    from repro.storage.store import build_node

    node = build_node("mix", NodeConfig(), volume_bytes=64 * MiB)
    pages = {}
    now = 0.0
    rng = random.Random(11)
    for page_no in range(8):
        page = bytes(
            rng.choice(b"abcdefgh0123456789|,") for _ in range(DB_PAGE_SIZE)
        )
        pages[page_no] = page
        now = node.write_page(now, page_no, page).done_us
    now = node.archive_range(now, list(range(8)))
    # Updating an archived page moves it back to normal compression.
    fresh = pages[3][:8000] + b"UPDATED!" + pages[3][8008:]
    pages[3] = fresh
    now = node.write_page(now, 3, fresh).done_us

    recovered = recover_node(node)
    for page_no, page in pages.items():
        assert recovered.read_page(now, page_no).data == page


def test_compression_ratio_stable_under_churn():
    """Sustained overwrite churn must not leak space in any layer."""
    from repro.storage.store import build_node

    node = build_node(
        "churn", NodeConfig(redo_cache_bytes=16 * KiB), volume_bytes=64 * MiB
    )
    rng = random.Random(5)
    words = [b"alpha", b"beta", b"gamma", b"delta"]

    def page(seed):
        r = random.Random(seed)
        out = bytearray()
        while len(out) < DB_PAGE_SIZE:
            out += r.choice(words) + b"%05d" % r.randrange(99999)
        return bytes(out[:DB_PAGE_SIZE])

    now = 0.0
    for i in range(400):
        now = node.write_page(now, rng.randrange(24), page(i)).done_us
    # Stored blocks stay proportional to the 24 live pages, not to 400.
    assert node.logical_used_bytes == 24 * DB_PAGE_SIZE
    assert node.device_used_bytes < 24 * DB_PAGE_SIZE
    assert node.space.used_bytes == node.device_used_bytes


def test_two_stores_share_nothing():
    a = PolarStore(NodeConfig(), volume_bytes=32 * MiB, seed=1)
    b = PolarStore(NodeConfig(), volume_bytes=32 * MiB, seed=2)
    page = random.Random(0).randbytes(DB_PAGE_SIZE)
    a.write_page(0.0, 1, page)
    with pytest.raises(Exception):
        b.read_page(0.0, 1)
