"""JSON and Prometheus text exporters."""

import json
import re

from repro.obs.export import prometheus_name, to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("storage.wal_flushes", node="node-0").inc(3)
    reg.gauge("csd.ftl.live_bytes").set(4096.0)
    hist = reg.histogram("storage.page_write_us")
    hist.extend([10.0, 20.0, 500.0])
    reg.timeseries("storage.commits_per_window", window_us=100.0).record(50.0)
    return reg


def test_json_roundtrip_contains_every_instrument():
    reg = _sample_registry()
    doc = json.loads(to_json(reg))
    names = {i["name"] for i in doc["instruments"]}
    assert names == {
        "storage.wal_flushes",
        "csd.ftl.live_bytes",
        "storage.page_write_us",
        "storage.commits_per_window",
    }
    by_name = {i["name"]: i for i in doc["instruments"]}
    assert by_name["storage.wal_flushes"]["labels"] == {"node": "node-0"}
    assert by_name["storage.wal_flushes"]["value"] == 3.0
    assert by_name["storage.page_write_us"]["count"] == 3


def test_prometheus_name_sanitization():
    assert prometheus_name("storage.page_write_us") == "storage_page_write_us"
    assert prometheus_name("9lives") == "_9lives"
    assert prometheus_name("a:b") == "a:b"


def test_prometheus_counter_and_gauge_lines():
    text = to_prometheus(_sample_registry())
    assert "# TYPE storage_wal_flushes counter" in text
    assert 'storage_wal_flushes{node="node-0"} 3' in text
    assert "# TYPE csd_ftl_live_bytes gauge" in text
    assert "csd_ftl_live_bytes 4096" in text


def test_prometheus_histogram_format():
    text = to_prometheus(_sample_registry())
    assert "# TYPE storage_page_write_us histogram" in text
    bucket_lines = [
        line for line in text.splitlines()
        if line.startswith("storage_page_write_us_bucket")
    ]
    # Cumulative counts, ending with the +Inf catch-all equal to count.
    assert bucket_lines[-1] == 'storage_page_write_us_bucket{le="+Inf"} 3'
    counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert counts == sorted(counts)
    assert "storage_page_write_us_sum 530" in text
    assert "storage_page_write_us_count 3" in text


def test_prometheus_lines_are_well_formed():
    line_re = re.compile(
        r"^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* \w+"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+eE\-infINF]+)$"
    )
    for line in to_prometheus(_sample_registry()).strip().splitlines():
        assert line_re.match(line), line
