"""JSON and Prometheus text exporters."""

import json
import re

from repro.obs.export import prometheus_name, to_json, to_prometheus
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("storage.wal_flushes", node="node-0").inc(3)
    reg.gauge("csd.ftl.live_bytes").set(4096.0)
    hist = reg.histogram("storage.page_write_us")
    hist.extend([10.0, 20.0, 500.0])
    reg.timeseries("storage.commits_per_window", window_us=100.0).record(50.0)
    return reg


def test_json_roundtrip_contains_every_instrument():
    reg = _sample_registry()
    doc = json.loads(to_json(reg))
    names = {i["name"] for i in doc["instruments"]}
    assert names == {
        "storage.wal_flushes",
        "csd.ftl.live_bytes",
        "storage.page_write_us",
        "storage.commits_per_window",
    }
    by_name = {i["name"]: i for i in doc["instruments"]}
    assert by_name["storage.wal_flushes"]["labels"] == {"node": "node-0"}
    assert by_name["storage.wal_flushes"]["value"] == 3.0
    assert by_name["storage.page_write_us"]["count"] == 3


def test_prometheus_name_sanitization():
    assert prometheus_name("storage.page_write_us") == "storage_page_write_us"
    assert prometheus_name("9lives") == "_9lives"
    assert prometheus_name("a:b") == "a:b"


def test_prometheus_counter_and_gauge_lines():
    text = to_prometheus(_sample_registry())
    assert "# TYPE storage_wal_flushes counter" in text
    assert 'storage_wal_flushes{node="node-0"} 3' in text
    assert "# TYPE csd_ftl_live_bytes gauge" in text
    assert "csd_ftl_live_bytes 4096" in text


def test_prometheus_histogram_format():
    text = to_prometheus(_sample_registry())
    assert "# TYPE storage_page_write_us histogram" in text
    bucket_lines = [
        line for line in text.splitlines()
        if line.startswith("storage_page_write_us_bucket")
    ]
    # Cumulative counts, ending with the +Inf catch-all equal to count.
    assert bucket_lines[-1] == 'storage_page_write_us_bucket{le="+Inf"} 3'
    counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert counts == sorted(counts)
    assert "storage_page_write_us_sum 530" in text
    assert "storage_page_write_us_count 3" in text


def test_prometheus_lines_are_well_formed():
    line_re = re.compile(
        r"^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* \w+"
        r"|# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+eE\-infINF]+)$"
    )
    for line in to_prometheus(_sample_registry()).strip().splitlines():
        assert line_re.match(line), line


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter(
        "io.errors", path='C:\\disk"0"', detail="line1\nline2"
    ).inc(1)
    text = to_prometheus(reg)
    assert (
        'io_errors{detail="line1\\nline2",path="C:\\\\disk\\"0\\""} 1'
        in text
    )
    # The physical output stays one line per sample: the newline in the
    # label value must never split the line.
    assert all(
        line.startswith(("#", "io_errors"))
        for line in text.strip().splitlines()
    )


def test_prometheus_help_and_type_once_per_family():
    reg = MetricsRegistry()
    # Three labeled variants of one family, plus two dotted names that
    # sanitize to the same Prometheus family name.
    for node in ("node-0", "node-1", "node-2"):
        reg.counter("storage.wal_flushes", node=node).inc(1)
    reg.gauge("a.b_c").set(1.0)
    reg.gauge("a_b.c").set(2.0)
    lines = to_prometheus(reg).splitlines()
    help_lines = [l for l in lines if l.startswith("# HELP ")]
    type_lines = [l for l in lines if l.startswith("# TYPE ")]
    families = [l.split()[2] for l in type_lines]
    assert len(families) == len(set(families))
    assert families.count("storage_wal_flushes") == 1
    assert families.count("a_b_c") == 1
    assert [l.split()[2] for l in help_lines] == families
    # HELP precedes TYPE for each family.
    for help_line, type_line in zip(help_lines, type_lines):
        assert lines.index(help_line) == lines.index(type_line) - 1


def test_prometheus_golden_output():
    """Byte-for-byte golden of a tiny registry (format stability)."""
    reg = MetricsRegistry()
    reg.counter("storage.wal_flushes", node="node-0").inc(3)
    reg.gauge("csd.ftl.live_bytes").set(4096.0)
    expected = (
        "# HELP csd_ftl_live_bytes repro instrument csd.ftl.live_bytes\n"
        "# TYPE csd_ftl_live_bytes gauge\n"
        "csd_ftl_live_bytes 4096\n"
        "# HELP storage_wal_flushes repro instrument storage.wal_flushes\n"
        "# TYPE storage_wal_flushes counter\n"
        'storage_wal_flushes{node="node-0"} 3\n'
    )
    assert to_prometheus(reg) == expected


# -- chaos counters flow through both exporters --------------------------------


def _chaos_registry() -> MetricsRegistry:
    """A registry shaped like a post-chaos-run volume's."""
    reg = MetricsRegistry()
    reg.counter("chaos.injected", kind="bit_flip", device="node-0:data").inc(4)
    reg.counter("chaos.injected", kind="torn_write", device="node-0:data").inc(2)
    reg.counter("chaos.detected", kind="bit_flip").inc(3)
    reg.counter("chaos.repaired", kind="bit_flip").inc(3)
    reg.counter("chaos.unrepairable", kind="torn_write").inc(1)
    reg.counter("chaos.hedged_reads").inc(2)
    reg.counter("chaos.wal_replays", node="node-2").inc(1)
    reg.counter("chaos.resynced_pages", node="node-2").inc(17)
    reg.counter("chaos.scrub_pages", node="node-1").inc(64)
    return reg


def test_json_exports_chaos_counters_with_labels():
    doc = json.loads(to_json(_chaos_registry()))
    chaos = [
        i for i in doc["instruments"] if i["name"].startswith("chaos.")
    ]
    assert len(chaos) == 9
    assert all(i["type"] == "counter" for i in chaos)
    by_key = {
        (i["name"], tuple(sorted(i["labels"].items()))): i["value"]
        for i in chaos
    }
    assert by_key[(
        "chaos.injected",
        (("device", "node-0:data"), ("kind", "bit_flip")),
    )] == 4.0
    assert by_key[("chaos.repaired", (("kind", "bit_flip"),))] == 3.0
    assert by_key[("chaos.resynced_pages", (("node", "node-2"),))] == 17.0


def test_prometheus_exports_chaos_counters_with_labels():
    text = to_prometheus(_chaos_registry())
    assert "# TYPE chaos_injected counter" in text
    assert (
        'chaos_injected{device="node-0:data",kind="bit_flip"} 4' in text
    )
    assert 'chaos_detected{kind="bit_flip"} 3' in text
    assert 'chaos_unrepairable{kind="torn_write"} 1' in text
    assert "chaos_hedged_reads 2" in text
    assert 'chaos_wal_replays{node="node-2"} 1' in text


def test_live_chaos_run_exports_in_both_formats():
    """End to end: damage a real replicated write, let the read path
    repair it, and check the counters surface in both exports."""
    from repro.chaos.plan import FaultKind, FaultPlan, FaultRule
    from repro.common.units import DB_PAGE_SIZE, MiB
    from repro.storage.node import NodeConfig
    from repro.storage.store import PolarStore

    import numpy as np

    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=0)
    plan = FaultPlan(seed=1)
    plan.add(
        FaultRule(
            FaultKind.TORN_WRITE,
            scope=f"{store.leader.name}:data",
            max_count=1,
        )
    )
    plan.attach_to_store(store)
    page = np.random.default_rng(0).integers(
        0, 256, DB_PAGE_SIZE, dtype=np.uint8
    ).tobytes()
    now = store.write_page(0.0, 1, page).commit_us
    store.leader.page_cache.remove(1)
    assert store.read_page(now, 1).data == page

    doc = json.loads(to_json(store.metrics))
    names = {i["name"] for i in doc["instruments"]}
    assert {"chaos.injected", "chaos.detected", "chaos.repaired"} <= names

    text = to_prometheus(store.metrics)
    assert 'chaos_detected{kind="torn_write"} 1' in text
    assert 'chaos_repaired{kind="torn_write"} 1' in text
