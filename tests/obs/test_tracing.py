"""Span trees: nesting, exclusive-time telescoping, suppression, and the
end-to-end guarantee that a traced write's layer breakdown sums to its
simulated commit latency."""

import pytest

from repro.common.units import MiB
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Trace, Tracer
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore


def test_span_nesting_and_exclusive_time():
    tracer = Tracer()
    root = tracer.begin("req", 0.0, layer="db")
    child = tracer.begin("storage", 10.0, layer="storage")
    grand = tracer.begin("device", 20.0, layer="csd")
    tracer.end(grand, 50.0)
    tracer.end(child, 70.0)
    tracer.end(root, 100.0)

    trace = tracer.last
    assert trace is not None
    assert trace.total_us == 100.0
    breakdown = trace.breakdown()
    assert breakdown == {"req": 40.0, "storage": 30.0, "device": 30.0}
    assert sum(breakdown.values()) == pytest.approx(trace.total_us)
    layers = trace.layer_breakdown()
    assert sum(layers.values()) == pytest.approx(trace.total_us)
    assert layers == {"db": 40.0, "storage": 30.0, "csd": 30.0}


def test_trace_records_histograms_into_registry():
    reg = MetricsRegistry()
    root = reg.tracer.begin("write", 0.0, layer="storage")
    sp = reg.tracer.begin("device", 2.0, layer="csd")
    reg.tracer.end(sp, 8.0)
    reg.tracer.end(root, 10.0)
    total = reg.get("trace.write.total_us", layer="storage")
    self_us = reg.get("trace.device.self_us", layer="csd")
    assert total is not None and total.count == 1
    assert total.max == 10.0
    assert self_us is not None and self_us.max == 6.0


def test_suppressed_spans_record_nothing():
    tracer = Tracer()
    with tracer.suppressed():
        assert tracer.begin("bg", 0.0) is None
    tracer.end(None, 5.0)  # a no-op, not an error
    assert tracer.last is None
    # Suppression nests and unwinds.
    with tracer.suppressed():
        with tracer.suppressed():
            assert tracer.begin("bg", 0.0) is None
    assert tracer.begin("fg", 0.0) is not None


def test_out_of_order_end_unwinds_stack():
    tracer = Tracer()
    root = tracer.begin("root", 0.0)
    tracer.begin("leak", 1.0)  # never explicitly ended
    tracer.end(root, 10.0)
    assert not tracer.active
    assert tracer.last.root.name == "root"


def test_span_rejects_negative_duration():
    span = Span("x", "storage", 10.0)
    with pytest.raises(ValueError):
        span.end(5.0)


def test_render_contains_all_spans():
    root = Span("req", "db", 0.0)
    Span("inner", "csd", 1.0, parent=root).end(3.0)
    root.end(5.0)
    text = Trace(root).render()
    assert "req" in text and "inner" in text and "layer csd" in text


def test_traced_page_write_layers_sum_to_commit_latency():
    """Acceptance criterion: per-layer span µs sum to the request's
    end-to-end simulated latency within 1 µs."""
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=3)
    page = bytes(range(256)) * 64  # 16 KiB
    result = store.write_page(0.0, 0, page)
    trace = store.metrics.tracer.last
    assert trace is not None
    assert trace.root.name == "storage.page_write"
    end_to_end = result.commit_us - 0.0
    assert trace.total_us == pytest.approx(end_to_end, abs=1e-6)
    assert sum(trace.breakdown().values()) == pytest.approx(
        end_to_end, abs=1.0
    )
    assert sum(trace.layer_breakdown().values()) == pytest.approx(
        end_to_end, abs=1.0
    )


def test_traced_redo_commit_sums_to_commit_latency():
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=3)
    from repro.storage.redo import RedoRecord

    records = [RedoRecord(lsn=1, page_no=0, offset=0, data=b"x" * 200)]
    start = 5.0
    commit = store.write_redo(start, records)
    trace = store.metrics.tracer.last
    assert trace is not None
    assert trace.root.name == "storage.redo_commit"
    assert sum(trace.breakdown().values()) == pytest.approx(
        commit - start, abs=1.0
    )
