"""Dashboard frames and the static HTML report."""

import io

from repro.obs.dash import collect_stats, render_frame, sparkline
from repro.obs.events import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_html
from repro.obs.scenarios import ObservedRun
from repro.obs.slo import SLOEvaluator, ThresholdSLO


def _synthetic_run() -> ObservedRun:
    reg = MetricsRegistry()
    reg.histogram("storage.page_write_us").extend([80.0, 90.0, 120.0])
    reg.gauge("storage.logical_used_bytes").set(4096.0)
    reg.gauge("storage.physical_used_bytes").set(1024.0)
    reg.gauge_fn(
        "engine.resource.queue_depth", lambda: 3.0, resource="nvme"
    )
    reg.gauge_fn(
        "engine.resource.utilization", lambda: 0.5, resource="nvme"
    )
    reg.counter("cluster.migration.pages").inc(16)
    reg.counter("chaos.injected", kind="bit_flip").inc(2)
    evaluator = SLOEvaluator([reg])
    evaluator.add(ThresholdSLO("demo.depth", lambda: 3.0, ceiling=10.0))
    recorder = FlightRecorder()
    recorder.emit(10.0, "io", "page_write", page=1)
    run = ObservedRun(
        name="demo", seed=3, quick=True,
        recorder=recorder, evaluator=evaluator, registries=[reg],
        now_us=1234.5, detail={"rows": 8},
    )
    evaluator.evaluate(1000.0)
    evaluator.evaluate(1234.5)
    return run


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)), width=24)) == 24


def test_collect_stats_reads_every_panel():
    stats = collect_stats(_synthetic_run())
    assert stats["compression_ratio"] == 4.0
    assert stats["resources"] == [
        {"resource": "nvme", "depth": 3.0, "util": 0.5}
    ]
    assert stats["latencies"]["storage.page_write_us"]["count"] == 3
    assert stats["migration"] == {"pages": 16}
    assert stats["chaos"] == {"injected": 2}
    assert stats["channels"]["io"]["emitted"] == 1
    (slo,) = stats["slos"]
    assert slo["name"] == "demo.depth" and slo["ok"]
    assert slo["history"] == [3.0, 3.0]
    assert stats["passed"]


def test_collect_stats_is_read_only():
    run = _synthetic_run()
    before = len(run.registries[0])
    collect_stats(run)
    render_frame(run)
    render_html(run)
    assert len(run.registries[0]) == before


def test_render_frame_contains_every_section():
    frame = render_frame(_synthetic_run())
    assert "repro dash · demo · seed 3" in frame
    assert "nvme" in frame
    assert "page_write_us" in frame
    assert "compression ratio 4.00x" in frame
    assert "migration pages=16" in frame
    assert "chaos injected=2" in frame
    assert "demo.depth" in frame
    assert frame.endswith("verdict PASS · alerts 0")


def test_render_frame_is_deterministic():
    assert render_frame(_synthetic_run()) == render_frame(_synthetic_run())


def test_html_report_is_self_contained_and_deterministic():
    html_a = render_html(_synthetic_run())
    html_b = render_html(_synthetic_run())
    assert html_a == html_b
    assert html_a.startswith("<!DOCTYPE html>")
    assert "<script" not in html_a
    assert 'src="http' not in html_a and "href=" not in html_a
    assert "demo.depth" in html_a
    assert "<svg" in html_a  # sparkline rendered inline
    assert "verdict: PASS" in html_a


def test_html_report_escapes_untrusted_strings():
    run = _synthetic_run()
    run.detail = {"note": "<script>alert(1)</script>"}
    html_text = render_html(run)
    assert "<script>alert(1)</script>" not in html_text
    assert "&lt;script&gt;" in html_text


def test_live_dash_end_to_end_on_sysbench():
    """Integration: the sysbench scenario renders frames and a report,
    double-rendering the report byte-identically."""
    from repro.obs.dash import live_dash

    buf = io.StringIO()
    run = live_dash("sysbench", quick=True, ansi=False, stream=buf)
    out = buf.getvalue()
    assert run.passed
    assert "repro dash · sysbench" in out
    assert "verdict PASS" in out
    assert render_html(run) == render_html(run)
