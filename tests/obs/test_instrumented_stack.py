"""The instrumented hot paths publish into one shared registry."""

import json

import pytest

from repro.common.units import MiB
from repro.db.database import PolarDB
from repro.obs.export import to_json
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore
from repro.workloads.sysbench import prepare_table, run_sysbench


@pytest.fixture(scope="module")
def loaded_db():
    # A tiny buffer pool forces miss traffic so every layer below the
    # db (storage reads, CSD devices, selector) sees real work.
    db = PolarDB(volume_bytes=64 * MiB, seed=1, buffer_pool_pages=4)
    done = prepare_table(db, rows=600, seed=1)
    run_sysbench(
        db, "read_write", duration_s=0.05, threads=4,
        key_range=600, start_us=done, seed=1,
    )
    return db


def test_single_registry_spans_all_layers(loaded_db):
    names = {i.name for i in loaded_db.metrics.instruments()}
    layers = {name.split(".", 1)[0] for name in names}
    assert {"storage", "csd", "compression", "db"} <= layers
    assert len(names) >= 10


def test_backward_compatible_stat_accessors(loaded_db):
    store = loaded_db.store
    assert len(store.redo_commit_stats) > 0
    assert store.redo_commit_stats.p95_us > 0.0
    leader = store.leader
    assert leader.page_read_stats.mean_us > 0.0
    # FTLStats property API still reads through to the counters.
    ftl = leader.data_device.ftl
    assert ftl.stats.host_written_bytes > 0
    assert ftl.stats.write_amplification >= 1.0


def test_cache_and_selector_counters_flow_to_registry(loaded_db):
    metrics = loaded_db.metrics
    bp_hits = sum(c.value for c in metrics.find("db.bufferpool.hits"))
    bp_misses = sum(c.value for c in metrics.find("db.bufferpool.misses"))
    assert bp_hits > 0 and bp_misses > 0
    selected = metrics.find("compression.selector.selected")
    assert sum(c.value for c in selected) > 0


def test_snapshot_is_json_and_traced_write_sums(loaded_db):
    doc = json.loads(to_json(loaded_db.metrics))
    assert len(doc["instruments"]) >= 10
    # One more traced write: spans must sum to the commit latency.
    store = loaded_db.store
    start = 10_000_000.0
    result = store.write_page(start, 7, b"\x5a" * 16384)
    trace = store.metrics.tracer.last
    assert trace.root.name == "storage.page_write"
    assert sum(trace.breakdown().values()) == pytest.approx(
        result.commit_us - start, abs=1.0
    )


def test_device_histograms_labeled_per_node(loaded_db):
    hists = loaded_db.metrics.find("csd.device.write_us")
    assert any(h.count > 0 for h in hists)
    nodes = {h.labels.get("node") for h in hists}
    assert len(nodes) >= 2  # leader + replicas publish separately
