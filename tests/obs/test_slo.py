"""SLO specs and the one evaluator every verdict flows through."""

import pytest

from repro.engine import Engine
from repro.obs.events import FlightRecorder, recording
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnRateSLO,
    ErrorBudgetSLO,
    InvariantSLO,
    LatencySLO,
    SLOEvaluator,
    SLOReport,
    ThresholdSLO,
)


def _registry_with_latency(values, metric="storage.page_write_us"):
    reg = MetricsRegistry()
    reg.histogram(metric).extend(values)
    return reg


def test_latency_slo_passes_and_breaches():
    reg = _registry_with_latency([100.0] * 90 + [5000.0] * 10)
    ok = LatencySLO("w", "storage.page_write_us", 50, 200.0)
    bad = LatencySLO("w", "storage.page_write_us", 99, 200.0)
    assert ok.evaluate([reg], 0.0).ok
    status = bad.evaluate([reg], 0.0)
    assert not status.ok
    assert "exceeds" in status.violations[0]


def test_latency_slo_is_vacuous_below_min_count():
    reg = _registry_with_latency([9999.0])
    spec = LatencySLO("w", "storage.page_write_us", 99, 10.0, min_count=5)
    status = spec.evaluate([reg], 0.0)
    assert status.ok and status.detail == "no data"


def test_latency_slo_merges_across_registries():
    regs = [_registry_with_latency([100.0]), _registry_with_latency([300.0])]
    spec = LatencySLO("w", "storage.page_write_us", 99, 200.0)
    status = spec.evaluate(regs, 0.0)
    assert not status.ok  # the second registry's tail breaches


def test_error_budget_slo_ratio_and_absolute():
    reg = MetricsRegistry()
    reg.counter("bad").inc(2)
    reg.counter("total").inc(100)
    ratio = ErrorBudgetSLO("e", "bad", "total", budget=0.05)
    assert ratio.evaluate([reg], 0.0).ok
    tight = ErrorBudgetSLO("e", "bad", "total", budget=0.01)
    assert not tight.evaluate([reg], 0.0).ok
    # Without a total metric the count itself must fit the budget.
    absolute = ErrorBudgetSLO(
        "e", "bad", budget=0.0,
        message=lambda bad, total: f"{int(bad)} bad things",
    )
    status = absolute.evaluate([reg], 0.0)
    assert status.violations == ("2 bad things",)


def test_burn_rate_slo_over_timeseries():
    reg = MetricsRegistry()
    series = reg.timeseries("commits", window_us=100.0)
    for t in range(10):
        for _ in range(8 if t < 5 else 30):
            series.record(t * 100.0 + 1.0)
    calm = BurnRateSLO("b", "commits", allowed_per_window=40.0, windows=5)
    assert calm.evaluate([reg], 1000.0).ok
    hot = BurnRateSLO("b", "commits", allowed_per_window=10.0, windows=5)
    status = hot.evaluate([reg], 1000.0)
    assert not status.ok
    assert "burn rate" in status.violations[0]


def test_threshold_slo_floor_ceiling_and_message():
    floor = ThresholdSLO("t", lambda: 3.0, floor=5.0,
                         message=lambda v: f"only {v:.0f}")
    status = floor.evaluate([], 0.0)
    assert status.violations == ("only 3",)
    ceiling = ThresholdSLO("t", lambda: 3.0, ceiling=5.0)
    assert ceiling.evaluate([], 0.0).ok
    with pytest.raises(ValueError):
        ThresholdSLO("t", lambda: 0.0)
    with pytest.raises(ValueError):
        ThresholdSLO("t", lambda: 0.0, floor=1.0, ceiling=2.0)


def test_invariant_slo_preserves_strings_verbatim():
    spec = InvariantSLO("i", lambda: ["I1: broken", "I5: also broken"])
    status = spec.evaluate([], 7.0)
    assert not status.ok
    assert status.violations == ("I1: broken", "I5: also broken")
    assert status.value == 2.0


def test_report_flattens_in_spec_order():
    ev = SLOEvaluator()
    ev.add(InvariantSLO("a", lambda: ["first"]))
    ev.add(ThresholdSLO("b", lambda: 0.0, floor=1.0,
                        message=lambda v: "second"))
    report = ev.report(0.0)
    assert isinstance(report, SLOReport)
    assert not report.passed
    assert report.violations() == ["first", "second"]
    assert "SLO verdict: FAIL" in report.render()


def test_evaluator_emits_alert_and_recovery_events():
    state = {"value": 10.0}
    ev = SLOEvaluator()
    ev.add(ThresholdSLO("x", lambda: state["value"], floor=5.0))
    with recording(FlightRecorder()) as rec:
        ev.evaluate(1.0)          # ok: no event
        state["value"] = 1.0
        ev.evaluate(2.0)          # ok -> breach: alert
        ev.evaluate(3.0)          # still breached: no new event
        state["value"] = 10.0
        ev.evaluate(4.0)          # breach -> ok: recovered
    kinds = [(e.t_us, e.kind) for e in rec.events(channel="slo")]
    assert kinds == [(2.0, "alert"), (4.0, "recovered")]
    assert ev.alerts == 1


def test_evaluator_history_feeds_sparklines():
    ev = SLOEvaluator(history=4)
    ev.add(ThresholdSLO("x", lambda: float(ev.evaluations), floor=0.0))
    for t in range(6):
        ev.evaluate(float(t))
    assert ev.sparkline_values("x") == [3.0, 4.0, 5.0, 6.0]


def test_evaluator_daemon_ticks_on_sim_time():
    engine = Engine()
    ev = SLOEvaluator()
    ev.add(ThresholdSLO("x", lambda: 1.0, floor=0.0))
    daemon = ev.spawn_daemon(engine, interval_us=10.0)

    def workload():
        yield engine.timeout(55.0)

    engine.run_until_complete([engine.spawn(workload(), name="w")])
    daemon.cancel()
    assert ev.evaluations == 5


def test_chaos_verdict_flows_through_the_evaluator():
    from repro.chaos.harness import run_chaos

    evaluator = SLOEvaluator()
    report = run_chaos(
        seed=42, ops=80, pages=32, scrub_every=40, min_data_faults=2,
        evaluator=evaluator,
    )
    assert report.slo is not None
    assert report.passed == report.slo.passed
    assert report.violations == report.slo.violations()
    names = {s.name for s in report.slo.statuses}
    assert {
        "chaos.workload_invariants", "chaos.repair_accounting",
        "chaos.repairability", "chaos.rejoin", "chaos.fault_floor",
        "chaos.wal_replayed", "chaos.quorum_drill",
    } <= names


def test_chaos_i6_floor_breaches_with_exact_message():
    from repro.chaos.harness import run_chaos

    report = run_chaos(
        seed=42, ops=80, pages=32, scrub_every=40,
        min_data_faults=10**6,
    )
    assert not report.passed
    assert any(
        v.startswith("I6: only") and "schedule requires" in v
        for v in report.violations
    )
