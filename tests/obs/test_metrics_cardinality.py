"""The label-cardinality guard on :class:`MetricsRegistry`.

A workload that labels a metric with an unbounded key (page numbers,
request ids) must not grow the registry without limit: past
``max_label_sets`` distinct label-sets per metric name, further
variants collapse into one ``__other__`` bucket and the spill is
counted on ``obs.label_overflow{metric=...}``.
"""

import pytest

from repro.obs.metrics import (
    DEFAULT_MAX_LABEL_SETS,
    OVERFLOW_BUCKET,
    Counter,
    MetricsRegistry,
)


def test_default_cap_is_generous():
    assert MetricsRegistry().max_label_sets == DEFAULT_MAX_LABEL_SETS
    assert DEFAULT_MAX_LABEL_SETS >= 256


def test_cap_must_be_positive():
    with pytest.raises(ValueError):
        MetricsRegistry(max_label_sets=0)


def test_overflow_routes_to_other_bucket():
    reg = MetricsRegistry(max_label_sets=3)
    for i in range(10):
        reg.counter("io.ops", page=i).inc(1)
    variants = reg.find("io.ops")
    # 3 admitted + 1 shared overflow bucket.
    assert len(variants) == 4
    overflow = reg.get("io.ops", overflow=OVERFLOW_BUCKET)
    assert overflow is not None
    assert overflow.value == 7.0  # pages 3..9 all landed here
    spill = reg.get("obs.label_overflow", metric="io.ops")
    assert spill.value == 7.0


def test_admitted_label_sets_are_unaffected():
    reg = MetricsRegistry(max_label_sets=2)
    a = reg.counter("io.ops", device="a")
    b = reg.counter("io.ops", device="b")
    reg.counter("io.ops", device="c").inc(5)
    a.inc(1)
    b.inc(2)
    # Re-fetching an admitted variant returns the same instrument and
    # never counts against the cap again.
    assert reg.counter("io.ops", device="a") is a
    assert a.value == 1.0 and b.value == 2.0


def test_cap_is_per_metric_name():
    reg = MetricsRegistry(max_label_sets=2)
    for i in range(4):
        reg.counter("one", k=i).inc(1)
        reg.counter("two", k=i).inc(1)
    assert reg.get("obs.label_overflow", metric="one").value == 2.0
    assert reg.get("obs.label_overflow", metric="two").value == 2.0


def test_overflow_counter_itself_cannot_recurse():
    reg = MetricsRegistry(max_label_sets=1)
    # Overflow many distinct metric names: each spill creates its own
    # obs.label_overflow{metric=...} variant, which bypasses admission.
    for metric in ("m0", "m1", "m2", "m3"):
        reg.counter(metric, k="a").inc(1)
        reg.counter(metric, k="b").inc(1)
    spills = reg.find("obs.label_overflow")
    assert len(spills) == 4
    assert all(isinstance(s, Counter) and s.value == 1.0 for s in spills)


def test_gauge_fn_overflow_routes_and_rebinds():
    reg = MetricsRegistry(max_label_sets=1)
    reg.gauge_fn("depth", lambda: 1.0, q="a")
    reg.gauge_fn("depth", lambda: 2.0, q="b")
    overflow = reg.get("depth", overflow=OVERFLOW_BUCKET)
    assert overflow.value == 2.0
    # A later overflowed registration rebinds the shared bucket's fn.
    reg.gauge_fn("depth", lambda: 3.0, q="c")
    assert overflow.value == 3.0


def test_histograms_share_the_overflow_bucket():
    reg = MetricsRegistry(max_label_sets=1)
    reg.histogram("lat", node="n0").record(1.0)
    reg.histogram("lat", node="n1").record(10.0)
    reg.histogram("lat", node="n2").record(20.0)
    overflow = reg.get("lat", overflow=OVERFLOW_BUCKET)
    assert overflow.count == 2
