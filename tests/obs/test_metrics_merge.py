"""Order-independent metric merges: the property the parallel engine's
deterministic observability fold stands on."""

import itertools
import random

from repro.obs.metrics import Histogram, MetricsRegistry


def _filled(name, seed, n=40):
    hist = Histogram(name)
    rng = random.Random(seed)
    for _ in range(n):
        hist.record(rng.uniform(0.01, 5000.0))
    return hist


def test_merged_many_is_permutation_independent():
    parts = [_filled("h", seed) for seed in range(5)]
    baseline = None
    for perm in itertools.permutations(parts):
        desc = Histogram.merged_many(perm).describe()
        if baseline is None:
            baseline = desc
        # Exact equality, including the float sum: bucket keys fold in
        # sorted order and the sum reduces with one math.fsum over the
        # whole multiset (correctly rounded), so no permutation can
        # drift by even one ulp.
        assert desc == baseline


def test_pairwise_merged_equals_merged_many():
    a, b = _filled("h", 1), _filled("h", 2)
    assert a.merged(b).describe() == Histogram.merged_many([a, b]).describe()


def test_merged_many_preserves_min_max_count():
    parts = [_filled("h", seed) for seed in range(3)]
    out = Histogram.merged_many(parts)
    assert out.count == sum(p.count for p in parts)
    assert out.min == min(p.min for p in parts)
    assert out.max == max(p.max for p in parts)


def _worker_registry(seed):
    """One worker's registry: shared histograms/counters/timeseries plus
    a per-worker-labeled gauge (how disjoint shard gauges really look)."""
    reg = MetricsRegistry()
    rng = random.Random(seed)
    reg.counter("io.ops").inc(seed * 10 + 3)
    reg.gauge("depth", worker=seed).set(float(seed))
    hist = reg.histogram("io.lat_us")
    for _ in range(30):
        hist.record(rng.uniform(0.1, 900.0))
    ts = reg.timeseries("io.bytes", window_us=100.0)
    for _ in range(10):
        ts.record(rng.uniform(0.0, 5000.0), rng.uniform(1.0, 64.0))
    return reg


def test_registry_state_round_trips():
    source = _worker_registry(7)
    clone = MetricsRegistry()
    clone.merge_state(source.state())
    assert clone.snapshot() == source.snapshot()


def test_registry_merge_states_is_permutation_independent():
    states = [_worker_registry(seed).state() for seed in range(4)]
    snapshots = set()
    for perm in itertools.permutations(states):
        reg = MetricsRegistry()
        reg.merge_states(perm)
        snapshots.add(repr(reg.snapshot()))
    assert len(snapshots) == 1


def test_state_samples_callback_gauges():
    reg = MetricsRegistry()
    reg.gauge_fn("live.depth", lambda: 17.0)
    (rec,) = [r for r in reg.state() if r["name"] == "live.depth"]
    assert rec["value"] == 17.0
    # Merging into a registry whose gauge is callback-backed must not
    # clobber the live callback.
    target = MetricsRegistry()
    target.gauge_fn("live.depth", lambda: 99.0)
    target.merge_state([rec])
    assert target.get("live.depth").value == 99.0
