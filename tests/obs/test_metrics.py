"""Instruments: counters, gauges, histograms, bounded series, registry."""

import random

import pytest

from repro.common.latency import percentile
from repro.obs.metrics import (
    BoundedSeries,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ---------------------------------------------------------------------------
# Counter / Gauge
# ---------------------------------------------------------------------------


def test_counter_accumulates_and_rejects_negative():
    c = Counter("ops")
    c.inc()
    c.add(41.0)
    assert c.value == 42.0
    with pytest.raises(ValueError):
        c.inc(-1.0)
    c.reset()
    assert c.value == 0.0


def test_gauge_set_and_callback():
    g = Gauge("depth")
    g.set(7.0)
    assert g.value == 7.0

    state = {"v": 3.0}
    live = Gauge("live", fn=lambda: state["v"])
    assert live.value == 3.0
    state["v"] = 9.0
    assert live.value == 9.0  # evaluated at read time
    with pytest.raises(ValueError):
        live.set(1.0)
    live.reset()  # callback gauges ignore reset
    assert live.value == 9.0


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


def test_histogram_percentiles_close_to_exact():
    rng = random.Random(7)
    samples = [rng.lognormvariate(3.0, 1.2) for _ in range(20_000)]
    hist = Histogram("lat")
    hist.extend(samples)
    for pct in (50.0, 90.0, 95.0, 99.0):
        exact = percentile(samples, pct)
        approx = hist.percentile(pct)
        # Log-bucketed with growth 1.04: ~2% relative error bound.
        assert abs(approx - exact) / exact < 0.05, (pct, exact, approx)


def test_histogram_exact_summary_fields():
    hist = Histogram("lat")
    values = [1.0, 2.0, 3.0, 100.0]
    hist.extend(values)
    assert hist.count == 4
    assert hist.total == pytest.approx(sum(values))
    assert hist.mean == pytest.approx(sum(values) / 4)
    assert hist.min == 1.0
    assert hist.max == 100.0
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(100.0) <= hist.max


def test_histogram_empty_and_negative():
    hist = Histogram("lat")
    assert hist.mean == 0.0
    assert hist.p95 == 0.0
    hist.record(-5.0)  # clamped to 0
    assert hist.min == 0.0


def test_histogram_merge_is_associative_and_commutative():
    rng = random.Random(11)
    parts = []
    for _ in range(3):
        h = Histogram("lat")
        h.extend(rng.uniform(0.5, 5000.0) for _ in range(1000))
        parts.append(h)
    a, b, c = parts
    left = a.merged(b).merged(c)
    right = a.merged(b.merged(c))
    swapped = c.merged(a).merged(b)
    for pct in (50.0, 95.0, 99.0):
        assert left.percentile(pct) == right.percentile(pct)
        assert left.percentile(pct) == swapped.percentile(pct)
    assert left.count == right.count == swapped.count == 3000
    assert left.total == pytest.approx(right.total)


def test_histogram_merge_rejects_incompatible_layouts():
    a = Histogram("lat", growth=1.04)
    b = Histogram("lat", growth=1.5)
    with pytest.raises(ValueError):
        a.merged(b)


def test_histogram_fraction_above():
    hist = Histogram("lat")
    hist.extend([1.0] * 90 + [4000.0] * 10)
    assert hist.fraction_above(100.0) == pytest.approx(0.10)


def test_histogram_matches_latencystats_convention_on_small_sets():
    # Nearest-rank on tiny sample sets must agree within bucket error.
    samples = [10.0, 20.0, 30.0, 40.0, 50.0]
    hist = Histogram("lat")
    hist.extend(samples)
    exact = percentile(samples, 50.0)
    assert abs(hist.p50 - exact) / exact < 0.05


# ---------------------------------------------------------------------------
# BoundedSeries
# ---------------------------------------------------------------------------


def test_bounded_series_len_counts_everything_window_is_bounded():
    series = BoundedSeries(Histogram("lat"), window=16)
    for i in range(100):
        series.append(float(i + 1))
    assert len(series) == 100  # list-compatible total count
    assert len(list(series)) == 16  # but memory is bounded
    assert list(series)[-1] == 100.0
    assert series.mean_us == pytest.approx(sum(range(1, 101)) / 100)
    assert series.max_us == 100.0
    assert series.p95_us > series.p50_us
    series.clear()
    assert len(series) == 0
    assert not series


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("ops", node="n0")
    b = reg.counter("ops", node="n0")
    other = reg.counter("ops", node="n1")
    assert a is b
    assert a is not other
    assert len(reg.find("ops")) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_registry_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("ops").inc(5)
    reg.histogram("lat").record(12.0)
    reg.gauge_fn("live", lambda: 3.0)
    snap = reg.snapshot()
    by_name = {i["name"]: i for i in snap["instruments"]}
    assert by_name["ops"]["value"] == 5.0
    assert by_name["lat"]["count"] == 1
    assert by_name["live"]["value"] == 3.0
    reg.reset()
    assert reg.counter("ops").value == 0.0
    assert reg.histogram("lat").count == 0
    assert reg.gauge_fn("live", lambda: 3.0).value == 3.0  # unaffected


def test_registry_timeseries_windows():
    reg = MetricsRegistry()
    ts = reg.timeseries("commits", window_us=1000.0)
    for t in (0.0, 10.0, 999.0, 1000.0, 2500.0):
        ts.record(t)
    points = dict(ts.points())
    assert points[0.0] == 3.0
    assert points[1000.0] == 1.0
    assert points[2000.0] == 1.0
    assert ts.total == 5.0
    merged = ts.merged(ts)
    assert merged.total == 10.0
    assert dict(merged.points())[0.0] == 6.0
