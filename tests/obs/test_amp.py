"""The unified amplification accountant (storage.amp.* gauges)."""

import pytest

from repro.baselines.lsm import LSMStats
from repro.csd.ftl import FTLStats
from repro.obs.amp import (
    READ_AMP_GAUGE,
    SPACE_AMP_GAUGE,
    WRITE_AMP_GAUGE,
    AmplificationAccountant,
    read_amp,
    space_amp,
    write_amp,
)
from repro.obs.metrics import MetricsRegistry


def test_ratio_helpers_define_the_units():
    assert write_amp(100, 250) == 2.5
    assert space_amp(100, 150) == 1.5
    assert read_amp(4, 10) == 2.5
    # Nothing happened yet -> neutral 1.0, never a ZeroDivisionError.
    assert write_amp(0, 0) == 1.0
    assert space_amp(0, 999) == 1.0
    assert read_amp(0, 0) == 1.0


def test_accountant_exports_live_gauges():
    metrics = MetricsRegistry()
    state = {"user": 0, "nand": 0, "live": 0, "stored": 0,
             "ureads": 0, "dreads": 0}
    AmplificationAccountant(
        metrics,
        user_write_bytes=lambda: state["user"],
        physical_write_bytes=lambda: state["nand"],
        live_bytes=lambda: state["live"],
        stored_bytes=lambda: state["stored"],
        user_reads=lambda: state["ureads"],
        device_reads=lambda: state["dreads"],
        policy="leveled",
    )
    wa = metrics.get(WRITE_AMP_GAUGE, policy="leveled")
    sa = metrics.get(SPACE_AMP_GAUGE, policy="leveled")
    ra = metrics.get(READ_AMP_GAUGE, policy="leveled")
    assert wa is not None and sa is not None and ra is not None
    assert (wa.value, sa.value, ra.value) == (1.0, 1.0, 1.0)
    state.update(user=100, nand=320, live=50, stored=200, ureads=2, dreads=9)
    # Gauges are callback-backed: they read the live state, no push step.
    assert wa.value == 3.2
    assert sa.value == 4.0
    assert ra.value == 4.5
    names = {i.name for i in metrics.instruments()}
    assert {WRITE_AMP_GAUGE, SPACE_AMP_GAUGE, READ_AMP_GAUGE} <= names


def test_accountant_skips_gauges_without_sources():
    metrics = MetricsRegistry()
    accountant = AmplificationAccountant(
        metrics,
        user_write_bytes=lambda: 10,
        physical_write_bytes=lambda: 30,
    )
    assert metrics.get(WRITE_AMP_GAUGE) is not None
    assert metrics.get(SPACE_AMP_GAUGE) is None
    assert metrics.get(READ_AMP_GAUGE) is None
    assert accountant.write_amplification() == 3.0
    with pytest.raises(TypeError):
        accountant.space_amplification()


def test_ftl_bind_amp_matches_legacy_accessor():
    stats = FTLStats()
    stats.record_host_write(1000)
    stats.record_gc(1000)  # host 1000, nand 1000 + 1000 relocated
    accountant = stats.bind_amp(role="data")
    gauge = stats.metrics.get(WRITE_AMP_GAUGE, role="data")
    assert gauge is not None
    assert gauge.value == stats.write_amplification == 2.0
    assert accountant.write_amplification() == stats.write_amplification


def test_lsm_bind_amp_matches_legacy_accessor():
    stats = LSMStats(user_write_bytes=500, compaction_write_bytes=750)
    metrics = MetricsRegistry()
    stats.bind_amp(metrics, tree="baseline")
    gauge = metrics.get(WRITE_AMP_GAUGE, tree="baseline")
    assert gauge is not None
    assert gauge.value == stats.write_amplification == 2.5
