"""The flight recorder: ring, sampling, filters, dumps, activation."""

import json

import pytest

from repro.obs.events import (
    CHANNELS,
    FlightRecorder,
    activate,
    configure_from_env,
    deactivate,
    emit,
    parse_sample_spec,
    recorder_active,
    recording,
)


def _fill(rec, n, channel="io", kind="page_write"):
    for i in range(n):
        rec.emit(float(i), channel, kind, seq=i)


def test_emit_and_query_roundtrip():
    rec = FlightRecorder()
    rec.emit(10.0, "io", "page_write", page=3, latency_us=42.5)
    rec.emit(20.0, "gc", "relocated", device="d0")
    assert len(rec) == 2
    (ev,) = rec.events(channel="io")
    assert ev.kind == "page_write"
    assert ev.fields == {"page": 3, "latency_us": 42.5}
    assert rec.events(channel="gc")[0].t_us == 20.0


def test_kind_is_a_legal_field_name():
    # scrub/fault events carry a ``kind=`` payload field; the emit
    # signature is positional-only so this must not collide.
    rec = FlightRecorder()
    rec.emit(1.0, "scrub", "detected", kind="bit_flip", page=7)
    assert rec.events()[0].fields["kind"] == "bit_flip"


def test_ring_eviction_is_counted_per_channel():
    rec = FlightRecorder(capacity=8)
    _fill(rec, 12)
    assert len(rec) == 8
    assert rec.dropped == {"io": 4}
    # Oldest events fell off: the ring holds seqs 4..11.
    assert rec.events()[0].fields["seq"] == 4


def test_sampling_keeps_one_in_n_deterministically():
    rec = FlightRecorder(sample={"io": 4})
    _fill(rec, 12)
    kept = [ev.fields["seq"] for ev in rec.events()]
    assert kept == [0, 4, 8]
    assert rec.sampled_out == {"io": 9}
    assert rec.emitted == {"io": 3}


def test_sampling_zero_mutes_a_channel():
    rec = FlightRecorder(sample={"io": 0})
    _fill(rec, 5)
    assert len(rec) == 0
    assert rec.sampled_out == {"io": 5}


def test_event_filters_compose():
    rec = FlightRecorder()
    for i in range(10):
        rec.emit(float(i * 10), "io", "read" if i % 2 else "write", seq=i)
    assert len(rec.events(kind="read")) == 5
    assert len(rec.events(since_us=30.0, until_us=70.0)) == 4
    assert [e.fields["seq"] for e in rec.events(kind="write", limit=2)] == [
        6, 8,
    ]


def test_summary_is_sorted_and_complete():
    rec = FlightRecorder(capacity=2, sample={"gc": 2})
    _fill(rec, 3, channel="io")
    _fill(rec, 3, channel="gc")
    summary = rec.summary()
    assert list(summary) == sorted(summary)
    assert summary["gc"]["sampled_out"] == 1
    assert summary["io"]["dropped"] >= 1


def test_jsonl_dump_roundtrips(tmp_path):
    rec = FlightRecorder()
    rec.emit(1.5, "io", "page_write", page=1)
    rec.emit(2.5, "fault", "injected", kind="bit_flip", device="n0:data")
    path = str(tmp_path / "events.jsonl")
    rec.dump_jsonl(path)
    lines = [json.loads(l) for l in open(path)]
    assert lines[0] == {
        "t_us": 1.5, "channel": "io", "kind": "page_write", "page": 1,
    }
    loaded = FlightRecorder.load(path)
    assert [e.as_dict() for e in loaded.events()] == [
        e.as_dict() for e in rec.events()
    ]


def test_binary_dump_roundtrips(tmp_path):
    rec = FlightRecorder(sample={"io": 2})
    for i in range(9):
        rec.emit(i * 3.25, "io" if i % 2 else "gc", f"kind{i % 3}", seq=i)
    path = str(tmp_path / "events.bin")
    rec.dump_binary(path)
    loaded = FlightRecorder.load(path)
    assert [e.as_dict() for e in loaded.events()] == [
        e.as_dict() for e in rec.events()
    ]
    assert loaded.sample == {"io": 2}


def test_dumps_are_byte_deterministic(tmp_path):
    paths = []
    for trial in range(2):
        rec = FlightRecorder()
        for i in range(50):
            rec.emit(i * 1.5, CHANNELS[i % len(CHANNELS)], "k", v=i)
        j = str(tmp_path / f"d{trial}.jsonl")
        b = str(tmp_path / f"d{trial}.bin")
        rec.dump_jsonl(j)
        rec.dump_binary(b)
        paths.append((open(j, "rb").read(), open(b, "rb").read()))
    assert paths[0] == paths[1]


def test_load_rejects_truncated_binary(tmp_path):
    rec = FlightRecorder()
    _fill(rec, 4)
    path = str(tmp_path / "trunc.bin")
    rec.dump_binary(path)
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[:-5])
    with pytest.raises(ValueError, match="truncated"):
        FlightRecorder.load(path)


def test_activation_scoping():
    assert recorder_active() is None
    emit(1.0, "io", "noop")  # no-op when inactive
    outer = activate(capacity=16)
    try:
        assert recorder_active() is outer
        with recording(capacity=8) as inner:
            assert recorder_active() is inner
            emit(2.0, "io", "visible")
        # The previous recorder is restored, not cleared.
        assert recorder_active() is outer
        assert inner.total_emitted == 1
        assert outer.total_emitted == 0
    finally:
        deactivate()
    assert recorder_active() is None


def test_parse_sample_spec():
    assert parse_sample_spec("io=8, gc=1") == {"io": 8, "gc": 1}
    with pytest.raises(ValueError):
        parse_sample_spec("io")


def test_configure_from_env():
    try:
        configure_from_env({"REPRO_OBS": "0"})
        assert recorder_active() is None
        configure_from_env({"REPRO_OBS": "capacity=128,sample=io:4;gc:2"})
        rec = recorder_active()
        assert rec is not None
        assert rec.capacity == 128
        assert rec.sample == {"io": 4, "gc": 2}
        # Already active: a second configure keeps the existing recorder.
        configure_from_env({"REPRO_OBS": "1"})
        assert recorder_active() is rec
    finally:
        deactivate()


def test_recorder_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
