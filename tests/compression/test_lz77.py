"""LZ77 match finder invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lz77 import MIN_MATCH, MatchFinder, reconstruct


def _finders():
    return [
        MatchFinder(),  # lz4-style greedy
        MatchFinder(max_chain=64, lazy=True),  # zstd-style lazy
        MatchFinder(window=128),
    ]


@given(st.binary(min_size=0, max_size=2048))
@settings(max_examples=100, deadline=None)
def test_tokens_reconstruct_input(data):
    for finder in _finders():
        tokens = finder.tokenize(data)
        assert reconstruct(tokens, data) == data


@given(st.binary(min_size=0, max_size=1024))
@settings(max_examples=100, deadline=None)
def test_token_stream_is_well_formed(data):
    finder = MatchFinder()
    tokens = finder.tokenize(data)
    # Tokens tile the input: literal runs are contiguous in the source and
    # the final token is literal-only.
    covered = 0
    for tok in tokens:
        assert tok.lit_start == covered
        covered += tok.lit_len + tok.match_len
    assert covered == len(data)
    assert tokens[-1].match_len == 0


@given(st.binary(min_size=MIN_MATCH + 2, max_size=1024))
@settings(max_examples=100, deadline=None)
def test_matches_respect_window_and_min_match(data):
    finder = MatchFinder(window=64)
    for tok in finder.tokenize(data):
        if tok.match_len:
            assert tok.match_len >= MIN_MATCH
            assert 1 <= tok.distance <= 64


def test_finds_obvious_repetition():
    data = b"abcdefgh" * 100
    tokens = MatchFinder().tokenize(data)
    matched = sum(t.match_len for t in tokens)
    assert matched > len(data) * 0.9


def test_lazy_matching_not_worse_than_greedy():
    rng = random.Random(2)
    words = [b"alpha", b"beta", b"gamma", b"delta"]
    data = b"".join(rng.choice(words) for _ in range(500))
    greedy_tokens = MatchFinder(max_chain=64, lazy=False).tokenize(data)
    lazy_tokens = MatchFinder(max_chain=64, lazy=True).tokenize(data)
    greedy_matched = sum(t.match_len for t in greedy_tokens)
    lazy_matched = sum(t.match_len for t in lazy_tokens)
    assert lazy_matched >= greedy_matched * 0.98
