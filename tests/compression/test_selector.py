"""Algorithm 1: adaptive lz4/zstd selection."""

import random

import pytest

from repro.common.units import LBA_SIZE, align_up
from repro.compression.base import get_codec
from repro.compression.cost import codec_cost
from repro.compression.selector import AlgorithmSelector


def _textlike(size, seed=0):
    rng = random.Random(seed)
    words = [b"payment", b"order", b"customer", b"balance", b"2026-07-04"]
    out = bytearray()
    while len(out) < size:
        out += rng.choice(words) + b","
    return bytes(out[:size])


def test_high_cpu_always_picks_lz4():
    selector = AlgorithmSelector()
    decision = selector.select(_textlike(16384), cpu_utilization=0.5)
    assert decision.codec == "lz4"
    assert not decision.evaluated
    assert selector.fallbacks == 1


def test_small_update_reuses_last_algorithm():
    selector = AlgorithmSelector()
    decision = selector.select(
        _textlike(16384), update_percent=0.1, last_used="zstd"
    )
    assert decision.codec == "zstd"
    assert not decision.evaluated


def test_initial_write_triggers_evaluation():
    selector = AlgorithmSelector()
    decision = selector.select(_textlike(16384))
    assert decision.evaluated
    assert selector.evaluations == 1


def test_decision_respects_threshold_math():
    selector = AlgorithmSelector()
    page = _textlike(16384, seed=3)
    decision = selector.select(page)
    lz4_sz = align_up(len(get_codec("lz4").compress(page)), LBA_SIZE)
    zstd_sz = align_up(len(get_codec("zstd").compress(page)), LBA_SIZE)
    benefit = lz4_sz - zstd_sz
    overhead = codec_cost("zstd").decompress_us(zstd_sz) - codec_cost(
        "lz4"
    ).decompress_us(lz4_sz)
    expected = "zstd" if benefit / max(overhead, 1e-9) > 300.0 else "lz4"
    assert decision.codec == expected


def test_zero_benefit_stays_lz4():
    # Incompressible page: both codecs produce ~page-size output, so the
    # aligned sizes tie and lz4 must win.
    page = random.Random(9).randbytes(16384)
    decision = AlgorithmSelector().select(page)
    assert decision.codec == "lz4"


def test_huge_benefit_switches_to_zstd():
    # Force an artificial threshold of ~0 so any benefit selects zstd, and
    # use a page where zstd demonstrably saves at least one 4 KiB block.
    page = _textlike(16384, seed=4)
    lz4_sz = align_up(len(get_codec("lz4").compress(page)), LBA_SIZE)
    zstd_sz = align_up(len(get_codec("zstd").compress(page)), LBA_SIZE)
    if lz4_sz == zstd_sz:
        pytest.skip("dataset did not produce an alignment gap")
    decision = AlgorithmSelector(threshold_bytes_per_us=0.0).select(page)
    assert decision.codec == "zstd"


def test_decision_payload_round_trips():
    page = _textlike(16384, seed=5)
    decision = AlgorithmSelector().select(page)
    codec = get_codec(decision.codec)
    assert codec.decompress(decision.result.payload) == page


def test_aligned_size_is_lba_multiple():
    decision = AlgorithmSelector().select(_textlike(16384, seed=6))
    assert decision.aligned_size % LBA_SIZE == 0
    assert decision.aligned_size >= decision.result.compressed_size
