"""Codec registry, result metadata, cost models, hardware gzip."""

import pytest

from repro.compression.base import get_codec, list_codecs
from repro.compression.cost import LZ4_COST, ZSTD_COST, codec_cost
from repro.compression.gzipdev import HARDWARE_GZIP_LEVEL, HardwareGzip
from repro.common.errors import CorruptionError


def test_registry_knows_builtin_codecs():
    # Importing repro.compression registers everything.
    import repro.compression  # noqa: F401

    names = list_codecs()
    assert "lz4" in names
    assert "zstd" in names
    assert "hw-gzip" in names


def test_registry_returns_shared_instance():
    assert get_codec("lz4") is get_codec("lz4")


def test_registry_unknown_codec():
    with pytest.raises(KeyError):
        get_codec("snappy")


def test_compression_result_ratio():
    result = get_codec("lz4").compress_result(b"aaaa" * 1000)
    assert result.original_size == 4000
    assert result.ratio > 10


def test_cost_models_scale_linearly():
    assert LZ4_COST.decompress_us(32768) > LZ4_COST.decompress_us(16384)
    assert codec_cost("zstd") is ZSTD_COST


def test_zstd_decompression_costs_more_than_lz4():
    """Figure 5a: zstd decompression latency exceeds lz4's at every size."""
    for size in (4096, 8192, 16384, 65536):
        assert ZSTD_COST.decompress_us(size) > LZ4_COST.decompress_us(size)


def test_calibration_matches_paper_threshold_rationale():
    """§3.3.2: the zstd-vs-lz4 decompression gap on a 16 KiB page should be
    commensurate with one 4 KiB I/O (12–14 µs)."""
    gap = ZSTD_COST.decompress_us(16384) - LZ4_COST.decompress_us(16384)
    assert 8.0 < gap < 20.0


def test_unknown_cost_model():
    with pytest.raises(KeyError):
        codec_cost("gzip-9")


def test_hardware_gzip_round_trip():
    device = HardwareGzip()
    data = b"polar store " * 400
    assert device.level == HARDWARE_GZIP_LEVEL
    assert device.decompress(device.compress(data)) == data
    assert device.compressed_size(data) < len(data)


def test_hardware_gzip_rejects_garbage():
    with pytest.raises(CorruptionError):
        HardwareGzip().decompress(b"not deflate data")


def test_hardware_gzip_average_ratio_band():
    """§3.2.2 reports ~2.4 average ratio for gzip level 5 on 4 KiB inputs.
    Our synthetic structured data should land in a sane band around it."""
    record = b"%06d,user%04d,item%05d,qty=%02d,price=%08.2f\n"
    rows = b"".join(
        record % (i, i % 500, i % 9000, i % 10, (i * 13) % 9999 / 100)
        for i in range(1200)
    )
    blocks = [rows[i : i + 4096] for i in range(0, len(rows) - 4095, 4096)]
    device = HardwareGzip()
    ratios = [len(b) / device.compressed_size(b) for b in blocks]
    avg = sum(ratios) / len(ratios)
    assert 1.5 < avg < 6.0
