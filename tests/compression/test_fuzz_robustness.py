"""Decoder robustness: malformed payloads must fail cleanly, never hang
or raise unexpected exception types (storage treats these as corruption).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.compression.base import get_codec

_EXPECTED = (CorruptionError, ValueError, IndexError, KeyError)


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=300, deadline=None)
def test_lz4_decoder_never_crashes_unexpectedly(payload):
    codec = get_codec("lz4")
    try:
        codec.decompress(payload)
    except _EXPECTED:
        pass


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=300, deadline=None)
def test_zstd_decoder_never_crashes_unexpectedly(payload):
    codec = get_codec("zstd")
    try:
        codec.decompress(payload)
    except _EXPECTED:
        pass


@given(st.binary(min_size=64, max_size=1024), st.integers(0, 10_000))
@settings(max_examples=150, deadline=None)
def test_zstd_bitflip_detected_or_consistent(data, flip_seed):
    """Flipping bytes of a valid payload either raises a clean error or
    yields *some* bytes — never an unexpected exception."""
    codec = get_codec("zstd")
    payload = bytearray(codec.compress(data))
    rng = random.Random(flip_seed)
    for _ in range(3):
        payload[rng.randrange(len(payload))] ^= 1 << rng.randrange(8)
    try:
        codec.decompress(bytes(payload))
    except _EXPECTED:
        pass


@given(st.binary(min_size=64, max_size=1024))
@settings(max_examples=100, deadline=None)
def test_truncated_payloads_fail_cleanly(data):
    for codec_name in ("lz4", "zstd"):
        codec = get_codec(codec_name)
        payload = codec.compress(data)
        for cut in (1, len(payload) // 2, len(payload) - 1):
            if cut >= len(payload):
                continue
            try:
                out = codec.decompress(payload[:cut])
                # lz4 has no length framing: a truncation can decode to a
                # prefix; that is acceptable, silent *extension* is not.
                assert len(out) <= len(data)
            except _EXPECTED:
                pass


def test_hw_gzip_rejects_garbage_cleanly():
    device = get_codec("hw-gzip")
    for blob in (b"", b"\x00", b"garbage" * 10):
        with pytest.raises(CorruptionError):
            device.decompress(blob)
