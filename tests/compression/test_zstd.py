"""zstd-like codec: round-trips and the entropy-coding property."""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.compression.lz4 import LZ4Codec
from repro.compression.zstd import ZstdCodec

codec = ZstdCodec()
lz4 = LZ4Codec()


@pytest.mark.parametrize(
    "data",
    [
        b"",
        b"a",
        b"short",
        b"hello world " * 100,
        b"\x00" * 10000,
        bytes(range(256)) * 16,
    ],
)
def test_round_trip_known_inputs(data):
    assert codec.decompress(codec.compress(data)) == data


@given(st.binary(min_size=0, max_size=4096))
@settings(max_examples=150, deadline=None)
def test_round_trip_random(data):
    assert codec.decompress(codec.compress(data)) == data


@given(st.integers(0, 2**32 - 1), st.binary(min_size=1, max_size=48))
@settings(max_examples=75, deadline=None)
def test_round_trip_repeating(seed, unit):
    rng = random.Random(seed)
    data = unit * rng.randint(1, 300)
    assert codec.decompress(codec.compress(data)) == data


def _textlike(size, seed=0):
    rng = random.Random(seed)
    words = [
        b"transaction", b"commit", b"database", b"storage", b"page",
        b"index", b"compression", b"cloud", b"the", b"of", b"and",
    ]
    out = bytearray()
    while len(out) < size:
        out += rng.choice(words) + b" "
    return bytes(out[:size])


def test_beats_lz4_on_text():
    data = _textlike(16 * 1024)
    zstd_size = len(codec.compress(data))
    lz4_size = len(lz4.compress(data))
    assert zstd_size < lz4_size


def test_entropy_coded_output_resists_gzip():
    """The Figure 5c property: gzip squeezes lz4 output much more than
    zstd output, because zstd output is already entropy-coded."""
    data = _textlike(32 * 1024)
    lz4_out = lz4.compress(data)
    zstd_out = codec.compress(data)
    lz4_regain = len(lz4_out) / len(zlib.compress(lz4_out, 5))
    zstd_regain = len(zstd_out) / len(zlib.compress(zstd_out, 5))
    assert lz4_regain > zstd_regain
    assert zstd_regain < 1.25  # nearly incompressible


def test_incompressible_falls_back_to_raw_mode():
    data = random.Random(5).randbytes(8192)
    compressed = codec.compress(data)
    assert len(compressed) <= len(data) + 8
    assert codec.decompress(compressed) == data


def test_decompress_rejects_bad_magic():
    with pytest.raises(CorruptionError):
        codec.decompress(b"\x00\x01\x02")


def test_decompress_rejects_unknown_mode():
    with pytest.raises(CorruptionError):
        codec.decompress(bytes([0x5A, 9, 0]))


def test_decompress_rejects_truncated_raw():
    payload = bytes([0x5A, 0, 100]) + b"only a few bytes"
    with pytest.raises(CorruptionError):
        codec.decompress(payload)


def test_structured_pages_compress_well():
    # Records with repeating schema compress far better than 2:1.
    record = b"%08d|alice@example.com|active|2026-07-04|balance=0001234.56\n"
    data = b"".join(record % i for i in range(250))
    compressed = codec.compress(data)
    assert len(data) / len(compressed) > 3.0
    assert codec.decompress(compressed) == data
