"""LZ4 block codec: round-trips, format rules, and malformed input."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.compression.lz4 import LZ4Codec

codec = LZ4Codec()


@pytest.mark.parametrize(
    "data",
    [
        b"",
        b"a",
        b"abcd",
        b"hello world " * 100,
        b"\x00" * 10000,
        bytes(range(256)) * 8,
        b"abcabcabcabcabcabcabcabc",
    ],
)
def test_round_trip_known_inputs(data):
    assert codec.decompress(codec.compress(data)) == data


def test_compresses_redundant_data():
    data = b"the quick brown fox jumps over the lazy dog. " * 200
    compressed = codec.compress(data)
    assert len(compressed) < len(data) / 4
    assert codec.decompress(compressed) == data


def test_incompressible_data_expands_only_slightly():
    data = random.Random(1).randbytes(16 * 1024)
    compressed = codec.compress(data)
    # LZ4 worst case is input + input/255 + small constant.
    assert len(compressed) <= len(data) + len(data) // 255 + 16
    assert codec.decompress(compressed) == data


def test_overlapping_match_round_trip():
    # Distance 1 copies (RLE-style) exercise the overlap rule.
    data = b"x" + b"y" * 1000 + b"z"
    assert codec.decompress(codec.compress(data)) == data


def test_no_entropy_coding_leaves_literals_verbatim():
    # A block of unique literals must appear inside the compressed output
    # unchanged: LZ4 does not transform literal bytes.
    data = bytes(range(64))
    compressed = codec.compress(data)
    assert data in compressed


@given(st.binary(min_size=0, max_size=4096))
@settings(max_examples=200, deadline=None)
def test_round_trip_random(data):
    assert codec.decompress(codec.compress(data)) == data


@given(st.integers(0, 2**32 - 1), st.binary(min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_round_trip_repeating(seed, unit):
    rng = random.Random(seed)
    data = unit * rng.randint(1, 200)
    assert codec.decompress(codec.compress(data)) == data


def test_decompress_rejects_zero_offset():
    # token: 0 literals + match, then offset 0x0000.
    payload = bytes([0x00, 0x00, 0x00])
    with pytest.raises(CorruptionError):
        codec.decompress(payload)


def test_decompress_rejects_truncated_literals():
    payload = bytes([0xF0])  # claims 15+ext literals but stream ends
    with pytest.raises(CorruptionError):
        codec.decompress(payload)


def test_decompress_rejects_offset_before_start():
    # one literal 'A', then a match with offset 5 (> output so far).
    payload = bytes([0x10, ord("A"), 0x05, 0x00])
    with pytest.raises(CorruptionError):
        codec.decompress(payload)


def test_last_five_bytes_are_literals():
    data = b"abcdefgh" * 64
    compressed = codec.compress(data)
    # The final sequence must be literal-only: the last 5 bytes of the
    # input appear verbatim at the end of the compressed block.
    assert compressed.endswith(data[-5:]) or compressed.endswith(data)
