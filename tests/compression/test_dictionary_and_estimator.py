"""§6 extensions: shared dictionaries and estimation-based selection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CorruptionError
from repro.compression.dictionary import DictionaryManager, build_dictionary
from repro.compression.estimator import (
    EstimatingSelector,
    EstimatorThresholds,
    estimate_ratio,
)
from repro.compression.zstd import ZstdCodec
from repro.workloads.datagen import dataset_pages

codec = ZstdCodec()

# --------------------------------------------------------------------- #
# Dictionary mode of the codec                                           #
# --------------------------------------------------------------------- #


def test_dict_round_trip():
    dictionary = b"account|balance|status=active|2026-07-04|" * 20
    data = b"account|balance|status=active|XY" * 100
    payload = codec.compress(data, dictionary=dictionary)
    assert codec.decompress(payload, dictionary=dictionary) == data


def test_dict_improves_ratio_on_schema_data():
    pages = dataset_pages("finance", 8, seed=3)
    dictionary = build_dictionary(pages[:4], size=4096)
    plain = sum(len(codec.compress(p)) for p in pages[4:])
    with_dict = sum(
        len(codec.compress(p, dictionary=dictionary)) for p in pages[4:]
    )
    assert with_dict < plain


def test_dict_payload_requires_dictionary():
    dictionary = b"shared-prefix-" * 64
    data = b"shared-prefix-payload!" * 64
    payload = codec.compress(data, dictionary=dictionary)
    with pytest.raises(CorruptionError):
        codec.decompress(payload)  # dictionary withheld


def test_wrong_dictionary_fails_or_corrupts():
    dictionary = b"one-dictionary-" * 64
    data = b"one-dictionary-page" * 80
    payload = codec.compress(data, dictionary=dictionary)
    other = b"a-different-dict" * 64
    try:
        out = codec.decompress(payload, dictionary=other)
    except (CorruptionError, ValueError, IndexError):
        return
    assert out != data


def test_oversized_dictionary_rejected():
    with pytest.raises(ValueError):
        codec.compress(b"x" * 100, dictionary=b"y" * 70000)


@given(st.binary(min_size=64, max_size=1024), st.binary(min_size=0, max_size=512))
@settings(max_examples=60, deadline=None)
def test_dict_round_trip_random(data, dictionary):
    payload = codec.compress(data, dictionary=dictionary)
    assert codec.decompress(payload, dictionary=dictionary) == data


def test_builder_prefers_frequent_shingles():
    frequent = b"REPEATED-SHINGLE" * 1  # 16 bytes, the shingle width
    samples = [frequent * 40 + bytes(random.Random(i).randbytes(64))
               for i in range(4)]
    dictionary = build_dictionary(samples, size=256)
    assert frequent in dictionary


def test_builder_empty_and_validation():
    assert build_dictionary([], size=128) == b""
    with pytest.raises(ValueError):
        build_dictionary([b"x"], size=0)


def test_dictionary_manager_trains_after_min_samples():
    manager = DictionaryManager(min_samples=3, dict_size=2048)
    pages = dataset_pages("fnb", 5, seed=2)
    for page in pages[:2]:
        manager.observe("orders", page)
    assert not manager.has_dictionary("orders")
    manager.observe("orders", pages[2])
    assert manager.has_dictionary("orders")
    payload = manager.compress("orders", pages[3])
    assert manager.decompress("orders", payload) == pages[3]


def test_dictionary_manager_isolates_tables():
    manager = DictionaryManager(min_samples=1)
    manager.observe("a", dataset_pages("finance", 1, seed=1)[0])
    assert manager.has_dictionary("a")
    assert not manager.has_dictionary("b")
    # Table b compresses dictionary-less but still round-trips.
    page = dataset_pages("wiki", 1, seed=1)[0]
    assert manager.decompress("b", manager.compress("b", page)) == page


# --------------------------------------------------------------------- #
# Estimation                                                             #
# --------------------------------------------------------------------- #


def test_estimator_ranks_compressibility():
    incompressible = random.Random(0).randbytes(16384)
    text = dataset_pages("wiki", 1, seed=0)[0]
    zeros = bytes(16384)
    r_random = estimate_ratio(incompressible)
    r_text = estimate_ratio(text)
    r_zeros = estimate_ratio(zeros)
    assert r_random < r_text < r_zeros
    assert r_random < 1.2
    assert r_zeros > 10


def test_estimator_handles_edges():
    assert estimate_ratio(b"") == 1.0
    assert estimate_ratio(b"a") >= 1.0
    assert estimate_ratio(b"ab" * 10) > 1.0


def test_estimating_selector_skips_raw_for_random_data():
    selector = EstimatingSelector()
    page = random.Random(1).randbytes(16384)
    decision = selector.select(page)
    assert decision.codec == "lz4"
    assert not decision.evaluated
    assert selector.raw_skips == 1
    assert selector.full_evaluations == 0


def test_estimating_selector_fast_picks_zstd_for_zeros():
    selector = EstimatingSelector()
    decision = selector.select(bytes(16384))
    assert decision.codec == "zstd"
    assert selector.fast_picks == 1


def test_estimating_selector_gray_zone_runs_full_evaluation():
    selector = EstimatingSelector(
        EstimatorThresholds(incompressible=1.01, clearly_compressible=1e9)
    )
    page = dataset_pages("fnb", 1, seed=5)[0]
    decision = selector.select(page)
    assert selector.full_evaluations == 1
    assert decision.codec in ("lz4", "zstd")


def test_estimating_selector_saves_cpu():
    selector = EstimatingSelector()
    for seed in range(4):
        selector.select(random.Random(seed).randbytes(16384))
    assert selector.estimated_cpu_saving_us(16384) > 0


def test_estimating_selector_decisions_round_trip():
    from repro.compression.base import get_codec

    selector = EstimatingSelector()
    for page in (bytes(16384), random.Random(2).randbytes(16384),
                 dataset_pages("finance", 1, seed=7)[0]):
        decision = selector.select(page)
        assert get_codec(decision.codec).decompress(
            decision.result.payload
        ) == page
