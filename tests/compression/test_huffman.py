"""Canonical Huffman coder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.huffman import (
    MAX_CODE_LENGTH,
    BitReader,
    BitWriter,
    HuffmanDecoder,
    HuffmanEncoder,
    TableDecoder,
    canonical_codes,
    code_lengths,
)


def test_bit_writer_reader_round_trip():
    writer = BitWriter()
    values = [(0b101, 3), (0b1, 1), (0xABC, 12), (0, 5)]
    for code, length in values:
        writer.write(code, length)
    reader = BitReader(writer.getvalue())
    for code, length in values:
        assert reader.read(length) == code


def test_code_lengths_empty_and_single():
    assert code_lengths([0, 0, 0]) == [0, 0, 0]
    assert code_lengths([0, 5, 0]) == [0, 1, 0]


def test_code_lengths_two_symbols():
    lengths = code_lengths([3, 7])
    assert lengths == [1, 1]


def test_frequent_symbols_get_shorter_codes():
    freqs = [1000, 100, 10, 1]
    lengths = code_lengths(freqs)
    assert lengths[0] <= lengths[1] <= lengths[2] <= lengths[3]


def test_lengths_respect_limit_on_skewed_distribution():
    # Fibonacci-like frequencies force deep Huffman trees.
    freqs = [1]
    for _ in range(40):
        freqs.append(freqs[-1] + (freqs[-2] if len(freqs) > 1 else 1))
    lengths = code_lengths(freqs)
    assert max(lengths) <= MAX_CODE_LENGTH
    assert all(length > 0 for length in lengths)


def test_kraft_inequality_holds():
    rng = random.Random(3)
    freqs = [rng.randint(0, 1000) for _ in range(256)]
    lengths = code_lengths(freqs)
    kraft = sum(2.0 ** -length for length in lengths if length)
    assert kraft <= 1.0 + 1e-9


def test_canonical_codes_are_prefix_free():
    freqs = [10, 20, 30, 40, 5, 1]
    codes = canonical_codes(code_lengths(freqs))
    rendered = [format(c, f"0{l}b") for c, l in codes.values()]
    for i, a in enumerate(rendered):
        for j, b in enumerate(rendered):
            if i != j:
                assert not b.startswith(a)


def _round_trip(symbols, alphabet=256):
    freqs = [0] * alphabet
    for sym in symbols:
        freqs[sym] += 1
    lengths = code_lengths(freqs)
    writer = BitWriter()
    HuffmanEncoder(lengths).encode_into(writer, symbols)
    stream = writer.getvalue()

    reader = BitReader(stream + b"\x00\x00")
    decoder = HuffmanDecoder(lengths)
    slow = [decoder.decode_one(reader) for _ in symbols]
    fast = TableDecoder(lengths).decode_all(stream, len(symbols))
    return slow, fast


def test_encoder_decoder_round_trip_text():
    symbols = list(b"the quick brown fox jumps over the lazy dog" * 20)
    slow, fast = _round_trip(symbols)
    assert slow == symbols
    assert fast == symbols


@given(st.lists(st.integers(0, 255), min_size=1, max_size=2000))
@settings(max_examples=100, deadline=None)
def test_round_trip_random_symbols(symbols):
    slow, fast = _round_trip(symbols)
    assert slow == symbols
    assert fast == symbols


def test_table_decoder_rejects_garbage():
    lengths = code_lengths([5, 5])  # two symbols, 1-bit codes
    decoder = TableDecoder([0] * 256)  # table with no valid codes
    with pytest.raises(ValueError):
        decoder.decode_all(b"\xff", 1)
    # and a valid decoder cannot decode more symbols than the stream holds
    # without hitting padding (which decodes deterministically) — verify the
    # real decoder at least decodes the right count.
    writer = BitWriter()
    HuffmanEncoder(lengths).encode_into(writer, [0, 1, 0])
    out = TableDecoder(lengths).decode_all(writer.getvalue(), 3)
    assert out == [0, 1, 0]


def test_compression_beats_raw_for_skewed_data():
    rng = random.Random(11)
    symbols = rng.choices(range(8), weights=[100, 50, 20, 10, 5, 2, 1, 1], k=5000)
    freqs = [0] * 256
    for sym in symbols:
        freqs[sym] += 1
    lengths = code_lengths(freqs)
    writer = BitWriter()
    HuffmanEncoder(lengths).encode_into(writer, symbols)
    assert len(writer.getvalue()) < len(symbols) / 2
