"""Open-loop load generation: seeded schedules, deterministic
artifacts, admission behavior under overload vs light load."""

import pytest

from repro.api import PolarStore, ReproConfig
from repro.common.errors import ReproError
from repro.net.loadgen import (
    ARRIVAL_PROCESSES,
    ArrivalSpec,
    build_ops,
    build_schedule,
    run_load,
)
from repro.net.server import serve_in_thread


def _spec(**overrides):
    base = dict(requests=120, rate_per_s=20_000.0, keys=64, seed=3)
    base.update(overrides)
    return ArrivalSpec(**base)


# ---------------------------------------------------------------------------
# schedules and op mixes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_schedule_is_seeded_and_nondecreasing(process):
    spec = _spec(process=process)
    schedule = build_schedule(spec)
    assert len(schedule) == spec.requests
    assert schedule == sorted(schedule)
    assert all(t > 0 for t in schedule)
    assert build_schedule(spec) == schedule
    assert build_schedule(_spec(process=process, seed=4)) != schedule


def test_mean_rate_is_roughly_the_offered_rate():
    spec = _spec(process="poisson", requests=4000, rate_per_s=10_000.0)
    schedule = build_schedule(spec)
    mean_gap_us = schedule[-1] / len(schedule)
    assert mean_gap_us == pytest.approx(100.0, rel=0.2)


def test_op_mix_is_seeded_and_respects_keyspace():
    spec = _spec(read_fraction=0.5)
    ops = build_ops(spec)
    assert len(ops) == spec.requests
    assert ops == build_ops(spec)
    names = {op for op, _ in ops}
    assert names <= {"select", "update", "insert"}
    for op, key in ops:
        if op == "insert":
            assert key >= spec.keys  # fresh keys above the preload
        else:
            assert 0 <= key < spec.keys


def test_spec_validation():
    for bad in (
        dict(process="sawtooth"),
        dict(rate_per_s=0.0),
        dict(requests=0),
        dict(read_fraction=1.5),
        dict(diurnal_depth=1.0),
        dict(keys=0),
    ):
        with pytest.raises(ReproError):
            _spec(**bad).validate()


# ---------------------------------------------------------------------------
# runs over a loopback server
# ---------------------------------------------------------------------------


def _run_over_socket(spec, *, window=64):
    handle = serve_in_thread(
        ReproConfig.from_dict(
            {"engine": {"enabled": True}, "net": {"window": window}}
        ),
        port=0,
    )
    client = PolarStore.connect(handle.addr, timeout_s=30.0)
    try:
        return run_load(client.transport, spec)
    finally:
        client.close()
        handle.stop()


def test_light_load_completes_everything_without_rejections():
    report = _run_over_socket(_spec(rate_per_s=500.0))
    assert report.completed == report.requests
    assert report.rejected_server == 0
    assert report.rejected_client == 0
    assert report.errors == 0
    assert set(report.percentiles) == {"p50", "p95", "p99", "max"}
    assert report.percentiles["p50"] <= report.percentiles["p99"]
    assert report.slo_passed


def test_overload_produces_deterministic_server_rejections():
    spec = _spec(rate_per_s=500_000.0, requests=200)
    first = _run_over_socket(spec, window=8)
    assert first.rejected_server > 0
    assert first.completed + first.rejected_server == spec.requests
    second = _run_over_socket(spec, window=8)
    assert second.to_artifact()["sim"] == first.to_artifact()["sim"]


def test_sim_artifact_is_byte_identical_across_runs():
    spec = _spec(process="bursty")
    a = _run_over_socket(spec).to_json()
    b = _run_over_socket(spec).to_json()
    import json

    assert json.loads(a)["sim"] == json.loads(b)["sim"]
    # The sim half serializes identically, wall half may differ.
    sim_a = json.dumps(json.loads(a)["sim"], sort_keys=True)
    sim_b = json.dumps(json.loads(b)["sim"], sort_keys=True)
    assert sim_a == sim_b


def test_local_transport_falls_back_to_closed_loop():
    client = PolarStore.open({"engine": {"enabled": True}})
    report = run_load(client.transport, _spec(rate_per_s=500.0))
    assert report.transport_kind == "local"
    assert report.completed == report.requests
    assert report.rejected_server == 0  # closed loop cannot overload
    assert report.percentiles["max"] > 0.0


def test_artifact_shape_splits_sim_from_wall():
    client = PolarStore.open({"engine": {"enabled": True}})
    artifact = run_load(
        client.transport, _spec(requests=40, rate_per_s=500.0)
    ).to_artifact()
    assert set(artifact) == {"sim", "wall"}
    sim = artifact["sim"]
    assert sim["spec"]["seed"] == 3
    assert sim["requests"] == 40
    assert "wall_s" in artifact["wall"]
    assert "rejected_client" in artifact["wall"]
    assert "wall_s" not in sim


def test_registry_carries_load_instruments():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    client = PolarStore.open({"engine": {"enabled": True}})
    report = run_load(
        client.transport,
        _spec(requests=30, rate_per_s=500.0),
        registry=registry,
    )
    assert registry.counter("net.load.requests").value == 30
    assert registry.histogram("net.load.latency_us").count == 30
    assert report.registry is registry
