"""The serving layer end to end: loopback server, pooled client,
golden equivalence against in-process access."""

import socket
import threading

import pytest

from repro.api import (
    PolarStore,
    ReproConfig,
    TransportCapabilityError,
    TransportError,
    TransportTimeout,
)
from repro.net.client import SocketTransport, parse_addr
from repro.net.server import serve_in_thread


def _config(**doc):
    base = {"engine": {"enabled": True}}
    base.update(doc)
    return ReproConfig.from_dict(base)


@pytest.fixture()
def server():
    handle = serve_in_thread(_config(), port=0)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    handle = PolarStore.connect(server.addr, timeout_s=10.0)
    yield handle
    handle.close()


def test_parse_addr_forms():
    assert parse_addr("127.0.0.1:7411") == ("127.0.0.1", 7411)
    assert parse_addr(("localhost", 9)) == ("localhost", 9)
    with pytest.raises(TransportError):
        parse_addr("no-port")


def test_handshake_and_basic_ops(client):
    assert client.transport.kind == "socket"
    assert client.transport.pool.hello["version"] == 1
    assert client.sharded is False
    client.create_table("t")
    insert = client.insert("t", 1, b"payload")
    assert insert.redo_bytes > 0
    select = client.select("t", 1)
    assert select.value == b"payload"
    assert select.done_us > insert.done_us
    assert client.now_us >= select.done_us
    assert client.compression_ratio() > 0.0
    assert client.transport.ping() >= 0.0


def test_remote_errors_are_per_request(client):
    client.create_table("t")
    with pytest.raises(TransportError, match="update of missing key"):
        client.update("t", 404, b"x")
    # The connection survives the failed request.
    assert client.insert("t", 404, b"x").done_us > 0


def test_capability_errors_on_remote_client(client):
    for access in (
        lambda: client.db,
        lambda: client.store,
        lambda: client.runtime,
        lambda: client.engine,
        lambda: client.metrics,
        lambda: client.config,
        lambda: client.bind_engine(object()),
        lambda: client.insert_proc("t", 1, b"v"),
        lambda: client.write_page(0, b"p", mode="heavy"),
    ):
        with pytest.raises(TransportCapabilityError):
            access()


def test_golden_equivalence_local_vs_socket(server):
    """The acceptance gate: one seeded op sequence produces identical
    payload bytes and simulated timings over both transports."""
    ops = [
        ("insert", 1, b"a" * 48),
        ("insert", 2, b"b" * 48),
        ("select", 1),
        ("update", 1, b"c" * 48),
        ("select", 1),
        ("delete", 2),
        ("range_select", 0, 10),
    ]

    def drive(handle):
        handle.create_table("g")
        trace = []
        for name, *args in ops:
            result = getattr(handle, name)("g", *args)
            trace.append(
                (result.done_us, result.io_reads,
                 result.redo_bytes, result.value)
            )
        trace.append(round(handle.compression_ratio(), 12))
        trace.append((handle.logical_bytes, handle.physical_bytes))
        trace.append(handle.checkpoint())
        return trace

    local = PolarStore.open(_config())
    golden = drive(local)
    remote = PolarStore.connect(server.addr, timeout_s=10.0)
    try:
        assert drive(remote) == golden
    finally:
        remote.close()


def test_sharded_deployment_over_socket():
    handle = serve_in_thread(_config(cluster={"shards": 2}), port=0)
    client = PolarStore.connect(handle.addr, timeout_s=10.0)
    try:
        assert client.sharded is True
        client.create_table("t")
        client.insert("t", 3, b"sharded-row")
        assert client.select("t", 3).value == b"sharded-row"
        logical, physical = client.transport.call("space")
        assert logical >= 0 and physical >= 0
    finally:
        client.close()
        handle.stop()


def test_pipelined_submit_flush_and_rejection():
    handle = serve_in_thread(_config(net={"window": 4}), port=0)
    transport = SocketTransport(handle.addr, timeout_s=10.0)
    try:
        transport.call("create_table", "t")
        futures = [
            transport.submit("insert", "t", i, b"z" * 24,
                             arrival_us=float(i))
            for i in range(32)
        ]
        transport.flush()
        statuses = [transport.pool.wait(f) for f in futures]
        admitted = [r for r in statuses if r.ok]
        rejected = [r for r in statuses if r.rejected]
        assert len(admitted) + len(rejected) == 32
        assert rejected, "a window of 4 must shed simultaneous arrivals"
        assert all(r.queue_depth >= 4 for r in rejected)
        for response in admitted:
            assert response.done_us >= response.arrival_us
    finally:
        transport.close()
        handle.stop()


def test_stats_reflect_admission_accounting():
    handle = serve_in_thread(_config(net={"window": 2}), port=0)
    transport = SocketTransport(handle.addr, timeout_s=10.0)
    try:
        transport.call("create_table", "t")
        futures = [
            transport.submit("insert", "t", i, b"s" * 8, arrival_us=0.0)
            for i in range(6)
        ]
        transport.flush()
        for future in futures:
            transport.pool.wait(future)
        stats = transport.stats()
        assert stats["admitted"] == 2
        assert stats["rejected"] == 4
        assert stats["completed"] == 2
        assert stats["queue_depth"] == 0
    finally:
        transport.close()
        handle.stop()


def test_mid_stream_disconnect_fails_inflight_without_hanging(server):
    transport = SocketTransport(server.addr, connections=1, timeout_s=10.0)
    try:
        transport.call("create_table", "t")
        # Park requests the server will never answer on this connection:
        # pipelined ops whose completions wait on a future drain...
        futures = [
            transport.submit("insert", "t", i, b"h" * 16, arrival_us=0.0)
            for i in range(3)
        ]
        # ...then sever the TCP stream underneath them.
        async def sever():
            for conn in transport.pool._conns:
                conn.writer.close()

        transport.pool._run(sever(), timeout=5.0)
        for future in futures:
            with pytest.raises(TransportError):
                transport.pool.wait(future, timeout_s=5.0)
    finally:
        transport.close()


def test_timeout_against_a_mute_server():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    accepted = []

    def accept_loop():
        try:
            while True:
                conn, _ = listener.accept()
                accepted.append(conn)  # read nothing, reply nothing
        except OSError:
            pass

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        with pytest.raises((TransportTimeout, TransportError)):
            SocketTransport(
                listener.getsockname(), connections=1, timeout_s=0.5
            )
    finally:
        listener.close()
        for conn in accepted:
            conn.close()


def test_connect_refused_is_a_transport_error():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    free_port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(TransportError):
        SocketTransport(("127.0.0.1", free_port), timeout_s=2.0)


def test_no_engine_server_serves_synchronously():
    handle = serve_in_thread(
        ReproConfig.from_dict({"engine": {"enabled": False}}), port=0
    )
    client = PolarStore.connect(handle.addr, timeout_s=10.0)
    try:
        client.create_table("t")
        client.insert("t", 1, b"plain")
        assert client.select("t", 1).value == b"plain"
        # Pipelined submits still answer (executed synchronously).
        transport = client.transport
        future = transport.submit("select", "t", 1, arrival_us=0.0)
        response = transport.pool.wait(future)
        assert response.ok and response.value == b"plain"
    finally:
        client.close()
        handle.stop()
