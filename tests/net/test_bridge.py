"""WallClockBridge: admission, determinism, error containment."""

import pytest

from repro.engine import Engine, WallClockBridge
from repro.obs.metrics import MetricsRegistry


def _op(engine, work_us):
    """A toy op: sleep ``work_us`` of simulated time, return it."""
    yield engine.sleep_until(engine.now_us + work_us)
    return work_us


def _run_stream(window, arrivals, work_us=100.0):
    """Submit one op per arrival; returns (decisions, completions)."""
    engine = Engine()
    bridge = WallClockBridge(engine, window=window)
    decisions = []
    completions = []
    for token, arrival in enumerate(arrivals):
        decision = bridge.submit(
            token, arrival, lambda: _op(engine, work_us)
        )
        decisions.append((decision.admitted, decision.queue_depth))
        completions.extend(
            (c.token, c.done_us, c.latency_us) for c in decision.completions
        )
    completions.extend(
        (c.token, c.done_us, c.latency_us) for c in bridge.flush()
    )
    return decisions, completions


def test_all_admitted_under_light_load():
    # Arrivals far apart: each op finishes before the next arrives.
    decisions, completions = _run_stream(4, [0.0, 500.0, 1000.0])
    assert [d[0] for d in decisions] == [True, True, True]
    assert [d[1] for d in decisions] == [0, 0, 0]
    assert [c[0] for c in completions] == [0, 1, 2]
    assert all(latency == 100.0 for _, _, latency in completions)


def test_window_rejects_when_full():
    # Four simultaneous arrivals into a window of 2: two admitted, two
    # rejected; rejected ops never touch the engine.
    decisions, completions = _run_stream(2, [0.0, 0.0, 0.0, 0.0])
    assert [d[0] for d in decisions] == [True, True, False, False]
    assert [d[1] for d in decisions] == [0, 1, 2, 2]
    assert [c[0] for c in completions] == [0, 1]


def test_overlapping_ops_complete_on_later_drains():
    # Second arrival lands mid-flight of the first; the first's
    # completion is delivered by the third submit's drain.
    decisions, completions = _run_stream(
        8, [0.0, 50.0, 200.0], work_us=100.0
    )
    assert [d[1] for d in decisions] == [0, 1, 0]
    assert [c[0] for c in completions] == [0, 1, 2]
    assert completions[0][1] == 100.0  # done at its own pace
    assert completions[1][1] == 150.0


def test_simulated_outcome_is_deterministic():
    arrivals = [float(i * 13 % 40) + i for i in range(50)]
    arrivals.sort()
    first = _run_stream(4, arrivals)
    second = _run_stream(4, arrivals)
    assert first == second


def test_guard_contains_per_op_errors():
    engine = Engine()
    bridge = WallClockBridge(engine, window=4)

    def boom():
        yield engine.sleep_until(engine.now_us + 10.0)
        raise RuntimeError("op exploded")

    def fine():
        yield engine.sleep_until(engine.now_us + 10.0)
        return "ok"

    bridge.submit(0, 0.0, boom)
    bridge.submit(1, 0.0, fine)
    completions = bridge.flush()
    by_token = {c.token: c for c in completions}
    assert not by_token[0].ok
    assert isinstance(by_token[0].error, RuntimeError)
    assert by_token[1].ok
    assert by_token[1].result == "ok"
    # The failed op neither poisons the engine nor later submissions.
    bridge.submit(2, 50.0, fine)
    assert [c.token for c in bridge.flush()] == [2]


def test_duplicate_token_rejected():
    engine = Engine()
    bridge = WallClockBridge(engine, window=4)
    bridge.submit(0, 0.0, lambda: _op(engine, 1000.0))
    with pytest.raises(ValueError, match="duplicate"):
        bridge.submit(0, 1.0, lambda: _op(engine, 1000.0))


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        WallClockBridge(Engine(), window=0)


def test_registry_instruments_track_admissions():
    registry = MetricsRegistry()
    engine = Engine()
    bridge = WallClockBridge(engine, window=1, registry=registry)
    bridge.submit(0, 0.0, lambda: _op(engine, 100.0))
    bridge.submit(1, 0.0, lambda: _op(engine, 100.0))  # window full
    bridge.flush()
    assert registry.counter("net.bridge.admitted").value == 1
    assert registry.counter("net.bridge.rejected").value == 1
    assert registry.histogram("net.bridge.request_us").count == 1
    assert bridge.admitted == 1 and bridge.rejected == 1
    assert bridge.completed == 1 and bridge.queue_depth == 0
