"""Wire-protocol invariants: framing, codec, op typing."""

import struct
import zlib

import pytest

from repro.net.protocol import (
    MAGIC,
    MAX_FRAME_BYTES,
    OPS,
    OPS_BY_NAME,
    FrameDecoder,
    FrameError,
    ProtocolError,
    Request,
    Response,
    check_args,
    decode_message,
    decode_value,
    encode_frame,
    encode_value,
)

# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------

CODEC_CASES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    2**100,           # bigint path
    -(2**100),
    3.25,
    b"",
    b"\x00\xff" * 17,
    "",
    "snowman ☃",
    [],
    [1, "two", b"three", None, [4.5]],
    {},
    {"b": 1, "a": [2, {"c": b"deep"}]},
]


@pytest.mark.parametrize("value", CODEC_CASES, ids=repr)
def test_value_round_trip(value):
    out = bytearray()
    encode_value(value, out)
    assert decode_value(bytes(out)) == value


def test_codec_is_deterministic_across_dict_orders():
    a = bytearray()
    b = bytearray()
    encode_value({"x": 1, "y": 2}, a)
    encode_value(dict([("y", 2), ("x", 1)]), b)
    assert bytes(a) == bytes(b)


def test_codec_rejects_unencodable():
    with pytest.raises(ProtocolError):
        encode_value(object(), bytearray())
    with pytest.raises(ProtocolError):
        encode_value({1: "non-str key"}, bytearray())


def test_trailing_bytes_rejected():
    out = bytearray()
    encode_value(7, out)
    with pytest.raises(ProtocolError, match="trailing"):
        decode_value(bytes(out) + b"\x00")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def test_frame_round_trip_and_incremental_feed():
    frames = [encode_frame({"n": i, "blob": bytes([i]) * i})
              for i in range(5)]
    stream = b"".join(frames)
    decoder = FrameDecoder()
    seen = []
    # One byte at a time: truncation is never an error.
    for offset in range(len(stream)):
        seen.extend(decoder.feed(stream[offset:offset + 1]))
    assert [doc["n"] for doc in seen] == list(range(5))
    assert decoder.pending_bytes == 0


def test_truncated_frame_waits_then_completes():
    frame = encode_frame({"k": b"v" * 100})
    decoder = FrameDecoder()
    assert decoder.feed(frame[:10]) == []
    assert decoder.pending_bytes == 10
    (doc,) = decoder.feed(frame[10:])
    assert doc == {"k": b"v" * 100}


def test_garbage_magic_rejected():
    with pytest.raises(FrameError, match="magic"):
        FrameDecoder().feed(b"XXXXXXXXXXXXXXXX")


def test_wrong_version_rejected():
    frame = bytearray(encode_frame(1))
    frame[2] = 99  # version byte
    with pytest.raises(FrameError, match="version"):
        FrameDecoder().feed(bytes(frame))


def test_oversized_frame_rejected_from_header_alone():
    header = struct.Struct("<2sBII").pack(
        MAGIC, 1, MAX_FRAME_BYTES + 1, 0
    )
    with pytest.raises(FrameError, match="oversized"):
        FrameDecoder().feed(header)


def test_crc_flip_rejected():
    frame = bytearray(encode_frame({"payload": b"x" * 64}))
    frame[-1] ^= 0x01  # corrupt one payload byte
    with pytest.raises(FrameError, match="CRC"):
        FrameDecoder().feed(bytes(frame))
    # Sanity: the CRC in the header really covered the payload.
    intact = encode_frame({"payload": b"x" * 64})
    _, _, length, crc = struct.Struct("<2sBII").unpack_from(intact)
    assert crc == zlib.crc32(intact[11:11 + length])


# ---------------------------------------------------------------------------
# requests / responses over every op
# ---------------------------------------------------------------------------

SAMPLE_ARGS = {
    "hello": [7, 1],
    "ping": [],
    "stats": [],
    "flush": [],
    "create_table": ["t"],
    "insert": ["t", 1, b"v"],
    "update": ["t", 1, b"w"],
    "delete": ["t", 1],
    "select": ["t", 1, -1],
    "range_select": ["t", 0, 9],
    "bulk_load": ["t", [[1, b"a"], [2, b"b"]]],
    "checkpoint": [],
    "write_page": [3, b"p" * 32],
    "read_page": [3],
    "archive_range": [[1, 2, 3]],
    "scrub": [],
    "compression_ratio": [],
    "space": [],
}


def test_sample_args_cover_every_op():
    assert set(SAMPLE_ARGS) == {spec.name for spec in OPS}


@pytest.mark.parametrize("op", sorted(SAMPLE_ARGS), ids=str)
def test_request_round_trip_every_op(op):
    request = Request(
        id=42, op=op, args=SAMPLE_ARGS[op],
        seq=3, session=9, arrival_us=12.5, flags=1,
    )
    (payload,) = FrameDecoder().feed(request.encode())
    decoded = decode_message(payload)
    assert isinstance(decoded, Request)
    assert decoded.op == op
    assert decoded.args == SAMPLE_ARGS[op]
    assert (decoded.id, decoded.seq, decoded.session) == (42, 3, 9)
    assert decoded.arrival_us == 12.5
    assert decoded.sync


def test_response_round_trip():
    response = Response(
        id=5, status=0, kind="op", value=b"row", done_us=99.5,
        arrival_us=90.0, io_reads=2, redo_bytes=128, queue_depth=4,
    )
    (payload,) = FrameDecoder().feed(response.encode())
    decoded = decode_message(payload)
    assert isinstance(decoded, Response)
    assert decoded == response
    assert decoded.latency_us == pytest.approx(9.5)


def test_unknown_op_code_rejected():
    frame = Request(id=1, op="ping", args=[]).encode()
    (payload,) = FrameDecoder().feed(frame)
    payload["op"] = 250
    with pytest.raises(ProtocolError, match="unknown op"):
        decode_message(payload)


def test_arity_and_type_drift_rejected():
    spec = OPS_BY_NAME["insert"]
    with pytest.raises(ProtocolError, match="takes 3 args"):
        check_args(spec, ["t", 1])
    with pytest.raises(ProtocolError, match="arg 'key'"):
        check_args(spec, ["t", "not-an-int", b"v"])
    with pytest.raises(ProtocolError):
        Request(id=1, op="nope", args=[]).encode()


def test_op_codes_are_unique_wire_abi():
    codes = [spec.code for spec in OPS]
    assert len(codes) == len(set(codes))
