"""Dataset generators, fio buffers, Zipf sampling, sysbench driver."""

import zlib

import numpy as np
import pytest

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.compression.base import get_codec
from repro.storage.node import NodeConfig
from repro.db.database import PolarDB
from repro.workloads.datagen import DATASETS, corpus, dataset_pages, dataset_rows
from repro.workloads.fio import buffer_with_ratio, fill_fraction_for_ratio
from repro.workloads.sysbench import (
    SYSBENCH_WORKLOADS,
    prepare_table,
    run_sysbench,
)
from repro.workloads.zipf import ZipfSampler

# --------------------------------------------------------------------- #
# Datasets                                                               #
# --------------------------------------------------------------------- #


def test_all_datasets_produce_full_pages():
    for name in DATASETS:
        pages = dataset_pages(name, 3, seed=1)
        assert len(pages) == 3
        assert all(len(p) == DB_PAGE_SIZE for p in pages)


def test_datasets_are_deterministic_per_seed():
    a = dataset_pages("finance", 2, seed=7)
    b = dataset_pages("finance", 2, seed=7)
    c = dataset_pages("finance", 2, seed=8)
    assert a == b
    assert a != c


def test_datasets_have_distinct_compressibility():
    """Datasets must differ in compressibility (Figure 14 spans 2.1–3.8
    across them) and every page stream must actually compress."""
    zstd = get_codec("zstd")
    ratios = {}
    for name in DATASETS:
        pages = dataset_pages(name, 4, seed=0)
        total = sum(len(p) for p in pages)
        compressed = sum(len(zstd.compress(p)) for p in pages)
        ratios[name] = total / compressed
    assert all(r > 1.8 for r in ratios.values()), ratios
    assert max(ratios.values()) > min(ratios.values()) * 1.1, ratios


def test_table3_selection_splits_are_mixed():
    """Table 3: every dataset shows a *mixed* zstd/lz4 split, and finance
    leans most heavily toward zstd."""
    from repro.compression.selector import AlgorithmSelector

    shares = {}
    for name in DATASETS:
        pages = dataset_pages(name, 16, seed=0)
        selector = AlgorithmSelector()
        picks = [selector.select(p).codec for p in pages]
        shares[name] = picks.count("zstd") / len(picks)
    assert all(0.05 < share < 0.95 for share in shares.values()), shares
    assert shares["finance"] == max(shares.values()), shares


def test_all_datasets_compress_in_paper_band():
    """Figure 14: hardware-gzip-only ratios span roughly 2.1–3.9."""
    for name in DATASETS:
        pages = dataset_pages(name, 4, seed=0)
        total = sum(len(p) for p in pages)
        hw = sum(
            min(len(zlib.compress(p[i : i + 4096], 5)), 4096)
            for p in pages
            for i in range(0, DB_PAGE_SIZE, 4096)
        )
        ratio = total / hw
        assert 1.5 < ratio < 8.0, f"{name}: {ratio}"


def test_dataset_rows_for_db_loading():
    rows = dataset_rows("fnb", 10, seed=0)
    assert len(rows) == 10
    assert rows[0][0] == 0
    assert all(isinstance(value, bytes) and value for _, value in rows)


def test_corpus_mixes_datasets():
    pages = corpus(pages_per_dataset=2)
    assert len(pages) == 2 * len(DATASETS)


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        dataset_pages("nope", 1)


# --------------------------------------------------------------------- #
# fio buffers                                                            #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("target", [1.0, 2.0, 3.0, 4.0])
def test_fio_buffer_hits_target_ratio(target):
    buf = buffer_with_ratio(target, 64 * 1024, seed=3)
    compressed = sum(
        min(len(zlib.compress(buf[i : i + 4096], 5)), 4096)
        for i in range(0, len(buf), 4096)
    )
    measured = len(buf) / compressed
    assert measured == pytest.approx(target, rel=0.15)


def test_fio_buffer_validates_inputs():
    with pytest.raises(ValueError):
        buffer_with_ratio(0.5, 4096)
    with pytest.raises(ValueError):
        buffer_with_ratio(2.0, 1000)


def test_fill_fraction_monotone():
    fractions = [fill_fraction_for_ratio(r) for r in (1.0, 1.5, 2.0, 3.0, 4.0)]
    assert fractions == sorted(fractions)


# --------------------------------------------------------------------- #
# Zipf                                                                   #
# --------------------------------------------------------------------- #


def test_zipf_bounds_and_determinism():
    sampler = ZipfSampler(1000, s=0.99, seed=5)
    samples = sampler.sample(5000)
    assert samples.min() >= 0
    assert samples.max() < 1000
    again = ZipfSampler(1000, s=0.99, seed=5).sample(5000)
    assert (samples == again).all()


def test_zipf_is_skewed():
    sampler = ZipfSampler(1000, s=1.2, seed=0)
    samples = sampler.sample(20000)
    _, counts = np.unique(samples, return_counts=True)
    top_share = np.sort(counts)[::-1][:10].sum() / len(samples)
    assert top_share > 0.25  # top-10 of 1000 keys draw >25% of accesses


def test_zipf_zero_skew_is_uniformish():
    sampler = ZipfSampler(100, s=0.0, seed=0)
    samples = sampler.sample(50000)
    _, counts = np.unique(samples, return_counts=True)
    assert counts.max() / counts.min() < 1.6


def test_zipf_validates():
    with pytest.raises(ValueError):
        ZipfSampler(0)
    with pytest.raises(ValueError):
        ZipfSampler(10, s=-1)


# --------------------------------------------------------------------- #
# Sysbench driver                                                        #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def loaded_db():
    db = PolarDB(config=NodeConfig(), volume_bytes=128 * MiB, seed=11)
    prepare_table(db, rows=400)
    return db


def test_every_workload_runs(loaded_db):
    for name in SYSBENCH_WORKLOADS:
        result = run_sysbench(
            loaded_db,
            name,
            duration_s=0.01,
            threads=4,
            key_range=400,
            start_us=1e9,
            max_transactions=30,
        )
        assert result.transactions > 0, name
        assert result.avg_latency_us > 0, name


def test_more_threads_do_not_reduce_throughput(loaded_db):
    few = run_sysbench(
        loaded_db, "point_select", duration_s=0.02, threads=1,
        key_range=400, start_us=2e9,
    )
    many = run_sysbench(
        loaded_db, "point_select", duration_s=0.02, threads=8,
        key_range=400, start_us=3e9,
    )
    assert many.tps >= few.tps


def test_unknown_workload_rejected(loaded_db):
    with pytest.raises(KeyError):
        run_sysbench(loaded_db, "oltp_nope")


def test_reads_route_to_ro_node(loaded_db):
    ro = loaded_db.ro[0]
    before = ro.pool.hit_rate  # touch to ensure the node exists
    result = run_sysbench(
        loaded_db, "point_select", duration_s=0.02, threads=4,
        key_range=400, start_us=4e9, max_transactions=40, ro_index=0,
    )
    assert result.transactions == 40
    # The RO node's own buffer pool served the workload.
    assert ro.pool.cached_pages > 0


def test_elapsed_tracks_actual_span(loaded_db):
    result = run_sysbench(
        loaded_db, "point_select", duration_s=30.0, threads=2,
        key_range=400, start_us=5e9, max_transactions=10,
    )
    assert 0 < result.elapsed_s < 30.0
    assert result.tps == pytest.approx(
        result.transactions / result.elapsed_s
    )
