"""Block-trace generation and replay."""

import dataclasses

import pytest

from repro.common.units import KiB, MiB
from repro.csd.device import PlainSSD, PolarCSD
from repro.csd.specs import P5510, POLARCSD2
from repro.workloads.trace import (
    TraceRecord,
    generate_trace,
    prefill,
    replay_trace,
)


def make_ssd():
    spec = dataclasses.replace(
        P5510, logical_capacity=256 * MiB, physical_capacity=256 * MiB,
        jitter_sigma=0.0,
    )
    return PlainSSD(spec)


def make_csd():
    spec = dataclasses.replace(
        POLARCSD2, logical_capacity=256 * MiB, physical_capacity=64 * MiB,
        jitter_sigma=0.0,
    )
    return PolarCSD(spec, block_capacity=1 * MiB)


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord(0.0, "erase", 0, 4096)
    with pytest.raises(ValueError):
        TraceRecord(0.0, "read", 0, 1000)


def test_generate_trace_shape():
    trace = generate_trace(n_ios=500, read_fraction=0.6, seed=3)
    assert len(trace) == 500
    reads = sum(1 for r in trace if r.op == "read")
    assert 0.5 < reads / 500 < 0.7
    issues = [r.issue_us for r in trace]
    assert issues == sorted(issues)  # open-loop timestamps ascend
    assert generate_trace(n_ios=10, seed=3)[:10] == trace[:10]  # deterministic


def test_generate_trace_validates():
    with pytest.raises(ValueError):
        generate_trace(read_fraction=1.5)


def test_replay_skips_unwritten_reads():
    trace = [TraceRecord(0.0, "read", 0, 16 * KiB)]
    report = replay_trace(make_ssd(), trace)
    assert report.skipped_reads == 1
    assert report.total_ios == 0


def test_prefill_then_replay_has_no_skips():
    trace = generate_trace(n_ios=300, read_fraction=0.8, lba_space=512, seed=5)
    device = make_ssd()
    fill_done = prefill(device, trace)
    report = replay_trace(device, trace, assume_prefilled=True,
                          time_offset_us=fill_done)
    assert report.skipped_reads == 0
    assert report.reads.count > 0
    assert report.writes.count > 0


def test_csd_vs_ssd_trace_orderings():
    """Replaying the same trace: the CSD writes faster but reads slower
    than the plain SSD of the same generation (Figure 7's shape, via a
    trace instead of fixed-ratio sweeps)."""
    # Wide inter-arrival gaps keep queues empty, exposing pure service
    # latency (otherwise the SSD's slower writes delay its reads and
    # mask the difference).
    trace = generate_trace(n_ios=400, read_fraction=0.5, lba_space=512,
                           seed=7, mean_interarrival_us=5000.0)
    reports = {}
    for name, factory in (("ssd", make_ssd), ("csd", make_csd)):
        device = factory()
        fill_done = prefill(device, trace, compressibility=2.5)
        reports[name] = replay_trace(
            device, trace, compressibility=2.5, assume_prefilled=True,
            time_offset_us=fill_done,
        )
    assert reports["csd"].writes.mean_us < reports["ssd"].writes.mean_us
    assert reports["csd"].reads.mean_us > reports["ssd"].reads.mean_us


def test_skewed_trace_concentrates_accesses():
    trace = generate_trace(n_ios=2000, zipf_s=1.2, lba_space=1000, seed=9)
    lbas = [r.lba for r in trace]
    top = max(set(lbas), key=lbas.count)
    assert lbas.count(top) > len(lbas) * 0.02
