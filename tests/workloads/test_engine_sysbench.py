"""Sysbench on the shared event kernel: concurrency is real processes."""

from dataclasses import dataclass

import pytest

from repro.db.database import PolarDB
from repro.workloads.sysbench import prepare_table, run_sysbench


@pytest.fixture(scope="module")
def loaded_db():
    db = PolarDB(buffer_pool_pages=64, seed=2)
    now = prepare_table(db, rows=800, seed=2)
    return db, now


def test_engine_mode_commits_batch_under_concurrency(loaded_db):
    db, now = loaded_db
    run = run_sysbench(
        db, "update_non_index", threads=24, start_us=now, seed=3,
        key_range=800, max_transactions=120,
    )
    assert run.transactions == 120
    m = db.metrics
    batches = m.get("storage.group_commit.batches").value
    commits = m.get("storage.group_commit.commits").value
    assert commits >= 120  # every txn commits through the pipeline
    assert batches < commits  # concurrent commits shared flushes
    assert m.get("storage.group_commit.batch_size").max >= 2


def test_engine_mode_is_deterministic():
    def one_run():
        db = PolarDB(buffer_pool_pages=64, seed=2)
        now = prepare_table(db, rows=400, seed=2)
        return run_sysbench(
            db, "read_write", threads=16, start_us=now,
            seed=7, key_range=400, max_transactions=60,
        )

    a, b = one_run(), one_run()
    assert a.transactions == b.transactions
    assert a.elapsed_s == b.elapsed_s
    assert a.latency.mean_us == b.latency.mean_us
    assert a.latency.p95_us == b.latency.p95_us


def test_threads_queue_on_compute_cores(loaded_db):
    """Wait-time accounting: with 3× more clients than cores, statement
    CPU really queues and the resource histograms see it."""
    db, now = loaded_db
    run_sysbench(
        db, "point_select", threads=24, start_us=now, seed=5,
        key_range=800, max_transactions=200,
    )
    hist = db.metrics.get(
        "engine.resource.queue_wait_us", resource="rw-cpu", node="rw"
    )
    assert hist is not None and hist.count > 0
    assert hist.max > 0.0  # someone actually waited


def test_scaling_saturates_at_core_count(loaded_db):
    """Fig 12/15 shape: adding clients beyond the core count stops
    helping — throughput saturates instead of scaling linearly."""
    db, now = loaded_db
    tps = {}
    for threads in (1, 8, 64):
        run = run_sysbench(
            db, "point_select", threads=threads, start_us=now, seed=9,
            key_range=800, max_transactions=50 * threads,
        )
        tps[threads] = run.tps
    assert tps[8] > tps[1] * 2.0  # real concurrency speedup
    assert tps[64] < tps[8] * 8.0  # nowhere near linear past the cores


def test_sync_fallback_for_engines_without_bind_engine():
    """Baselines (no ``bind_engine``) still run on the shared kernel via
    the synchronous adapter: ops execute analytically, clients sleep
    through the completion time."""

    @dataclass
    class FakeResult:
        done_us: float

    class FakeDB:
        def __init__(self):
            self.calls = 0

        def select(self, now_us, table, key, ro_index=-1):
            self.calls += 1
            return FakeResult(now_us + 100.0)

    db = FakeDB()
    run = run_sysbench(
        db, "point_select", threads=4, start_us=0.0,
        max_transactions=20, key_range=100,
    )
    assert run.transactions == 20
    assert db.calls == 20
    # 4 clients × 5 sequential 100 µs selects each.
    assert run.elapsed_s == pytest.approx(500.0 / 1e6)
    assert run.latency.mean_us == pytest.approx(100.0)
