"""Baselines: LSM/MyRocks, InnoDB compression, log-structured store."""

import dataclasses
import random

import pytest

from repro.common.clock import Resource
from repro.common.errors import ReproError
from repro.common.units import DB_PAGE_SIZE, KiB, MiB
from repro.csd.device import PlainSSD
from repro.csd.specs import P5510
from repro.baselines.innodb import InnoDBEngine, InnoDBStore
from repro.baselines.logstructured import LogStructuredStore, UNIT_BYTES
from repro.baselines.lsm import LSMTree
from repro.baselines.myrocks import MyRocksEngine
from repro.workloads.datagen import dataset_pages


def make_device(volume=256 * MiB, seed=0):
    spec = dataclasses.replace(
        P5510, logical_capacity=volume, physical_capacity=volume,
        jitter_sigma=0.0,
    )
    return PlainSSD(spec, seed=seed)


def value_for(key, size=100):
    base = b"val-%010d|" % key
    return (base * (size // len(base) + 1))[:size]


# --------------------------------------------------------------------- #
# LSM                                                                    #
# --------------------------------------------------------------------- #


def test_lsm_put_get_round_trip():
    lsm = LSMTree(make_device(), memtable_bytes=8 * KiB)
    now = 0.0
    for key in range(200):
        now = lsm.put(now, key, value_for(key))
    for key in (0, 50, 199):
        value, now = lsm.get(now, key)
        assert value == value_for(key)
    missing, _ = lsm.get(now, 9999)
    assert missing is None


def test_lsm_updates_shadow_older_versions():
    lsm = LSMTree(make_device(), memtable_bytes=4 * KiB)
    now = 0.0
    for round_no in range(5):
        for key in range(40):
            now = lsm.put(now, key, value_for(key + round_no * 1000))
    for key in range(0, 40, 7):
        value, now = lsm.get(now, key)
        assert value == value_for(key + 4000)


def test_lsm_delete_is_tombstone():
    lsm = LSMTree(make_device(), memtable_bytes=4 * KiB)
    now = 0.0
    for key in range(60):
        now = lsm.put(now, key, value_for(key))
    now = lsm.flush_now(now)
    now = lsm.delete(now, 7)
    now = lsm.flush_now(now)
    value, _ = lsm.get(now, 7)
    assert value is None


def test_lsm_compaction_triggers_and_amplifies_writes():
    lsm = LSMTree(make_device(), memtable_bytes=4 * KiB, l0_limit=2)
    now = 0.0
    rng = random.Random(0)
    for _ in range(600):
        now = lsm.put(now, rng.randrange(100), value_for(rng.randrange(10**6)))
    assert lsm.stats.compactions > 0
    assert lsm.stats.write_amplification > 1.2
    assert lsm.stats.compaction_read_bytes > 0


def test_lsm_compaction_charges_compute_resource():
    compute = Resource("compute")
    lsm = LSMTree(make_device(), compute, memtable_bytes=4 * KiB, l0_limit=2)
    now = 0.0
    for key in range(400):
        now = lsm.put(now, key, value_for(key))
    assert compute.total_busy_us > 0


def test_lsm_compresses_data():
    lsm = LSMTree(make_device(), memtable_bytes=32 * KiB)
    now = 0.0
    for key in range(500):
        now = lsm.put(now, key, value_for(key))
    now = lsm.flush_now(now)
    assert lsm.stored_bytes < lsm.stats.user_write_bytes


# --------------------------------------------------------------------- #
# MyRocks engine                                                         #
# --------------------------------------------------------------------- #


def test_myrocks_statement_api():
    db = MyRocksEngine(memtable_bytes=8 * KiB)
    db.create_table("t")
    now = 0.0
    for key in range(100):
        now = db.insert(now, "t", key, value_for(key)).done_us
    assert db.select(now, "t", 5).value == value_for(5)
    now = db.update(now, "t", 5, b"changed").done_us
    assert db.select(now, "t", 5).value == b"changed"
    now = db.delete(now, "t", 5).done_us
    assert db.select(now, "t", 5).value is None
    with pytest.raises(ReproError):
        db.insert(0.0, "missing", 1, b"x")
    with pytest.raises(ReproError):
        db.create_table("t")


def test_myrocks_compression_ratio():
    db = MyRocksEngine(memtable_bytes=32 * KiB)
    db.create_table("t")
    now = db.bulk_load(0.0, "t", [(k, value_for(k)) for k in range(2000)])
    db.checkpoint(now)
    assert db.compression_ratio() > 1.5


# --------------------------------------------------------------------- #
# InnoDB                                                                 #
# --------------------------------------------------------------------- #


def _db_page(seed):
    return dataset_pages("fnb", 1, seed=seed)[0]


def test_innodb_store_round_trip():
    store = InnoDBStore()
    page = _db_page(1)
    store.write_page(0.0, 7, page)
    result = store.read_page(1000.0, 7)
    assert result.data == page


def test_innodb_table_compression_uses_power_of_two_blocks():
    store = InnoDBStore(table_compression=True)
    store.write_page(0.0, 1, _db_page(2))
    location = store._locations[1]
    assert location.n_blocks in (1, 2, 4)


def test_innodb_page_compression_allows_any_block_count():
    store = InnoDBStore(table_compression=False)
    for seed in range(6):
        store.write_page(seed * 1e3, seed, _db_page(seed))
    counts = {loc.n_blocks for loc in store._locations.values()}
    assert counts - {1, 2, 4} or counts <= {1, 2, 3, 4}


def test_innodb_compression_costs_compute_cpu():
    store = InnoDBStore()
    store.write_page(0.0, 1, _db_page(3))
    store.read_page(1e3, 1)
    assert store.compress_cpu_us > 0
    assert store.decompress_cpu_us > 0


def test_innodb_block_granularity_wastes_space_vs_polarstore():
    """Figure 2a / Table 1: 4 KB file-block indexing stores more bytes than
    byte-granular indexing for the same data."""
    from repro.storage.node import NodeConfig
    from repro.storage.store import build_node

    pages = dataset_pages("finance", 16, seed=0)
    innodb = InnoDBStore()
    polar = build_node(
        "polar", NodeConfig(opt_algorithm_selection=False), volume_bytes=64 * MiB
    )
    for i, page in enumerate(pages):
        innodb.write_page(i * 1e3, i, page)
        polar.write_page(i * 1e3, i, page)
    assert polar.physical_used_bytes < innodb.physical_bytes


def test_innodb_engine_end_to_end():
    db = InnoDBEngine(buffer_pool_pages=8)  # small pool: forces write-back
    db.create_table("t")
    now = 0.0
    for key in range(400):
        now = db.insert(now, "t", key, value_for(key)).done_us
    for key in (0, 123, 399):
        assert db.select(now, "t", key).value == value_for(key)
    now = db.checkpoint(now)
    assert db.compression_ratio() > 1.0


def test_innodb_engine_update_delete():
    db = InnoDBEngine()
    db.create_table("t")
    now = 0.0
    for key in range(50):
        now = db.insert(now, "t", key, value_for(key)).done_us
    now = db.update(now, "t", 10, b"NEW").done_us
    assert db.select(now, "t", 10).value == b"NEW"
    now = db.delete(now, "t", 10).done_us
    assert db.select(now, "t", 10).value is None


# --------------------------------------------------------------------- #
# Log-structured store                                                   #
# --------------------------------------------------------------------- #


def test_logstructured_round_trip_through_compaction():
    store = LogStructuredStore(make_device())
    pages = {i: _db_page(i + 10) for i in range(40)}
    now = 0.0
    for page_no, page in pages.items():
        now = store.write_page(now, page_no, page)
    assert store.stats.compactions > 0
    for page_no, page in pages.items():
        data, now, _ = store.read_page(now, page_no)
        assert data == page


def test_logstructured_split_pages_cost_two_reads():
    """§2.2.1: compression units misalign with 16 KB pages, so some reads
    need two unit reads + decompressions."""
    store = LogStructuredStore(make_device())
    now = 0.0
    for page_no in range(64):
        now = store.write_page(now, page_no, _db_page(page_no))
    split_reads = 0
    for page_no in range(64):
        _, now, units = store.read_page(now, page_no)
        if units == 2:
            split_reads += 1
    assert split_reads > 0
    assert store.stats.split_page_reads == split_reads


def test_logstructured_compresses():
    store = LogStructuredStore(make_device())
    now = 0.0
    for page_no in range(32):
        now = store.write_page(now, page_no, _db_page(page_no))
    compacted = store.stats.compaction_write_bytes
    assert 0 < compacted < 32 * DB_PAGE_SIZE


def test_logstructured_missing_page():
    store = LogStructuredStore(make_device())
    with pytest.raises(ReproError):
        store.read_page(0.0, 5)
