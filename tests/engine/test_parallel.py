"""The parallel engine layer: program fan-out, conservative epoch
synchronization, and the deterministic observability merges."""

import pytest

from repro.engine.core import EngineError, Timeout
from repro.engine.parallel import (
    ParallelEngine,
    ParallelEngineGroup,
    ParallelError,
    merge_event_streams,
    merge_metrics_states,
    workers_from_env,
)
from repro.obs.metrics import MetricsRegistry


# -- REPRO_WORKERS ----------------------------------------------------------

def test_workers_from_env_unset_and_set():
    assert workers_from_env(env={}) is None
    assert workers_from_env(env={"REPRO_WORKERS": ""}) is None
    assert workers_from_env(env={"REPRO_WORKERS": " 4 "}) == 4


def test_workers_from_env_rejects_garbage():
    with pytest.raises(ValueError, match="integer"):
        workers_from_env(env={"REPRO_WORKERS": "many"})
    with pytest.raises(ValueError, match=">= 1"):
        workers_from_env(env={"REPRO_WORKERS": "0"})


# -- program fan-out --------------------------------------------------------

def test_run_programs_matches_inline_at_any_worker_count():
    programs = [lambda i=i: {"index": i, "value": i * i} for i in range(7)]
    inline = ParallelEngineGroup.run_programs(programs, workers=1)
    for workers in (2, 3, 7):
        assert ParallelEngineGroup.run_programs(
            programs, workers=workers
        ) == inline


def test_run_programs_results_are_indexed_not_completion_ordered():
    # Program 0 does far more work than the rest; its slot must still be
    # slot 0 even though other workers finish first.
    def heavy():
        total = 0
        for i in range(200_000):
            total += i
        return ("heavy", total)

    programs = [heavy] + [lambda i=i: ("light", i) for i in range(1, 5)]
    results = ParallelEngineGroup.run_programs(programs, workers=4)
    assert results[0][0] == "heavy"
    assert [r[1] for r in results[1:]] == [1, 2, 3, 4]


def test_run_programs_propagates_worker_tracebacks():
    def boom():
        raise ValueError("deliberate-worker-failure")

    with pytest.raises(ParallelError, match="deliberate-worker-failure"):
        ParallelEngineGroup.run_programs(
            [lambda: 1, boom], workers=2
        )


def test_run_programs_setup_seeds_each_worker():
    import tests.engine.test_parallel as mod

    def setup(worker_id):
        mod._WORKER_TAG = worker_id

    def read_tag():
        return mod._WORKER_TAG

    # Round-robin: programs 0,2 land on worker 0; 1,3 on worker 1.
    results = ParallelEngineGroup.run_programs(
        [read_tag] * 4, workers=2, setup=setup
    )
    assert results == [0, 1, 0, 1]


# -- conservative epoch synchronization -------------------------------------

def _pump_delivering(engine, pending, completions):
    """A reply pump that resolves the oldest call when blocked."""

    def pump(block):
        if block and pending:
            call = pending.pop(0)
            engine.deliver(call, completions[call.label])

    return pump


def test_events_inside_lookahead_run_before_the_reply():
    engine = ParallelEngine()
    log = []
    pending = []
    engine.reply_pump = _pump_delivering(
        engine, pending, {"w": {"t": 10.0, "value": 42}}
    )

    def remote_proc():
        call = engine.remote(10.0, lambda v: v["t"], label="w")
        pending.append(call)
        value = yield call
        log.append(("reply", engine.now_us, value["value"]))

    def ticker():
        yield Timeout(5.0)
        log.append(("tick", engine.now_us))
        yield Timeout(10.0)
        log.append(("tick", engine.now_us))

    engine.spawn(remote_proc())
    engine.spawn(ticker())
    engine.run_until_idle()
    # t=5 is inside the lookahead window: it dispatches while the call
    # is in flight.  t=15 is past the horizon: it must wait for the
    # reply (which lands at exactly t=10).
    assert log == [("tick", 5.0), ("reply", 10.0, 42), ("tick", 15.0)]
    assert engine.stalls >= 1
    assert engine.outstanding == 0


def test_reply_tie_at_horizon_uses_the_reserved_seq():
    # A completion at t=10 ties with a timer at t=10.  The completion's
    # sequence number was reserved at issue time (earlier), so serial
    # order — completion first — must be reproduced.
    engine = ParallelEngine()
    log = []
    pending = []
    engine.reply_pump = _pump_delivering(
        engine, pending, {"w": {"t": 10.0}}
    )

    def remote_proc():
        call = engine.remote(10.0, lambda v: v["t"], label="w")
        pending.append(call)
        yield call
        log.append("reply")

    def ticker():
        yield Timeout(10.0)
        log.append("tick")

    engine.spawn(remote_proc())
    engine.spawn(ticker())
    engine.run_until_idle()
    assert log == ["reply", "tick"]


def test_lookahead_certificate_violation_raises():
    engine = ParallelEngine()
    pending = []
    engine.reply_pump = _pump_delivering(
        engine, pending, {"w": {"t": 3.0}}  # < issue(0) + lookahead(10)
    )

    def remote_proc():
        call = engine.remote(10.0, lambda v: v["t"], label="w")
        pending.append(call)
        yield call

    engine.spawn(remote_proc())
    with pytest.raises(EngineError, match="lookahead certificate"):
        engine.run_until_idle()


def test_outstanding_call_without_pump_raises():
    engine = ParallelEngine()

    def remote_proc():
        yield engine.remote(10.0, lambda v: v)

    engine.spawn(remote_proc())
    with pytest.raises(EngineError, match="no reply pump"):
        engine.run_until_idle()


def test_negative_lookahead_rejected():
    engine = ParallelEngine()
    with pytest.raises(EngineError, match="negative"):
        engine.remote(-1.0, lambda v: v)


# -- deterministic merges ---------------------------------------------------

class _Ev:
    def __init__(self, t_us, tag):
        self.t_us = t_us
        self.tag = tag


def test_merge_event_streams_orders_by_time_then_worker_then_pos():
    w0 = [_Ev(1.0, "a"), _Ev(5.0, "b"), _Ev(5.0, "c")]
    w1 = [_Ev(0.5, "d"), _Ev(5.0, "e")]
    merged = merge_event_streams([w0, w1])
    assert [e.tag for e in merged] == ["d", "a", "b", "c", "e"]


def test_merge_metrics_states_is_permutation_independent():
    def worker_state(seed):
        reg = MetricsRegistry()
        reg.counter("ops", shard=seed).inc(seed + 1)
        hist = reg.histogram("lat_us")
        for i in range(20):
            hist.record(0.1 + ((seed * 7 + i * 13) % 50) / 3.0)
        return reg.state()

    states = [worker_state(s) for s in range(4)]
    merged_a = MetricsRegistry()
    merge_metrics_states(merged_a, states)
    merged_b = MetricsRegistry()
    merge_metrics_states(merged_b, list(reversed(states)))
    assert merged_a.snapshot() == merged_b.snapshot()
