"""Resource/Queue semantics: FIFO under contention, zero-service,
analytic equivalence (S3), and obs wiring (S2)."""

import pytest

from repro.common.clock import Resource as LegacyResource
from repro.common.clock import ResourcePool as LegacyPool
from repro.engine import Engine, EngineError, Queue, Resource, ResourcePool
from repro.obs.metrics import MetricsRegistry


def _process_requests(resource, arrivals):
    """Drive (arrive_us, service_us) pairs as concurrent engine
    processes; return [(tag, begin_wait_end)] in completion order."""
    eng = resource.engine
    done = []

    def client(tag, arrive, service):
        yield eng.sleep_until(arrive)
        end = yield from resource.process(service)
        done.append((tag, end))

    procs = [
        eng.spawn(client(i, arrive, service))
        for i, (arrive, service) in enumerate(arrivals)
    ]
    eng.run_until_complete(procs)
    return done


# -- FIFO ordering ---------------------------------------------------------

def test_fifo_order_under_simultaneous_arrivals():
    """Four clients arrive at the same instant; they are served in
    spawn order and each waits exactly behind its predecessors."""
    eng = Engine()
    res = Resource("dev", engine=eng)
    done = _process_requests(
        res, [(0.0, 10.0), (0.0, 10.0), (0.0, 10.0), (0.0, 10.0)]
    )
    assert done == [(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)]
    assert res.total_wait_us == 10.0 + 20.0 + 30.0
    assert res.waited == 3


def test_fifo_not_shortest_job_first():
    """A long request that arrived first is served first even when a
    short one is waiting — FIFO, not SJF."""
    eng = Engine()
    res = Resource("dev", engine=eng)
    done = _process_requests(res, [(0.0, 100.0), (1.0, 1.0)])
    assert done == [(0, 100.0), (1, 101.0)]


def test_zero_service_requests():
    """Zero-service requests complete instantly when idle and still
    respect FIFO position when queued."""
    eng = Engine()
    res = Resource("dev", engine=eng)
    done = _process_requests(res, [(0.0, 0.0), (0.0, 50.0), (0.0, 0.0)])
    assert done == [(0, 0.0), (1, 50.0), (2, 50.0)]
    assert res.completed == 3


def test_negative_service_rejected_in_both_styles():
    eng = Engine()
    res = Resource("dev", engine=eng)
    with pytest.raises(ValueError):
        res.serve(0.0, -1.0)

    def bad():
        yield from res.process(-1.0)

    with pytest.raises(ValueError):
        eng.run(bad())


def test_process_requires_engine():
    res = Resource("unbound")

    def use():
        yield from res.process(1.0)

    with pytest.raises(EngineError):
        Engine().run(use())


def test_multi_server_parallelism():
    """Two servers run two requests concurrently; the third waits for
    the earliest to free."""
    eng = Engine()
    res = Resource("pool", servers=2, engine=eng)
    done = _process_requests(res, [(0.0, 30.0), (0.0, 10.0), (0.0, 10.0)])
    # Client 0 on server A (done 30), client 1 on server B (done 10),
    # client 2 waits for B (done 20).
    assert sorted(done) == [(0, 30.0), (1, 10.0), (2, 20.0)]


# -- analytic equivalence (S3) --------------------------------------------

def test_engine_single_client_matches_legacy_serve():
    """One client through the engine reproduces legacy Resource.serve
    completion times exactly — the adapter property the refactor
    relies on to keep existing tests meaningful."""
    requests = [(0.0, 11.0), (5.0, 3.0), (40.0, 7.0), (41.0, 0.0)]

    legacy = LegacyResource("dev")
    legacy_done = [legacy.serve(a, s) for a, s in requests]

    eng = Engine()
    res = Resource("dev", engine=eng)

    def one_client():
        ends = []
        for arrive, service in requests:
            yield eng.sleep_until(arrive)
            end = yield from res.process(service)
            ends.append(end)
        return ends

    assert eng.run(one_client()) == legacy_done
    assert res.total_busy_us == legacy.total_busy_us
    assert res.completed == legacy.completed


def test_serve_adapter_matches_legacy_pool_exactly():
    """The sync serve() adapter on a multi-server Resource is
    drop-in equivalent to the legacy ResourcePool."""
    requests = [(0.0, 9.0), (1.0, 9.0), (2.0, 9.0), (3.0, 1.0), (20.0, 5.0)]
    legacy = LegacyPool("cpu", 2)
    ours = ResourcePool("cpu", 2)
    for arrive, service in requests:
        assert ours.serve(arrive, service) == legacy.serve(arrive, service)
    assert [s.busy_until_us for s in ours.servers] == [
        s.busy_until_us for s in legacy.servers
    ]


def test_mixed_sync_and_engine_share_state():
    """A sync serve() call books device time that a later engine
    process must queue behind, and vice versa."""
    eng = Engine()
    res = Resource("dev", engine=eng)
    assert res.serve(0.0, 100.0) == 100.0

    def client():
        end = yield from res.process(10.0)
        return end

    assert eng.run(client()) == 110.0
    # And the engine-booked occupancy pushes a later sync call out.
    assert res.serve(105.0, 5.0) == 115.0


def test_set_servers_grows_and_shrinks():
    eng = Engine()
    res = Resource("dev", servers=1, engine=eng)
    res.serve(0.0, 50.0)
    res.set_servers(3)
    assert len(res.servers) == 3
    # New servers are free now; a request lands immediately.
    assert res.serve(0.0, 5.0) == 5.0
    res.set_servers(1)
    assert len(res.servers) == 1


# -- observability (S2) ----------------------------------------------------

def test_queue_wait_histogram_and_gauges_exported():
    registry = MetricsRegistry()
    eng = Engine()
    res = Resource("nand", engine=eng)
    res.bind_metrics(registry, device="dev0")
    _process_requests(res, [(0.0, 10.0), (0.0, 10.0)])

    hist = registry.get("engine.resource.queue_wait_us",
                        device="dev0", resource="nand")
    assert hist is not None
    assert hist.count == 2  # one zero-wait, one 10us wait
    assert hist.p50 >= 0.0

    gauges = {
        m.name: m.value
        for m in registry.instruments()
        if m.name.startswith("engine.resource.")
        and m.name != "engine.resource.queue_wait_us"
    }
    assert gauges["engine.resource.busy_us"] == 20.0
    assert gauges["engine.resource.servers"] == 1.0
    assert gauges["engine.resource.queue_depth"] == 0.0
    assert 0.0 < gauges["engine.resource.utilization"] <= 1.0


def test_utilization_accounts_all_servers():
    res = Resource("pool", servers=2)
    res.serve(0.0, 10.0)
    res.serve(0.0, 10.0)
    assert res.utilization(10.0) == 1.0
    assert res.utilization(20.0) == 0.5


# -- Queue primitive -------------------------------------------------------

def test_queue_fifo_put_get():
    eng = Engine()
    q = Queue(eng, "jobs")
    got = []

    def consumer():
        while True:
            item = yield q.get()
            if item is None:
                break
            got.append((item, eng.now_us))

    def producer():
        for i in range(3):
            yield eng.timeout(5.0)
            q.put(i)
        q.put(None)

    c = eng.spawn(consumer())
    eng.spawn(producer())
    eng.run_until_complete([c])
    assert got == [(0, 5.0), (1, 10.0), (2, 15.0)]
    assert q.total_put == 4


def test_queue_buffers_while_consumer_busy():
    """Items arriving while the consumer is away accumulate and drain
    in order — the group-commit batching primitive."""
    eng = Engine()
    q = Queue(eng, "commits")
    batches = []

    def consumer():
        while len(batches) < 2:
            first = yield q.get()
            # Simulate a flush taking 30us; more items arrive meanwhile.
            yield eng.timeout(30.0)
            batch = [first] + q.drain()
            batches.append((batch, eng.now_us))

    def producer():
        for i in range(4):
            q.put(i)
            yield eng.timeout(10.0)

    c = eng.spawn(consumer())
    eng.spawn(producer())
    eng.run_until_complete([c])
    # First batch: item 0 alone started the flush; 1,2 arrived during it.
    assert batches[0] == ([0, 1, 2], 30.0)
    assert batches[1][0] == [3]
    assert q.max_depth == 2
