"""Kernel semantics: heap ordering, processes, events, error surfacing."""

import pytest

from repro.engine import Engine, EngineError


def test_timeout_advances_clock():
    eng = Engine()

    def proc():
        yield eng.timeout(100.0)
        return eng.now_us

    assert eng.run(proc()) == 100.0
    assert eng.now_us == 100.0


def test_start_time_offsets_everything():
    eng = Engine(start_us=5000.0)

    def proc():
        yield eng.timeout(10.0)
        return eng.now_us

    assert eng.run(proc()) == 5010.0


def test_sleep_until_past_is_noop():
    eng = Engine(start_us=200.0)

    def proc():
        yield eng.sleep_until(50.0)
        return eng.now_us

    assert eng.run(proc()) == 200.0


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(EngineError):
        eng.timeout(-1.0)


def test_tie_break_is_schedule_order():
    """Events at the same instant fire in the order they were scheduled —
    the `(time_us, seq)` heap key makes simultaneity deterministic."""
    eng = Engine()
    order = []

    def worker(tag):
        yield eng.timeout(10.0)
        order.append(tag)

    for tag in ("a", "b", "c", "d"):
        eng.spawn(worker(tag))
    eng.run_until_idle()
    assert order == ["a", "b", "c", "d"]


def test_determinism_identical_runs():
    """The same program replayed on a fresh engine produces the same
    trace — byte-for-byte determinism is what the CI job diffs."""

    def simulate():
        eng = Engine()
        trace = []

        def worker(tag, delay):
            yield eng.timeout(delay)
            trace.append((tag, eng.now_us))
            yield eng.timeout(delay * 2)
            trace.append((tag, eng.now_us))

        for i, delay in enumerate([30.0, 10.0, 10.0, 20.0]):
            eng.spawn(worker(i, delay))
        eng.run_until_idle()
        return trace

    assert simulate() == simulate()


def test_event_delivers_value_to_all_waiters():
    eng = Engine()
    ev = eng.event("go")
    got = []

    def waiter(tag):
        value = yield ev
        got.append((tag, value, eng.now_us))

    def firer():
        yield eng.timeout(40.0)
        ev.succeed("payload")

    eng.spawn(waiter("w1"))
    eng.spawn(waiter("w2"))
    eng.spawn(firer())
    eng.run_until_idle()
    assert got == [("w1", "payload", 40.0), ("w2", "payload", 40.0)]


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event("doomed")

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught:{exc}"

    def firer():
        yield eng.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    proc = eng.spawn(waiter())
    eng.spawn(firer())
    eng.run_until_idle()
    assert proc.value == "caught:boom"


def test_event_fires_once():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(EngineError):
        ev.succeed(2)


def test_waiting_on_already_fired_event_resumes_immediately():
    eng = Engine()
    ev = eng.event()
    ev.succeed(99)

    def waiter():
        value = yield ev
        return value

    assert eng.run(waiter()) == 99


def test_join_process_returns_its_value():
    eng = Engine()

    def child():
        yield eng.timeout(25.0)
        return "child-result"

    def parent():
        result = yield eng.spawn(child())
        return result, eng.now_us

    assert eng.run(parent()) == ("child-result", 25.0)


def test_join_already_finished_process():
    eng = Engine()

    def child():
        yield eng.timeout(1.0)
        return 7

    child_proc = eng.spawn(child())
    eng.run_until_idle()
    assert child_proc.done

    def parent():
        value = yield child_proc
        return value

    assert eng.run(parent()) == 7


def test_child_error_propagates_to_joiner():
    eng = Engine()

    def child():
        yield eng.timeout(1.0)
        raise ValueError("inner")

    def parent():
        with pytest.raises(ValueError, match="inner"):
            yield eng.spawn(child())
        return "handled"

    assert eng.run(parent()) == "handled"


def test_unjoined_process_error_surfaces_from_run_loop():
    eng = Engine()

    def doomed():
        yield eng.timeout(1.0)
        raise ValueError("nobody joined me")

    eng.spawn(doomed())
    with pytest.raises(ValueError, match="nobody joined me"):
        eng.run_until_idle()


def test_unsupported_yield_is_engine_error():
    eng = Engine()

    def bad():
        yield 42

    with pytest.raises(EngineError, match="unsupported"):
        eng.run(bad())


def test_deadlock_detected():
    eng = Engine()

    def stuck():
        yield eng.event("never-fires")

    with pytest.raises(EngineError, match="never completed"):
        eng.run(stuck())


def test_schedule_into_past_clamps_to_now():
    eng = Engine(start_us=100.0)
    seen = []
    eng.schedule(10.0, lambda: seen.append(eng.now_us))
    eng.run_until_idle()
    assert seen == [100.0]


def test_run_until_idle_limit_stops_early():
    eng = Engine()
    hits = []

    def ticker():
        while True:
            yield eng.timeout(10.0)
            hits.append(eng.now_us)

    eng.spawn(ticker())
    eng.run_until_idle(limit_us=35.0)
    assert hits == [10.0, 20.0, 30.0]


def test_cancel_stops_daemon():
    eng = Engine()
    hits = []

    def daemon():
        while True:
            yield eng.timeout(10.0)
            hits.append(eng.now_us)

    def main():
        yield eng.timeout(25.0)
        return "done"

    d = eng.spawn(daemon())
    eng.run(main())
    d.cancel()
    eng.run_until_idle()
    assert hits == [10.0, 20.0]
    assert d.cancelled
