"""The network fault plan: windows, direction scopes, seeded rolls."""

from repro.chaos.net import NetFaultKind, NetFaultPlan, NetRule


# -- partition windows and scopes -------------------------------------------


def test_partition_active_only_inside_its_window():
    plan = NetFaultPlan(1)
    plan.partition([0], [1, 2], 1_000.0, 2_000.0)
    assert not plan.blocked(0, 1, 999.0)
    assert plan.blocked(0, 1, 1_000.0)
    assert plan.blocked(0, 2, 1_500.0)
    assert not plan.blocked(0, 1, 2_000.0)  # half-open window


def test_symmetric_partition_cuts_both_directions():
    plan = NetFaultPlan(1)
    plan.partition([0], [1], 0.0, 10.0)
    assert plan.blocked(0, 1, 5.0)
    assert plan.blocked(1, 0, 5.0)
    assert not plan.blocked(0, 2, 5.0)
    assert not plan.blocked(2, 1, 5.0)


def test_asymmetric_partition_cuts_one_direction():
    plan = NetFaultPlan(1)
    plan.partition([0], [1], 0.0, 10.0, symmetric=False)
    assert plan.blocked(0, 1, 5.0)
    assert not plan.blocked(1, 0, 5.0)


def test_none_scope_matches_every_node():
    rule = NetRule(NetFaultKind.PARTITION, src=None, dst=frozenset({3}))
    assert rule.matches(0, 3)
    assert rule.matches(99, 3)
    assert not rule.matches(3, 0)


# -- probabilistic rules -----------------------------------------------------


def test_drop_verdicts_are_seed_deterministic():
    def verdicts(seed):
        plan = NetFaultPlan(seed)
        plan.drop(0.5)
        return [plan.judge(0, 1, float(t)).dropped for t in range(50)]

    assert verdicts(7) == verdicts(7)
    assert verdicts(7) != verdicts(8)  # the seed is live


def test_blocked_consumes_no_randomness():
    """Data-plane polling of ``blocked`` must not perturb the message-
    level fault streams."""
    a = NetFaultPlan(7)
    a.drop(0.5)
    b = NetFaultPlan(7)
    b.drop(0.5)
    for t in range(200):
        b.blocked(0, 1, float(t))  # poll hard on one plan only
    rolls_a = [a.judge(0, 1, float(t)).dropped for t in range(30)]
    rolls_b = [b.judge(0, 1, float(t)).dropped for t in range(30)]
    assert rolls_a == rolls_b


def test_per_link_streams_are_independent():
    """Adding traffic on one link must not shift another link's rolls."""
    a = NetFaultPlan(7)
    a.drop(0.5)
    b = NetFaultPlan(7)
    b.drop(0.5)
    for t in range(100):
        b.judge(2, 0, float(t))  # extra traffic on an unrelated link
    rolls_a = [a.judge(0, 1, float(t)).dropped for t in range(30)]
    rolls_b = [b.judge(0, 1, float(t)).dropped for t in range(30)]
    assert rolls_a == rolls_b


def test_delay_scales_within_half_to_three_halves():
    plan = NetFaultPlan(3)
    plan.delay(1.0, delay_us=100.0)
    for t in range(20):
        verdict = plan.judge(0, 1, float(t))
        assert 50.0 <= verdict.extra_delay_us <= 150.0
    assert plan.delayed_messages == 20


def test_duplicate_always_fires_at_probability_one():
    plan = NetFaultPlan(3)
    plan.duplicate(1.0)
    assert plan.judge(0, 1, 0.0).duplicates == 1
    assert plan.duplicated_messages == 1


def test_counts_track_every_kind():
    plan = NetFaultPlan(5)
    plan.partition([0], [1], 0.0, 10.0)
    plan.drop(1.0, src=[2], dst=[0])
    plan.delay(1.0, delay_us=10.0, src=[2], dst=[1])
    plan.duplicate(1.0, src=[1], dst=[2])
    assert plan.judge(0, 1, 5.0).blocked
    assert plan.judge(2, 0, 5.0).dropped
    assert plan.judge(2, 1, 5.0).extra_delay_us > 0.0
    assert plan.judge(1, 2, 5.0).duplicates == 1
    assert plan.counts() == {
        "blocked": 1, "dropped": 1, "delayed": 1, "duplicated": 1,
    }


def test_clean_message_reports_clean_verdict():
    plan = NetFaultPlan(5)
    plan.partition([0], [1], 0.0, 10.0)
    verdict = plan.judge(2, 1, 5.0)
    assert not verdict.blocked and not verdict.dropped
    assert verdict.extra_delay_us == 0.0 and verdict.duplicates == 0
