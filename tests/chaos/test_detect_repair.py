"""The detect-and-repair read path under targeted, deterministic faults."""

import numpy as np
import pytest

from repro.chaos.plan import FaultKind, FaultPlan, FaultRule
from repro.common.errors import RaftError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore


def make_page(fill: int) -> bytes:
    """Incompressible page: bit flips must land in real payload (not
    trailing padding) and torn writes must cut actual compressed bytes,
    otherwise the fault is injected but legitimately undetectable."""
    rng = np.random.default_rng(fill)
    return rng.integers(0, 256, DB_PAGE_SIZE, dtype=np.uint8).tobytes()


def make_store(seed=0):
    return PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=seed)


def counter_total(store, name, **labels):
    total = 0
    for inst in store.metrics.instruments():
        if inst.kind != "counter" or inst.name != name:
            continue
        if any(inst.labels.get(k) != v for k, v in labels.items()):
            continue
        total += int(inst.value)
    return total


def arm(store, kind, max_count=1):
    """Arm a one-shot fault on the leader's data device."""
    plan = FaultPlan(seed=3)
    plan.add(
        FaultRule(kind, scope=f"{store.leader.name}:data", max_count=max_count)
    )
    plan.attach_to_store(store)
    return plan


@pytest.mark.parametrize(
    "kind",
    [
        FaultKind.BIT_FLIP,
        FaultKind.TORN_WRITE,
        FaultKind.DROPPED_WRITE,
        FaultKind.MISDIRECTED_WRITE,
    ],
)
def test_read_detects_repairs_and_attributes(kind):
    store = make_store()
    plan = arm(store, kind)
    now = store.write_page(0.0, 1, make_page(7)).commit_us
    assert plan.total_injected == 1
    # Bypass the page cache so the read touches the damaged device bytes.
    store.leader.page_cache.remove(1)
    result = store.read_page(now, 1)
    assert result.data == make_page(7)
    assert counter_total(store, "chaos.detected", kind=kind.value) >= 1
    assert counter_total(store, "chaos.repaired", kind=kind.value) >= 1
    assert counter_total(store, "chaos.unrepairable") == 0
    # The repair rewrote the leader's copy: a direct leader read is clean.
    store.leader.page_cache.remove(1)
    assert store.leader.read_page(result.done_us, 1).data == make_page(7)


def test_scrub_finds_and_repairs_without_client_reads():
    store = make_store()
    arm(store, FaultKind.BIT_FLIP)
    now = store.write_page(0.0, 1, make_page(9)).commit_us
    now = store.scrub(now)
    assert counter_total(store, "chaos.repaired", kind="bit_flip") == 1
    # A second scrub finds nothing left to fix.
    repaired_before = counter_total(store, "chaos.repaired")
    store.scrub(now)
    assert counter_total(store, "chaos.repaired") == repaired_before


def test_crash_rejoin_resyncs_missed_pages():
    store = make_store()
    now = store.write_page(0.0, 1, make_page(1)).commit_us
    store.fail_node(2)
    now = store.write_page(now, 2, make_page(2)).commit_us
    now = store.recover_node(2, now)
    # The rejoined replica serves both pages directly, byte-exact.
    for page_no in (1, 2):
        assert store.nodes[2].read_page(now, page_no).data == make_page(
            page_no
        )
    assert counter_total(store, "chaos.wal_replays") == 1
    assert counter_total(store, "chaos.resynced_pages") >= 1


def test_quorum_loss_raises_raft_error():
    store = make_store()
    now = store.write_page(0.0, 1, make_page(1)).commit_us
    store.fail_node(1)
    now = store.write_page(now, 2, make_page(2)).commit_us  # 2/3 still ok
    store.fail_node(2)
    with pytest.raises(RaftError):
        store.write_page(now, 3, make_page(3))


def test_device_failure_window_degrades_then_recovers():
    store = make_store()
    plan = FaultPlan(seed=3)
    rule = plan.add(
        FaultRule(
            FaultKind.DEVICE_FAIL,
            scope=f"{store.nodes[1].name}:data",
            from_us=0.0,
        )
    )
    plan.attach_to_store(store)
    now = store.write_page(0.0, 1, make_page(4)).commit_us  # quorum of 2
    assert store.read_page(now, 1).data == make_page(4)
    # Close the window; the next scrub resyncs the starved replica.
    rule.until_us = now
    now = store.scrub(now)
    assert store.nodes[1].read_page(now, 1).data == make_page(4)


def test_fail_node_guards():
    from repro.common.errors import ReproError

    store = make_store()
    with pytest.raises(ReproError):
        store.fail_node(0)  # the leader cannot be failed
    store.fail_node(1)
    with pytest.raises(ReproError):
        store.fail_node(1)  # double-fail of the same index
    with pytest.raises(ReproError):
        store.recover_node(2)  # node 2 is not failed
