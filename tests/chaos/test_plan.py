"""Fault plans, rules, injectors, and the corruption ledger."""

import pytest

from repro.chaos.plan import (
    TORN_WRITE_PREFIX,
    DeviceInjector,
    FaultKind,
    FaultLedger,
    FaultPlan,
    FaultRule,
)
from repro.common.errors import DeviceUnavailableError
from repro.common.units import LBA_SIZE


def make_injector(seed, label, *rules) -> DeviceInjector:
    plan = FaultPlan(seed=seed)
    for rule in rules:
        plan.add(rule)
    return plan.injector_for(label)


def drive(injector, writes=40, payload=b"\xa5" * (4 * LBA_SIZE)):
    """Feed a fixed write sequence; return the injector's decisions."""
    out = []
    for i in range(writes):
        out.append(injector.on_write(float(i) * 100.0, i * 4, payload))
    return out


# -- determinism ---------------------------------------------------------------


def test_same_seed_and_label_replays_identical_faults():
    def build():
        return make_injector(
            77, "node-0:data",
            FaultRule(FaultKind.BIT_FLIP, probability=0.3),
            FaultRule(FaultKind.DROPPED_WRITE, probability=0.2),
            FaultRule(FaultKind.SLOW_IO, probability=0.2, slow_us=5000.0),
        )

    a, b = drive(build()), drive(build())
    assert a == b
    # And the sequence is non-trivial: at least one fault actually fired.
    assert any(data != b"\xa5" * (4 * LBA_SIZE) for _, data, _ in a)


def test_different_labels_draw_independent_streams():
    rule = lambda: FaultRule(FaultKind.BIT_FLIP, probability=0.5)
    a = drive(make_injector(77, "node-0:data", rule()))
    b = drive(make_injector(77, "node-1:data", rule()))
    assert a != b


def test_different_seeds_draw_independent_streams():
    rule = lambda: FaultRule(FaultKind.BIT_FLIP, probability=0.5)
    a = drive(make_injector(1, "node-0:data", rule()))
    b = drive(make_injector(2, "node-0:data", rule()))
    assert a != b


# -- fault mechanics -----------------------------------------------------------


def test_bit_flip_changes_exactly_one_bit():
    inj = make_injector(
        5, "n:data", FaultRule(FaultKind.BIT_FLIP, max_count=1)
    )
    payload = bytes(range(256)) * 16
    lba, data, _ = inj.on_write(0.0, 8, payload)
    assert lba == 8
    diff = [
        (x ^ y) for x, y in zip(payload, data) if x != y
    ]
    assert len(diff) == 1
    assert bin(diff[0]).count("1") == 1


def test_torn_write_keeps_prefix_zeroes_rest():
    inj = make_injector(
        5, "n:data", FaultRule(FaultKind.TORN_WRITE, max_count=1)
    )
    payload = b"\xff" * (4 * LBA_SIZE)
    _, data, _ = inj.on_write(0.0, 0, payload)
    assert data[:TORN_WRITE_PREFIX] == payload[:TORN_WRITE_PREFIX]
    assert data[TORN_WRITE_PREFIX:] == b"\x00" * (
        len(payload) - TORN_WRITE_PREFIX
    )


def test_dropped_write_persists_nothing():
    inj = make_injector(
        5, "n:data", FaultRule(FaultKind.DROPPED_WRITE, max_count=1)
    )
    _, data, _ = inj.on_write(0.0, 0, b"\x11" * LBA_SIZE)
    assert data is None


def test_misdirected_write_lands_nearby_and_marks_both_ranges():
    inj = make_injector(
        5, "n:data", FaultRule(FaultKind.MISDIRECTED_WRITE, max_count=1)
    )
    lba, data, _ = inj.on_write(0.0, 40, b"\x22" * LBA_SIZE)
    assert 41 <= lba <= 48
    assert data == b"\x22" * LBA_SIZE
    ledger = inj.plan.ledger
    assert ledger.kind_for_node("n", 40, 1) is FaultKind.MISDIRECTED_WRITE
    assert ledger.kind_for_node("n", lba, 1) is FaultKind.MISDIRECTED_WRITE


def test_slow_io_adds_bounded_extra_service_time():
    inj = make_injector(
        5, "n:data",
        FaultRule(FaultKind.SLOW_IO, probability=1.0, slow_us=6000.0),
    )
    extra = inj.on_read(0.0, 0, LBA_SIZE)
    assert 3000.0 <= extra <= 9000.0
    _, _, wextra = inj.on_write(0.0, 0, b"\x00" * LBA_SIZE)
    assert 3000.0 <= wextra <= 9000.0


def test_device_fail_raises_only_inside_window():
    inj = make_injector(
        5, "n:data",
        FaultRule(FaultKind.DEVICE_FAIL, from_us=100.0, until_us=200.0),
    )
    inj.begin_io(50.0)
    with pytest.raises(DeviceUnavailableError):
        inj.begin_io(150.0)
    inj.begin_io(250.0)


# -- rule gating ---------------------------------------------------------------


def test_time_window_gates_injection():
    inj = make_injector(
        5, "n:data",
        FaultRule(FaultKind.DROPPED_WRITE, from_us=100.0, until_us=200.0),
    )
    assert inj.on_write(50.0, 0, b"\x00" * LBA_SIZE)[1] is not None
    assert inj.on_write(150.0, 0, b"\x00" * LBA_SIZE)[1] is None
    assert inj.on_write(250.0, 0, b"\x00" * LBA_SIZE)[1] is not None


def test_lba_range_gates_injection():
    inj = make_injector(
        5, "n:data",
        FaultRule(FaultKind.DROPPED_WRITE, lba_lo=100, lba_hi=200),
    )
    assert inj.on_write(0.0, 10, b"\x00" * LBA_SIZE)[1] is not None
    assert inj.on_write(0.0, 150, b"\x00" * LBA_SIZE)[1] is None
    # Overlap counts: a write straddling the range boundary qualifies.
    assert inj.on_write(0.0, 99, b"\x00" * (2 * LBA_SIZE))[1] is None


def test_max_count_exhausts_the_rule():
    inj = make_injector(
        5, "n:data", FaultRule(FaultKind.DROPPED_WRITE, max_count=2)
    )
    dropped = sum(
        1 for _, data, _ in drive(inj, writes=10) if data is None
    )
    assert dropped == 2


def test_every_n_fires_on_the_nth_io_only():
    inj = make_injector(
        5, "n:data", FaultRule(FaultKind.DROPPED_WRITE, every_n=4)
    )
    dropped = []
    for i in range(8):
        # Mirror BlockDevice's call order: begin_io advances the device's
        # I/O index, then on_write consults the rules.
        inj.begin_io(float(i))
        _, data, _ = inj.on_write(float(i), i * 4, b"\x00" * LBA_SIZE)
        if data is None:
            dropped.append(i)
    assert len(dropped) == 2


def test_scope_is_rechecked_live():
    rule = FaultRule(FaultKind.DROPPED_WRITE, scope="n:data")
    inj = make_injector(5, "n:data", rule)
    assert inj.on_write(0.0, 0, b"\x00" * LBA_SIZE)[1] is None
    # Retargeting the rule at another device disarms this injector.
    rule.scope = "other:data"
    assert inj.on_write(0.0, 0, b"\x00" * LBA_SIZE)[1] is not None


def test_injection_is_counted():
    plan = FaultPlan(seed=5)
    plan.add(FaultRule(FaultKind.DROPPED_WRITE, max_count=3))
    inj = plan.injector_for("n:data")
    drive(inj, writes=10)
    assert plan.injected == {"dropped_write": 3}
    assert plan.total_injected == 3


# -- the ledger ----------------------------------------------------------------


def test_ledger_attributes_and_clears():
    ledger = FaultLedger()
    ledger.record("node-0:data", 10, 4, FaultKind.BIT_FLIP)
    assert len(ledger) == 4
    assert ledger.kind_for_node("node-0", 12, 1) is FaultKind.BIT_FLIP
    assert ledger.kind_for_node("node-0", 14, 1) is None
    assert ledger.kind_for_node("node-1", 12, 1) is None
    ledger.clear("node-0:data", 10, 4)
    assert len(ledger) == 0


def test_ledger_checks_both_device_roles():
    ledger = FaultLedger()
    ledger.record("node-0:perf", 5, 1, FaultKind.TORN_WRITE)
    assert ledger.kind_for_node("node-0", 5, 1) is FaultKind.TORN_WRITE
    ledger.clear_node("node-0", 5, 1)
    assert ledger.kind_for_node("node-0", 5, 1) is None


def test_clean_overwrite_heals_ledger_entries():
    plan = FaultPlan(seed=5)
    plan.add(FaultRule(FaultKind.BIT_FLIP, max_count=1))
    inj = plan.injector_for("n:data")
    inj.on_write(0.0, 0, b"\x00" * LBA_SIZE)
    assert len(plan.ledger) == 1
    # The rule is exhausted, so the next write is clean and heals.
    inj.on_write(0.0, 0, b"\x00" * LBA_SIZE)
    assert len(plan.ledger) == 0


def test_quiesce_closes_every_window():
    plan = FaultPlan(seed=5)
    plan.add(FaultRule(FaultKind.BIT_FLIP, probability=1.0))
    plan.add(FaultRule(FaultKind.SLOW_IO, probability=1.0))
    inj = plan.injector_for("n:data")
    plan.quiesce(1000.0)
    lba, data, extra = inj.on_write(2000.0, 0, b"\x00" * LBA_SIZE)
    assert data == b"\x00" * LBA_SIZE and extra == 0.0
