"""Injected corruption can never be served from — or poison — the memo.

The codec memo is keyed on a content digest of the *post-read, CRC-
verified* payload, and the read path only consults it with
``verified=True`` after the stored checksum matched.  These tests pin
both halves of that discipline under real fault injection: a bit-
flipped payload must take the detect-and-repair path exactly as it does
serially, and unverified bytes must never enter the cache.
"""

import numpy as np
import pytest

from repro.chaos.plan import FaultKind, FaultPlan, FaultRule
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.compression.base import get_codec
from repro.perf.runtime import PerfRuntime, configure, deactivate
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore


@pytest.fixture(autouse=True)
def _clean_runtime():
    deactivate()
    yield
    deactivate()


def make_page(fill: int) -> bytes:
    rng = np.random.default_rng(fill)
    return rng.integers(0, 256, DB_PAGE_SIZE, dtype=np.uint8).tobytes()


def make_store(seed=0):
    return PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=seed)


def arm(store, kind, max_count=1):
    plan = FaultPlan(seed=3)
    plan.add(
        FaultRule(kind, scope=f"{store.leader.name}:data",
                  max_count=max_count)
    )
    plan.attach_to_store(store)
    return plan


def counter_total(store, name, **labels):
    total = 0
    for inst in store.metrics.instruments():
        if inst.kind != "counter" or inst.name != name:
            continue
        if any(inst.labels.get(k) != v for k, v in labels.items()):
            continue
        total += int(inst.value)
    return total


def _faulted_read(kind):
    """Write one page with a one-shot fault armed, then read it back."""
    store = make_store()
    arm(store, kind)
    now = store.write_page(0.0, 1, make_page(7)).commit_us
    store.leader.page_cache.remove(1)
    result = store.read_page(now, 1)
    return store, result


@pytest.mark.parametrize(
    "kind", [FaultKind.BIT_FLIP, FaultKind.TORN_WRITE]
)
def test_corrupted_read_repairs_identically_with_memo(kind):
    # Serial reference.
    serial_store, serial_result = _faulted_read(kind)
    # Same schedule with the memo (and a pool) active.
    runtime = PerfRuntime(
        pool_workers=2, pool_kind="thread", memo_capacity_bytes=8 * MiB
    )
    configure(runtime)
    fast_store, fast_result = _faulted_read(kind)
    deactivate()
    assert bytes(fast_result.data) == make_page(7)
    assert bytes(fast_result.data) == bytes(serial_result.data)
    assert fast_result.done_us == serial_result.done_us
    for name in ("chaos.detected", "chaos.repaired", "chaos.unrepairable"):
        assert counter_total(fast_store, name) == \
            counter_total(serial_store, name), name
    assert counter_total(fast_store, "chaos.detected") >= 1


def test_scrub_prefetch_skips_corrupt_copies():
    # The scrub's memo warm-up CRC-checks every stored payload before
    # prefetching, so the damaged copy is never decompressed through the
    # memo — it flows through the normal detect-and-repair sweep.
    runtime = PerfRuntime(
        pool_workers=2, pool_kind="thread", memo_capacity_bytes=8 * MiB
    )
    configure(runtime)
    store = make_store()
    arm(store, FaultKind.BIT_FLIP)
    now = store.write_page(0.0, 1, make_page(9)).commit_us
    now = store.scrub(now)
    deactivate()
    assert counter_total(store, "chaos.repaired", kind="bit_flip") == 1
    assert counter_total(store, "chaos.unrepairable") == 0
    store.leader.page_cache.remove(1)
    assert bytes(store.read_page(now, 1).data) == make_page(9)


def test_unverified_decompress_never_touches_memo():
    runtime = PerfRuntime(memo_capacity_bytes=8 * MiB)
    page = make_page(3)
    payload = get_codec("lz4").compress(page)
    # Unverified: correct result, but nothing may be cached.
    assert runtime.decompress("lz4", payload, verified=False) == page
    assert runtime.memo.stats()["insertions"] == 0
    assert runtime.memo.stats()["hits"] == 0
    # Verified: now it may enter and be served from the memo.
    assert runtime.decompress("lz4", payload, verified=True) == page
    assert runtime.decompress("lz4", payload, verified=True) == page
    stats = runtime.memo.stats()
    assert stats["insertions"] == 1 and stats["hits"] == 1
    runtime.shutdown()


def test_flipped_payload_cannot_hit_a_clean_memo_entry():
    # Content-addressed keys: even if damaged bytes reached the memo
    # lookup, they digest to a different key and miss.
    runtime = PerfRuntime(memo_capacity_bytes=8 * MiB)
    page = make_page(5)
    payload = get_codec("lz4").compress(page)
    assert runtime.decompress("lz4", payload, verified=True) == page
    corrupt = bytearray(payload)
    corrupt[10] ^= 0x40
    hits_before = runtime.memo.stats()["hits"]
    try:
        out = runtime.decompress("lz4", bytes(corrupt), verified=False)
        assert out != page  # garbage, but never the cached clean page
    except Exception:
        pass  # a decode failure is equally acceptable
    assert runtime.memo.stats()["hits"] == hits_before
    runtime.shutdown()
