"""A scaled-down end-to-end run of the chaos harness.

The full acceptance schedule (700 ops, >= 100 data faults) runs via
``python -m repro chaos --seed 42`` in CI's chaos-smoke job; this test
drives the same code path at a size that keeps the suite fast.  The I6
fault floor scales with the op count — fault *counts* vary with the
process-wide node-name counter (injector RNG streams are derived from
device labels), but every structural invariant (I1–I5) must hold at any
size.
"""

from repro.chaos.harness import run_chaos


def test_small_schedule_holds_every_invariant():
    report = run_chaos(seed=3, ops=160, scrub_every=40, min_data_faults=5)
    assert report.passed, report.violations
    assert report.writes > 0 and report.reads > 0
    assert report.redo_commits > 0 and report.scrubs > 0
    # The schedule exercised crash + rejoin, quorum loss, and injection.
    assert report.wal_replays >= 3
    assert report.quorum_errors == 1
    assert report.injected_data_faults >= 5
    # Detection is conservation-accurate: every detected corruption was
    # repaired (the plan scopes data faults to the leader, so a healthy
    # follower copy always exists).
    assert sum(report.detected.values()) == sum(report.repaired.values())
    assert not report.unrepairable


def test_report_render_mentions_the_outcome():
    report = run_chaos(seed=5, ops=120, scrub_every=40, min_data_faults=1)
    text = report.render()
    assert "chaos run: seed=5" in text
    assert ("all invariants held" in text) == report.passed


def test_report_carries_the_metrics_registry():
    report = run_chaos(seed=8, ops=120, scrub_every=40, min_data_faults=1)
    names = {inst.name for inst in report.metrics.instruments()}
    assert "chaos.injected" in names
    assert "chaos.detected" in names
