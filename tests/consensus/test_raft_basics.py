"""Core Raft mechanics: elections, replication, fencing, log repair."""

import pytest

from repro.common.errors import RaftError
from repro.consensus import RaftGroup, RaftState
from repro.engine import Engine


def make_group(n=3, seed=3, **kwargs):
    engine = Engine()
    group = RaftGroup(engine, n, seed=seed, **kwargs).start()
    return engine, group


def settle(engine, until_us=40_000.0):
    # advance_to only moves idle time; draining with a limit actually
    # dispatches the queued elections/heartbeats up to ``until_us``.
    engine.run_until_idle(limit_us=until_us)


# -- elections --------------------------------------------------------------


def test_first_election_produces_exactly_one_leader():
    engine, group = make_group()
    settle(engine)
    assert group.leader_id is not None
    leaders = [n for n in group.nodes if n.state is RaftState.LEADER]
    assert len(leaders) == 1
    assert leaders[0].node_id == group.leader_id
    assert group.tracker.one_leader_per_term() == []
    assert group.tracker.terms_monotonic() == []


def test_leader_log_starts_with_its_noop():
    engine, group = make_group()
    settle(engine)
    leader = group.leader
    assert leader.log[-1].command == ("noop", leader.current_term)
    # The no-op itself commits once a majority acked it.
    assert leader.commit_index >= 1


def test_single_node_group_elects_and_commits_instantly():
    engine, group = make_group(n=1)
    settle(engine, 20_000.0)
    leader = group.leader
    assert leader is not None
    index, term = leader.propose("solo")
    assert leader.commit_index >= index
    assert group.committed[-1].command == "solo"


# -- replication ------------------------------------------------------------


def test_propose_proc_replicates_to_every_node():
    engine, group = make_group()
    settle(engine)

    def client():
        for k in range(5):
            yield from group.propose_proc(("cmd", k))

    engine.run(client())
    engine.run_until_idle(limit_us=engine.now_us + 20_000.0)
    cmds = group.committed_commands()
    for k in range(5):
        assert ("cmd", k) in cmds
    # Every live node's log converges on the committed prefix.
    for node in group.nodes:
        prefix = [e.command for e in node.log[: len(group.committed)]]
        assert prefix == [e.command for e in group.committed]
    assert group.tracker.no_committed_write_lost(cmds) == []


def test_propose_to_follower_raises_with_leader_hint():
    engine, group = make_group()
    settle(engine)
    follower = next(
        n for n in group.nodes if n.state is not RaftState.LEADER
    )
    with pytest.raises(RaftError, match="not leader"):
        follower.propose("nope")


# -- fencing ----------------------------------------------------------------


def test_higher_term_fences_a_leader():
    engine, group = make_group()
    settle(engine)
    old_leader = group.leader
    old_term = old_leader.current_term
    # A rival message from the future: the leader must step down first
    # and fail its in-flight waiters before considering the payload.
    index, term = old_leader.propose("in-flight")
    ev = old_leader.commit_event(index + 10, term)  # never commits
    from repro.consensus.raft import RequestVote

    old_leader.on_message(
        RequestVote(old_term + 5, (old_leader.node_id + 1) % 3, 99, 99)
    )
    assert old_leader.state is RaftState.FOLLOWER
    assert old_leader.current_term == old_term + 5
    assert ev.fired  # waiter failed, not left dangling
    with pytest.raises(RaftError, match="fenced"):
        engine.run_until_complete([engine.spawn(_wait(ev))])
    assert (old_leader.node_id, old_term) in group.tracker.fenced
    assert group.tracker.fenced_commit_nothing() == []


def _wait(ev):
    yield ev


# -- crash / restart / log repair -------------------------------------------


def test_crash_keeps_persistent_state_and_restart_rejoins_as_follower():
    engine, group = make_group()
    settle(engine)

    def client():
        for k in range(4):
            yield from group.propose_proc(("durable", k))

    engine.run(client())
    leader = group.leader
    term_before = leader.current_term
    log_before = list(leader.log)
    group.crash(leader.node_id)
    assert not leader.alive
    assert leader.current_term == term_before  # persistent triple kept
    assert leader.log == log_before
    # The survivors elect a successor at a higher term.
    engine.run_until_idle(limit_us=engine.now_us + 60_000.0)
    assert group.leader_id is not None
    assert group.leader_id != leader.node_id
    group.restart(leader.node_id)
    assert leader.state is RaftState.FOLLOWER
    assert leader.repairing
    engine.run_until_idle(limit_us=engine.now_us + 30_000.0)
    # Log repair: the rejoined node caught back up to the commit point.
    assert not leader.repairing
    assert leader.commit_index >= len(group.committed) - 1
    assert group.tracker.violations == []


def test_committed_writes_survive_two_crash_cycles():
    engine, group = make_group(seed=9)
    settle(engine)

    def client(tag, n):
        for k in range(n):
            yield from group.propose_proc((tag, k))

    engine.run(client("a", 3))
    group.crash(group.leader_id)
    engine.run_until_idle(limit_us=engine.now_us + 60_000.0)
    engine.run(client("b", 3))
    dead = [n for n in group.nodes if not n.alive]
    for node in dead:
        group.restart(node.node_id)
    engine.run_until_idle(limit_us=engine.now_us + 60_000.0)
    cmds = group.committed_commands()
    for tag in ("a", "b"):
        for k in range(3):
            assert (tag, k) in cmds
    assert group.tracker.no_committed_write_lost(cmds) == []
    assert group.tracker.one_leader_per_term() == []
