"""Partitions against the consensus plane: both shapes, plus lossy links."""

import pytest

from repro.chaos.net import NetFaultPlan
from repro.common.errors import RaftError
from repro.consensus import RaftGroup, RaftState
from repro.engine import Engine


def make_group(seed=4, plan=None):
    engine = Engine()
    plan = plan if plan is not None else NetFaultPlan(seed)
    group = RaftGroup(engine, 3, seed=seed, plan=plan).start()
    engine.run_until_idle(limit_us=40_000.0)
    assert group.leader_id is not None
    return engine, group, plan


def test_symmetric_partition_elects_successor_and_fences_old_leader():
    engine, group, plan = make_group()
    old = group.leader_id
    rest = [i for i in group.node_ids if i != old]
    plan.partition([old], rest, engine.now_us, engine.now_us + 30_000.0)
    engine.run_until_idle(limit_us=engine.now_us + 30_000.0)
    # The majority side moved on without the isolated leader.
    assert group.leader_id in rest
    new_term = group.leader_term
    # Heal: the old leader hears the higher term and steps down.
    engine.run_until_idle(limit_us=engine.now_us + 30_000.0)
    assert group.nodes[old].state is not RaftState.LEADER
    assert group.nodes[old].current_term >= new_term
    assert group.fences >= 1
    assert group.tracker.one_leader_per_term() == []
    assert group.tracker.terms_monotonic() == []
    assert group.tracker.fenced_commit_nothing() == []


def test_asymmetric_cut_starves_follower_into_disruptive_election():
    engine, group, plan = make_group(seed=6)
    lead = group.leader_id
    victim = [i for i in group.node_ids if i != lead][0]
    # One-way cut leader -> victim: the victim stops hearing heartbeats,
    # times out, and its (reachable) RequestVote carries a higher term.
    plan.partition(
        [lead], [victim], engine.now_us, engine.now_us + 30_000.0,
        symmetric=False,
    )
    terms_before = group.term_bumps
    engine.run_until_idle(limit_us=engine.now_us + 60_000.0)
    assert group.term_bumps > terms_before
    assert group.leader_id is not None
    assert group.tracker.one_leader_per_term() == []
    assert group.tracker.terms_monotonic() == []


def test_commits_fail_during_majority_loss_then_recover():
    engine, group, plan = make_group()
    lead = group.leader_id
    rest = [i for i in group.node_ids if i != lead]
    plan.partition(
        [lead], rest, engine.now_us, engine.now_us + 200_000.0
    )
    # Propose against the isolated leader with a deadline inside the
    # window: retries burn out and the client fails fast.
    leader = group.nodes[lead]
    index, term = leader.propose("lost-to-the-void")

    def doomed():
        yield from group.propose_proc("also-doomed", timeout_us=20_000.0)

    with pytest.raises(RaftError, match="gave up"):
        engine.run(doomed())
    # After the window the group re-forms and accepts writes again.
    engine.run_until_idle(limit_us=engine.now_us + 220_000.0)

    def ok():
        yield from group.propose_proc("post-heal")

    engine.run(ok())
    assert "post-heal" in group.committed_commands()
    assert group.fences >= 1  # the deposed leader was fenced on heal
    assert group.tracker.violations == []


def test_client_retries_across_a_leader_crash_and_succeeds():
    engine, group, plan = make_group(seed=5)
    group.crash(group.leader_id)
    # No leader hint: the client round-robins followers, eats not-leader
    # errors with jittered backoff, and lands on the new leader.
    commit_us = engine.run(group.propose_proc("survives-failover"))
    assert commit_us > 0.0
    assert group.client_retries >= 1
    assert "survives-failover" in group.committed_commands()
    assert group.tracker.violations == []


def test_lossy_link_slows_but_does_not_break_consensus():
    plan = NetFaultPlan(21)
    plan.drop(0.15)  # every link, every message: a uniformly lossy mesh
    engine, group, plan = make_group(seed=21, plan=plan)

    def client():
        for k in range(6):
            yield from group.propose_proc(("lossy", k))

    engine.run(client())
    cmds = group.committed_commands()
    for k in range(6):
        assert ("lossy", k) in cmds
    assert group.tracker.violations == []
    assert plan.dropped_messages > 0
