"""Election storms must replay byte-for-byte for a fixed seed.

The schedule below is deliberately nasty — overlapping partitions of
both shapes, a lossy window, duplicated votes, and two forced leader
crashes — because determinism claims are cheapest to break exactly
where scheduling is busiest.  Two runs from the same seed must produce
identical flight-recorder dumps, identical metric snapshots, and an
identical committed log.
"""

import os

from repro.chaos.net import NetFaultPlan
from repro.common.errors import RaftError
from repro.consensus import RaftGroup
from repro.engine import Engine
from repro.obs.events import FlightRecorder, recording
from repro.obs.export import to_json
from repro.obs.metrics import MetricsRegistry


def run_storm(seed, dump_path):
    recorder = FlightRecorder(capacity=65536)
    with recording(recorder):
        engine = Engine()
        metrics = MetricsRegistry()
        plan = NetFaultPlan(seed)
        # Absolute-window schedule: partitions of both shapes, a lossy
        # stretch, and duplicated traffic, all overlapping the client.
        plan.partition([0], [1, 2], 20_000.0, 50_000.0)
        plan.partition([1], [2], 70_000.0, 95_000.0, symmetric=False)
        plan.drop(0.25, from_us=100_000.0, until_us=140_000.0)
        plan.duplicate(0.2, from_us=0.0, until_us=200_000.0)
        group = RaftGroup(
            engine, 3, seed=seed, plan=plan, metrics=metrics,
            clock_skews=[1.0, 0.8, 1.0], name="storm",
        ).start()
        acked = []

        def client():
            for k in range(10):
                try:
                    yield from group.propose_proc(
                        ("storm", k), timeout_us=120_000.0
                    )
                except RaftError:
                    continue
                acked.append(("storm", k))
                yield engine.timeout(8_000.0)

        def controller():
            for _round in range(2):
                while group.leader_id is None:
                    yield engine.timeout(1_000.0)
                lead = group.leader_id
                group.crash(lead)
                yield engine.timeout(30_000.0)
                group.restart(lead)
                yield engine.timeout(30_000.0)

        procs = [
            engine.spawn(client(), name="client"),
            engine.spawn(controller(), name="controller"),
        ]
        engine.run_until_complete(procs)
        engine.run_until_idle(limit_us=engine.now_us + 40_000.0)
        group.stop()
    recorder.dump_jsonl(dump_path)
    with open(dump_path, "rb") as fh:
        events = fh.read()
    committed = [e.command for e in group.committed]
    for cmd in acked:
        assert cmd in committed  # no acked write lost, even mid-storm
    assert group.tracker.violations == []
    return {
        "events": events,
        "metrics": to_json(metrics),
        "committed": repr(committed),
        "summary": (
            group.elections_won, group.term_bumps, group.fences,
            group.client_retries, round(engine.now_us, 3),
        ),
        "net": plan.counts(),
    }


def test_election_storm_is_byte_deterministic(tmp_path):
    a = run_storm(17, os.path.join(tmp_path, "a.jsonl"))
    b = run_storm(17, os.path.join(tmp_path, "b.jsonl"))
    assert a["events"] == b["events"]
    assert a["metrics"] == b["metrics"]
    assert a["committed"] == b["committed"]
    assert a["summary"] == b["summary"]
    assert a["net"] == b["net"]
    # The storm actually stormed: crashes forced elections past term 2.
    assert a["summary"][0] >= 3


def test_different_seeds_diverge(tmp_path):
    """The seed is live: a different seed must change the trajectory
    (guards against accidentally pinned RNG streams)."""
    a = run_storm(17, os.path.join(tmp_path, "a.jsonl"))
    c = run_storm(18, os.path.join(tmp_path, "c.jsonl"))
    assert a["events"] != c["events"]
