"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "PolarStore reproduction" in out
    assert "repro.storage" in out


def test_experiments_lists_every_target(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id, target, _ in EXPERIMENTS:
        assert exp_id in out
        assert target in out


def test_demo_runs_end_to_end(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "dual-layer ratio" in out


def test_metrics_emits_json_snapshot(capsys):
    assert main(["metrics", "--rows", "120", "--duration", "0.02"]) == 0
    captured = capsys.readouterr()
    import json

    doc = json.loads(captured.out)
    names = {i["name"] for i in doc["instruments"]}
    layers = {n.split(".", 1)[0] for n in names}
    assert len(names) >= 10
    assert {"storage", "csd", "compression", "db", "engine"} <= layers
    # The engine's queue accounting is part of the snapshot: wait-time
    # histograms and utilization gauges per resource.
    assert "engine.resource.queue_wait_us" in names
    assert "engine.resource.utilization" in names
    # The traced write's breakdown lands on stderr with a sub-µs delta.
    assert "per-layer" in captured.err
    assert "delta 0.000us" in captured.err


def test_metrics_prometheus_format(capsys):
    assert main([
        "metrics", "--rows", "120", "--duration", "0.02",
        "--format", "prometheus",
    ]) == 0
    out = capsys.readouterr().out
    assert "# TYPE storage_wal_flushes counter" in out
    assert "_bucket{" in out and 'le="+Inf"' in out


def test_no_command_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_chaos_smoke_passes_and_reports(capsys):
    assert main([
        "chaos", "--seed", "3", "--ops", "160", "--min-faults", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos run: seed=3" in out
    assert "all invariants held" in out


def test_chaos_metrics_flag_appends_json_snapshot(capsys):
    assert main([
        "chaos", "--seed", "3", "--ops", "120", "--min-faults", "1",
        "--metrics",
    ]) == 0
    out = capsys.readouterr().out
    import json

    doc = json.loads(out[out.index("{"):])
    names = {i["name"] for i in doc["instruments"]}
    assert any(n.startswith("chaos.") for n in names)


def test_chaos_rejects_tiny_op_counts(capsys):
    assert main(["chaos", "--ops", "10"]) == 2


def test_bench_fig15_quick_writes_artifacts(tmp_path, capsys):
    assert main(
        ["bench", "--fig", "15", "--quick", "--out", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "fig15_quick" in out
    import json

    doc = json.loads((tmp_path / "fig15_quick.json").read_text())
    assert doc["columns"][0] == "threads"
    assert len(doc["rows"]) == 2
    # The per-page log helps at low thread counts (paper's Fig 15 claim).
    low = doc["rows"][0]
    assert low[3] > 0.10
    assert (tmp_path / "fig15_quick.txt").exists()


def test_bench_requires_fig(capsys):
    with pytest.raises(SystemExit):
        main(["bench"])


def test_cluster_scenario_writes_artifacts(tmp_path, capsys):
    assert main([
        "cluster", "--shards", "2", "--chunks", "2", "--out", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "fig10_11_scheduling" in out
    assert "zones" in out
    assert "compression-aware:" in out
    import json

    doc = json.loads((tmp_path / "fig10_11_scheduling.json").read_text())
    schedulers = [row[0] for row in doc["rows"]]
    assert schedulers == ["logical_only", "compression_aware"]
    assert (tmp_path / "fig10_11_scheduling.txt").exists()


def test_cluster_rejects_bad_shapes(capsys):
    assert main(["cluster", "--shards", "1"]) == 2
    assert main(["cluster", "--shards", "4", "--chunks", "2"]) == 2


# -- observability commands -------------------------------------------------


def test_events_runs_scenario_and_dumps(tmp_path, capsys):
    out_path = tmp_path / "events.jsonl"
    assert main([
        "events", "sysbench", "--seed", "7", "--out", str(out_path),
    ]) == 0
    captured = capsys.readouterr()
    assert "# scenario sysbench seed 7:" in captured.err
    assert "verdict PASS" in captured.err
    assert f"# wrote {out_path}" in captured.err
    assert "# channels:" in captured.err
    # Rendered event lines on stdout, one per recorded event.
    lines = captured.out.strip().splitlines()
    assert lines and all("[" in line for line in lines)
    assert out_path.exists()


def test_events_load_and_filter_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "events.jsonl"
    assert main([
        "events", "sysbench", "--seed", "7", "--out", str(out_path),
    ]) == 0
    first = capsys.readouterr().out
    assert main([
        "events", "--load", str(out_path),
    ]) == 0
    replayed = capsys.readouterr().out
    assert replayed == first
    # Channel filtering narrows the replay to a strict subset.
    assert main([
        "events", "--load", str(out_path), "--channel", "slo", "--limit", "5",
    ]) == 0
    filtered = capsys.readouterr().out.strip().splitlines()
    assert len(filtered) <= 5
    assert all(" slo/" in line for line in filtered)


def test_events_requires_scenario_or_load(capsys):
    assert main(["events"]) == 2
    assert "required" in capsys.readouterr().err


# -- serving layer ----------------------------------------------------------


def test_load_quick_loopback_reports_percentiles(capsys):
    assert main([
        "load", "--quick", "--requests", "150", "--rate", "2000",
        "--seed", "5",
    ]) == 0
    captured = capsys.readouterr()
    assert "# loopback server on 127.0.0.1:" in captured.err
    assert "load: poisson x150 @ 2000/s (seed 5) over socket" in captured.out
    assert "completed 150" in captured.out
    assert "p50" in captured.out and "p99" in captured.out
    assert "SLO" in captured.out


def test_load_artifact_sim_half_is_run_independent(tmp_path, capsys):
    import json

    paths = [tmp_path / "a.json", tmp_path / "b.json"]
    for path in paths:
        assert main([
            "load", "--quick", "--requests", "120", "--rate", "1000",
            "--arrival", "bursty", "--out", str(path),
        ]) == 0
        capsys.readouterr()
    a, b = (json.loads(p.read_text()) for p in paths)
    assert set(a) == {"sim", "wall"}
    assert a["sim"] == b["sim"]
    assert json.dumps(a["sim"], sort_keys=True) == \
        json.dumps(b["sim"], sort_keys=True)


def test_serve_and_load_parsers_share_flag_shapes():
    # The unified parent parser means --seed/--out/--quick parse the
    # same way everywhere; spot-check the serving-layer commands.
    with pytest.raises(SystemExit):
        main(["load", "--arrival", "sawtooth"])
    with pytest.raises(SystemExit):
        main(["serve", "--port", "not-a-port"])


def test_dash_renders_frames_without_ansi(capsys):
    assert main([
        "dash", "chaos", "--seed", "42", "--no-ansi",
    ]) == 0
    out = capsys.readouterr().out
    assert "repro dash · chaos · seed 42" in out
    assert "verdict PASS" in out
    assert "\x1b[" not in out


def test_dash_writes_html_report(tmp_path, capsys):
    html_path = tmp_path / "report.html"
    assert main([
        "dash", "sysbench", "--no-ansi", "--html", str(html_path),
    ]) == 0
    captured = capsys.readouterr()
    assert f"wrote {html_path}" in captured.err
    text = html_path.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "sysbench" in text and "verdict: PASS" in text
