"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "PolarStore reproduction" in out
    assert "repro.storage" in out


def test_experiments_lists_every_target(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id, target, _ in EXPERIMENTS:
        assert exp_id in out
        assert target in out


def test_demo_runs_end_to_end(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "dual-layer ratio" in out


def test_no_command_shows_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
