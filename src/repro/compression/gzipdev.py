"""Model of the PolarCSD in-storage gzip engine.

The paper states PolarCSD implements gzip at compression level 5, chosen for
hardware-acceleration friendliness, processing 4 KB-aligned inputs into
byte-granularity outputs.  gzip *is* DEFLATE (LZ77 + Huffman), so we use
``zlib`` at level 5 as the compression transform — the ratios it produces
are real measurements, not models — and charge latency from the device's
spec instead of measuring Python wall time.
"""

from __future__ import annotations

import zlib

from repro.common.errors import CorruptionError
from repro.compression.base import Compressor, register_codec

#: Compression level the PolarCSD ASIC implements (§3.2.2).
HARDWARE_GZIP_LEVEL = 5


class HardwareGzip(Compressor):
    """The in-storage compression transform (DEFLATE level 5)."""

    name = "hw-gzip"

    def __init__(self, level: int = HARDWARE_GZIP_LEVEL) -> None:
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes) -> bytes:
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptionError(f"hw-gzip: {exc}") from exc

    def compressed_size(self, data: bytes) -> int:
        """Physical bytes the CSD would store for this 4 KB-aligned input."""
        return len(self.compress(data))


register_codec("hw-gzip", HardwareGzip)
