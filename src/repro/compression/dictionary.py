"""Table-level shared compression dictionaries (§6, "Related Directions").

Pages of one table share schema-level structure — column separators,
repeated field names, common value prefixes — but a per-page compressor
rediscovers it from scratch on every page and pays per-page metadata
overhead for it.  The paper's first suggested improvement is a shared
dictionary per table; this module implements a simple frequency-based
builder plus a per-table manager that plugs into the zstd-like codec's
dictionary mode.

The builder scores fixed-size shingles across sample pages and packs the
most frequent ones (deduplicated) into the dictionary, most-common last —
the layout dictionary matchers prefer, since closer bytes get shorter
match distances.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.compression.zstd import ZstdCodec

#: Shingle width used for frequency mining.
_SHINGLE = 16


def build_dictionary(samples: Sequence[bytes], size: int = 4096) -> bytes:
    """Build a shared dictionary of ``size`` bytes from sample pages."""
    if size <= 0:
        raise ValueError("dictionary size must be positive")
    counts: Counter = Counter()
    for sample in samples:
        for offset in range(0, max(len(sample) - _SHINGLE, 0), _SHINGLE):
            counts[sample[offset : offset + _SHINGLE]] += 1
    if not counts:
        return b""
    # Keep shingles seen at least twice, rarest first (most frequent land
    # at the dictionary's end, nearest to the data window).
    useful = [s for s, c in counts.most_common() if c >= 2]
    useful.reverse()
    out = bytearray()
    for shingle in useful:
        out += shingle
    return bytes(out[-size:])


class DictionaryManager:
    """Per-table dictionaries with lazy training."""

    def __init__(
        self,
        codec: ZstdCodec = None,
        dict_size: int = 4096,
        min_samples: int = 4,
    ) -> None:
        self._codec = codec if codec is not None else ZstdCodec()
        self.dict_size = dict_size
        self.min_samples = min_samples
        self._samples: Dict[str, List[bytes]] = {}
        self._dicts: Dict[str, bytes] = {}

    def observe(self, table: str, page: bytes) -> None:
        """Feed a sample page; trains the dictionary once enough arrive."""
        if table in self._dicts:
            return
        samples = self._samples.setdefault(table, [])
        samples.append(page)
        if len(samples) >= self.min_samples:
            self._dicts[table] = build_dictionary(samples, self.dict_size)
            del self._samples[table]

    def dictionary_for(self, table: str) -> bytes:
        return self._dicts.get(table, b"")

    def has_dictionary(self, table: str) -> bool:
        return bool(self._dicts.get(table))

    def compress(self, table: str, page: bytes) -> bytes:
        return self._codec.compress(page, dictionary=self.dictionary_for(table))

    def decompress(self, table: str, payload: bytes) -> bytes:
        return self._codec.decompress(
            payload, dictionary=self.dictionary_for(table)
        )
