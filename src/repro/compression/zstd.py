"""A zstd-like codec: LZ77 with lazy matching + canonical Huffman entropy
coding.

This is **not** the RFC 8878 bitstream (that would be thousands of lines of
FSE tables for no reproductive value), but it mirrors zstd's actual
architecture: literals are entropy-coded with one Huffman table, and the
sequence stream is split into literal-length / match-length / offset
fields, each coded as a log-bucket symbol (its own Huffman table) plus raw
extra bits — the same alphabet factorization zstd and DEFLATE use.

It is a faithful stand-in for what distinguishes zstd in this paper:

* stronger match finding than LZ4 (deeper hash chains, lazy evaluation),
* entropy-coded output, so the byte statistics are near-uniform and the
  PolarCSD hardware gzip stage gains almost nothing by re-compressing it
  (Figure 5c).

Container layout (integers are LEB128 varints)::

    magic | mode | original_size
    mode RAW:        raw bytes
    mode COMPRESSED: n_tokens | n_literals
                     literal table | ll table | ml table | of table
                     |lit bits| lit bitstream
                     |ll bits| ll bitstream
                     |ml bits| ml bitstream
                     |of bits| of bitstream
                     extra-bits bitstream (to end)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.errors import CorruptionError
from repro.compression.base import Compressor, register_codec
from repro.compression.huffman import (
    BitReader,
    BitWriter,
    HuffmanEncoder,
    TableDecoder,
    code_lengths,
)
from repro.compression.lz77 import MatchFinder

_MAGIC = 0x5A
_MODE_RAW = 0
_MODE_COMPRESSED = 1
#: Dictionary mode (§6 "shared dictionaries"): the decoder must prime its
#: window with the same dictionary bytes the encoder used.
_MODE_DICT = 2

#: Log-bucket alphabet size for token fields (values up to 65535).
_BUCKET_ALPHABET = 34


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptionError("zstd: truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _bucket(value: int) -> Tuple[int, int, int]:
    """value -> (symbol, n_extra_bits, extra_value); two buckets/octave."""
    if value < 8:
        return value, 0, 0
    n = value.bit_length() - 1
    sym = 8 + (n - 3) * 2 + ((value >> (n - 1)) & 1)
    return sym, n - 1, value & ((1 << (n - 1)) - 1)


def _unbucket(sym: int, extra: int) -> int:
    """(symbol, extra bits already read) -> value."""
    if sym < 8:
        return sym
    k = sym - 8
    n = k // 2 + 3
    top = 2 + (k & 1)
    return (top << (n - 1)) | extra


def _extra_bits_of(sym: int) -> int:
    if sym < 8:
        return 0
    return (sym - 8) // 2 + 2


def _write_table(out: bytearray, lengths: Sequence[int]) -> None:
    used = [(sym, length) for sym, length in enumerate(lengths) if length]
    _write_varint(out, len(used))
    for sym, length in used:
        out.append(sym)
        out.append(length)


def _read_table(data: bytes, pos: int, alphabet: int) -> Tuple[List[int], int]:
    count, pos = _read_varint(data, pos)
    lengths = [0] * alphabet
    for _ in range(count):
        if pos + 2 > len(data):
            raise CorruptionError("zstd: truncated code table")
        sym = data[pos]
        if sym >= alphabet:
            raise CorruptionError(f"zstd: symbol {sym} outside alphabet")
        lengths[sym] = data[pos + 1]
        pos += 2
    return lengths, pos


def _encode_symbols(body: bytearray, symbols: Sequence[int], alphabet: int) -> None:
    """Huffman-code ``symbols``: table + length-prefixed bitstream."""
    frequencies = [0] * alphabet
    for sym in symbols:
        frequencies[sym] += 1
    lengths = code_lengths(frequencies)
    _write_table(body, lengths)
    writer = BitWriter()
    HuffmanEncoder(lengths).encode_into(writer, symbols)
    stream = writer.getvalue()
    _write_varint(body, len(stream))
    body += stream


def _decode_symbols(
    data: bytes, pos: int, count: int, alphabet: int
) -> Tuple[List[int], int]:
    lengths, pos = _read_table(data, pos, alphabet)
    size, pos = _read_varint(data, pos)
    stream = data[pos : pos + size]
    if len(stream) != size:
        raise CorruptionError("zstd: truncated bitstream")
    if count == 0:
        return [], pos + size
    return TableDecoder(lengths).decode_all(stream, count), pos + size


class ZstdCodec(Compressor):
    """The zstd-like two-stage codec."""

    name = "zstd"

    def __init__(self, max_chain: int = 64, lazy: bool = True) -> None:
        self._finder = MatchFinder(window=65535, max_chain=max_chain, lazy=lazy)

    # -- compression -----------------------------------------------------

    def compress(self, data: bytes, dictionary: bytes = b"") -> bytes:
        """Compress ``data``; with ``dictionary`` (table-level shared
        dictionary, §6) matches may reference the dictionary bytes and the
        decoder must supply the identical dictionary."""
        if len(data) < 64:
            return self._raw(data)
        if len(dictionary) > 65535:
            raise ValueError("dictionary exceeds the 64 KB match window")

        buf = dictionary + data if dictionary else data
        tokens = self._finder.tokenize(buf, start=len(dictionary))
        literals = bytearray()
        ll_syms: List[int] = []
        ml_syms: List[int] = []
        of_syms: List[int] = []
        extras = BitWriter()
        for tok in tokens:
            literals += buf[tok.lit_start : tok.lit_start + tok.lit_len]
            for value, out_syms in ((tok.lit_len, ll_syms), (tok.match_len, ml_syms)):
                sym, nbits, extra = _bucket(value)
                out_syms.append(sym)
                if nbits:
                    extras.write(extra, nbits)
            if tok.match_len:
                sym, nbits, extra = _bucket(tok.distance)
                of_syms.append(sym)
                if nbits:
                    extras.write(extra, nbits)

        mode = _MODE_DICT if dictionary else _MODE_COMPRESSED
        body = bytearray([_MAGIC, mode])
        _write_varint(body, len(data))
        _write_varint(body, len(tokens))
        _write_varint(body, len(literals))
        _encode_symbols(body, bytes(literals), 256)
        _encode_symbols(body, ll_syms, _BUCKET_ALPHABET)
        _encode_symbols(body, ml_syms, _BUCKET_ALPHABET)
        _encode_symbols(body, of_syms, _BUCKET_ALPHABET)
        body += extras.getvalue()

        if len(body) >= len(data) + 2:
            return self._raw(data)
        return bytes(body)

    @staticmethod
    def _raw(data: bytes) -> bytes:
        out = bytearray([_MAGIC, _MODE_RAW])
        _write_varint(out, len(data))
        out += data
        return bytes(out)

    # -- decompression ---------------------------------------------------

    def decompress(self, payload: bytes, dictionary: bytes = b"") -> bytes:
        if len(payload) < 2 or payload[0] != _MAGIC:
            raise CorruptionError("zstd: bad magic")
        mode = payload[1]
        original_size, pos = _read_varint(payload, 2)
        if mode == _MODE_RAW:
            data = payload[pos : pos + original_size]
            if len(data) != original_size:
                raise CorruptionError("zstd: truncated raw block")
            return bytes(data)
        if mode == _MODE_DICT and not dictionary:
            raise CorruptionError(
                "zstd: payload needs the shared dictionary it was "
                "compressed with"
            )
        if mode not in (_MODE_COMPRESSED, _MODE_DICT):
            raise CorruptionError(f"zstd: unknown mode {mode}")
        prefix = dictionary if mode == _MODE_DICT else b""

        n_tokens, pos = _read_varint(payload, pos)
        n_literals, pos = _read_varint(payload, pos)
        lit_syms, pos = _decode_symbols(payload, pos, n_literals, 256)
        ll_syms, pos = _decode_symbols(payload, pos, n_tokens, _BUCKET_ALPHABET)
        ml_syms, pos = _decode_symbols(payload, pos, n_tokens, _BUCKET_ALPHABET)
        # ml symbol 0 encodes match length 0 (final token only); every
        # other token carries an offset.
        n_offsets = sum(1 for sym in ml_syms if sym != 0)
        of_syms, pos = _decode_symbols(payload, pos, n_offsets, _BUCKET_ALPHABET)
        extras = BitReader(bytes(payload[pos:]) + b"\x00\x00\x00\x00")

        literals = bytes(lit_syms)
        out = bytearray(prefix)
        lit_pos = 0
        of_index = 0
        for i in range(n_tokens):
            lit_len = self._read_value(ll_syms[i], extras)
            out += literals[lit_pos : lit_pos + lit_len]
            lit_pos += lit_len
            match_len = self._read_value(ml_syms[i], extras)
            if match_len:
                distance = self._read_value(of_syms[of_index], extras)
                of_index += 1
                start = len(out) - distance
                if start < 0:
                    raise CorruptionError("zstd: distance before stream start")
                if distance >= match_len:
                    out += out[start : start + match_len]
                else:
                    for j in range(match_len):
                        out.append(out[start + j])
        if len(out) - len(prefix) != original_size:
            raise CorruptionError(
                f"zstd: size mismatch ({len(out) - len(prefix)} != "
                f"{original_size})"
            )
        return bytes(out[len(prefix):])

    @staticmethod
    def _read_value(sym: int, extras: BitReader) -> int:
        nbits = _extra_bits_of(sym)
        extra = extras.read(nbits) if nbits else 0
        return _unbucket(sym, extra)


register_codec("zstd", ZstdCodec)
