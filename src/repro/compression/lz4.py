"""Pure-Python LZ4 block format codec.

Implements the LZ4 block specification (token byte, extended lengths,
little-endian 16-bit offsets) with a greedy hash-chain matcher.  The format
rules that matter for interoperability are honoured:

* minimum match length 4;
* the last 5 bytes of a block are always literals;
* a match must not start within the last 12 bytes;
* the final sequence carries literals only.

Crucially for this paper, LZ4 performs **no entropy coding** — its output is
a byte-aligned splice of literals and copy commands — which is why the
PolarCSD hardware gzip stage can compress LZ4 output substantially further
(Figure 5c).
"""

from __future__ import annotations

from repro.common.errors import CorruptionError
from repro.compression.base import Compressor, register_codec
from repro.compression.lz77 import MIN_MATCH, MatchFinder, Token

#: Format constants from the LZ4 block spec.
_MFLIMIT = 12  # matches must end this many bytes before the block end
_LAST_LITERALS = 5


class LZ4Codec(Compressor):
    """LZ4 block compressor/decompressor."""

    name = "lz4"

    def __init__(self, max_chain: int = 16) -> None:
        self._finder = MatchFinder(window=65535, max_chain=max_chain, lazy=False)

    # -- compression -----------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        if n == 0:
            return b"\x00"  # single token: zero literals, end of block
        out = bytearray()
        tokens = self._legalize(self._finder.tokenize(data), n)
        for index, tok in enumerate(tokens):
            is_last = index == len(tokens) - 1
            self._emit_sequence(out, data, tok, is_last)
        return bytes(out)

    @staticmethod
    def _legalize(tokens: "list[Token]", n: int) -> "list[Token]":
        """Enforce end-of-block rules by demoting late matches to literals."""
        legal: "list[Token]" = []
        pending_lit_start = None
        pending_lit_len = 0
        for tok in tokens:
            lit_start, lit_len = tok.lit_start, tok.lit_len
            if pending_lit_len:
                # Merge the demoted tail into this token's literal run.
                lit_start = pending_lit_start
                lit_len = pending_lit_len + tok.lit_len
                pending_lit_start, pending_lit_len = None, 0
            if tok.match_len == 0:
                legal.append(Token(lit_start, lit_len, 0, 0))
                continue
            match_start = lit_start + lit_len
            # Trim the match so it ends at least _LAST_LITERALS bytes before
            # the block end; demote it entirely if trimming leaves it below
            # the minimum length or it starts inside the _MFLIMIT window.
            allowed = min(tok.match_len, (n - _LAST_LITERALS) - match_start)
            if match_start > n - _MFLIMIT or allowed < MIN_MATCH:
                pending_lit_start = lit_start
                pending_lit_len = lit_len + tok.match_len
                continue
            legal.append(Token(lit_start, lit_len, allowed, tok.distance))
            if allowed < tok.match_len:
                pending_lit_start = match_start + allowed
                pending_lit_len = tok.match_len - allowed
        if pending_lit_len or not legal or legal[-1].match_len != 0:
            start = pending_lit_start if pending_lit_len else n
            legal.append(Token(start, pending_lit_len, 0, 0))
        return legal

    @staticmethod
    def _emit_sequence(
        out: bytearray, data: bytes, tok: Token, is_last: bool
    ) -> None:
        lit_len = tok.lit_len
        match_code = 0 if is_last else tok.match_len - MIN_MATCH
        token_byte = (min(lit_len, 15) << 4) | min(match_code, 15)
        out.append(token_byte)
        if lit_len >= 15:
            remaining = lit_len - 15
            while remaining >= 255:
                out.append(255)
                remaining -= 255
            out.append(remaining)
        out += data[tok.lit_start : tok.lit_start + lit_len]
        if is_last:
            return
        out.append(tok.distance & 0xFF)
        out.append((tok.distance >> 8) & 0xFF)
        if match_code >= 15:
            remaining = match_code - 15
            while remaining >= 255:
                out.append(255)
                remaining -= 255
            out.append(remaining)

    # -- decompression ---------------------------------------------------

    def decompress(self, payload: bytes) -> bytes:
        out = bytearray()
        pos = 0
        n = len(payload)
        while pos < n:
            token_byte = payload[pos]
            pos += 1
            lit_len = token_byte >> 4
            if lit_len == 15:
                lit_len, pos = self._read_extended(payload, pos, lit_len)
            if pos + lit_len > n:
                raise CorruptionError("lz4: literal run overflows payload")
            out += payload[pos : pos + lit_len]
            pos += lit_len
            if pos == n:
                break  # final, literal-only sequence
            if pos + 2 > n:
                raise CorruptionError("lz4: truncated match offset")
            distance = payload[pos] | (payload[pos + 1] << 8)
            pos += 2
            if distance == 0:
                raise CorruptionError("lz4: zero match offset")
            match_len = token_byte & 0x0F
            if match_len == 15:
                match_len, pos = self._read_extended(payload, pos, match_len)
            match_len += MIN_MATCH
            start = len(out) - distance
            if start < 0:
                raise CorruptionError("lz4: offset before output start")
            for i in range(match_len):
                out.append(out[start + i])
        return bytes(out)

    @staticmethod
    def _read_extended(payload: bytes, pos: int, value: int) -> "tuple[int, int]":
        while True:
            if pos >= len(payload):
                raise CorruptionError("lz4: truncated extended length")
            byte = payload[pos]
            pos += 1
            value += byte
            if byte != 255:
                return value, pos


register_codec("lz4", LZ4Codec)
