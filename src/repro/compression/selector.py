"""Adaptive lz4/zstd selection (the paper's Algorithm 1, Opt#2).

For each page write, the selector compresses with both codecs, 4 KB
ceiling-aligns both sizes (because compressed pages are stored in 4 KB
LBAs), and switches to zstd only when its storage saving per extra
microsecond of decompression latency clears a threshold derived from the
device's I/O cost — the paper uses 300 B/µs because one 4 KB block of I/O
costs 12–14 µs.

The evaluation is itself skipped when the node's CPU is busy (>20%
utilization) or when the page has not changed enough (<30% updated) since
its last selection, exactly as in Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.units import align_up, LBA_SIZE
from repro.compression.base import CompressionResult, get_codec
from repro.compression.cost import codec_cost
from repro.obs.metrics import MetricsRegistry
from repro.perf.runtime import perf_active

#: Threshold from §3.3.2: bytes saved per extra µs of decompression.
DEFAULT_THRESHOLD_BYTES_PER_US = 300.0
#: CPU-utilization gate from Algorithm 1, line 2.
CPU_UTILIZATION_GATE = 0.20
#: Update-fraction gate from Algorithm 1, line 5.
UPDATE_PERCENT_GATE = 0.30


@dataclass(frozen=True)
class SelectionDecision:
    """Outcome of one selection: which codec won and why."""

    codec: str
    result: CompressionResult
    evaluated: bool
    benefit_bytes: float = 0.0
    overhead_us: float = 0.0
    #: CRC-32 of ``result.payload`` when the fast path computed it
    #: alongside the compression (0 = caller computes it).
    payload_crc: int = 0

    @property
    def aligned_size(self) -> int:
        return align_up(self.result.compressed_size, LBA_SIZE)


class AlgorithmSelector:
    """Per-page codec chooser implementing Algorithm 1."""

    def __init__(
        self,
        threshold_bytes_per_us: float = DEFAULT_THRESHOLD_BYTES_PER_US,
        cpu_gate: float = CPU_UTILIZATION_GATE,
        update_gate: float = UPDATE_PERCENT_GATE,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.threshold = threshold_bytes_per_us
        self.cpu_gate = cpu_gate
        self.update_gate = update_gate
        self.evaluations = 0
        self.fallbacks = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._evaluations_ctr = self.metrics.counter(
            "compression.selector.evaluations"
        )
        self._fallbacks_ctr = self.metrics.counter(
            "compression.selector.fallbacks"
        )
        self._benefit_hist = self.metrics.histogram(
            "compression.selector.benefit_bytes_per_us"
        )

    def _decided(self, decision: SelectionDecision) -> SelectionDecision:
        self.metrics.counter(
            "compression.selector.selected", codec=decision.codec
        ).inc()
        return decision

    def select(
        self,
        page: bytes,
        cpu_utilization: float = 0.0,
        update_percent: float = 1.0,
        last_used: Optional[str] = None,
    ) -> SelectionDecision:
        """Pick a codec for ``page`` and return its compressed form.

        ``update_percent=1.0`` (the default) models an initial page write,
        which always triggers evaluation when the CPU allows it.
        """
        if cpu_utilization > self.cpu_gate:
            self.fallbacks += 1
            self._fallbacks_ctr.inc()
            return self._decided(self._single(page, "lz4"))
        if update_percent <= self.update_gate and last_used is not None:
            self.fallbacks += 1
            self._fallbacks_ctr.inc()
            return self._decided(self._single(page, last_used))

        self.evaluations += 1
        self._evaluations_ctr.inc()
        runtime = perf_active()
        if runtime is not None:
            # The two compressions are independent: the fast path runs
            # them on separate cores (or replays memoized results) and
            # hands back byte-identical payloads in codec order.
            pair = runtime.compress_pair(page)
            lz4_payload, lz4_crc = pair["lz4"]
            zstd_payload, zstd_crc = pair["zstd"]
            lz4_result = CompressionResult("lz4", lz4_payload, len(page))
            zstd_result = CompressionResult("zstd", zstd_payload, len(page))
        else:
            lz4_result = get_codec("lz4").compress_result(page)
            zstd_result = get_codec("zstd").compress_result(page)
            lz4_crc = zstd_crc = 0
        lz4_aligned = align_up(lz4_result.compressed_size, LBA_SIZE)
        zstd_aligned = align_up(zstd_result.compressed_size, LBA_SIZE)

        # Decompression latency charged by the cost model (the read path
        # decompresses the aligned payload it fetched).
        lz4_lat = codec_cost("lz4").decompress_us(lz4_aligned)
        zstd_lat = codec_cost("zstd").decompress_us(zstd_aligned)
        overhead_us = max(zstd_lat - lz4_lat, 1e-9)
        benefit_bytes = float(lz4_aligned - zstd_aligned)
        self._benefit_hist.record(max(benefit_bytes, 0.0) / overhead_us)

        if benefit_bytes / overhead_us > self.threshold:
            return self._decided(SelectionDecision(
                "zstd", zstd_result, True, benefit_bytes, overhead_us,
                payload_crc=zstd_crc,
            ))
        return self._decided(SelectionDecision(
            "lz4", lz4_result, True, benefit_bytes, overhead_us,
            payload_crc=lz4_crc,
        ))

    @staticmethod
    def _single(page: bytes, codec_name: str) -> SelectionDecision:
        runtime = perf_active()
        if runtime is not None:
            payload, crc = runtime.compress(codec_name, page)
            result = CompressionResult(codec_name, payload, len(page))
            return SelectionDecision(codec_name, result, False, payload_crc=crc)
        result = get_codec(codec_name).compress_result(page)
        return SelectionDecision(codec_name, result, False)
