"""Compression codecs and the adaptive selection mechanism.

Two real codecs are implemented from scratch:

* :mod:`repro.compression.lz4` — the LZ4 block format (LZ77 matches, no
  entropy coding).
* :mod:`repro.compression.zstd` — a zstd-like codec (LZ77 matches with a
  larger window and lazy matching, plus canonical-Huffman entropy coding).

The distinction that drives the paper's Figure 5 — lz4 output remains
compressible by the hardware gzip stage while zstd output does not — falls
out of these implementations naturally.

:mod:`repro.compression.gzipdev` models the PolarCSD hardware gzip engine
(DEFLATE level 5), and :mod:`repro.compression.selector` implements the
paper's Algorithm 1 (adaptive lz4/zstd selection).
"""

from repro.compression.base import (
    CompressionResult,
    Compressor,
    get_codec,
    list_codecs,
    register_codec,
)
from repro.compression.lz4 import LZ4Codec
from repro.compression.zstd import ZstdCodec
from repro.compression.gzipdev import HardwareGzip
from repro.compression.selector import AlgorithmSelector, SelectionDecision

__all__ = [
    "Compressor",
    "CompressionResult",
    "register_codec",
    "get_codec",
    "list_codecs",
    "LZ4Codec",
    "ZstdCodec",
    "HardwareGzip",
    "AlgorithmSelector",
    "SelectionDecision",
]
