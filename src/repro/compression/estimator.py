"""Compressibility estimation for fast algorithm selection (§6).

The paper's fourth "related direction" cites estimation techniques
(Harnik et al., FAST'13: "To Zip or Not to Zip") to pick algorithms
without running them.  This module implements that idea: a cheap
estimator samples a page, combines byte entropy with a repeated-shingle
heuristic to predict the compression ratio, and an
:class:`EstimatingSelector` uses the prediction to

* skip compression entirely for incompressible pages (store raw),
* skip the dual-codec evaluation when zstd is an obvious win or an
  obvious non-win,
* fall back to the full Algorithm 1 evaluation only in the gray zone.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.compression.base import get_codec
from repro.compression.cost import codec_cost
from repro.compression.selector import AlgorithmSelector, SelectionDecision

_SAMPLE_CHUNK = 256
_SAMPLE_COUNT = 8
_SHINGLE = 8


def estimate_ratio(data: bytes, seed: int = 0) -> float:
    """Predict the achievable compression ratio of ``data``.

    Combines two signals over sampled chunks:

    * byte entropy (bits/byte) — bounds what entropy coding can do;
    * repeated-shingle fraction — proxies LZ match coverage.

    The combination is deliberately simple; its job is ranking pages, not
    absolute accuracy (the gray zone falls back to real compression).
    """
    if not data:
        return 1.0
    rng = random.Random(seed)
    if len(data) <= _SAMPLE_CHUNK * _SAMPLE_COUNT:
        sample = data
    else:
        chunks = []
        for _ in range(_SAMPLE_COUNT):
            start = rng.randrange(len(data) - _SAMPLE_CHUNK)
            chunks.append(data[start : start + _SAMPLE_CHUNK])
        sample = b"".join(chunks)

    # Byte entropy.
    counts = [0] * 256
    for byte in sample:
        counts[byte] += 1
    total = len(sample)
    entropy = 0.0
    for count in counts:
        if count:
            p = count / total
            entropy -= p * math.log2(p)

    # Repeated-shingle fraction.
    shingles = {}
    repeats = 0
    positions = range(0, len(sample) - _SHINGLE, 2)
    for offset in positions:
        key = sample[offset : offset + _SHINGLE]
        if key in shingles:
            repeats += 1
        else:
            shingles[key] = True
    repeat_fraction = repeats / max(1, len(positions))

    # Entropy coding alone approaches 8/entropy; LZ matches multiply the
    # saving by the repeated-content coverage.
    entropy_ratio = 8.0 / max(entropy, 0.5)
    lz_factor = 1.0 + 3.0 * repeat_fraction
    return max(1.0, entropy_ratio * lz_factor)


@dataclass(frozen=True)
class EstimatorThresholds:
    """Decision bands over the estimated ratio."""

    #: Below this, do not even compress: store the page raw.
    incompressible: float = 1.15
    #: Above this, zstd wins without running both codecs.
    clearly_compressible: float = 4.0


class EstimatingSelector:
    """Algorithm selection guided by estimation, falling back to the full
    dual-codec evaluation only in the gray zone."""

    def __init__(
        self,
        thresholds: EstimatorThresholds = EstimatorThresholds(),
        inner: Optional[AlgorithmSelector] = None,
    ) -> None:
        self.thresholds = thresholds
        self.inner = inner if inner is not None else AlgorithmSelector()
        self.raw_skips = 0
        self.fast_picks = 0
        self.full_evaluations = 0

    def select(
        self,
        page: bytes,
        cpu_utilization: float = 0.0,
        update_percent: float = 1.0,
        last_used: Optional[str] = None,
    ) -> SelectionDecision:
        estimate = estimate_ratio(page)
        if estimate < self.thresholds.incompressible:
            # Don't burn CPU compressing what won't compress.
            self.raw_skips += 1
            result = get_codec("lz4").compress_result(page)
            return SelectionDecision("lz4", result, False)
        if estimate > self.thresholds.clearly_compressible:
            # Obvious zstd territory: single compression, no comparison.
            self.fast_picks += 1
            result = get_codec("zstd").compress_result(page)
            return SelectionDecision("zstd", result, False)
        self.full_evaluations += 1
        return self.inner.select(
            page, cpu_utilization, update_percent, last_used
        )

    def estimated_cpu_saving_us(self, page_bytes: int) -> float:
        """CPU avoided so far versus always running both codecs."""
        both = codec_cost("lz4").compress_us(page_bytes) + codec_cost(
            "zstd"
        ).compress_us(page_bytes)
        single_zstd = codec_cost("zstd").compress_us(page_bytes)
        single_lz4 = codec_cost("lz4").compress_us(page_bytes)
        return (
            self.raw_skips * (both - single_lz4)
            + self.fast_picks * (both - single_zstd)
        )
