"""CPU cost models for the software codecs.

The simulation charges codec latency from a calibrated linear model instead
of measuring Python wall time (pure Python is orders of magnitude slower
than the C codecs the paper uses, so wall time would distort every latency
figure).  Constants are calibrated to the paper's own numbers:

* Figure 5a shows zstd decompression noticeably slower than lz4;
* §3.3.2 says saving one 4 KB I/O (≈12–14 µs) must outweigh zstd's extra
  decompression latency, with a threshold of 300 B/µs — consistent with a
  zstd-minus-lz4 decompression gap of roughly 10–15 µs on a 16 KB page;
* §5.2 reports the selection mechanism saves ≈9 µs of average page-read
  latency versus zstd-only.

Public throughput numbers for the C implementations (lz4 ≈ 4–5 GB/s
decompress, zstd ≈ 1–1.5 GB/s decompress; compress roughly 10× slower for
zstd level 3+) give the per-KB slopes below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KiB


@dataclass(frozen=True)
class CodecCost:
    """Linear latency model: ``fixed_us + per_kib_us * size_kib``."""

    compress_fixed_us: float
    compress_per_kib_us: float
    decompress_fixed_us: float
    decompress_per_kib_us: float

    def compress_us(self, size_bytes: int) -> float:
        return self.compress_fixed_us + self.compress_per_kib_us * size_bytes / KiB

    def decompress_us(self, size_bytes: int) -> float:
        return (
            self.decompress_fixed_us
            + self.decompress_per_kib_us * size_bytes / KiB
        )


#: lz4: ~800 MB/s compress, ~4.5 GB/s decompress per core.
LZ4_COST = CodecCost(
    compress_fixed_us=1.0,
    compress_per_kib_us=1.2,
    decompress_fixed_us=0.5,
    decompress_per_kib_us=0.22,
)

#: zstd (level ~3): ~350 MB/s compress, ~1.1 GB/s decompress per core.
ZSTD_COST = CodecCost(
    compress_fixed_us=2.0,
    compress_per_kib_us=2.9,
    decompress_fixed_us=1.0,
    decompress_per_kib_us=0.95,
)

#: Heavy-compression archival configuration (zstd high level on large
#: segments): much slower compression, comparable decompression.
ZSTD_HEAVY_COST = CodecCost(
    compress_fixed_us=5.0,
    compress_per_kib_us=12.0,
    decompress_fixed_us=1.0,
    decompress_per_kib_us=1.05,
)

_COSTS = {
    "lz4": LZ4_COST,
    "zstd": ZSTD_COST,
    "zstd-heavy": ZSTD_HEAVY_COST,
}


def codec_cost(name: str) -> CodecCost:
    """Cost model for a codec name (KeyError on unknown codecs)."""
    return _COSTS[name]
