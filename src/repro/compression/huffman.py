"""Canonical Huffman coding with length-limited codes.

Used as the entropy stage of the zstd-like codec.  Code lengths are computed
with a standard Huffman tree, then adjusted to a 15-bit maximum using the
same overflow-repair pass zlib applies, and finally assigned canonically so
the decoder only needs the length table.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

# 12-bit limit keeps the table-driven decoder's lookup table small (4096
# entries) while costing well under 1% compression on typical pages.
MAX_CODE_LENGTH = 12


def code_lengths(frequencies: Sequence[int]) -> List[int]:
    """Per-symbol code lengths (0 = symbol unused), max 15 bits."""
    active = [(freq, sym) for sym, freq in enumerate(frequencies) if freq > 0]
    lengths = [0] * len(frequencies)
    if not active:
        return lengths
    if len(active) == 1:
        lengths[active[0][1]] = 1
        return lengths

    # Build the Huffman tree; each heap item is (weight, tiebreak, symbols).
    heap = [(freq, sym, [sym]) for freq, sym in active]
    heapq.heapify(heap)
    tiebreak = len(frequencies)
    while len(heap) > 1:
        w1, _, syms1 = heapq.heappop(heap)
        w2, _, syms2 = heapq.heappop(heap)
        for sym in syms1:
            lengths[sym] += 1
        for sym in syms2:
            lengths[sym] += 1
        heapq.heappush(heap, (w1 + w2, tiebreak, syms1 + syms2))
        tiebreak += 1

    return _limit_lengths(lengths, frequencies)


def _limit_lengths(lengths: List[int], frequencies: Sequence[int]) -> List[int]:
    """Clamp code lengths to MAX_CODE_LENGTH, preserving Kraft equality."""
    if max(lengths) <= MAX_CODE_LENGTH:
        return lengths
    counts = [0] * (max(lengths) + 1)
    for length in lengths:
        if length:
            counts[length] += 1
    # Fold everything deeper than the limit up to the limit.
    overflow = 0
    for depth in range(MAX_CODE_LENGTH + 1, len(counts)):
        overflow += counts[depth]
        counts[depth] = 0
    counts[MAX_CODE_LENGTH] += overflow
    # Repair the Kraft inequality by demoting shallow leaves.
    while _kraft(counts) > 1 << MAX_CODE_LENGTH:
        depth = MAX_CODE_LENGTH - 1
        while counts[depth] == 0:
            depth -= 1
        counts[depth] -= 1
        counts[depth + 1] += 2
        counts[MAX_CODE_LENGTH] -= 1
    # Reassign lengths: most frequent symbols get the shortest codes.
    used = sorted(
        (sym for sym, length in enumerate(lengths) if length),
        key=lambda sym: (-frequencies[sym], sym),
    )
    new_lengths = [0] * len(lengths)
    index = 0
    for depth in range(1, MAX_CODE_LENGTH + 1):
        for _ in range(counts[depth]):
            new_lengths[used[index]] = depth
            index += 1
    return new_lengths


def _kraft(counts: Sequence[int]) -> int:
    """Kraft sum scaled by 2**MAX_CODE_LENGTH."""
    total = 0
    for depth, count in enumerate(counts):
        if depth and count:
            total += count << (MAX_CODE_LENGTH - depth)
    return total


def canonical_codes(lengths: Sequence[int]) -> Dict[int, "tuple[int, int]"]:
    """Map symbol -> (code, length) using canonical ordering."""
    pairs = sorted(
        (length, sym) for sym, length in enumerate(lengths) if length
    )
    codes: Dict[int, "tuple[int, int]"] = {}
    code = 0
    prev_length = 0
    for length, sym in pairs:
        code <<= length - prev_length
        codes[sym] = (code, length)
        code += 1
        prev_length = length
    return codes


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bits = 0
        self._nbits = 0

    def write(self, code: int, length: int) -> None:
        self._bits = (self._bits << length) | (code & ((1 << length) - 1))
        self._nbits += length
        while self._nbits >= 8:
            self._nbits -= 8
            self._buffer.append((self._bits >> self._nbits) & 0xFF)
        self._bits &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final byte) and return the stream."""
        if self._nbits:
            pad = 8 - self._nbits
            return bytes(self._buffer) + bytes(
                [(self._bits << pad) & 0xFF]
            )
        return bytes(self._buffer)


class BitReader:
    """MSB-first bit reader over a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._bits = 0
        self._nbits = 0

    def read(self, length: int) -> int:
        while self._nbits < length:
            if self._pos >= len(self._data):
                raise ValueError("bit stream exhausted")
            self._bits = (self._bits << 8) | self._data[self._pos]
            self._pos += 1
            self._nbits += 8
        self._nbits -= length
        value = (self._bits >> self._nbits) & ((1 << length) - 1)
        self._bits &= (1 << self._nbits) - 1
        return value


class HuffmanEncoder:
    """Encode symbols with a canonical code built from frequencies."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self._codes = canonical_codes(lengths)

    @classmethod
    def from_frequencies(cls, frequencies: Sequence[int]) -> "HuffmanEncoder":
        return cls(code_lengths(frequencies))

    def encode_into(self, writer: BitWriter, symbols: Sequence[int]) -> None:
        codes = self._codes
        for sym in symbols:
            code, length = codes[sym]
            writer.write(code, length)


class HuffmanDecoder:
    """Canonical Huffman decoder driven by the length table alone."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        # first_code[l], first_index[l]: canonical decode tables.
        pairs = sorted(
            (length, sym) for sym, length in enumerate(lengths) if length
        )
        self._symbols = [sym for _, sym in pairs]
        self._first_code = {}
        self._first_index = {}
        self._count = {}
        code = 0
        prev_length = 0
        index = 0
        for length, _ in pairs:
            if length != prev_length:
                code <<= length - prev_length
                self._first_code[length] = code
                self._first_index[length] = index
                prev_length = length
            self._count[length] = self._count.get(length, 0) + 1
            code += 1
            index += 1

    def decode_one(self, reader: BitReader) -> int:
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read(1)
            length += 1
            if length > MAX_CODE_LENGTH:
                raise ValueError("invalid Huffman stream")
            first = self._first_code.get(length)
            if first is not None:
                offset = code - first
                if 0 <= offset < self._count[length]:
                    return self._symbols[self._first_index[length] + offset]


class TableDecoder:
    """Table-driven canonical Huffman decoder for batch decoding.

    Builds a ``2**MAX_CODE_LENGTH`` lookup table mapping every possible bit
    prefix to ``(symbol, code_length)``, then decodes a whole symbol stream
    in one tight loop — roughly an order of magnitude faster than bit-by-bit
    decoding, which matters when decompressing thousands of pages.
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        bits = MAX_CODE_LENGTH
        table: List[int] = [0] * (1 << bits)
        for sym, (code, length) in canonical_codes(lengths).items():
            base = code << (bits - length)
            # Pack (symbol, length) into one int: sym * 16 + length.
            packed = (sym << 4) | length
            for i in range(base, base + (1 << (bits - length))):
                table[i] = packed
        self._table = table

    def decode_all(self, data: bytes, count: int) -> List[int]:
        """Decode exactly ``count`` symbols from ``data``."""
        bits_needed = MAX_CODE_LENGTH
        table = self._table
        acc = 0
        nbits = 0
        pos = 0
        n = len(data)
        out: List[int] = []
        append = out.append
        for _ in range(count):
            while nbits < bits_needed:
                if pos < n:
                    acc = (acc << 8) | data[pos]
                    pos += 1
                else:
                    acc <<= 8  # zero padding at stream end
                nbits += 8
            packed = table[(acc >> (nbits - bits_needed)) & 0xFFF]
            length = packed & 0xF
            if length == 0:
                raise ValueError("invalid Huffman stream")
            nbits -= length
            acc &= (1 << nbits) - 1
            append(packed >> 4)
        return out
