"""Hash-chain LZ77 match finder shared by the LZ4 and zstd-like codecs.

The finder emits a token stream: runs of literals interleaved with
back-references ``(length, distance)``.  Codecs differ in how they serialize
the tokens (LZ4: raw byte layout, zstd: entropy-coded), and in the finder
parameters they use (window size, chain depth, lazy matching).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

MIN_MATCH = 4
_HASH_MULT = 2654435761
_HASH_BITS = 16


@dataclass(frozen=True)
class Token:
    """One LZ77 step: ``lit_len`` literals starting at ``lit_start`` in the
    source, followed by a back-reference of ``match_len`` bytes at
    ``distance`` (``match_len == 0`` marks the trailing literal-only token).
    """

    lit_start: int
    lit_len: int
    match_len: int
    distance: int


def _hash4(data: bytes, pos: int) -> int:
    value = (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    )
    return ((value * _HASH_MULT) & 0xFFFFFFFF) >> (32 - _HASH_BITS)


class MatchFinder:
    """Greedy (optionally lazy) hash-chain matcher.

    Parameters
    ----------
    window:
        Maximum back-reference distance.
    max_chain:
        How many chain entries to inspect per position; higher finds better
        matches at more CPU cost (this is the codec "level" knob).
    lazy:
        When True, defer emitting a match by one byte if the next position
        has a strictly longer one (zstd-style; LZ4 is greedy).
    max_match:
        Cap on the match length (the LZ4 serializer has no cap; keeping one
        bounds worst-case encode time).
    """

    def __init__(
        self,
        window: int = 65535,
        max_chain: int = 16,
        lazy: bool = False,
        max_match: int = 1 << 16,
    ) -> None:
        if window <= 0 or window > 65535:
            raise ValueError(f"window must be in [1, 65535], got {window}")
        self.window = window
        self.max_chain = max_chain
        self.lazy = lazy
        self.max_match = max_match

    def tokenize(self, data: bytes, start: int = 0) -> List[Token]:
        """Produce the token stream covering ``data[start:]``.

        ``start > 0`` enables dictionary compression: the prefix
        ``data[:start]`` is indexed into the hash chains (so matches may
        reference it) but no tokens are emitted for it — the decoder
        primes its output with the same prefix.
        """
        n = len(data)
        tokens: List[Token] = []
        if n - start < MIN_MATCH + 1:
            tokens.append(Token(start, n - start, 0, 0))
            return tokens

        head = [-1] * (1 << _HASH_BITS)
        prev = [-1] * n

        lit_start = start
        pos = start
        # The last MIN_MATCH bytes can never start a match.
        limit = n - MIN_MATCH

        def find(at: int) -> "tuple[int, int]":
            """Best (length, distance) at position ``at`` (0 if none)."""
            best_len = 0
            best_dist = 0
            candidate = head[_hash4(data, at)]
            chain = self.max_chain
            min_pos = at - self.window
            max_len_here = min(self.max_match, n - at)
            while candidate >= min_pos and candidate >= 0 and chain > 0:
                chain -= 1
                # Quick reject: a longer match must agree at best_len.
                probe = at + best_len
                if probe < n and data[candidate + best_len] == data[probe]:
                    length = 0
                    while (
                        length < max_len_here
                        and data[candidate + length] == data[at + length]
                    ):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = at - candidate
                        if length >= max_len_here:
                            break
                candidate = prev[candidate]
            if best_len < MIN_MATCH:
                return 0, 0
            return best_len, best_dist

        def insert(at: int) -> None:
            h = _hash4(data, at)
            prev[at] = head[h]
            head[h] = at

        # Index the dictionary prefix so matches can reference it.
        for p in range(0, min(start, limit + 1)):
            insert(p)

        while pos <= limit:
            length, dist = find(pos)
            if length == 0:
                insert(pos)
                pos += 1
                continue
            first_uninserted = pos
            if self.lazy and pos + 1 <= limit:
                insert(pos)
                first_uninserted = pos + 1
                next_len, next_dist = find(pos + 1)
                if next_len > length:
                    # Emit this byte as a literal; take the later match.
                    pos += 1
                    length, dist = next_len, next_dist
            tokens.append(Token(lit_start, pos - lit_start, length, dist))
            # Index positions covered by the match (bounded for speed).
            end = pos + length
            for p in range(first_uninserted, min(end, limit + 1)):
                insert(p)
            pos = end
            lit_start = pos

        tokens.append(Token(lit_start, n - lit_start, 0, 0))
        return tokens


def reconstruct(tokens: List[Token], data: bytes, prefix: bytes = b"") -> bytes:
    """Re-expand a token stream against its own source (testing aid).

    ``prefix`` primes the output for dictionary-mode token streams.
    """
    out = bytearray(prefix)
    for tok in tokens:
        out += data[tok.lit_start : tok.lit_start + tok.lit_len]
        if tok.match_len:
            start = len(out) - tok.distance
            if start < 0:
                raise ValueError("distance reaches before stream start")
            for i in range(tok.match_len):
                out.append(out[start + i])
    return bytes(out[len(prefix):])
