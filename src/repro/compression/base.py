"""Codec interface and registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one buffer.

    ``payload`` is the compressed byte stream; ``original_size`` is kept so
    callers can compute ratios without retaining the input.
    """

    codec: str
    payload: bytes
    original_size: int

    @property
    def compressed_size(self) -> int:
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Original/compressed size; >1 means the codec saved space."""
        if self.compressed_size == 0:
            return float("inf")
        return self.original_size / self.compressed_size


class Compressor:
    """Abstract codec: subclasses implement ``compress`` and ``decompress``.

    Codecs are stateless; the same instance may be shared across threads of
    the simulation.
    """

    #: Registry key; subclasses must override.
    name = "abstract"

    def compress(self, data: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, payload: bytes) -> bytes:
        raise NotImplementedError

    def compress_result(self, data: bytes) -> CompressionResult:
        return CompressionResult(self.name, self.compress(data), len(data))


_REGISTRY: Dict[str, Callable[[], Compressor]] = {}
_INSTANCES: Dict[str, Compressor] = {}


def register_codec(name: str, factory: Callable[[], Compressor]) -> None:
    """Register a codec factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def get_codec(name: str) -> Compressor:
    """Return the shared instance of the codec registered as ``name``."""
    if name not in _INSTANCES:
        if name not in _REGISTRY:
            raise KeyError(
                f"unknown codec {name!r}; known: {sorted(_REGISTRY)}"
            )
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def list_codecs() -> List[str]:
    return sorted(_REGISTRY)
