"""The cluster: a fleet of servers plus placement and synthesis helpers."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import SchedulingError
from repro.common.units import GiB
from repro.cluster.chunk import Chunk, StorageServer


@dataclass
class Cluster:
    servers: List[StorageServer] = field(default_factory=list)
    #: Placement block threshold from §4.2.1.
    usage_limit: float = 0.75

    # -- aggregate statistics ------------------------------------------------

    @property
    def average_logical_utilization(self) -> float:
        if not self.servers:
            return 0.0
        return sum(s.logical_utilization for s in self.servers) / len(self.servers)

    @property
    def average_compression_ratio(self) -> float:
        logical = sum(s.logical_used for s in self.servers)
        physical = sum(s.physical_used for s in self.servers)
        if physical == 0:
            return 1.0
        return logical / physical

    def find_chunk(self, chunk_id: int) -> Optional[StorageServer]:
        for server in self.servers:
            if chunk_id in server.chunks:
                return server
        return None

    # -- placement (the original strategy of §4.2.1) ------------------------------

    def place_new_chunk(self, chunk: Chunk) -> StorageServer:
        """Allocate to the alive server with the lowest logical usage."""
        candidates = [
            s for s in self.servers if s.fits(chunk, self.usage_limit)
        ]
        if not candidates:
            raise SchedulingError(
                "all servers above the usage limit: add storage servers"
            )
        target = min(candidates, key=lambda s: s.logical_utilization)
        target.add_chunk(chunk)
        return target

    def place_new_chunk_ratio_aware(self, chunk: Chunk) -> StorageServer:
        """Placement extension: steer each new chunk toward the server
        whose compression ratio it best complements.

        Poorly-compressing chunks go to servers with above-average ratios
        (physical headroom) and vice versa, so imbalance is *prevented*
        rather than migrated away later — reducing the scheduler's work.
        """
        candidates = [
            s for s in self.servers if s.fits(chunk, self.usage_limit)
        ]
        if not candidates:
            raise SchedulingError(
                "all servers above the usage limit: add storage servers"
            )
        c_avg = self.average_compression_ratio

        def complement_score(server: StorageServer) -> "tuple[float, float]":
            # Prefer servers whose deviation from c_avg is *opposite* the
            # chunk's; break ties by logical usage.
            server_dev = server.compression_ratio - c_avg
            chunk_dev = chunk.compression_ratio - c_avg
            return (server_dev * chunk_dev, server.logical_utilization)

        target = min(candidates, key=complement_score)
        target.add_chunk(chunk)
        return target

    # -- waste metrics (Figure 9a analysis) ------------------------------------------

    def wasted_logical_fraction(self) -> float:
        """Logical space stranded on servers that hit their *physical*
        limit first (below-average-ratio servers)."""
        wasted = 0
        total = 0
        for server in self.servers:
            total += server.logical_capacity
            # When physical fills at the limit, the logical space that can
            # never be used is (limit - logical_at_physical_limit).
            ratio = server.compression_ratio
            logical_at_phys_limit = min(
                self.usage_limit,
                self.usage_limit
                * ratio
                * server.physical_capacity
                / server.logical_capacity,
            )
            wasted += int(
                max(0.0, self.usage_limit - logical_at_phys_limit)
                * server.logical_capacity
            )
        return wasted / total if total else 0.0

    def wasted_physical_fraction(self) -> float:
        """Physical space stranded on servers that hit their *logical*
        limit first (above-average-ratio servers)."""
        wasted = 0
        total = 0
        for server in self.servers:
            total += server.physical_capacity
            ratio = server.compression_ratio
            phys_at_logical_limit = min(
                self.usage_limit,
                self.usage_limit
                / ratio
                * server.logical_capacity
                / server.physical_capacity,
            )
            wasted += int(
                max(0.0, self.usage_limit - phys_at_logical_limit)
                * server.physical_capacity
            )
        return wasted / total if total else 0.0


def synthesize_cluster(
    n_servers: int = 60,
    chunks_per_server: int = 48,
    chunk_logical_gib: float = 10.0,
    mean_ratio: float = 3.55,
    ratio_sigma: float = 0.35,
    logical_capacity: int = 1024 * GiB,
    physical_capacity: int = 384 * GiB,
    fill: float = 0.62,
    seed: int = 0,
) -> Cluster:
    """A cluster whose per-chunk compression ratios follow a lognormal
    spread around ``mean_ratio`` — matching the dispersion of Figure 9a —
    placed with the logical-only strategy (so the imbalance of Figures
    10a/11a emerges naturally).

    ``fill`` scales how much of each server's logical capacity is used.
    """
    rng = random.Random(seed)
    cluster = Cluster(
        servers=[
            StorageServer(i, logical_capacity, physical_capacity)
            for i in range(n_servers)
        ]
    )
    chunk_id = 0
    target_chunks = int(n_servers * chunks_per_server * fill)
    placed = 0
    while placed < target_chunks:
        # One user arrives with a batch of similarly-compressing chunks
        # (the same tables sharded into chunks).  Chunks of one user are
        # placed with affinity — subsequent chunks prefer servers already
        # holding that user's data — which is what concentrates ratios on
        # servers and produces Figure 9a's dispersion.
        user_mean = mean_ratio * rng.lognormvariate(0.0, ratio_sigma)
        batch = min(rng.randrange(4, 25), target_chunks - placed)
        user_servers: list = []
        for _ in range(batch):
            ratio = max(1.05, user_mean * rng.lognormvariate(0.0, 0.08))
            chunk = Chunk(chunk_id, int(chunk_logical_gib * GiB), ratio)
            chunk_id += 1
            target = None
            if user_servers and rng.random() < 0.8:
                affine = [
                    s
                    for s in user_servers
                    if s.fits(chunk, cluster.usage_limit)
                ]
                if affine:
                    target = min(affine, key=lambda s: s.logical_utilization)
                    target.add_chunk(chunk)
            if target is None:
                target = cluster.place_new_chunk(chunk)
            if target not in user_servers:
                user_servers.append(target)
            placed += 1
    return cluster
