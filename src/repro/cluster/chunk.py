"""Chunks and storage servers for cluster-scale simulation.

At cluster scale the paper reasons about chunks as (logical size,
compression ratio) pairs and servers as capacity buckets; this module
keeps exactly that state, with invariant-checked add/remove so schedulers
cannot teleport bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import SchedulingError
from repro.common.units import GiB


@dataclass(frozen=True)
class Chunk:
    """One placement unit (a slice of a user volume)."""

    chunk_id: int
    logical_bytes: int
    compression_ratio: float

    def __post_init__(self) -> None:
        if self.logical_bytes <= 0:
            raise ValueError("chunk must have positive logical size")
        if self.compression_ratio < 1.0:
            raise ValueError("compression ratio below 1.0")

    @property
    def physical_bytes(self) -> int:
        return int(self.logical_bytes / self.compression_ratio)


@dataclass
class StorageServer:
    """One storage server with logical and physical capacity."""

    server_id: int
    logical_capacity: int = 8 * 1024 * GiB
    physical_capacity: int = 4 * 1024 * GiB
    chunks: Dict[int, Chunk] = field(default_factory=dict)
    #: Physical bytes freed by the host but invisible to the device while
    #: TRIM is off (§4.2.1's monitoring inaccuracy).
    ghost_physical_bytes: int = 0

    # -- usage -----------------------------------------------------------

    @property
    def logical_used(self) -> int:
        return sum(c.logical_bytes for c in self.chunks.values())

    @property
    def physical_used(self) -> int:
        return sum(c.physical_bytes for c in self.chunks.values())

    @property
    def reported_physical_used(self) -> int:
        """What monitoring sees: true usage plus untrimmed ghosts."""
        return self.physical_used + self.ghost_physical_bytes

    @property
    def logical_utilization(self) -> float:
        return self.logical_used / self.logical_capacity

    @property
    def physical_utilization(self) -> float:
        return self.physical_used / self.physical_capacity

    @property
    def compression_ratio(self) -> float:
        physical = self.physical_used
        if physical == 0:
            return 1.0
        return self.logical_used / physical

    # -- chunk movement -------------------------------------------------------

    def add_chunk(self, chunk: Chunk) -> None:
        if chunk.chunk_id in self.chunks:
            raise SchedulingError(
                f"chunk {chunk.chunk_id} already on server {self.server_id}"
            )
        self.chunks[chunk.chunk_id] = chunk

    def remove_chunk(self, chunk_id: int) -> Chunk:
        if chunk_id not in self.chunks:
            raise SchedulingError(
                f"chunk {chunk_id} not on server {self.server_id}"
            )
        return self.chunks.pop(chunk_id)

    def fits(self, chunk: Chunk, limit: float = 0.75) -> bool:
        """Placement rule from §4.2.1: both logical and physical usage must
        stay under ``limit`` after adding the chunk."""
        logical = (self.logical_used + chunk.logical_bytes) / self.logical_capacity
        physical = (
            self.physical_used + chunk.physical_bytes
        ) / self.physical_capacity
        return logical <= limit and physical <= limit

    def chunks_by_ratio(self, ascending: bool = True) -> List[Chunk]:
        return sorted(
            self.chunks.values(),
            key=lambda c: c.compression_ratio,
            reverse=not ascending,
        )

    def enable_trim(self) -> int:
        """Flush ghost bytes (§4.2.1: ~3% drop on enabling TRIM)."""
        released = self.ghost_physical_bytes
        self.ghost_physical_bytes = 0
        return released
