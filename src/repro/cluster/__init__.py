"""Cluster-level space management (§4.2).

Models a fleet of storage servers holding chunks with heterogeneous
compression ratios, the logical-usage-only scheduler the paper started
with, and the compression-aware zone scheduler (Figure 9b) that fixed the
logical/physical imbalance of Figures 10–11.  Also carries the Table 2
cost model.
"""

from repro.cluster.chunk import Chunk, StorageServer
from repro.cluster.cluster import Cluster, synthesize_cluster
from repro.cluster.costs import CostModel, DEVICE_COSTS, cost_per_logical_gb
from repro.cluster.migration import MigrationExecutor, MigrationPlanReport
from repro.cluster.runtime import (
    ClusterRuntime,
    MigrationReport,
    RuntimeChunk,
    ShardServer,
    decode_row_page,
    encode_row_page,
)
from repro.cluster.scheduler import (
    CompressionAwareScheduler,
    LogicalOnlyScheduler,
    MigrationTask,
)

__all__ = [
    "Chunk",
    "StorageServer",
    "Cluster",
    "synthesize_cluster",
    "LogicalOnlyScheduler",
    "CompressionAwareScheduler",
    "MigrationTask",
    "MigrationExecutor",
    "MigrationPlanReport",
    "ClusterRuntime",
    "MigrationReport",
    "RuntimeChunk",
    "ShardServer",
    "encode_row_page",
    "decode_row_page",
    "CostModel",
    "DEVICE_COSTS",
    "cost_per_logical_gb",
]
