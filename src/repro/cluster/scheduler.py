"""Chunk schedulers (§4.2).

:class:`LogicalOnlyScheduler`
    The original strategy: watch logical usage only — migrate chunks off
    servers more than 10% above the average logical usage onto the
    least-loaded servers.  Ignores compression ratios entirely, which is
    what strands space (Figure 10a/11a).

:class:`CompressionAwareScheduler`
    The fix (Figure 9b): view servers on the logical×physical plane,
    target a compression-ratio band [c_l, c_h] around the cluster
    average, and move the most extreme chunks between the A/D zones until
    every server's ratio falls inside the band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.chunk import StorageServer
from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class MigrationTask:
    chunk_id: int
    source_id: int
    target_id: int


class LogicalOnlyScheduler:
    """Balance logical usage; blind to compression ratios."""

    def __init__(self, imbalance_margin: float = 0.10) -> None:
        self.margin = imbalance_margin

    def rebalance(self, cluster: Cluster, max_tasks: int = 10_000) -> List[MigrationTask]:
        tasks: List[MigrationTask] = []
        while len(tasks) < max_tasks:
            average = cluster.average_logical_utilization
            overloaded = [
                s
                for s in cluster.servers
                if s.logical_utilization > average + self.margin and s.chunks
            ]
            if not overloaded:
                break
            source = max(cluster.servers, key=lambda s: s.logical_utilization)
            chunk = next(iter(source.chunks.values()))
            candidates = [
                s
                for s in cluster.servers
                if s is not source and s.fits(chunk, cluster.usage_limit)
            ]
            if not candidates:
                break
            target = min(candidates, key=lambda s: s.logical_utilization)
            source.remove_chunk(chunk.chunk_id)
            target.add_chunk(chunk)
            tasks.append(MigrationTask(chunk.chunk_id, source.server_id,
                                       target.server_id))
        return tasks


class CompressionAwareScheduler:
    """Zone-based scheduling on the logical×physical plane (Figure 9b)."""

    def __init__(self, band_width: float = 0.10) -> None:
        """``band_width``: half-width of [c_l, c_h] relative to c_avg.
        Narrower bands converge tighter but need more migration tasks —
        the trade-off §4.2.3 tunes offline per cluster."""
        self.band_width = band_width

    def band(self, cluster: Cluster) -> "tuple[float, float]":
        c_avg = cluster.average_compression_ratio
        return c_avg * (1 - self.band_width), c_avg * (1 + self.band_width)

    @staticmethod
    def zone(server: StorageServer, c_l: float, c_h: float, c_avg: float) -> str:
        ratio = server.compression_ratio
        if ratio < c_l:
            return "A"  # high physical, low logical: poorly compressing
        if ratio > c_h:
            return "D"  # low physical, high logical: compresses very well
        return "B" if ratio <= c_avg else "C"

    def rebalance(
        self, cluster: Cluster, max_tasks: int = 10_000
    ) -> List[MigrationTask]:
        tasks: List[MigrationTask] = []
        c_avg = cluster.average_compression_ratio
        c_l, c_h = self.band(cluster)
        progress = True
        while progress and len(tasks) < max_tasks:
            progress = False
            zones = {
                server.server_id: self.zone(server, c_l, c_h, c_avg)
                for server in cluster.servers
            }
            for server in cluster.servers:
                if len(tasks) >= max_tasks:
                    break
                zone = zones[server.server_id]
                if zone == "A":
                    # Shed the worst-compressing chunk toward D, C, then B.
                    task = self._move(
                        cluster, server, ascending=True,
                        preference=("D", "C", "B"), zones=zones,
                    )
                elif zone == "D":
                    # Shed the best-compressing chunk toward A, B, then C.
                    task = self._move(
                        cluster, server, ascending=False,
                        preference=("A", "B", "C"), zones=zones,
                    )
                else:
                    task = None
                if task is not None:
                    tasks.append(task)
                    progress = True
        return tasks

    @staticmethod
    def _move(
        cluster: Cluster,
        source: StorageServer,
        ascending: bool,
        preference: Sequence[str],
        zones: dict,
    ) -> Optional[MigrationTask]:
        chunks = source.chunks_by_ratio(ascending=ascending)
        if not chunks:
            return None
        chunk = chunks[0]
        for wanted_zone in preference:
            candidates = [
                s
                for s in cluster.servers
                if s is not source
                and zones[s.server_id] == wanted_zone
                and s.fits(chunk, cluster.usage_limit)
            ]
            if candidates:
                target = min(candidates, key=lambda s: s.logical_utilization)
                source.remove_chunk(chunk.chunk_id)
                target.add_chunk(chunk)
                return MigrationTask(
                    chunk.chunk_id, source.server_id, target.server_id
                )
        return None


def band_coverage(cluster: Cluster, c_l: float, c_h: float) -> float:
    """Fraction of servers whose compression ratio lies in [c_l, c_h]
    (the §4.2.3 convergence metric: >90% for C1, 87.7% for C2)."""
    if not cluster.servers:
        return 0.0
    inside = sum(
        1 for s in cluster.servers if c_l <= s.compression_ratio <= c_h
    )
    return inside / len(cluster.servers)
