"""The Table 2 cost model.

Per-GB *physical* hardware costs are normalized to Intel P4510 = 1.00;
the effective per-GB *logical* cost divides by the achieved compression
ratio.  The paper's numbers fall straight out:

* C1: 1.45 / 2.35 = 0.62
* C2: 1.32 / 3.55 = 0.37  (≈60% below the N2 baseline of 0.91)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Relative hardware cost of one device class."""

    device: str
    cost_per_physical_gb: float

    def logical_cost(self, compression_ratio: float) -> float:
        if compression_ratio <= 0:
            raise ValueError("compression ratio must be positive")
        return self.cost_per_physical_gb / compression_ratio


#: Table 2, "Cost/GB(Physical)" row.
DEVICE_COSTS: Dict[str, CostModel] = {
    "P4510": CostModel("P4510", 1.00),
    "PolarCSD1.0": CostModel("PolarCSD1.0", 1.45),
    "P5510": CostModel("P5510", 0.91),
    "PolarCSD2.0": CostModel("PolarCSD2.0", 1.32),
}


def cost_per_logical_gb(device: str, compression_ratio: float = 1.0) -> float:
    return DEVICE_COSTS[device].logical_cost(compression_ratio)


def storage_cost_reduction(
    baseline_device: str, device: str, compression_ratio: float
) -> float:
    """Fractional saving of ``device``+compression vs an uncompressed
    baseline (Table 2's ≈60% for C2 vs N2)."""
    baseline = cost_per_logical_gb(baseline_device, 1.0)
    ours = cost_per_logical_gb(device, compression_ratio)
    return 1.0 - ours / baseline
