"""Per-shard engine workers behind the serial cluster control plane.

:class:`ParallelClusterRuntime` is a :class:`ClusterRuntime` whose
replica groups live in forked worker processes.  The split follows the
code's own seams:

* **Control plane stays serial.**  Routing, chunk state machines,
  migration daemons, gates/quiesce events, the stream-token queue and the
  schedulers all run unchanged on one coordinator
  :class:`~repro.engine.parallel.ParallelEngine`.  That engine's heap is
  the *same* heap serial uses — only storage calls leave the process.

* **Data plane moves to workers.**  Shard ``i`` is hosted by worker
  ``i % workers``; each worker builds its stores after the fork (node
  name counters preset to the serial allocation, see ``_build_shards``)
  and serves storage ops FIFO over a pipe.

Determinism argument, in terms of the seams in ``cluster.runtime``:

1. Every store is a deterministic state machine over its *ordered
   sequence of synchronous calls* ``(op, start_us, args)`` — engine-bound
   or not, ``write_page``/``read_page``/``checkpoint`` compute
   analytically and schedule nothing on the engine heap.
2. The coordinator issues those calls in dispatch order, and each
   worker's FIFO preserves it, so per-shard call sequences equal serial's
   (a subsequence of the global dispatch order).
3. Writes complete asynchronously, but their wakeups reuse the sequence
   number reserved at issue (``ParallelEngine.remote``) and fire at the
   worker-computed ``commit_us`` — the exact ``(time_us, seq)`` key
   serial's ``sleep_until(commit_us)`` would have used.  The engine's
   conservative lookahead horizon (``parallel.lookahead_us``, certified
   on every reply) keeps any event that could race a pending commit from
   dispatching early.
4. Reads/drops/checkpoints block, which is literally serial's semantics
   (synchronous within one dispatch).  Overlap comes from blocking on
   one worker while other workers compute writes issued earlier —
   concurrent migration streams and fan-out checkpoints.

Hence per-shard state, simulated timestamps and engine sequence numbers
are all byte-identical to serial; the golden tests in
``tests/cluster/test_parallel.py`` and the perf harness's third leg
enforce it.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional

from repro.common.errors import ReproError
from repro.engine.core import EngineError
from repro.engine.parallel import (
    ParallelEngine,
    ParallelEngineGroup,
    merge_event_streams,
)
from repro.cluster.runtime import (
    ClusterRuntime,
    RuntimeChunk,
    ShardServer,
    drop_page,
)
from repro.obs.events import recorder_active
from repro.obs.metrics import MetricsRegistry

__all__ = ["ParallelClusterRuntime", "RemoteShardServer"]


class _RemotePayload:
    """Stands in for the codec payload bytes: call sites only take its
    length (wire-byte accounting), so the bytes stay in the worker."""

    __slots__ = ("_len",)

    def __init__(self, length: int):
        self._len = length

    def __len__(self) -> int:
        return self._len


class _RemotePrepared:
    __slots__ = ("device_bytes", "payload")

    def __init__(self, device_bytes: int, payload_len: int):
        self.device_bytes = device_bytes
        self.payload = _RemotePayload(payload_len)


class _RemoteCommitted:
    """Wire shape of a committed write: what ``_write_proc`` and
    ``_copy_keys`` consume from ``CommittedWrite``."""

    __slots__ = ("commit_us", "prepared")

    def __init__(self, commit_us: float, device_bytes: int,
                 payload_len: int):
        self.commit_us = commit_us
        self.prepared = _RemotePrepared(device_bytes, payload_len)


class _RemoteRead:
    __slots__ = ("done_us", "data", "io_reads")

    def __init__(self, done_us: float, data: bytes, io_reads: int):
        self.done_us = done_us
        self.data = data
        self.io_reads = io_reads


class _RemoteStoreHandle:
    """The ``shard.store`` slot of a remote shard: routing identity only.

    Every real storage call goes through the runtime's seams; anything
    else touching ``shard.store`` on a parallel runtime is a bug, and a
    loud ``AttributeError`` beats silently reading a dead local store.
    """

    __slots__ = ("shard_id", "worker_id")

    def __init__(self, shard_id: int, worker_id: int):
        self.shard_id = shard_id
        self.worker_id = worker_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteStore(shard={self.shard_id}, worker={self.worker_id})"


class RemoteShardServer(ShardServer):
    """A :class:`ShardServer` whose volume lives in a worker process."""

    def __init__(self, shard_id: int, runtime: "ParallelClusterRuntime",
                 worker_id: int, logical_capacity: int,
                 physical_capacity: int):
        super().__init__(
            shard_id,
            _RemoteStoreHandle(shard_id, worker_id),
            logical_capacity=logical_capacity,
            physical_capacity=physical_capacity,
        )
        self.runtime = runtime
        self.worker_id = worker_id

    def chunk_physical_bytes(self, chunk: RuntimeChunk) -> int:
        pages = list(chunk.rows.values())
        if not pages:
            return 0
        sizes = self.runtime._call(
            self.worker_id, "stored", (self.shard_id, pages)
        )
        return sum(sizes)


def _capture_slo(evaluator) -> Dict:
    """Picklable capture of an SLO evaluator for cross-process merge
    (counterpart of :func:`repro.engine.parallel.merge_slo_states`)."""
    return {
        "history": {
            name: [tuple(point) for point in points]
            for name, points in evaluator.history.items()
        },
        "evaluations": evaluator.evaluations,
        "alerts": evaluator.alerts,
    }


class ParallelClusterRuntime(ClusterRuntime):
    """The serial cluster control plane over per-shard engine workers."""

    def __init__(
        self,
        config=None,
        workers: int = 2,
        lookahead_us: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1: {workers}")
        self._requested_workers = workers
        self._lookahead_override = lookahead_us
        #: Per-worker FIFO of in-flight requests awaiting replies: items
        #: are ("call", RemoteCall) for asynchronous writes and
        #: ("sync", waiter-dict) for blocking ops.
        self._pending: Dict[int, deque] = {}
        self._group: Optional[ParallelEngineGroup] = None
        self._closed = False
        # Validate the lookahead BEFORE super().__init__ forks the
        # worker fleet: a bad floor must not leak worker processes.
        if lookahead_us is not None:
            self.lookahead_us = float(lookahead_us)
        elif config is not None and hasattr(config, "parallel"):
            self.lookahead_us = float(config.parallel.lookahead_us)
        else:
            from repro.api.config import ParallelSection

            self.lookahead_us = float(ParallelSection().lookahead_us)
        if self.lookahead_us <= 0:
            raise EngineError(
                f"parallel lookahead must be positive: {self.lookahead_us}"
            )
        super().__init__(
            config=config, engine=ParallelEngine(), metrics=metrics
        )
        self.engine.reply_pump = self._reply_pump

    # ------------------------------------------------------------------ #
    # Worker fleet                                                        #
    # ------------------------------------------------------------------ #

    def _build_shards(
        self, cluster_cfg, store_cfg, physical_capacity: int
    ) -> List[ShardServer]:
        import repro.storage.store as store_mod

        # Reserve the node-name bases serial construction would have
        # assigned (shard i's nodes are ``node-{base_i*100 + r}``): the
        # coordinator consumes the shared counter so later in-process
        # builds keep their serial names, and each worker replays its
        # shards' reserved values after the fork.
        bases = [
            next(store_mod._node_counter)
            for _ in range(cluster_cfg.shards)
        ]
        workers = max(
            1, min(self._requested_workers, cluster_cfg.shards)
        )
        self.workers = workers
        config = self.config
        engine_cfg = self.config.engine

        def factory(worker_id: int):
            mine = [
                (sid, bases[sid])
                for sid in range(cluster_cfg.shards)
                if sid % workers == worker_id
            ]
            state: Dict = {}

            def service(op: str, payload):
                if op == "build":
                    from repro.api.factory import build_store
                    from repro.engine import Engine

                    local_engine = Engine()
                    stores = {}
                    for sid, base in mine:
                        store_mod._node_counter = itertools.count(base)
                        store = build_store(config, seed_offset=1000 * sid)
                        if engine_cfg.enabled:
                            store.bind_engine(
                                local_engine,
                                group_commit_window_us=(
                                    engine_cfg.group_commit_window_us
                                ),
                                qd=engine_cfg.qd,
                                defer_gc=engine_cfg.defer_gc,
                            )
                        stores[sid] = store
                    state["stores"] = stores
                    state["engine"] = local_engine
                    return sorted(stores)
                stores = state["stores"]
                if op == "write":
                    sid, start_us, page_no, image = payload
                    state["engine"].advance_to(start_us)
                    committed = stores[sid].write_page(
                        start_us, page_no, image
                    )
                    return (
                        committed.commit_us,
                        committed.prepared.device_bytes,
                        len(committed.prepared.payload),
                    )
                if op == "read":
                    sid, start_us, page_no = payload
                    state["engine"].advance_to(start_us)
                    result = stores[sid].read_page(start_us, page_no)
                    return (
                        result.done_us, bytes(result.data), result.io_reads
                    )
                if op == "drop":
                    sid, page_no = payload
                    drop_page(stores[sid], page_no)
                    return None
                if op == "checkpoint":
                    start_us = payload
                    state["engine"].advance_to(start_us)
                    done = start_us
                    for sid in sorted(stores):
                        done = max(done, stores[sid].checkpoint(start_us))
                    return done
                if op == "stored":
                    sid, pages = payload
                    leader = stores[sid].leader
                    return [leader.page_stored_bytes(p) for p in pages]
                if op == "obs":
                    rec = recorder_active()
                    return {
                        "metrics": {
                            sid: stores[sid].metrics.state()
                            for sid in sorted(stores)
                        },
                        "events": list(rec.events()) if rec else [],
                        "nodes": {
                            sid: [n.name for n in stores[sid].nodes]
                            for sid in sorted(stores)
                        },
                    }
                raise ValueError(f"unknown op {op!r}")  # pragma: no cover

            return service

        self._group = ParallelEngineGroup(workers, factory)
        self._pending = {w: deque() for w in range(workers)}
        self._group.broadcast("build")
        return [
            RemoteShardServer(
                i,
                self,
                i % workers,
                logical_capacity=store_cfg.volume_bytes,
                physical_capacity=physical_capacity,
            )
            for i in range(cluster_cfg.shards)
        ]

    # ------------------------------------------------------------------ #
    # Reply plumbing                                                      #
    # ------------------------------------------------------------------ #

    def _route_reply(self, worker_id: int) -> None:
        """Consume the next reply from ``worker_id`` and route it."""
        value = self._group.workers[worker_id].next_reply()
        kind, target = self._pending[worker_id].popleft()
        if kind == "call":
            self.engine.deliver(
                target, _RemoteCommitted(value[0], value[1], value[2])
            )
        else:
            target["value"] = value
            target["done"] = True

    def _reply_pump(self, block: bool) -> None:
        """The coordinator engine's reply source (``Engine.reply_pump``).

        Non-blocking: drain every reply already sitting in a pipe.
        Blocking: wait (via ``select``) until at least one worker with
        in-flight requests replies, then drain what arrived.
        """
        import select as _select

        busy = [
            w for w in self._group.workers
            if self._pending[w.worker_id]
        ]
        progressed = False
        for worker in busy:
            while self._pending[worker.worker_id] and worker.reply_ready():
                self._route_reply(worker.worker_id)
                progressed = True
        if block and not progressed:
            fds = {w.fileno(): w for w in busy}
            ready, _, _ = _select.select(list(fds), [], [])
            for fd in ready:
                self._route_reply(fds[fd].worker_id)

    def _call(self, worker_id: int, op: str, payload):
        """Blocking request: FIFO order means earlier asynchronous
        replies on the same worker drain (and deliver to the engine) on
        the way to ours."""
        worker = self._group.workers[worker_id]
        waiter = {"done": False, "value": None}
        worker.request(op, payload)
        self._pending[worker_id].append(("sync", waiter))
        while not waiter["done"]:
            self._route_reply(worker_id)
        return waiter["value"]

    def _broadcast(self, op: str, payload=None) -> List:
        """Fan an op out to every worker, then gather in worker order.

        Goes through the per-worker FIFOs (unlike the raw group
        broadcast), so asynchronous write replies still in flight are
        routed to the engine on the way — and all workers compute the op
        concurrently.
        """
        waiters = []
        for worker in self._group.workers:
            worker.request(op, payload)
            waiter = {"done": False, "value": None}
            self._pending[worker.worker_id].append(("sync", waiter))
            waiters.append(waiter)
        results = []
        for worker, waiter in zip(self._group.workers, waiters):
            while not waiter["done"]:
                self._route_reply(worker.worker_id)
            results.append(waiter["value"])
        return results

    # ------------------------------------------------------------------ #
    # Storage seams (the overrides)                                       #
    # ------------------------------------------------------------------ #

    def _commit_write(self, shard: ShardServer, page_no: int, image: bytes):
        engine = self.engine
        call = engine.remote(
            self.lookahead_us,
            lambda committed: committed.commit_us,
            label=f"write:shard{shard.shard_id}:page{page_no}",
        )
        worker_id = shard.worker_id
        self._group.workers[worker_id].request(
            "write", (shard.shard_id, engine.now_us, page_no, bytes(image))
        )
        self._pending[worker_id].append(("call", call))
        committed = yield call
        return committed

    def _read_page(self, shard: ShardServer, page_no: int):
        engine = self.engine
        result = self._call(
            shard.worker_id, "read", (shard.shard_id, engine.now_us, page_no)
        )
        read = _RemoteRead(result[0], result[1], result[2])
        if read.done_us > engine.now_us:
            yield engine.sleep_until(read.done_us)
        return read

    def _drop_page(self, store, page_no: int) -> None:
        self._call(store.worker_id, "drop", (store.shard_id, page_no))

    def _checkpoint_shards(self, start_us: float) -> float:
        # Shard checkpoints are independent (disjoint stores, identical
        # start instant), so this is a genuine parallel phase: one
        # request per worker, then a gather.
        dones = self._broadcast("checkpoint", start_us)
        return max([start_us] + [float(done) for done in dones])

    # ------------------------------------------------------------------ #
    # Barrier merges + lifecycle                                          #
    # ------------------------------------------------------------------ #

    def _checkpoint_quiescent(self) -> None:
        if self.engine.outstanding:
            raise ReproError(
                "barrier with remote writes outstanding: drain the engine "
                "before merging observability"
            )

    def fetch_observability(self) -> List[Dict]:
        """Barrier: every worker's metrics/recorder capture, by worker id."""
        self._checkpoint_quiescent()
        return self._broadcast("obs")

    def store_metrics_states(self) -> Dict[int, List[Dict]]:
        merged: Dict[int, List[Dict]] = {}
        for capture in self.fetch_observability():
            for sid, state in capture["metrics"].items():
                merged[int(sid)] = state
        return merged

    def merged_store_registry(self) -> MetricsRegistry:
        """All shard-store instruments folded into one registry in a
        single grouped pass — bit-identical under any worker/shard
        permutation (``MetricsRegistry.merge_states``)."""
        registry = MetricsRegistry()
        registry.merge_states([
            capture["metrics"][sid]
            for capture in self.fetch_observability()
            for sid in sorted(capture["metrics"])
        ])
        return registry

    def close(self) -> None:
        """Merge worker flight-recorder rings into the coordinator's
        recorder (stable worker-id tiebreak), then reap the workers."""
        if self._closed or self._group is None:
            return
        self._closed = True
        try:
            rec = recorder_active()
            if rec is not None:
                captures = self.fetch_observability()
                rec.splice(merge_event_streams(
                    [capture["events"] for capture in captures]
                ))
        finally:
            self._group.close()

    def __enter__(self) -> "ParallelClusterRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - last-resort reaping
        try:
            self.close()
        except Exception:
            pass
