"""Migration execution model (§4.2.3).

The zone scheduler emits migration tasks; executing one moves a chunk's
physical bytes across the network, throttled so user traffic is not
disturbed.  The paper tunes [c_l, c_h] per cluster "targeting the
parameters completion within one day" — this module computes that
completion time (makespan) so the trade-off between band width, task
count, and wall-clock duration can be evaluated offline, exactly as the
paper describes doing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.clock import ResourcePool
from repro.common.units import GiB, MiB
from repro.cluster.cluster import Cluster
from repro.cluster.scheduler import MigrationTask
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class MigrationPlanReport:
    tasks: int
    moved_bytes: int
    makespan_s: float

    @property
    def makespan_hours(self) -> float:
        return self.makespan_s / 3600.0


class MigrationExecutor:
    """Executes a migration plan under bandwidth and concurrency limits."""

    def __init__(
        self,
        per_stream_mib_s: float = 80.0,
        concurrent_streams: int = 8,
        per_task_overhead_s: float = 20.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """Defaults model a throttled background mover: ~80 MiB/s per
        stream (a fraction of a 25 Gbps NIC), 8 streams per cluster, and
        per-task overhead for snapshotting + handoff."""
        self.per_stream_mib_s = per_stream_mib_s
        self.concurrent_streams = concurrent_streams
        self.per_task_overhead_s = per_task_overhead_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tasks_ctr = self.metrics.counter("cluster.migration.tasks")
        self._moved_ctr = self.metrics.counter("cluster.migration.moved_bytes")
        self._makespan = self.metrics.gauge("cluster.migration.makespan_s")

    def estimate(
        self, cluster_chunks_bytes: Sequence[int]
    ) -> MigrationPlanReport:
        """Makespan for moving chunks of the given physical sizes."""
        pool = ResourcePool("migration", self.concurrent_streams)
        makespan_us = 0.0
        moved = 0
        # Longest-processing-time-first assignment approximates the
        # scheduler's behaviour of draining big chunks early.
        for nbytes in sorted(cluster_chunks_bytes, reverse=True):
            duration_s = (
                nbytes / (self.per_stream_mib_s * MiB)
                + self.per_task_overhead_s
            )
            done = pool.serve(0.0, duration_s * 1e6)
            makespan_us = max(makespan_us, done)
            moved += nbytes
        self._tasks_ctr.add(len(cluster_chunks_bytes))
        self._moved_ctr.add(moved)
        self._makespan.set(makespan_us / 1e6)
        return MigrationPlanReport(
            len(cluster_chunks_bytes), moved, makespan_us / 1e6
        )

    def report_for_plan(
        self, cluster: Cluster, tasks: List[MigrationTask]
    ) -> MigrationPlanReport:
        """Makespan of an already-applied plan (chunk ids -> sizes)."""
        sizes = []
        for task in tasks:
            server = cluster.find_chunk(task.chunk_id)
            if server is not None:
                sizes.append(server.chunks[task.chunk_id].physical_bytes)
            else:  # pragma: no cover - chunks never vanish mid-plan
                sizes.append(int(10 * GiB / 3))
        return self.estimate(sizes)
