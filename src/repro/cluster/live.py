"""A live cluster: zone scheduling over *real* storage nodes.

The abstract :mod:`repro.cluster` machinery schedules (size, ratio) pairs;
this module closes the loop by backing every server with an actual
:class:`~repro.storage.node.StorageNode` so a migration physically reads
pages off the source device, writes them to the target device through the
full dual-layer write path, and TRIMs the source — with byte-exact
integrity checkable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SchedulingError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.cluster.chunk import Chunk
from repro.cluster.cluster import Cluster
from repro.cluster.chunk import StorageServer
from repro.cluster.scheduler import CompressionAwareScheduler, MigrationTask
from repro.storage.node import NodeConfig, StorageNode
from repro.storage.store import build_node


@dataclass
class LiveChunk:
    """A chunk is a set of pages living on exactly one server."""

    chunk_id: int
    page_nos: Tuple[int, ...]


class LiveServer:
    """One storage server backed by a real node."""

    def __init__(self, server_id: int, node: StorageNode,
                 logical_capacity: int, physical_capacity: int) -> None:
        self.server_id = server_id
        self.node = node
        self.logical_capacity = logical_capacity
        self.physical_capacity = physical_capacity
        self.chunks: Dict[int, LiveChunk] = {}

    def chunk_physical_bytes(self, chunk: LiveChunk) -> int:
        return sum(self.node.page_stored_bytes(p) for p in chunk.page_nos)

    def chunk_ratio(self, chunk: LiveChunk) -> float:
        physical = self.chunk_physical_bytes(chunk)
        if physical == 0:
            return 1.0
        return len(chunk.page_nos) * DB_PAGE_SIZE / physical


class LiveCluster:
    """Servers with real nodes, plus placement and physical migration."""

    def __init__(
        self,
        n_servers: int = 4,
        volume_bytes: int = 64 * MiB,
        config: Optional[NodeConfig] = None,
        seed: int = 0,
    ) -> None:
        config = config if config is not None else NodeConfig(
            opt_algorithm_selection=False
        )
        self.servers: List[LiveServer] = [
            LiveServer(
                i,
                build_node(f"live-{i}", config, volume_bytes=volume_bytes,
                           seed=seed + i),
                logical_capacity=volume_bytes,
                physical_capacity=volume_bytes // 2,
            )
            for i in range(n_servers)
        ]
        self._next_chunk_id = 0
        self._next_page_base = 0
        self.now_us = 0.0

    # -- ingest -----------------------------------------------------------

    def ingest_chunk(self, pages: List[bytes],
                     server: Optional[LiveServer] = None) -> LiveChunk:
        """Write a new chunk's pages to the least-loaded server."""
        if server is None:
            server = min(
                self.servers, key=lambda s: s.node.logical_used_bytes
            )
        page_nos = []
        for image in pages:
            page_no = self._next_page_base
            self._next_page_base += 1
            self.now_us = server.node.write_page(
                self.now_us, page_no, image
            ).done_us
            page_nos.append(page_no)
        chunk = LiveChunk(self._next_chunk_id, tuple(page_nos))
        self._next_chunk_id += 1
        server.chunks[chunk.chunk_id] = chunk
        return chunk

    # -- migration ----------------------------------------------------------

    def migrate(self, chunk_id: int, target: LiveServer) -> None:
        """Physically move a chunk: read from source, write to target,
        free the source copies."""
        source = self._owner(chunk_id)
        if source is target:
            raise SchedulingError(f"chunk {chunk_id} already on target")
        chunk = source.chunks[chunk_id]
        for page_no in chunk.page_nos:
            result = source.node.read_page(self.now_us, page_no)
            self.now_us = result.done_us
            self.now_us = target.node.write_page(
                self.now_us, page_no, result.data
            ).done_us
            entry = source.node.index.remove(page_no)
            source.node.wal.append_index_remove(page_no)
            source.node._release_entry(entry)
            source.node.page_cache.remove(page_no)
        target.chunks[chunk_id] = source.chunks.pop(chunk_id)

    def _owner(self, chunk_id: int) -> LiveServer:
        for server in self.servers:
            if chunk_id in server.chunks:
                return server
        raise SchedulingError(f"chunk {chunk_id} not found")

    def read_page(self, page_no: int) -> bytes:
        for server in self.servers:
            if server.node.index.get(page_no) is not None:
                result = server.node.read_page(self.now_us, page_no)
                self.now_us = result.done_us
                return result.data
        raise SchedulingError(f"page {page_no} not found in cluster")

    # -- scheduling bridge ------------------------------------------------------

    def snapshot(self) -> Tuple[Cluster, Dict[int, int]]:
        """An abstract :class:`Cluster` view (measured sizes and ratios)
        plus a chunk->server map for applying the plan."""
        abstract = Cluster(servers=[])
        owner: Dict[int, int] = {}
        for server in self.servers:
            mirror = StorageServer(
                server.server_id,
                logical_capacity=server.logical_capacity,
                physical_capacity=server.physical_capacity,
            )
            for chunk in server.chunks.values():
                mirror.add_chunk(
                    Chunk(
                        chunk.chunk_id,
                        len(chunk.page_nos) * DB_PAGE_SIZE,
                        max(1.0, server.chunk_ratio(chunk)),
                    )
                )
                owner[chunk.chunk_id] = server.server_id
            abstract.servers.append(mirror)
        return abstract, owner

    def rebalance(
        self, scheduler: Optional[CompressionAwareScheduler] = None
    ) -> List[MigrationTask]:
        """Plan on the snapshot, then execute the plan with real moves."""
        scheduler = scheduler or CompressionAwareScheduler(band_width=0.10)
        abstract, _ = self.snapshot()
        tasks = scheduler.rebalance(abstract)
        for task in tasks:
            self.migrate(task.chunk_id, self.servers[task.target_id])
        return tasks

    # -- metrics ----------------------------------------------------------------

    def server_ratios(self) -> List[float]:
        return [s.node.compression_ratio() for s in self.servers]
