"""The sharded cluster runtime: real replica groups on one event kernel.

This module closes the last gap between the paper's cluster story (§4.2,
Figures 9b/10/11) and the rest of the reproduction.  The analytic
:mod:`repro.cluster` machinery schedules ``(size, ratio)`` counters; here
every shard is a real :class:`~repro.storage.store.PolarStore` replica
group living on one shared :class:`~repro.engine.Engine`, tables are
range-sharded into chunks whose pages hold real row bytes, and migration
runs as an engine daemon that

1. **copies** — reads every page of the chunk from the source volume and
   writes it through the target's full compression/replication path
   (so the moved bytes are *actual codec output*, and the copy consumes
   simulated device time on both volumes);
2. **catches up** — writes that land on the chunk while the copy is in
   flight are journaled (page-granular redo); catch-up rounds replay the
   journal until it runs dry or the round budget is spent;
3. **cuts over** — a short write pause drains the final journal delta,
   flips ownership, unblocks writers against the target, and frees the
   source copies.  Acknowledged writes are never lost: a write either
   committed on the source before its page's final replay, or blocked on
   the cutover gate and committed on the target.

The :class:`~repro.cluster.scheduler.LogicalOnlyScheduler` and
:class:`~repro.cluster.scheduler.CompressionAwareScheduler` both drive
this runtime unchanged: :meth:`ClusterRuntime.snapshot` mirrors the fleet
into the abstract plane with *measured* per-chunk logical and physical
bytes, and :meth:`ClusterRuntime.rebalance` executes the resulting plan
as throttled concurrent migration daemons.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ReproError, SchedulingError
from repro.common.units import DB_PAGE_SIZE
from repro.cluster.chunk import Chunk, StorageServer
from repro.cluster.cluster import Cluster
from repro.cluster.scheduler import (
    CompressionAwareScheduler,
    LogicalOnlyScheduler,
    MigrationTask,
)
from repro.db.rw_node import OpResult
from repro.engine import Engine, Queue
from repro.obs.events import recorder_active
from repro.obs.metrics import MetricsRegistry
from repro.storage.store import PolarStore

#: Row wire format: key, value length (the rest of the page is filler
#: tiled from the value so page compressibility tracks the row data).
_ROW_HEADER = struct.Struct("<QI")


def encode_row_page(key: int, value: bytes) -> bytes:
    """One 16 KiB page image holding one row.

    The filler repeats the value rather than zero-padding: a page of
    incompressible row bytes stays incompressible, so per-chunk
    compression ratios measured off the codecs reflect the data actually
    stored (what Figures 10/11 are about).
    """
    if len(value) > DB_PAGE_SIZE - _ROW_HEADER.size:
        raise ReproError(
            f"row value of {len(value)} bytes exceeds one page"
        )
    header = _ROW_HEADER.pack(key, len(value))
    body = value if value else b"\x00"
    filler_len = DB_PAGE_SIZE - len(header) - len(value)
    filler = (body * (filler_len // len(body) + 1))[:filler_len]
    return header + value + filler


def decode_row_page(image: bytes) -> Tuple[int, bytes]:
    key, length = _ROW_HEADER.unpack_from(image)
    return key, image[_ROW_HEADER.size:_ROW_HEADER.size + length]


def drop_page(store: PolarStore, page_no: int) -> None:
    """Free one page on every live replica of a volume (TRIM the space;
    the WAL records the removal so recovery agrees).  Module-level so the
    parallel runtime's worker processes apply exactly the same mutation
    to their locally-hosted stores."""
    for i, node in enumerate(store.nodes):
        if not store._alive[i]:
            store._missed[i].discard(page_no)
            continue
        if node.index.get(page_no) is None:
            continue
        entry = node.index.remove(page_no)
        node.wal.append_index_remove(page_no)
        node._release_entry(entry)
        node.page_cache.remove(page_no)
        cached = node.redo_cache.pop(page_no, None)
        if cached:
            node._redo_cache_bytes -= sum(
                r.size_bytes for r in cached
            )


class ChunkState(enum.Enum):
    SERVING = "serving"
    MIGRATING = "migrating"   # copy/catch-up in flight; writes journal
    CUTOVER = "cutover"       # final drain; writes block on the gate


@dataclass
class RuntimeChunk:
    """One range-sharded placement unit backed by real pages."""

    chunk_id: int
    table: str
    key_lo: int
    key_hi: int  # exclusive
    shard_id: int
    rows: Dict[int, int] = field(default_factory=dict)  # key -> page_no
    state: ChunkState = ChunkState.SERVING
    #: Keys dirtied (written or deleted) since the migration copy began.
    dirty: "set[int]" = field(default_factory=set)
    #: Keys deleted mid-migration -> the page number their target copy
    #: (if any) must be dropped from during catch-up.
    deleted: Dict[int, int] = field(default_factory=dict)
    #: Writers blocked during cutover wait on this gate.
    gate: Optional[object] = None
    #: Writes routed to the source and still in flight; cutover waits
    #: for this to reach zero before the final drain.
    in_flight: int = 0
    #: Event the migration daemon waits on while in-flight writes drain.
    quiesce: Optional[object] = None

    @property
    def logical_bytes(self) -> int:
        return len(self.rows) * DB_PAGE_SIZE


class ShardServer:
    """One shard: a replicated PolarStore volume plus capacity bounds."""

    def __init__(
        self,
        shard_id: int,
        store: PolarStore,
        logical_capacity: int,
        physical_capacity: int,
    ) -> None:
        self.shard_id = shard_id
        self.store = store
        self.logical_capacity = logical_capacity
        self.physical_capacity = physical_capacity
        self.chunks: Dict[int, RuntimeChunk] = {}

    # -- measured space (real codec output, leader replica) ---------------

    @property
    def logical_used(self) -> int:
        return sum(c.logical_bytes for c in self.chunks.values())

    def chunk_physical_bytes(self, chunk: RuntimeChunk) -> int:
        leader = self.store.leader
        return sum(
            leader.page_stored_bytes(p) for p in chunk.rows.values()
        )

    @property
    def physical_used(self) -> int:
        return sum(
            self.chunk_physical_bytes(c) for c in self.chunks.values()
        )

    def chunk_ratio(self, chunk: RuntimeChunk) -> float:
        physical = self.chunk_physical_bytes(chunk)
        if physical == 0:
            return 1.0
        return chunk.logical_bytes / physical


class MigrationReport:
    """What one rebalance pass physically did."""

    def __init__(self) -> None:
        self.tasks: List[MigrationTask] = []
        self.moved_pages = 0
        self.catchup_pages = 0
        self.moved_logical_bytes = 0
        self.moved_physical_bytes = 0
        self.makespan_us = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tasks": len(self.tasks),
            "moved_pages": self.moved_pages,
            "catchup_pages": self.catchup_pages,
            "moved_logical_bytes": self.moved_logical_bytes,
            "moved_physical_bytes": self.moved_physical_bytes,
            "makespan_us": self.makespan_us,
        }


class ClusterRuntime:
    """N real replica groups, range-sharded tables, live migration."""

    def __init__(
        self,
        config=None,
        engine: Optional[Engine] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        from repro.api.config import ReproConfig

        self.config = config if config is not None else ReproConfig.from_dict(
            {"cluster": {"shards": 2}}
        )
        if self.config.cluster.shards < 2:
            raise ReproError(
                "ClusterRuntime needs cluster.shards >= 2; use a plain "
                "volume for single-shard setups"
            )
        self.engine = engine if engine is not None else Engine()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        cluster_cfg = self.config.cluster
        store_cfg = self.config.store
        self.usage_limit = cluster_cfg.usage_limit
        self.chunk_keys = cluster_cfg.chunk_keys
        self.max_catchup_rounds = cluster_cfg.max_catchup_rounds
        physical_capacity = int(
            store_cfg.volume_bytes * cluster_cfg.physical_fraction
        )
        self.shards: List[ShardServer] = self._build_shards(
            cluster_cfg, store_cfg, physical_capacity
        )
        self.tables: Dict[str, Dict[int, RuntimeChunk]] = {}
        self.chunks: Dict[int, RuntimeChunk] = {}
        self._next_chunk_id = 0
        self._next_page_no = 0
        #: Replicated metadata log (``cluster.consensus = true``): chunk
        #: placement and migration cutover commit through an elected
        #: Raft group before they take effect, so the routing table is
        #: a deterministic function of the committed log, not of which
        #: coordinator happened to act first.
        self.meta_group = None
        #: Applied metadata commands, in committed-log order.
        self.meta_log: List[tuple] = []
        if cluster_cfg.consensus:
            from repro.consensus import RaftGroup

            self.meta_group = RaftGroup(
                self.engine,
                n_nodes=cluster_cfg.consensus_nodes,
                seed=store_cfg.seed,
                metrics=self.metrics,
                apply_fn=self._apply_meta,
                name="cluster-meta",
            ).start()
        #: Migration stream tokens: at most ``migration_streams`` chunk
        #: moves are in flight; further tasks queue FIFO.
        self._streams = Queue(self.engine, "migration-streams")
        for token in range(cluster_cfg.migration_streams):
            self._streams.put(token)
        m = self.metrics
        self._mig_tasks = m.counter("cluster.migration.tasks")
        self._mig_pages = m.counter("cluster.migration.pages")
        self._mig_catchup = m.counter("cluster.migration.catchup_pages")
        self._mig_logical = m.counter("cluster.migration.logical_bytes")
        self._mig_physical = m.counter("cluster.migration.physical_bytes")
        self._mig_wire = m.counter("cluster.migration.wire_bytes")
        self._mig_chunk_us = m.histogram("cluster.migration.chunk_us")
        self._cutover_stall = m.histogram("cluster.migration.cutover_stall_us")
        self._blocked_writes = m.counter("cluster.migration.blocked_writes")
        m.gauge_fn("cluster.runtime.shards", lambda: float(len(self.shards)))
        m.gauge_fn(
            "cluster.runtime.chunks", lambda: float(len(self.chunks))
        )

    # ------------------------------------------------------------------ #
    # Shard hosting (overridden by the parallel runtime)                   #
    # ------------------------------------------------------------------ #

    def _build_shards(
        self, cluster_cfg, store_cfg, physical_capacity: int
    ) -> List[ShardServer]:
        """Build the replica groups this runtime hosts in-process.

        ``repro.cluster.parallel`` overrides this (and the storage-call
        seams below) to host the stores in worker processes behind
        proxies; everything above the seams — routing, migration
        daemons, scheduling — is shared verbatim, which is what makes
        the byte-for-byte equivalence argument small.
        """
        from repro.api.factory import build_store

        shards = [
            ShardServer(
                i,
                build_store(self.config, seed_offset=1000 * i),
                logical_capacity=store_cfg.volume_bytes,
                physical_capacity=physical_capacity,
            )
            for i in range(cluster_cfg.shards)
        ]
        if self.config.engine.enabled:
            for shard in shards:
                shard.store.bind_engine(
                    self.engine,
                    group_commit_window_us=(
                        self.config.engine.group_commit_window_us
                    ),
                    qd=self.config.engine.qd,
                    defer_gc=self.config.engine.defer_gc,
                )
        return shards

    def _commit_write(self, shard: ShardServer, page_no: int, image: bytes):
        """Write one page on a shard's volume and wait out its commit.

        The serial path issues the (synchronous, analytic) store call and
        sleeps until the returned commit instant.  The parallel runtime
        overrides this to issue the write to the shard's worker process
        and yield a ``RemoteCall`` whose wakeup reuses the sequence
        number reserved here — both paths resume at exactly
        ``(commit_us, seq-at-issue)``.
        """
        engine = self.engine
        committed = shard.store.write_page(engine.now_us, page_no, image)
        if committed.commit_us > engine.now_us:
            yield engine.sleep_until(committed.commit_us)
        return committed

    def _read_page(self, shard: ShardServer, page_no: int):
        """Read one page from a shard's volume and wait out its latency."""
        engine = self.engine
        result = shard.store.read_page(engine.now_us, page_no)
        if result.done_us > engine.now_us:
            yield engine.sleep_until(result.done_us)
        return result

    def _checkpoint_shards(self, start_us: float) -> float:
        """Checkpoint every shard at ``start_us``; returns the latest
        completion.  Shard checkpoints touch disjoint state, so the
        parallel runtime fans this out across workers."""
        done = start_us
        for shard in self.shards:
            done = max(done, shard.store.checkpoint(start_us))
        return done

    # ------------------------------------------------------------------ #
    # Routing                                                             #
    # ------------------------------------------------------------------ #

    def create_table(self, name: str) -> None:
        if name in self.tables:
            raise ReproError(f"table {name!r} already exists")
        self.tables[name] = {}

    def _chunk_index(self, key: int) -> int:
        return key // self.chunk_keys

    def _chunk_for(self, table: str, key: int, create: bool) -> RuntimeChunk:
        if table not in self.tables:
            raise ReproError(f"no such table {table!r}")
        index = self._chunk_index(key)
        chunks = self.tables[table]
        chunk = chunks.get(index)
        if chunk is None:
            if not create:
                raise ReproError(f"key {key} not found in {table!r}")
            if self.meta_group is not None:
                # Placement must commit through the metadata log first
                # (the write path proposes before routing here).
                raise ReproError(
                    f"chunk for key {key} in {table!r} not yet placed "
                    "by the metadata log"
                )
            chunk = self._create_chunk(
                table, index, self._place_new_chunk().shard_id
            )
        return chunk

    def _create_chunk(
        self, table: str, index: int, shard_id: int
    ) -> RuntimeChunk:
        """Materialize one chunk at a decided placement (the single
        mutation point shared by direct routing and the metadata log)."""
        chunk = RuntimeChunk(
            self._next_chunk_id,
            table,
            index * self.chunk_keys,
            (index + 1) * self.chunk_keys,
            shard_id,
        )
        self._next_chunk_id += 1
        self.tables[table][index] = chunk
        self.chunks[chunk.chunk_id] = chunk
        self.shards[shard_id].chunks[chunk.chunk_id] = chunk
        return chunk

    def _apply_meta(self, entry) -> None:
        """Apply one committed metadata-log entry.

        Idempotent by construction: two racing coordinators may both
        propose placement of the same chunk; the first committed entry
        wins and the duplicate applies as a no-op — exactly the Raft
        state-machine discipline.
        """
        command = entry.command
        if not isinstance(command, tuple) or not command:
            return
        op = command[0]
        if op == "place":
            _, table, index, shard_id = command
            chunks = self.tables.get(table)
            if chunks is None or index in chunks:
                return  # table dropped, or a duplicate proposal lost
            self.meta_log.append(command)
            self._create_chunk(table, index, shard_id)
        elif op == "cutover":
            self.meta_log.append(command)

    def _ensure_chunk_proc(self, table: str, key: int):
        """Engine process: make sure ``key``'s chunk exists, committing
        the placement decision through the metadata log."""
        if table not in self.tables:
            raise ReproError(f"no such table {table!r}")
        index = self._chunk_index(key)
        while self.tables[table].get(index) is None:
            shard = self._place_new_chunk()
            yield from self.meta_group.propose_proc(
                ("place", table, index, shard.shard_id)
            )
            # The committed entry (ours or a racing coordinator's)
            # created the chunk via _apply_meta; loop re-checks.
        return self.tables[table][index]

    def _place_new_chunk(self) -> ShardServer:
        """Logical-only placement (the original §4.2.1 strategy): the
        imbalance the schedulers fix emerges from here."""
        full_chunk = self.chunk_keys * DB_PAGE_SIZE
        candidates = [
            s
            for s in self.shards
            if (s.logical_used + full_chunk)
            <= self.usage_limit * s.logical_capacity
        ]
        if not candidates:
            raise SchedulingError(
                "all shards above the usage limit: add storage servers"
            )
        return min(candidates, key=lambda s: s.logical_used)

    def owner(self, chunk: RuntimeChunk) -> ShardServer:
        return self.shards[chunk.shard_id]

    # ------------------------------------------------------------------ #
    # Data path (engine processes + synchronous wrappers)                 #
    # ------------------------------------------------------------------ #

    def insert_proc(self, table: str, key: int, value: bytes):
        result = yield from self._write_proc(table, key, value, create=True)
        return result

    def update_proc(self, table: str, key: int, value: bytes):
        chunk = self._chunk_for(table, key, create=False)
        if key not in chunk.rows:
            raise ReproError(f"update of missing key {key}")
        result = yield from self._write_proc(table, key, value, create=False)
        return result

    def delete_proc(self, table: str, key: int):
        engine = self.engine
        while True:
            chunk = self._chunk_for(table, key, create=False)
            if chunk.state is not ChunkState.CUTOVER:
                break
            self._blocked_writes.inc()
            yield chunk.gate
        if key not in chunk.rows:
            raise ReproError(f"delete of missing key {key}")
        page_no = chunk.rows.pop(key)
        shard = self.owner(chunk)
        self._drop_page(shard.store, page_no)
        if chunk.state is ChunkState.MIGRATING:
            chunk.dirty.add(key)
            chunk.deleted[key] = page_no
        return OpResult(engine.now_us, 0, 0)

    def select_proc(self, table: str, key: int):
        engine = self.engine
        chunk = self._chunk_for(table, key, create=False)
        page_no = chunk.rows.get(key)
        if page_no is None:
            return OpResult(engine.now_us, 0, 0, None)
        result = yield from self._read_page(self.owner(chunk), page_no)
        _, value = decode_row_page(result.data)
        return OpResult(engine.now_us, result.io_reads, 0, value)

    def range_select_proc(self, table: str, low: int, high: int):
        """Point-read every key in [low, high] (chunk-range pruned)."""
        engine = self.engine
        if table not in self.tables:
            raise ReproError(f"no such table {table!r}")
        parts: List[bytes] = []
        reads = 0
        for index in range(
            self._chunk_index(low), self._chunk_index(high) + 1
        ):
            chunk = self.tables[table].get(index)
            if chunk is None:
                continue
            for key in sorted(chunk.rows):
                if low <= key <= high:
                    result = yield from self.select_proc(table, key)
                    reads += result.io_reads
                    if result.value is not None:
                        parts.append(result.value)
        return OpResult(engine.now_us, reads, 0, b"".join(parts))

    def _write_proc(self, table: str, key: int, value: bytes, create: bool):
        engine = self.engine
        if create and self.meta_group is not None:
            yield from self._ensure_chunk_proc(table, key)
        while True:
            chunk = self._chunk_for(table, key, create=create)
            if chunk.state is not ChunkState.CUTOVER:
                break
            # The chunk is mid-cutover: wait for the flip, then re-route
            # (the chunk now lives on the target shard).
            self._blocked_writes.inc()
            stall_from = engine.now_us
            yield chunk.gate
            self._cutover_stall.record(engine.now_us - stall_from)
        page_no = chunk.rows.get(key)
        if page_no is None:
            page_no = self._next_page_no
            self._next_page_no += 1
        image = encode_row_page(key, value)
        shard = self.owner(chunk)
        chunk.in_flight += 1
        try:
            committed = yield from self._commit_write(shard, page_no, image)
            chunk.rows[key] = page_no
            chunk.deleted.pop(key, None)
            if chunk.state in (ChunkState.MIGRATING, ChunkState.CUTOVER):
                # Page-granular redo for the catch-up / final-drain
                # phases.  A write can legitimately observe CUTOVER here:
                # it passed the gate while the copy was still running and
                # committed on the source while the daemon waits for the
                # chunk to quiesce — journaling it keeps it in the final
                # drain, so the acknowledged bytes reach the target.
                chunk.dirty.add(key)
        finally:
            chunk.in_flight -= 1
            if chunk.in_flight == 0 and chunk.quiesce is not None:
                quiesce, chunk.quiesce = chunk.quiesce, None
                quiesce.succeed(engine.now_us)
        return OpResult(
            engine.now_us, 0, committed.prepared.device_bytes
        )

    # -- synchronous wrappers (one op = one engine run) --------------------

    def _run(self, gen) -> OpResult:
        return self.engine.run(gen)

    def insert(self, now_us: float, table: str, key: int, value: bytes):
        self.engine.advance_to(now_us)
        return self._run(self.insert_proc(table, key, value))

    def update(self, now_us: float, table: str, key: int, value: bytes):
        self.engine.advance_to(now_us)
        return self._run(self.update_proc(table, key, value))

    def delete(self, now_us: float, table: str, key: int):
        self.engine.advance_to(now_us)
        return self._run(self.delete_proc(table, key))

    def select(self, now_us: float, table: str, key: int, ro_index: int = -1):
        self.engine.advance_to(now_us)
        return self._run(self.select_proc(table, key))

    def range_select(self, now_us: float, table: str, low: int, high: int):
        self.engine.advance_to(now_us)
        return self._run(self.range_select_proc(table, low, high))

    def bulk_load(
        self, now_us: float, table: str, rows: Iterable[Tuple[int, bytes]]
    ) -> float:
        self.engine.advance_to(now_us)
        for key, value in rows:
            self._run(self.insert_proc(table, key, value))
        return self.engine.now_us

    def checkpoint(self, now_us: float) -> float:
        self.engine.advance_to(now_us)
        done = max(now_us, self._checkpoint_shards(self.engine.now_us))
        self.engine.advance_to(done)
        return done

    # ------------------------------------------------------------------ #
    # Live migration                                                      #
    # ------------------------------------------------------------------ #

    def migrate_chunk_proc(self, chunk_id: int, target_id: int):
        """Engine daemon: move one chunk with copy, catch-up, cutover."""
        engine = self.engine
        chunk = self.chunks.get(chunk_id)
        if chunk is None:
            raise SchedulingError(f"chunk {chunk_id} not found")
        if chunk.shard_id == target_id:
            raise SchedulingError(f"chunk {chunk_id} already on target")
        if chunk.state is not ChunkState.SERVING:
            raise SchedulingError(
                f"chunk {chunk_id} already migrating"
            )
        token = yield self._streams.get()
        try:
            started = engine.now_us
            source = self.shards[chunk.shard_id]
            target = self.shards[target_id]
            source_id = chunk.shard_id
            self._mig_tasks.inc()
            chunk.state = ChunkState.MIGRATING
            chunk.dirty = set()
            chunk.deleted = {}
            rec = recorder_active()
            if rec is not None:
                rec.emit(
                    started, "migration", "started",
                    chunk=chunk.chunk_id, source=source_id,
                    target=target_id, keys=len(chunk.rows),
                )
            # Phase 1: bulk copy of the membership snapshot.
            snapshot = sorted(chunk.rows)
            copied = yield from self._copy_keys(
                chunk, source, target, snapshot, catchup=False
            )
            copy_done = engine.now_us
            # Phase 2: catch-up rounds replay pages dirtied meanwhile.
            rounds = 0
            while chunk.dirty and rounds < self.max_catchup_rounds:
                rounds += 1
                delta = sorted(chunk.dirty)
                chunk.dirty = set()
                yield from self._copy_keys(
                    chunk, source, target, delta, catchup=True
                )
            catchup_done = engine.now_us
            if rec is not None:
                rec.emit(
                    catchup_done, "migration", "catchup_done",
                    chunk=chunk.chunk_id, rounds=rounds, copied=copied,
                )
            # Phase 3: cutover — gate new writers, wait for in-flight
            # source writes to quiesce, then drain the final delta.
            chunk.state = ChunkState.CUTOVER
            chunk.gate = engine.event(f"cutover-{chunk.chunk_id}")
            while chunk.in_flight > 0:
                chunk.quiesce = engine.event(
                    f"quiesce-{chunk.chunk_id}"
                )
                yield chunk.quiesce
            final = sorted(chunk.dirty)
            chunk.dirty = set()
            yield from self._copy_keys(
                chunk, source, target, final, catchup=True
            )
            if self.meta_group is not None:
                # The ownership flip is a metadata transition: it must
                # commit on the replicated log before any router acts on
                # it, so a coordinator crash at this exact moment cannot
                # leave the two shards disagreeing about the owner.
                yield from self.meta_group.propose_proc(
                    ("cutover", chunk.chunk_id, target_id)
                )
            # Flip ownership, then free every source copy.
            del source.chunks[chunk.chunk_id]
            target.chunks[chunk.chunk_id] = chunk
            chunk.shard_id = target_id
            for page_no in sorted(chunk.rows.values()):
                self._drop_page(source.store, page_no)
            chunk.deleted = {}
            chunk.state = ChunkState.SERVING
            gate, chunk.gate = chunk.gate, None
            gate.succeed(engine.now_us)
            ended = engine.now_us
            self._mig_chunk_us.record(ended - started)
            if rec is not None:
                rec.emit(
                    ended, "migration", "cutover_done",
                    chunk=chunk.chunk_id, source=source_id,
                    target=target_id,
                    total_us=round(ended - started, 3),
                )
            self._trace_migration(started, copy_done, catchup_done, ended)
            return copied
        finally:
            self._streams.put(token)

    def _trace_migration(
        self,
        started: float,
        copy_done: float,
        catchup_done: float,
        ended: float,
    ) -> None:
        """Retrospective spans for one completed migration.

        A migration daemon yields through dozens of engine waits, so an
        ambient span cannot stay open across its lifetime; instead the
        phase boundary timestamps are captured as the daemon runs and the
        whole trace is emitted synchronously here, at completion.  The
        child phases tile the root exactly, so the per-layer exclusive
        times keep summing to the end-to-end simulated latency.
        """
        tracer = self.metrics.tracer
        root = tracer.begin("cluster.migrate_chunk", started, layer="cluster")
        sp = tracer.begin("cluster.migrate.copy", started, layer="cluster")
        tracer.end(sp, copy_done)
        sp = tracer.begin(
            "cluster.migrate.catchup", copy_done, layer="cluster"
        )
        tracer.end(sp, catchup_done)
        sp = tracer.begin(
            "cluster.migrate.cutover", catchup_done, layer="cluster"
        )
        tracer.end(sp, ended)
        tracer.end(root, ended)

    def _copy_keys(
        self,
        chunk: RuntimeChunk,
        source: ShardServer,
        target: ShardServer,
        keys: List[int],
        catchup: bool,
    ):
        """Copy the given keys' pages source -> target, real bytes."""
        copied = 0
        for key in keys:
            page_no = chunk.rows.get(key)
            if page_no is None:
                # Deleted since it was journaled: if an earlier copy pass
                # already landed the page on the target, drop that copy so
                # the delete survives the cutover.
                stale = chunk.deleted.pop(key, None)
                if stale is not None:
                    self._drop_page(target.store, stale)
                continue
            read = yield from self._read_page(source, page_no)
            committed = yield from self._commit_write(
                target, page_no, read.data
            )
            copied += 1
            self._mig_pages.inc()
            if catchup:
                self._mig_catchup.inc()
            self._mig_logical.add(DB_PAGE_SIZE)
            self._mig_wire.add(len(committed.prepared.payload))
            self._mig_physical.add(committed.prepared.device_bytes)
        return copied

    def _drop_page(self, store: PolarStore, page_no: int) -> None:
        """Free one page on every live replica of a volume.  An instance
        method so the parallel runtime can route the drop to the worker
        process hosting the store."""
        drop_page(store, page_no)

    # ------------------------------------------------------------------ #
    # Scheduling bridge                                                   #
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Tuple[Cluster, Dict[int, int]]:
        """Mirror the fleet onto the abstract logical x physical plane
        with *measured* sizes (every physical byte is codec output)."""
        abstract = Cluster(servers=[], usage_limit=self.usage_limit)
        owner: Dict[int, int] = {}
        for shard in self.shards:
            mirror = StorageServer(
                shard.shard_id,
                logical_capacity=shard.logical_capacity,
                physical_capacity=shard.physical_capacity,
            )
            for chunk in shard.chunks.values():
                if not chunk.rows:
                    continue
                mirror.add_chunk(
                    Chunk(
                        chunk.chunk_id,
                        chunk.logical_bytes,
                        max(1.0, shard.chunk_ratio(chunk)),
                    )
                )
                owner[chunk.chunk_id] = shard.shard_id
            abstract.servers.append(mirror)
        return abstract, owner

    def zone_occupancy(
        self, scheduler: Optional[CompressionAwareScheduler] = None
    ) -> Dict[str, int]:
        """Shards per zone (A/B/C/D) on the logical x physical plane."""
        scheduler = scheduler or CompressionAwareScheduler(
            band_width=self.config.cluster.band_width
        )
        abstract, _ = self.snapshot()
        c_avg = abstract.average_compression_ratio
        c_l, c_h = scheduler.band(abstract)
        occupancy = {"A": 0, "B": 0, "C": 0, "D": 0}
        for server in abstract.servers:
            occupancy[scheduler.zone(server, c_l, c_h, c_avg)] += 1
        return occupancy

    def rebalance(self, scheduler=None) -> MigrationReport:
        """Plan on the measured snapshot, then execute the plan as
        concurrent migration daemons on the engine."""
        scheduler = scheduler or CompressionAwareScheduler(
            band_width=self.config.cluster.band_width
        )
        abstract, _ = self.snapshot()
        tasks = scheduler.rebalance(abstract)
        return self.execute(tasks)

    def execute(self, tasks: List[MigrationTask]) -> MigrationReport:
        report = MigrationReport()
        report.tasks = list(tasks)
        started = self.engine.now_us
        pages0 = self._mig_pages.value
        catchup0 = self._mig_catchup.value
        logical0 = self._mig_logical.value
        physical0 = self._mig_physical.value
        # A plan is a sequence of moves on the mirror and may relocate the
        # same chunk more than once (chained A->B->C moves); physically we
        # execute only the net move, straight to each chunk's final target.
        net: Dict[int, int] = {}
        for task in tasks:
            net[task.chunk_id] = task.target_id
        procs = [
            self.engine.spawn(
                self.migrate_chunk_proc(chunk_id, target_id),
                name=f"migrate-{chunk_id}",
            )
            for chunk_id, target_id in net.items()
            if self.chunks[chunk_id].shard_id != target_id
        ]
        self.engine.run_until_complete(procs)
        report.moved_pages = int(self._mig_pages.value - pages0)
        report.catchup_pages = int(self._mig_catchup.value - catchup0)
        report.moved_logical_bytes = int(self._mig_logical.value - logical0)
        report.moved_physical_bytes = int(
            self._mig_physical.value - physical0
        )
        report.makespan_us = self.engine.now_us - started
        return report

    # ------------------------------------------------------------------ #
    # Fleet-level accounting                                              #
    # ------------------------------------------------------------------ #

    def wasted_fractions(self) -> Tuple[float, float]:
        """(wasted logical, wasted physical) fractions at the usage
        limit, computed from measured per-shard ratios (Fig 10/11)."""
        abstract, _ = self.snapshot()
        return (
            abstract.wasted_logical_fraction(),
            abstract.wasted_physical_fraction(),
        )

    def verify_readable(self, expected: Dict[Tuple[str, int], bytes]) -> int:
        """Assert every acknowledged row is byte-exact readable; returns
        the number of rows checked (the cutover-loses-nothing check)."""
        checked = 0
        for (table, key), value in sorted(expected.items()):
            result = self._run(self.select_proc(table, key))
            if result.value != value:
                raise ReproError(
                    f"row {table!r}:{key} lost or corrupt after migration"
                )
            checked += 1
        return checked

    def compression_ratio(self) -> float:
        logical = sum(s.logical_used for s in self.shards)
        physical = sum(s.physical_used for s in self.shards)
        if physical == 0:
            return 1.0
        return logical / physical

    def store_metrics_states(self) -> Dict[int, List[Dict]]:
        """Per-shard store-registry captures (``MetricsRegistry.state``),
        keyed by shard id — the fleet-wide observability snapshot the
        parallel golden tests compare against serial, shard by shard."""
        return {
            shard.shard_id: shard.store.metrics.state()
            for shard in self.shards
        }

    def close(self) -> None:
        """Release hosted resources.  The in-process runtime holds none;
        the parallel runtime reaps its worker processes here."""


__all__ = [
    "ChunkState",
    "ClusterRuntime",
    "MigrationReport",
    "RuntimeChunk",
    "ShardServer",
    "decode_row_page",
    "drop_page",
    "encode_row_page",
]
