"""Split-brain safety invariants for the consensus layer.

A :class:`SplitBrainTracker` is a passive observer wired into every
:class:`~repro.consensus.raft.RaftNode` and the group's commit path.  It
records the safety-relevant events as they happen (leader elections,
term changes, fences, commit advances, client acknowledgements) and
exposes four checks that the chaos harness surfaces as
:class:`~repro.obs.slo.InvariantSLO` specs:

* **one leader per term** — Election Safety: two nodes claiming
  leadership of the same term is split-brain, full stop;
* **terms monotonic per node** — a node whose current term ever goes
  backwards has corrupted its persistent state;
* **fenced leaders commit nothing** — once a leader is deposed at term
  T, no commit-index advance may be attributed to it *as leader of T*;
* **no committed write lost** — every command a client was acknowledged
  for must appear in the group's final committed log, across any
  election/partition/crash schedule.

The tracker never throws during the run: violations accumulate as
human-readable strings so one broken invariant cannot mask another, and
the SLO evaluator reports them all at the end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.consensus.raft import RaftState
from repro.obs.slo import InvariantSLO


class SplitBrainTracker:
    """Accumulates consensus safety evidence and checks it."""

    def __init__(self) -> None:
        #: term -> node ids that became leader of that term.
        self.leaders_by_term: Dict[int, Set[int]] = {}
        #: node id -> highest term observed so far.
        self._max_term: Dict[int, int] = {}
        #: (node id, term) pairs deposed by a higher term.
        self.fenced: Set[Tuple[int, int]] = set()
        #: Commands acknowledged to clients (must survive everything).
        self.acked: List[object] = []
        self.violations: List[str] = []

    # -- recording hooks ---------------------------------------------------

    def record_leader(self, node: int, term: int) -> None:
        claimants = self.leaders_by_term.setdefault(term, set())
        claimants.add(node)
        if len(claimants) > 1:
            self.violations.append(
                f"split-brain: term {term} has leaders {sorted(claimants)}"
            )

    def record_term(self, node: int, term: int) -> None:
        prev = self._max_term.get(node, 0)
        if term < prev:
            self.violations.append(
                f"term regression: node {node} went {prev} -> {term}"
            )
        else:
            self._max_term[node] = term

    def record_fence(self, node: int, deposed_term: int, by_term: int) -> None:
        self.fenced.add((node, deposed_term))

    def record_commit_advance(
        self, node: int, state: RaftState, term: int, commit_index: int
    ) -> None:
        if state is RaftState.LEADER and (node, term) in self.fenced:
            self.violations.append(
                f"fenced leader committed: node {node} advanced commit to "
                f"{commit_index} as leader of deposed term {term}"
            )

    def acknowledge(self, command: object) -> None:
        """A client observed this command as committed."""
        self.acked.append(command)

    def record_divergence(self, detail: str) -> None:
        self.violations.append(f"log divergence: {detail}")

    # -- checks ------------------------------------------------------------

    def one_leader_per_term(self) -> List[str]:
        return [v for v in self.violations if v.startswith("split-brain")]

    def terms_monotonic(self) -> List[str]:
        return [v for v in self.violations if v.startswith("term regression")]

    def fenced_commit_nothing(self) -> List[str]:
        return [
            v for v in self.violations
            if v.startswith("fenced leader committed")
        ]

    def no_committed_write_lost(
        self, committed_commands: Iterable[object]
    ) -> List[str]:
        """Every acknowledged command must be in the final committed log
        (plus any divergence between replicas' committed prefixes)."""
        final = set(map(repr, committed_commands))
        out = [v for v in self.violations if v.startswith("log divergence")]
        for command in self.acked:
            if repr(command) not in final:
                out.append(f"acked write lost: {command!r} not committed")
        return out

    def slo_specs(self, committed_commands_fn) -> List[InvariantSLO]:
        """The four split-brain invariants as evaluator-ready specs.

        ``committed_commands_fn`` is called at evaluation time and must
        return the group's final committed command sequence.
        """
        return [
            InvariantSLO(
                "raft.one_leader_per_term",
                lambda: self.one_leader_per_term(),
            ),
            InvariantSLO(
                "raft.no_committed_write_lost",
                lambda: self.no_committed_write_lost(committed_commands_fn()),
            ),
            InvariantSLO(
                "raft.terms_monotonic",
                lambda: self.terms_monotonic(),
            ),
            InvariantSLO(
                "raft.fenced_leaders_commit_nothing",
                lambda: self.fenced_commit_nothing(),
            ),
        ]


__all__ = ["SplitBrainTracker"]
