"""Raft consensus running as engine processes.

The static replication rule in :mod:`repro.storage.raft` commits a write
at the majority but has no story for *who* the leader is when the
current one dies or is partitioned away.  This package supplies that
story on the deterministic event kernel:

* :mod:`repro.consensus.raft` — the node state machine: randomized
  (seeded) election timers, RequestVote/AppendEntries, term-based
  fencing, log repair via nextIndex backoff;
* :mod:`repro.consensus.fabric` — message delivery over the existing
  :class:`~repro.storage.raft.NetworkModel`, filtered through a
  :class:`~repro.chaos.net.NetFaultPlan` (partitions, drops, delays,
  duplicates) and per-node clock skew;
* :mod:`repro.consensus.group` — a whole replica group plus the
  client-side propose/retry loop;
* :mod:`repro.consensus.invariants` — the split-brain safety tracker
  whose four checks surface as SLO specs (one leader per term, no
  committed write lost, terms monotonic, fenced leaders commit
  nothing);
* :mod:`repro.consensus.scenario` — the ``python -m repro raft``
  schedule: symmetric and asymmetric partitions, clock-skewed timers,
  and leader crashes at the worst moments, with byte-deterministic
  artifacts.
"""

from repro.consensus.fabric import ConsensusFabric
from repro.consensus.group import RaftGroup
from repro.consensus.invariants import SplitBrainTracker
from repro.consensus.raft import (
    ElectionTiming,
    LogEntry,
    RaftNode,
    RaftState,
)

__all__ = [
    "ConsensusFabric",
    "ElectionTiming",
    "LogEntry",
    "RaftGroup",
    "RaftNode",
    "RaftState",
    "SplitBrainTracker",
]
