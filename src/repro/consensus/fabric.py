"""Message transport between Raft nodes on one event kernel.

Consensus RPCs ride the same :class:`~repro.storage.raft.NetworkModel`
the data plane uses: a message takes one ``rpc_us(size)`` one-way hop,
sized from its wire estimate, and is delivered by a scheduled engine
callback.  Handlers run synchronously at delivery time (they mutate node
state and send replies back through the fabric), so message ordering is
exactly the engine's deterministic ``(time_us, seq)`` heap order.

A :class:`~repro.chaos.net.NetFaultPlan` (when armed) judges every send:
partitioned or dropped messages vanish, delayed ones arrive late,
duplicated ones arrive twice.  Deliveries to crashed nodes are discarded
at arrival time — a message in flight when its target dies is lost, like
a real socket buffer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.storage.raft import NetworkModel

#: Fixed wire overhead per RPC (headers, term, ids).
_BASE_BYTES = 64
#: Estimated wire bytes per replicated log entry beyond its command.
_ENTRY_BYTES = 48


def message_bytes(msg) -> int:
    """Deterministic wire-size estimate for one consensus message."""
    entries = getattr(msg, "entries", ())
    size = _BASE_BYTES
    for entry in entries:
        size += _ENTRY_BYTES + len(repr(entry.command))
    return size


class ConsensusFabric:
    """Delivers consensus messages with latency, faults, and crash loss."""

    def __init__(
        self,
        engine,
        network: Optional[NetworkModel] = None,
        plan=None,
        metrics=None,
    ) -> None:
        self.engine = engine
        self.network = network if network is not None else NetworkModel()
        #: The chaos network-fault plan (None = a perfect network).
        self.plan = plan
        self._nodes: Dict[int, object] = {}
        if metrics is not None:
            self._sent = metrics.counter("consensus.net.sent")
            self._lost = metrics.counter("consensus.net.lost")
        else:
            self._sent = None
            self._lost = None

    def register(self, node) -> None:
        self._nodes[node.node_id] = node

    def send(self, src: int, dst: int, msg) -> None:
        """Ship one message ``src -> dst`` (fire and forget)."""
        if dst not in self._nodes:
            return
        engine = self.engine
        now = engine.now_us
        copies = 1
        extra = 0.0
        if self.plan is not None:
            verdict = self.plan.judge(src, dst, now)
            if verdict.blocked or verdict.dropped:
                if self._lost is not None:
                    self._lost.inc()
                return
            extra = verdict.extra_delay_us
            copies = 1 + verdict.duplicates
        if self._sent is not None:
            self._sent.inc()
        hop = self.network.rpc_us(message_bytes(msg))
        for copy in range(copies):
            # A duplicate trails its original by one microsecond so the
            # two deliveries stay distinct heap events in a fixed order.
            engine.schedule(
                now + hop + extra + float(copy), self._deliver, dst, msg
            )

    def _deliver(self, dst: int, msg) -> None:
        node = self._nodes.get(dst)
        if node is None or not node.alive:
            return  # crashed mid-flight: the message is simply lost
        node.on_message(msg)


__all__ = ["ConsensusFabric", "message_bytes"]
