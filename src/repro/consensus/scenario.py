"""The ``python -m repro raft`` scenario: elections under fire.

One replicated volume (3 replicas) runs a continuous redo-commit
workload through the group-commit pipeline while a controller walks the
consensus plane through the failure classes a cloud-native database must
survive, in order:

* **Phase A — symmetric partition**: the elected leader is cut off from
  both followers.  The majority side elects a successor; the old leader
  keeps heartbeating into the void until the partition heals and a
  higher term fences it.
* **Phase B — leader crash**: the current leader is power-failed
  mid-workload, then rejoins through WAL replay as a FOLLOWER at its
  persisted term and repairs its Raft log before serving.
* **Phase C — asymmetric partition**: a one-way link cut (leader can
  reach the follower, the follower's replies vanish) — the classic
  disruptive-elections shape.
* **Phase D — crash at the worst moment**: a command is proposed
  directly to the leader and the leader is crashed while the
  AppendEntries is still in flight, so the entry's fate is decided by
  the election that follows, not by the proposer.

One node's election timer runs on a deliberately skewed clock
throughout.  The verdict comes from the PR 6 SLO evaluator: the four
split-brain invariants (one leader per term, no committed write lost,
monotonic terms, fenced leaders commit nothing), a redo-durability
oracle (every acknowledged LSN decodes from a quorum of replicas'
durable redo), and floors asserting the schedule really exercised what
it claims (elections, both partition shapes, two leader crashes).

Everything is derived from ``(seed, quick)``; the artifact is
byte-deterministic across double runs and CI diffs it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chaos.net import NetFaultPlan
from repro.common.errors import RaftError
from repro.common.rng import make_rng
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.consensus.group import RaftGroup
from repro.engine import Engine
from repro.obs.slo import InvariantSLO, SLOEvaluator, SLOReport, ThresholdSLO
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord, decode_records
from repro.storage.store import PolarStore


@dataclass
class RaftReport:
    """Outcome of one raft scenario run."""

    seed: int
    quick: bool
    commits_acked: int = 0
    commits_attempted: int = 0
    meta_acked: int = 0
    elections: int = 0
    term_bumps: int = 0
    fences: int = 0
    leader_crashes: int = 0
    sym_partitions: int = 0
    asym_partitions: int = 0
    client_retries: int = 0
    pipeline_retries: int = 0
    committed_len: int = 0
    final_leader: int = -1
    final_term: int = 0
    end_us: float = 0.0
    net_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: The volume's MetricsRegistry (``--metrics``); not in the render.
    metrics: Optional[object] = field(default=None, repr=False)
    #: Final SLO report — ``violations`` is its flattened output, so the
    #: verdict and the evaluator can never disagree.
    slo: Optional[SLOReport] = field(default=None, repr=False)

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        """Sim-deterministic summary (the CI double-run diff target)."""
        return {
            "seed": self.seed,
            "quick": self.quick,
            "commits_acked": self.commits_acked,
            "commits_attempted": self.commits_attempted,
            "meta_acked": self.meta_acked,
            "elections": self.elections,
            "term_bumps": self.term_bumps,
            "fences": self.fences,
            "leader_crashes": self.leader_crashes,
            "sym_partitions": self.sym_partitions,
            "asym_partitions": self.asym_partitions,
            "client_retries": self.client_retries,
            "pipeline_retries": self.pipeline_retries,
            "committed_len": self.committed_len,
            "final_leader": self.final_leader,
            "final_term": self.final_term,
            "end_us": round(self.end_us, 3),
            "net_counts": dict(self.net_counts),
            "violations": list(self.violations),
            "passed": self.passed,
        }

    def write_artifact(self, out_dir: str) -> str:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "raft_scenario.json")
        with open(path, "w") as fh:
            fh.write(json.dumps(self.as_dict(), indent=2, sort_keys=True))
            fh.write("\n")
        return path

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        lines = [
            f"raft scenario [{mark}] seed={self.seed} "
            f"quick={self.quick} sim_end={self.end_us / 1e3:.1f}ms",
            f"  commits: {self.commits_acked}/{self.commits_attempted} "
            f"acked  meta: {self.meta_acked}  "
            f"retries: client={self.client_retries} "
            f"pipeline={self.pipeline_retries}",
            f"  elections: {self.elections}  term_bumps: {self.term_bumps}  "
            f"fences: {self.fences}  final leader: node "
            f"{self.final_leader} @ term {self.final_term}",
            f"  schedule: {self.sym_partitions} symmetric + "
            f"{self.asym_partitions} asymmetric partitions, "
            f"{self.leader_crashes} leader crashes",
            f"  net: {self.net_counts}",
        ]
        if self.slo is not None:
            lines.append("  SLOs:")
            lines.append(self.slo.render())
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)


def run_raft(
    seed: int = 11,
    quick: bool = True,
    verbose: bool = False,
    volume_bytes: int = 64 * MiB,
    on_progress: Optional[Callable[[int, float], None]] = None,
    evaluator: Optional[SLOEvaluator] = None,
) -> RaftReport:
    """Run the partition + leader-crash schedule; return the verdict.

    The invariants are declared as SLO specs on ``evaluator`` (one is
    created when not supplied) and the report's verdict is the
    evaluator's.  ``on_progress(op, now_us)`` fires after every acked
    commit, letting a live dashboard snapshot metrics mid-run.
    """
    report = RaftReport(seed=seed, quick=quick)
    pages = 16
    commits = 48 if quick else 200
    pace_us = 1_500.0
    say = print if verbose else (lambda *a, **k: None)

    store = PolarStore(
        NodeConfig(), volume_bytes=volume_bytes, replicas=3, seed=seed
    )
    now = 0.0
    for p in range(pages):
        now = store.write_page(
            now, p, bytes([p % 251]) * DB_PAGE_SIZE
        ).commit_us

    engine = Engine(start_us=now)
    plan = NetFaultPlan(seed)
    skew_rng = make_rng(seed, "raft-scenario", "skew")
    # Two sane clocks plus one fast one: the skewed node times out early
    # and starts (occasionally disruptive) elections.
    skews = [1.0, 1.0, 1.0]
    skews[skew_rng.randrange(3)] = 0.78
    group = RaftGroup(
        engine, 3, seed=seed, plan=plan, metrics=store.metrics,
        clock_skews=skews, name="raft",
    ).start()
    store.bind_engine(engine)
    store.attach_consensus(group)
    store.attach_net_plan(plan)
    report.metrics = store.metrics

    acked_lsns: List[int] = []
    stuck: List[str] = []

    def redo_client(client: int, n_commits: int):
        for k in range(n_commits):
            lsn = client * 100_000 + k
            records = [RedoRecord(
                lsn=lsn,
                page_no=(client * 7 + k) % pages,
                offset=0,
                data=bytes([client]) * 48,
            )]
            report.commits_attempted += 1
            committed = False
            for _attempt in range(12):
                try:
                    yield from store.write_redo_proc(records)
                except RaftError:
                    # The pipeline already retried for its whole
                    # deadline: leadership is still settling.  Back off
                    # a fixed pace (determinism: no extra rng) and
                    # re-submit the same records.
                    yield engine.timeout(4 * pace_us)
                    continue
                committed = True
                break
            if committed:
                acked_lsns.append(lsn)
                report.commits_acked += 1
                if on_progress is not None:
                    on_progress(report.commits_acked, engine.now_us)
            else:
                stuck.append(f"redo commit lsn {lsn} never succeeded")
            yield engine.timeout(pace_us)

    def meta_client(n_ops: int):
        for j in range(n_ops):
            yield from group.propose_proc(("cfg", j))
            report.meta_acked += 1
            yield engine.timeout(3 * pace_us)

    def controller():
        # Wait for the first election before making trouble.
        while group.leader_id is None:
            yield engine.timeout(500.0)
        say(f"[{engine.now_us / 1e3:9.2f}ms] leader: node "
            f"{group.leader_id} term {group.leader_term}")

        # Phase A: symmetric partition isolating the leader.
        lead = group.leader_id
        rest = [i for i in group.node_ids if i != lead]
        plan.partition([lead], rest, engine.now_us, engine.now_us + 28_000)
        report.sym_partitions += 1
        say(f"[{engine.now_us / 1e3:9.2f}ms] A: partition {{{lead}}} | "
            f"{rest} for 28ms")
        yield engine.timeout(40_000.0)
        say(f"[{engine.now_us / 1e3:9.2f}ms] A healed; leader: node "
            f"{group.leader_id} term {group.leader_term}")

        # Phase B: crash the leader, recover it through WAL replay.
        lead = store.leader_index
        store.fail_node(lead)
        report.leader_crashes += 1
        say(f"[{engine.now_us / 1e3:9.2f}ms] B: crashed leader {lead}")
        yield engine.timeout(24_000.0)
        store.recover_node(lead, engine.now_us)
        say(f"[{engine.now_us / 1e3:9.2f}ms] B: node {lead} rejoined; "
            f"leader: node {group.leader_id} term {group.leader_term}")
        yield engine.timeout(12_000.0)

        # Phase C: asymmetric partition — replies from one follower to
        # the leader vanish (one-way cut).
        lead = group.leader_id if group.leader_id is not None else 0
        victim = [i for i in group.node_ids if i != lead][0]
        plan.partition(
            [victim], [lead], engine.now_us, engine.now_us + 22_000,
            symmetric=False,
        )
        report.asym_partitions += 1
        say(f"[{engine.now_us / 1e3:9.2f}ms] C: one-way cut "
            f"{victim} -> {lead} for 22ms")
        yield engine.timeout(34_000.0)

        # Phase D: crash at the worst moment — propose straight to the
        # leader and kill it while the AppendEntries is on the wire.
        while group.leader_id is None:
            yield engine.timeout(500.0)
        lead = group.leader_id
        leader_node = group.nodes[lead]
        try:
            leader_node.propose(("doomed", report.leader_crashes))
        except RaftError:
            pass  # lost the race to an election: the crash still lands
        yield engine.timeout(9.0)  # < one-way RPC latency: msg in flight
        store.fail_node(lead)
        report.leader_crashes += 1
        say(f"[{engine.now_us / 1e3:9.2f}ms] D: crashed leader {lead} "
            f"with AppendEntries in flight")
        yield engine.timeout(24_000.0)
        store.recover_node(lead, engine.now_us)
        say(f"[{engine.now_us / 1e3:9.2f}ms] D: node {lead} rejoined; "
            f"leader: node {group.leader_id} term {group.leader_term}")

    procs = [
        engine.spawn(redo_client(c, commits // 2), name=f"redo-{c}")
        for c in range(2)
    ]
    procs.append(
        engine.spawn(meta_client(max(6, commits // 8)), name="meta")
    )
    procs.append(engine.spawn(controller(), name="controller"))
    engine.run_until_complete(procs)
    group.stop()

    # Settle: heal everything, resync stale replicas, checkpoint.
    for i in range(len(store.nodes)):
        if not store._alive[i]:
            store.recover_node(i, engine.now_us)
    end = store.resync_missed(engine.now_us)
    end = max(end, store.checkpoint(end))
    engine.advance_to(end)

    report.elections = group.elections_won
    report.term_bumps = group.term_bumps
    report.fences = group.fences
    report.client_retries = group.client_retries
    report.pipeline_retries = int(
        store.metrics.counter("raft.retries").value
    )
    report.committed_len = len(group.committed)
    report.final_leader = (
        group.leader_id if group.leader_id is not None else -1
    )
    report.final_term = group.leader_term
    report.end_us = engine.now_us
    report.net_counts = plan.counts()

    def durability_violations() -> List[str]:
        """Every acked LSN must decode from a quorum of replicas."""
        out = list(stuck)
        per_node: List[set] = []
        for node in store.nodes:
            lsns = set()
            for blob in node.durable_redo_blobs:
                lsns.update(r.lsn for r in decode_records(blob))
            per_node.append(lsns)
        for lsn in acked_lsns:
            copies = sum(1 for lsns in per_node if lsn in lsns)
            if copies < store.quorum:
                out.append(
                    f"acked lsn {lsn} durable on only {copies}/"
                    f"{len(store.nodes)} replicas"
                )
        return out

    if evaluator is None:
        evaluator = SLOEvaluator()
    evaluator.attach(store.metrics)
    for spec in group.slo_specs():
        evaluator.add(spec)
    evaluator.add(InvariantSLO("raft.redo_durability", durability_violations))
    floors = (
        ("raft.elections", lambda: float(report.elections), 3.0),
        ("raft.sym_partitions", lambda: float(report.sym_partitions), 1.0),
        ("raft.asym_partitions", lambda: float(report.asym_partitions), 1.0),
        ("raft.leader_crashes", lambda: float(report.leader_crashes), 2.0),
        (
            "raft.commits_acked",
            lambda: float(report.commits_acked),
            float(commits),
        ),
    )
    for name, value_fn, floor in floors:
        evaluator.add(ThresholdSLO(name, value_fn, floor=floor))
    statuses = evaluator.evaluate(engine.now_us)
    slo = SLOReport(statuses=statuses)
    report.slo = slo
    report.violations = slo.violations()
    return report


__all__ = ["RaftReport", "run_raft"]
