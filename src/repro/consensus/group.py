"""A whole Raft replica group plus the client-side retry loop.

:class:`RaftGroup` owns the fabric, the nodes (each with its own seeded
RNG stream and optional clock skew), the
:class:`~repro.consensus.invariants.SplitBrainTracker`, and the *group
view* of the committed log: every node reports each commit-index advance
here, the first report of an index appends it, and every later report is
cross-checked against the recorded entry — any disagreement is a
divergence violation (State Machine Safety made observable).

Clients drive writes through :meth:`RaftGroup.propose_proc`, which is
where "degrade gracefully across failover" lives: a
:class:`~repro.common.errors.RaftError` (wrong node, fenced leader,
crash mid-commit) triggers bounded seeded-jitter exponential backoff and
a re-propose against the current leader hint, until a hard deadline
turns the retry loop back into fail-fast.  Retries are the *expected*
path during an election — the invariant tracker deduplicates by command
identity, so a command committed once and retried harmlessly is not a
safety event.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import RaftError
from repro.common.rng import make_rng
from repro.consensus.fabric import ConsensusFabric
from repro.consensus.invariants import SplitBrainTracker
from repro.consensus.raft import ElectionTiming, LogEntry, RaftNode


class _NullCounter:
    """Metrics sink when no registry is attached (keeps hot paths flat)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class RaftGroup:
    """N Raft nodes, their fabric, tracker, and the client entrypoint."""

    def __init__(
        self,
        engine,
        n_nodes: int = 3,
        seed: int = 0,
        network=None,
        plan=None,
        metrics=None,
        timing: Optional[ElectionTiming] = None,
        apply_fn: Optional[Callable[[LogEntry], None]] = None,
        clock_skews: Optional[Sequence[float]] = None,
        tracker: Optional[SplitBrainTracker] = None,
        name: str = "raft",
        client_backoff_us: float = 400.0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.node_ids = list(range(n_nodes))
        self.metrics = metrics
        self._counters: Dict[str, object] = {}
        self.tracker = tracker if tracker is not None else SplitBrainTracker()
        self.fabric = ConsensusFabric(
            engine, network=network, plan=plan, metrics=metrics
        )
        self.timing = timing if timing is not None else ElectionTiming()
        skews = list(clock_skews) if clock_skews is not None else []
        self.nodes: List[RaftNode] = []
        for i in self.node_ids:
            node = RaftNode(
                i, self, engine,
                rng=make_rng(seed, "raft", name, i),
                timing=self.timing,
                clock_skew=skews[i] if i < len(skews) else 1.0,
            )
            self.nodes.append(node)
            self.fabric.register(node)
        self.apply_fn = apply_fn
        self.client_backoff_us = float(client_backoff_us)
        self._client_rng = make_rng(seed, "raft", name, "client")
        #: The group view of the committed log (see module docstring).
        self.committed: List[LogEntry] = []
        self.leader_id: Optional[int] = None
        self.leader_term = 0
        self._leader_listeners: List[Callable[[int, int], None]] = []
        # Plain-int tallies so scenario thresholds need no registry.
        self.elections_won = 0
        self.leader_changes = 0
        self.term_bumps = 0
        self.fences = 0
        self.client_retries = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "RaftGroup":
        """Arm every node's election ticker."""
        if not self._started:
            self._started = True
            for node in self.nodes:
                node.start()
        return self

    def stop(self) -> None:
        """Cancel the daemon tickers/heartbeats so ``run_until_idle``
        can terminate after a scenario drains."""
        for node in self.nodes:
            node._life_epoch += 1
            node._lead_epoch += 1
            for proc in (node._ticker_proc, node._hb_proc):
                if proc is not None and not proc.done:
                    proc.cancel()

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    def restart(self, node_id: int) -> None:
        self.nodes[node_id].restart()

    @property
    def leader(self) -> Optional[RaftNode]:
        if self.leader_id is None:
            return None
        node = self.nodes[self.leader_id]
        return node if node.alive else None

    def add_leader_listener(self, fn: Callable[[int, int], None]) -> None:
        """``fn(node_id, term)`` fires on every leader election."""
        self._leader_listeners.append(fn)

    def metrics_counter(self, metric: str):
        if self.metrics is None:
            return _NULL_COUNTER
        counter = self._counters.get(metric)
        if counter is None:
            counter = self.metrics.counter(metric)
            self._counters[metric] = counter
        return counter

    # -- node callbacks ----------------------------------------------------

    def _on_term(self, node: RaftNode, term: int) -> None:
        self.tracker.record_term(node.node_id, term)
        self.term_bumps += 1
        self.metrics_counter("consensus.term_bumps").inc()

    def _on_leader(self, node: RaftNode, term: int) -> None:
        self.tracker.record_leader(node.node_id, term)
        self.elections_won += 1
        self.metrics_counter("consensus.elections").inc()
        if node.node_id != self.leader_id:
            self.leader_changes += 1
            self.metrics_counter("consensus.leader_changes").inc()
        self.leader_id = node.node_id
        self.leader_term = term
        for fn in self._leader_listeners:
            fn(node.node_id, term)

    def _on_fence(self, node: RaftNode, deposed_term: int) -> None:
        self.fences += 1
        self.metrics_counter("consensus.fences").inc()
        if self.leader_id == node.node_id and self.leader_term <= deposed_term:
            self.leader_id = None

    def _on_crash(self, node: RaftNode) -> None:
        if self.leader_id == node.node_id:
            self.leader_id = None

    def _on_commit(self, node: RaftNode, index: int, entry: LogEntry) -> None:
        known = len(self.committed)
        if index == known + 1:
            self.committed.append(entry)
            self.metrics_counter("consensus.commits").inc()
            if self.apply_fn is not None:
                self.apply_fn(entry)
        elif index <= known:
            # A replay (restart re-advancing its commit index) or a
            # second replica reaching the same slot: must agree exactly.
            if self.committed[index - 1] != entry:
                self.tracker.record_divergence(
                    f"slot {index}: node {node.node_id} committed "
                    f"{entry!r}, group recorded {self.committed[index - 1]!r}"
                )
        else:
            self.tracker.record_divergence(
                f"slot {index}: node {node.node_id} committed past the "
                f"group view (len {known})"
            )

    def committed_commands(self) -> List[object]:
        return [entry.command for entry in self.committed]

    # -- client entrypoint -------------------------------------------------

    def propose_proc(
        self,
        command,
        timeout_us: float = 400_000.0,
        rng=None,
    ):
        """Engine process: replicate ``command`` or raise
        :class:`RaftError` once ``timeout_us`` of retrying is exhausted.

        Returns the simulated commit acknowledgement time.  On any
        transient :class:`RaftError` — not-leader, fenced, crashed
        mid-commit — waits a seeded-jitter exponential backoff and
        re-proposes against the freshest leader hint.
        """
        engine = self.engine
        if rng is None:
            rng = self._client_rng
        deadline = engine.now_us + timeout_us
        attempt = 0
        while True:
            target = self._pick_target(attempt)
            try:
                if target is None:
                    raise RaftError("no live replica to propose to")
                index, term = target.propose(command)
                yield target.commit_event(index, term)
            except RaftError as exc:
                attempt += 1
                if engine.now_us >= deadline:
                    raise RaftError(
                        f"propose gave up after {attempt} attempts: {exc}"
                    )
                self.client_retries += 1
                self.metrics_counter("consensus.client_retries").inc()
                pause = self.client_backoff_us * (2 ** min(attempt, 6))
                pause *= 0.5 + rng.random()
                pause = max(1.0, min(pause, deadline - engine.now_us))
                yield engine.timeout(pause)
            else:
                self.tracker.acknowledge(command)
                return engine.now_us

    def _pick_target(self, attempt: int) -> Optional[RaftNode]:
        if self.leader_id is not None:
            node = self.nodes[self.leader_id]
            if node.alive:
                return node
        live = [n for n in self.nodes if n.alive]
        if not live:
            return None
        return live[attempt % len(live)]

    # -- invariants --------------------------------------------------------

    def slo_specs(self):
        """The four split-brain invariants, bound to this group's final
        committed log."""
        return self.tracker.slo_specs(self.committed_commands)


__all__ = ["RaftGroup"]
