"""The Raft node state machine on the deterministic event kernel.

One :class:`RaftNode` is one engine-resident consensus participant:

* a *ticker* process owns the randomized election timer.  There are no
  cancellable timers in the kernel, so the ticker sleeps until the
  current deadline and re-checks on wake — every heartbeat pushes the
  deadline forward, and an expired deadline on a non-leader starts an
  election.  Timeout draws come from the node's seeded RNG, scaled by
  its ``clock_skew`` (a chaos knob: a fast clock makes a disruptive
  candidate, a slow one a sluggish failover);
* message handlers are synchronous (delivered by the fabric at arrival
  time): RequestVote with the election restriction, AppendEntries with
  the prev-index/term consistency check and conflict hints for
  nextIndex backoff, and the matching replies;
* **fencing** is the term rule made explicit: any message carrying a
  higher term steps a leader down *before* the payload is considered,
  and the step-down fails every in-flight commit waiter with
  :class:`~repro.common.errors.RaftError` — a deposed leader can
  acknowledge nothing it cannot prove committed;
* commit advance obeys the Leader Completeness restriction (a leader
  only counts replication of entries from its own term; earlier-term
  entries commit transitively);
* a crash keeps the persistent triple ``(current_term, voted_for,
  log)`` and discards everything volatile; a restart rejoins as
  FOLLOWER at the observed term, marked *repairing* until an
  AppendEntries round has proven its log prefix matches the leader's
  commit point (log repair before serving).

Everything observable emits on the flight recorder's ``election``
channel behind the zero-cost ``recorder_active()`` guard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import RaftError
from repro.obs.events import recorder_active


class RaftState(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    """One replicated command at one (term, index) slot."""

    term: int
    index: int
    command: Any


# -- wire messages ----------------------------------------------------------


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate: int
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: int
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader: int
    prev_index: int
    prev_term: int
    entries: Tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: int
    success: bool
    match_index: int
    #: Where the leader should rewind nextIndex to on failure (the
    #: first index of the conflicting term, or just past the follower's
    #: log end) — the backoff skips whole conflicting terms per round.
    conflict_hint: int


@dataclass(frozen=True)
class ElectionTiming:
    """The timing model of elections on the engine (microseconds).

    Election timeouts sit two orders of magnitude above the ~36us
    network round trip, mirroring the real-world 10x-of-RTT guidance,
    and the heartbeat interval stays well under the minimum timeout
    even at the largest clock skew the chaos plane injects.
    """

    min_timeout_us: float = 8_000.0
    max_timeout_us: float = 16_000.0
    heartbeat_us: float = 2_000.0
    #: Entries shipped per AppendEntries during log repair catch-up.
    max_batch: int = 16


class RaftNode:
    """One consensus participant (see module docstring)."""

    def __init__(
        self,
        node_id: int,
        group,
        engine,
        rng,
        timing: Optional[ElectionTiming] = None,
        clock_skew: float = 1.0,
    ) -> None:
        self.node_id = node_id
        self.name = f"raft-{node_id}"
        self.group = group
        self.engine = engine
        self.rng = rng
        self.timing = timing if timing is not None else ElectionTiming()
        self.clock_skew = float(clock_skew)
        # Persistent state: survives crashes (device-backed in a real
        # system; the persist latency is folded into the RPC constants).
        self.current_term = 0
        self.voted_for: Optional[int] = None
        self.log: List[LogEntry] = []
        # Volatile state: reset by a crash.
        self.alive = True
        self.state = RaftState.FOLLOWER
        self.commit_index = 0
        self.leader_hint: Optional[int] = None
        #: A restarted node repairs its log before it counts as serving.
        self.repairing = False
        self.next_index: Dict[int, int] = {}
        self.match_index: Dict[int, int] = {}
        self._votes: set = set()
        self._election_deadline = 0.0
        #: Commit waiters: index -> [(expected term, event)].
        self._waiters: Dict[int, List[Tuple[int, object]]] = {}
        #: Generation guards for the daemons (no cancellable timers: a
        #: stale ticker/heartbeat sees the bumped epoch and exits).
        self._life_epoch = 0
        self._lead_epoch = 0
        self._ticker_proc = None
        self._hb_proc = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def peers(self) -> List[int]:
        return [i for i in self.group.node_ids if i != self.node_id]

    @property
    def majority(self) -> int:
        return len(self.group.node_ids) // 2 + 1

    def last_log_index(self) -> int:
        return len(self.log)

    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def start(self) -> None:
        """Arm the election ticker (called once per (re)boot)."""
        self._reset_election_deadline()
        self._ticker_proc = self.engine.spawn(
            self._ticker(self._life_epoch), name=f"{self.name}-ticker"
        )

    def crash(self) -> None:
        """Power loss: volatile state gone, persistent state kept."""
        if not self.alive:
            return
        self.alive = False
        self._life_epoch += 1
        self._lead_epoch += 1
        if self._ticker_proc is not None and not self._ticker_proc.done:
            self._ticker_proc.cancel()
        if self._hb_proc is not None and not self._hb_proc.done:
            self._hb_proc.cancel()
        self._fail_waiters("leader crashed before commit")
        self.group._on_crash(self)

    def restart(self) -> None:
        """Rejoin as FOLLOWER at the observed (persisted) term.

        The pre-crash role is irrelevant: even a node that crashed as
        leader comes back as a follower and stays ``repairing`` until
        the current leader's AppendEntries prove its log prefix reaches
        the leader's commit point — log repair before serving.
        """
        if self.alive:
            return
        self.alive = True
        self.state = RaftState.FOLLOWER
        self.commit_index = 0
        self.leader_hint = None
        self.repairing = True
        self.next_index = {}
        self.match_index = {}
        self._votes = set()
        self._waiters = {}
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                self.engine.now_us, "election", "rejoin",
                node=self.node_id, term=self.current_term,
            )
        self.start()

    # -- election timer ----------------------------------------------------

    def _reset_election_deadline(self) -> None:
        timeout = self.rng.uniform(
            self.timing.min_timeout_us, self.timing.max_timeout_us
        ) * self.clock_skew
        self._election_deadline = self.engine.now_us + timeout

    def _ticker(self, epoch: int):
        engine = self.engine
        while self.alive and epoch == self._life_epoch:
            if self.state is RaftState.LEADER:
                # Leaders keep no election timer; park one max-timeout
                # out and re-check (a step-down re-arms the real timer).
                self._election_deadline = (
                    engine.now_us
                    + self.timing.max_timeout_us * self.clock_skew
                )
            if engine.now_us >= self._election_deadline:
                if self.state is not RaftState.LEADER:
                    self._start_election()
                else:
                    continue
            yield engine.sleep_until(self._election_deadline)

    # -- elections ---------------------------------------------------------

    def _start_election(self) -> None:
        self.current_term += 1
        self.state = RaftState.CANDIDATE
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self.leader_hint = None
        self._reset_election_deadline()
        self.group._on_term(self, self.current_term)
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                self.engine.now_us, "election", "vote_request",
                node=self.node_id, term=self.current_term,
                last_index=self.last_log_index(),
            )
        msg = RequestVote(
            self.current_term,
            self.node_id,
            self.last_log_index(),
            self.last_log_term(),
        )
        for peer in self.peers:
            self.group.fabric.send(self.node_id, peer, msg)
        if len(self._votes) >= self.majority:  # single-node group
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = RaftState.LEADER
        self.leader_hint = self.node_id
        self.repairing = False
        self._lead_epoch += 1
        last = self.last_log_index()
        self.next_index = {p: last + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                self.engine.now_us, "election", "leader_elected",
                node=self.node_id, term=self.current_term, last_index=last,
            )
        self.group._on_leader(self, self.current_term)
        # The no-op entry: commits everything from earlier terms that is
        # already majority-replicated (a leader may not count earlier-term
        # replication directly).
        self.log.append(
            LogEntry(self.current_term, last + 1, ("noop", self.current_term))
        )
        self._advance_leader_commit()
        self._broadcast_append()
        self._hb_proc = self.engine.spawn(
            self._heartbeat(self._lead_epoch), name=f"{self.name}-heartbeat"
        )

    def _heartbeat(self, epoch: int):
        engine = self.engine
        while (
            self.alive
            and epoch == self._lead_epoch
            and self.state is RaftState.LEADER
        ):
            yield engine.timeout(self.timing.heartbeat_us * self.clock_skew)
            if not (
                self.alive
                and epoch == self._lead_epoch
                and self.state is RaftState.LEADER
            ):
                return
            self._broadcast_append()

    # -- the term rule (fencing) -------------------------------------------

    def _observe_term(self, term: int, origin: str) -> None:
        """A higher term was seen: adopt it and step down if leading."""
        was_leader = self.state is RaftState.LEADER
        old_term = self.current_term
        self.current_term = term
        self.voted_for = None
        self.state = RaftState.FOLLOWER
        self._lead_epoch += 1
        self._votes = set()
        self._reset_election_deadline()
        self.group._on_term(self, term)
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                self.engine.now_us, "election", "term_bump",
                node=self.node_id, term=term, origin=origin,
            )
        if was_leader:
            self.group.tracker.record_fence(self.node_id, old_term, term)
            if rec is not None:
                rec.emit(
                    self.engine.now_us, "election", "fence",
                    node=self.node_id, deposed_term=old_term, term=term,
                )
            self._fail_waiters(
                f"fenced: deposed at term {old_term} by term {term}"
            )
            self.group._on_fence(self, old_term)

    # -- message handlers --------------------------------------------------

    def on_message(self, msg) -> None:
        if not self.alive:
            return
        if msg.term > self.current_term:
            self._observe_term(msg.term, origin=type(msg).__name__)
        if isinstance(msg, RequestVote):
            self._on_request_vote(msg)
        elif isinstance(msg, VoteReply):
            self._on_vote_reply(msg)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(msg)
        elif isinstance(msg, AppendReply):
            self._on_append_reply(msg)

    def _on_request_vote(self, msg: RequestVote) -> None:
        up_to_date = (
            msg.last_log_term > self.last_log_term()
            or (
                msg.last_log_term == self.last_log_term()
                and msg.last_log_index >= self.last_log_index()
            )
        )
        granted = (
            msg.term == self.current_term
            and self.voted_for in (None, msg.candidate)
            and up_to_date
        )
        if granted:
            self.voted_for = msg.candidate
            self._reset_election_deadline()
            rec = recorder_active()
            if rec is not None:
                rec.emit(
                    self.engine.now_us, "election", "vote_grant",
                    voter=self.node_id, candidate=msg.candidate,
                    term=msg.term,
                )
        self.group.fabric.send(
            self.node_id, msg.candidate,
            VoteReply(self.current_term, self.node_id, granted),
        )

    def _on_vote_reply(self, msg: VoteReply) -> None:
        if (
            self.state is not RaftState.CANDIDATE
            or msg.term != self.current_term
            or not msg.granted
        ):
            return
        self._votes.add(msg.voter)
        if len(self._votes) >= self.majority:
            self._become_leader()

    def _on_append_entries(self, msg: AppendEntries) -> None:
        reply_to = msg.leader
        if msg.term < self.current_term:
            self.group.fabric.send(
                self.node_id, reply_to,
                AppendReply(self.current_term, self.node_id, False, 0, 1),
            )
            return
        # Equal term: a live leader exists — a candidate stands down.
        if self.state is not RaftState.FOLLOWER:
            self.state = RaftState.FOLLOWER
            self._lead_epoch += 1
        self.leader_hint = msg.leader
        self._reset_election_deadline()
        # Log consistency check (the nextIndex backoff counterpart).
        if msg.prev_index > len(self.log):
            self.group.fabric.send(
                self.node_id, reply_to,
                AppendReply(
                    self.current_term, self.node_id, False, 0,
                    len(self.log) + 1,
                ),
            )
            return
        if (
            msg.prev_index > 0
            and self.log[msg.prev_index - 1].term != msg.prev_term
        ):
            # Rewind past the whole conflicting term in one hop.
            bad_term = self.log[msg.prev_index - 1].term
            hint = msg.prev_index
            while hint > 1 and self.log[hint - 2].term == bad_term:
                hint -= 1
            self.group.fabric.send(
                self.node_id, reply_to,
                AppendReply(
                    self.current_term, self.node_id, False, 0, hint
                ),
            )
            return
        # Append: truncate a conflicting suffix, keep matching entries.
        index = msg.prev_index
        for entry in msg.entries:
            index += 1
            if len(self.log) >= index:
                if self.log[index - 1].term == entry.term:
                    continue
                del self.log[index - 1:]
            self.log.append(entry)
        match = msg.prev_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self._set_commit_index(min(msg.leader_commit, len(self.log)))
        if self.repairing and match >= msg.leader_commit:
            # Log repair complete: the prefix up to the leader's commit
            # point is verified present; the node serves again.
            self.repairing = False
            rec = recorder_active()
            if rec is not None:
                rec.emit(
                    self.engine.now_us, "election", "repaired",
                    node=self.node_id, term=self.current_term,
                    match=match,
                )
        self.group.fabric.send(
            self.node_id, reply_to,
            AppendReply(self.current_term, self.node_id, True, match, 0),
        )

    def _on_append_reply(self, msg: AppendReply) -> None:
        if self.state is not RaftState.LEADER or msg.term != self.current_term:
            return
        follower = msg.follower
        if msg.success:
            if msg.match_index > self.match_index.get(follower, 0):
                self.match_index[follower] = msg.match_index
                self.next_index[follower] = msg.match_index + 1
                self._advance_leader_commit()
            return
        # Consistency check failed: back nextIndex off (conflict hint
        # skips whole terms) and retry immediately.
        self.group.metrics_counter("consensus.append_rejects").inc()
        current = self.next_index.get(follower, self.last_log_index() + 1)
        self.next_index[follower] = max(
            1, min(current - 1, msg.conflict_hint or current - 1)
        )
        self._send_append(follower)

    # -- replication -------------------------------------------------------

    def _broadcast_append(self) -> None:
        for peer in self.peers:
            self._send_append(peer)

    def _send_append(self, peer: int) -> None:
        ni = self.next_index.get(peer, self.last_log_index() + 1)
        prev_index = ni - 1
        prev_term = (
            self.log[prev_index - 1].term if prev_index > 0 else 0
        )
        entries = tuple(
            self.log[prev_index:prev_index + self.timing.max_batch]
        )
        self.group.fabric.send(
            self.node_id, peer,
            AppendEntries(
                self.current_term, self.node_id, prev_index, prev_term,
                entries, self.commit_index,
            ),
        )

    def propose(self, command) -> Tuple[int, int]:
        """Leader-side append; returns ``(index, term)`` for the caller
        to wait on via :meth:`commit_event`."""
        if not self.alive:
            raise RaftError(f"{self.name} is down")
        if self.state is not RaftState.LEADER:
            raise RaftError(
                f"{self.name} is not leader "
                f"(hint: {self.leader_hint})"
            )
        entry = LogEntry(self.current_term, len(self.log) + 1, command)
        self.log.append(entry)
        self._advance_leader_commit()  # single-node groups commit here
        self._broadcast_append()
        return entry.index, entry.term

    def commit_event(self, index: int, term: int):
        """An engine event that fires when ``(index, term)`` commits on
        this node, or fails with :class:`RaftError` if the slot is lost
        (fencing, crash, or a conflicting entry winning the slot)."""
        ev = self.engine.event(f"{self.name}-commit-{index}")
        if self.commit_index >= index:
            entry = self.log[index - 1] if index <= len(self.log) else None
            if entry is not None and entry.term == term:
                ev.succeed(self.engine.now_us)
            else:
                ev.fail(RaftError(
                    f"slot {index} committed a different term's entry"
                ))
        else:
            self._waiters.setdefault(index, []).append((term, ev))
        return ev

    def _advance_leader_commit(self) -> None:
        for n in range(len(self.log), self.commit_index, -1):
            entry = self.log[n - 1]
            if entry.term != self.current_term:
                # Leader Completeness: never count replication of an
                # earlier-term entry directly (Raft §5.4.2); it commits
                # transitively under a current-term entry above it.
                break
            votes = 1 + sum(
                1 for p in self.peers if self.match_index.get(p, 0) >= n
            )
            if votes >= self.majority:
                self._set_commit_index(n)
                break

    def _set_commit_index(self, new_commit: int) -> None:
        if new_commit <= self.commit_index:
            return
        old = self.commit_index
        self.commit_index = new_commit
        self.group.tracker.record_commit_advance(
            self.node_id, self.state, self.current_term, new_commit
        )
        for idx in range(old + 1, new_commit + 1):
            entry = self.log[idx - 1]
            self.group._on_commit(self, idx, entry)
            for want_term, ev in self._waiters.pop(idx, ()):  # noqa: B020
                if ev.fired:
                    continue
                if entry.term == want_term:
                    ev.succeed(self.engine.now_us)
                else:
                    ev.fail(RaftError(
                        f"slot {idx} committed a different term's entry"
                    ))

    def _fail_waiters(self, reason: str) -> None:
        waiters, self._waiters = self._waiters, {}
        for pending in waiters.values():
            for _, ev in pending:
                if not ev.fired:
                    ev.fail(RaftError(reason))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RaftNode({self.node_id}, {self.state.value}, "
            f"term={self.current_term}, log={len(self.log)}, "
            f"commit={self.commit_index})"
        )


__all__ = [
    "AppendEntries",
    "AppendReply",
    "ElectionTiming",
    "LogEntry",
    "RaftNode",
    "RaftState",
    "RequestVote",
    "VoteReply",
]
