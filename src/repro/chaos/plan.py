"""Seeded, schedulable data-fault injection at the block-device layer.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries — *what* to
inject (:class:`FaultKind`), *when* (a simulated-time window, every Nth
I/O, or a per-I/O probability), and *where* (a device-label scope plus an
optional LBA range).  The plan hands each device a
:class:`DeviceInjector` whose RNG is derived deterministically from the
plan seed and the device label, so the same seed replays the same faults
regardless of how many devices exist or in which order they do I/O.

Injected corruption is remembered in a :class:`FaultLedger` keyed by
(device label, block), which lets the detect-and-repair path attribute a
checksum failure back to the fault kind that caused it — the bookkeeping
behind the harness invariant "detected == repaired, per kind".

Fault model (all persistent faults mutate the device's stored bytes; the
device itself still reports success, exactly like real silent-corruption
hardware):

========================  ====================================================
``BIT_FLIP``              one random bit of the written buffer is inverted
``TORN_WRITE``            the write persists only its first 512 bytes; the
                          rest of the buffer reads back as zeros
``DROPPED_WRITE``         the device acks the write but persists nothing
``MISDIRECTED_WRITE``     the payload lands 1–8 blocks away from the target
                          LBA (corrupting a victim, starving the target)
``DEVICE_FAIL``           every I/O raises ``DeviceUnavailableError`` while
                          the rule's time window is active
``SLOW_IO``               the I/O completes correctly but with hundreds of
                          extra microseconds to several ms of service time
========================  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.checksum import crc32
from repro.common.errors import DeviceUnavailableError
from repro.common.units import LBA_SIZE
from repro.obs.events import recorder_active


class FaultKind(enum.Enum):
    BIT_FLIP = "bit_flip"
    TORN_WRITE = "torn_write"
    DROPPED_WRITE = "dropped_write"
    MISDIRECTED_WRITE = "misdirected_write"
    DEVICE_FAIL = "device_fail"
    SLOW_IO = "slow_io"


#: Kinds that silently damage stored bytes (detectable via checksums).
DATA_FAULT_KINDS = frozenset(
    {
        FaultKind.BIT_FLIP,
        FaultKind.TORN_WRITE,
        FaultKind.DROPPED_WRITE,
        FaultKind.MISDIRECTED_WRITE,
    }
)

#: Torn writes persist exactly this prefix of the buffer.  512 bytes is
#: small enough that the tear lands inside the compressed payload (or a
#: sealed log block's body) rather than in trailing zero padding.
TORN_WRITE_PREFIX = 512


@dataclass
class FaultRule:
    """One schedulable fault source.

    Trigger semantics (combined left to right):

    * the rule is dead once it has fired ``max_count`` times;
    * it is dormant outside ``[from_us, until_us)`` simulated time;
    * ``scope`` must be a substring of the device label (``""`` = every
      device; ``"node-1"`` = both devices of that node; ``":data"`` =
      every data device);
    * the I/O must overlap ``[lba_lo, lba_hi)`` (defaults span the disk);
    * if ``every_n`` is set, only every Nth I/O of the device qualifies;
    * if ``probability`` is set, a per-I/O coin toss decides;
    * with neither, the rule fires on every qualifying I/O — pair with
      ``max_count=1`` for an "at time T" one-shot.
    """

    kind: FaultKind
    probability: float = 0.0
    every_n: int = 0
    from_us: float = 0.0
    until_us: float = float("inf")
    scope: str = ""
    lba_lo: int = 0
    lba_hi: int = 1 << 62
    max_count: int = 1 << 31
    #: Median extra service time for ``SLOW_IO`` (actual spike is
    #: uniform in [0.5x, 1.5x] of this).
    slow_us: float = 8000.0
    #: Firings so far (shared plan-wide across devices).
    fired: int = 0

    def window_active(self, now_us: float) -> bool:
        return self.from_us <= now_us < self.until_us

    def qualifies(
        self,
        now_us: float,
        io_index: int,
        lba: Optional[int],
        n_blocks: int,
    ) -> bool:
        """Everything but the probability toss (which needs the RNG)."""
        if self.fired >= self.max_count:
            return False
        if not self.window_active(now_us):
            return False
        if lba is not None and not (
            lba < self.lba_hi and lba + n_blocks > self.lba_lo
        ):
            return False
        if self.every_n and io_index % self.every_n != 0:
            return False
        return True


class FaultLedger:
    """Maps corrupted blocks back to the fault kind that damaged them."""

    def __init__(self) -> None:
        self._blocks: Dict[Tuple[str, int], FaultKind] = {}

    def record(
        self, label: str, lba: int, n_blocks: int, kind: FaultKind
    ) -> None:
        for block in range(lba, lba + max(1, n_blocks)):
            self._blocks[(label, block)] = kind

    def clear(self, label: str, lba: int, n_blocks: int) -> None:
        """A clean write to these blocks replaces whatever was damaged."""
        for block in range(lba, lba + max(1, n_blocks)):
            self._blocks.pop((label, block), None)

    def kind_for_node(
        self, node: str, lba: int, n_blocks: int
    ) -> Optional[FaultKind]:
        """Attribute a corruption detected on ``node`` at an LBA range.

        Device labels are ``<node>:data`` / ``<node>:perf``; both are
        checked because the caller (the page read path) does not know
        which device the damaged bytes lived on.
        """
        if lba < 0:
            return None
        for role in ("data", "perf"):
            label = f"{node}:{role}"
            for block in range(lba, lba + max(1, n_blocks)):
                kind = self._blocks.get((label, block))
                if kind is not None:
                    return kind
        return None

    def clear_node(self, node: str, lba: int, n_blocks: int) -> None:
        """Forget damage after repair (the blocks were freed/rewritten)."""
        if lba < 0:
            return
        for role in ("data", "perf"):
            self.clear(f"{node}:{role}", lba, n_blocks)

    def __len__(self) -> int:
        return len(self._blocks)


class DeviceInjector:
    """Per-device fault executor, consulted by ``BlockDevice`` I/O."""

    def __init__(
        self,
        plan: "FaultPlan",
        label: str,
        rules: Sequence[FaultRule],
        rng: np.random.Generator,
    ) -> None:
        self.plan = plan
        self.label = label
        self.rng = rng
        self.io_index = 0
        self._fail_rules = [r for r in rules if r.kind is FaultKind.DEVICE_FAIL]
        self._data_rules = [r for r in rules if r.kind in DATA_FAULT_KINDS]
        self._slow_rules = [r for r in rules if r.kind is FaultKind.SLOW_IO]

    # -- hooks called by BlockDevice ---------------------------------------

    def begin_io(self, now_us: float) -> None:
        """Raise if a whole-device-failure window is active."""
        self.io_index += 1
        for rule in self._fail_rules:
            # Scope is re-checked live: the harness may retarget a rule
            # (e.g. point a dormant DEVICE_FAIL window at one node).
            if rule.scope and rule.scope not in self.label:
                continue
            if rule.window_active(now_us):
                self.plan.record_injection(
                    FaultKind.DEVICE_FAIL, self.label, once_per_rule=rule,
                    now_us=now_us,
                )
                raise DeviceUnavailableError(
                    f"{self.label}: device down "
                    f"(chaos window [{rule.from_us:.0f}, {rule.until_us:.0f}) µs)"
                )

    def on_write(
        self, now_us: float, lba: int, data: bytes
    ) -> Tuple[int, Optional[bytes], float]:
        """Return (store_lba, store_data, extra_service_us).

        ``store_data is None`` means the write is silently dropped.  At
        most one data fault applies per write so the ledger's attribution
        stays unambiguous; slow-I/O spikes compose on top.
        """
        extra_us = self._slow_extra(now_us)
        n_blocks = len(data) // LBA_SIZE
        store_lba, store_data = lba, data
        faulted = False
        for rule in self._data_rules:
            if rule.scope and rule.scope not in self.label:
                continue
            if not rule.qualifies(now_us, self.io_index, lba, n_blocks):
                continue
            if rule.probability and not (
                float(self.rng.random()) < rule.probability
            ):
                continue
            rule.fired += 1
            self.plan.record_injection(rule.kind, self.label, now_us=now_us)
            ledger = self.plan.ledger
            if rule.kind is FaultKind.BIT_FLIP:
                pos = int(self.rng.integers(len(data)))
                bit = 1 << int(self.rng.integers(8))
                store_data = (
                    data[:pos] + bytes([data[pos] ^ bit]) + data[pos + 1 :]
                )
                ledger.record(self.label, lba, n_blocks, rule.kind)
            elif rule.kind is FaultKind.TORN_WRITE:
                store_data = data[:TORN_WRITE_PREFIX] + b"\x00" * (
                    len(data) - TORN_WRITE_PREFIX
                )
                ledger.record(self.label, lba, n_blocks, rule.kind)
            elif rule.kind is FaultKind.DROPPED_WRITE:
                store_data = None
                ledger.record(self.label, lba, n_blocks, rule.kind)
            elif rule.kind is FaultKind.MISDIRECTED_WRITE:
                store_lba = lba + 1 + int(self.rng.integers(8))
                # Both the starved target and the overwritten victim are
                # now suspect.
                ledger.record(self.label, lba, n_blocks, rule.kind)
                ledger.record(self.label, store_lba, n_blocks, rule.kind)
            faulted = True
            break
        if not faulted:
            # A clean write over previously-damaged blocks heals them.
            self.plan.ledger.clear(self.label, lba, n_blocks)
        return store_lba, store_data, extra_us

    def on_read(self, now_us: float, lba: int, nbytes: int) -> float:
        """Extra service microseconds for this read (slow-I/O spikes)."""
        return self._slow_extra(now_us)

    # -- internals ----------------------------------------------------------

    def _slow_extra(self, now_us: float) -> float:
        total = 0.0
        for rule in self._slow_rules:
            if rule.scope and rule.scope not in self.label:
                continue
            if not rule.qualifies(now_us, self.io_index, None, 0):
                continue
            if rule.probability and not (
                float(self.rng.random()) < rule.probability
            ):
                continue
            rule.fired += 1
            self.plan.record_injection(
                FaultKind.SLOW_IO, self.label, now_us=now_us
            )
            total += rule.slow_us * (0.5 + float(self.rng.random()))
        return total


class FaultPlan:
    """A seeded fault schedule shared by every device in a volume."""

    def __init__(
        self, seed: int = 0, rules: Sequence[FaultRule] = ()
    ) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self.ledger = FaultLedger()
        self.metrics = None
        #: kind value -> firings (kept even when no registry is bound).
        self.injected: Dict[str, int] = {}
        self._announced: set = set()

    def add(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def bind_metrics(self, registry) -> None:
        """Export injections as ``chaos.injected`` counters."""
        self.metrics = registry

    def injector_for(self, label: str) -> DeviceInjector:
        """Build this device's injector with a label-derived RNG stream."""
        selected = [r for r in self.rules if r.scope in label]
        rng = np.random.default_rng(
            [self.seed & 0xFFFFFFFF, crc32(label.encode("utf-8"))]
        )
        return DeviceInjector(self, label, selected, rng)

    def attach_to_store(self, store) -> None:
        """Arm every device of a :class:`~repro.storage.store.PolarStore`."""
        self.bind_metrics(store.metrics)
        store.attach_chaos(self)
        for node in store.nodes:
            self.attach_to_node(node)

    def attach_to_node(self, node) -> None:
        node.data_device.attach_chaos(self.injector_for(f"{node.name}:data"))
        node.perf_device.attach_chaos(self.injector_for(f"{node.name}:perf"))

    def quiesce(self, now_us: float) -> None:
        """Stop all future injection (close every rule's window).

        Convergence can only be asserted once faults stop: while rules
        stay live, the repairs themselves can be re-corrupted.
        """
        for rule in self.rules:
            rule.until_us = min(rule.until_us, now_us)

    def record_injection(
        self,
        kind: FaultKind,
        label: str,
        once_per_rule: Optional[FaultRule] = None,
        now_us: Optional[float] = None,
    ) -> None:
        if once_per_rule is not None:
            key = (id(once_per_rule), label)
            if key in self._announced:
                return
            self._announced.add(key)
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "chaos.injected", kind=kind.value, device=label
            ).add(1)
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                now_us if now_us is not None else 0.0,
                "fault", "injected", kind=kind.value, device=label,
            )

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())
