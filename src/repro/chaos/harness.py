"""The chaos harness: a workload under a fault schedule, with invariants.

``run_chaos`` drives a seeded read/write/redo workload against a
3-replica :class:`~repro.storage.store.PolarStore` while a
:class:`~repro.chaos.plan.FaultPlan` injects data faults underneath it,
one follower's whole data device fails for a window, and another
follower is crashed and rejoined through real WAL-replay recovery.  An
oracle (a plain dict of every committed page image) checks the
invariants the paper's reliability story depends on:

I1  every committed write reads back byte-exact, throughout;
I2  detected corruption equals repaired corruption, per fault kind
    (nothing repairable is left broken, nothing is double-counted);
I3  nothing was unrepairable (the schedule never corrupts all replicas
    of a page at once, so a good copy always exists);
I4  losing quorum raises ``RaftError``; writes resume after rejoin;
I5  after recovery + final scrub, *every alive replica independently*
    serves every page byte-exact (convergence);
I6  the schedule actually exercised the machinery (≥ ``min_faults``
    data faults injected, the follower crashed and rejoined, the WAL
    replayed).

Every event is also visible as ``chaos.*`` counters in the volume's
metrics registry and as trace spans, so the observability layer (PR 1)
tells the same story the report does.  The invariants themselves are
declared as :mod:`repro.obs.slo` specs and the report's verdict is the
SLO evaluator's final evaluation — chaos shares its pass/fail machinery
with every other harness in the repo.  With a flight recorder active
(``repro events chaos`` / ``repro dash chaos``) the crash, device-fail
window, quorum drill, and every injected fault land on the ``fault``
channel with simulated timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.chaos.plan import DATA_FAULT_KINDS, FaultKind, FaultPlan, FaultRule
from repro.common.errors import RaftError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.obs.events import recorder_active
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    ErrorBudgetSLO,
    InvariantSLO,
    SLOEvaluator,
    SLOReport,
    ThresholdSLO,
)
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord
from repro.storage.store import PolarStore


@dataclass
class ChaosReport:
    """Outcome of one harness run."""

    seed: int
    ops: int
    writes: int = 0
    reads: int = 0
    redo_commits: int = 0
    scrubs: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    repaired: Dict[str, int] = field(default_factory=dict)
    unrepairable: Dict[str, int] = field(default_factory=dict)
    hedged_reads: int = 0
    wal_replays: int = 0
    resynced_pages: int = 0
    quorum_errors: int = 0
    violations: List[str] = field(default_factory=list)
    #: The volume's MetricsRegistry, for exporting the full snapshot
    #: (``python -m repro chaos --metrics``).  Not part of the render.
    metrics: Optional[object] = field(default=None, repr=False)
    #: Final :class:`~repro.obs.slo.SLOReport` over the six invariants —
    #: ``violations`` above is its flattened output, so the verdict and
    #: the SLO evaluator can never disagree.  Not part of the render.
    slo: Optional[SLOReport] = field(default=None, repr=False)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def injected_data_faults(self) -> int:
        return sum(
            n for kind, n in self.injected.items()
            if FaultKind(kind) in DATA_FAULT_KINDS
        )

    def render(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} ops={self.ops} "
            f"writes={self.writes} reads={self.reads} "
            f"redo_commits={self.redo_commits} scrubs={self.scrubs}",
            f"injected  : {_fmt(self.injected)} "
            f"(data faults: {self.injected_data_faults})",
            f"detected  : {_fmt(self.detected)}",
            f"repaired  : {_fmt(self.repaired)}",
            f"unrepaired: {_fmt(self.unrepairable)}",
            f"hedged_reads={self.hedged_reads} "
            f"wal_replays={self.wal_replays} "
            f"resynced_pages={self.resynced_pages} "
            f"quorum_errors={self.quorum_errors}",
        ]
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("all invariants held")
        return "\n".join(lines)


def _fmt(counts: Dict[str, int]) -> str:
    if not counts:
        return "none"
    return " ".join(f"{k}={v}" for k, v in sorted(counts.items()))


def default_plan(seed: int, leader: str = "node-0") -> FaultPlan:
    """The standard schedule: every data-fault kind plus slow-I/O.

    Data faults are scoped to the *leader's* data device so that every
    corruption is guaranteed a healthy follower copy — the harness can
    then assert full repairability (I3) deterministically.  Faults
    landing on two replicas of the same write would make repairability
    probabilistic, which is a different (weaker) test.  Pass the actual
    leader node name — ``PolarStore`` numbers nodes with a process-wide
    counter, so a second volume in the same process is *not* named
    ``node-0``.  Probabilities are tuned so a ~700-op run injects well
    over 100 data faults.  The ``DEVICE_FAIL`` rule starts dormant
    (``until_us=0``); the harness opens its window mid-run at a
    simulated time it learns as it goes.
    """
    plan = FaultPlan(seed=seed)
    scope = f"{leader}:data"
    plan.add(FaultRule(FaultKind.BIT_FLIP, probability=0.130, scope=scope))
    plan.add(FaultRule(FaultKind.TORN_WRITE, probability=0.060, scope=scope))
    plan.add(
        FaultRule(FaultKind.DROPPED_WRITE, probability=0.060, scope=scope)
    )
    plan.add(
        FaultRule(
            FaultKind.MISDIRECTED_WRITE, probability=0.030, scope=scope
        )
    )
    plan.add(
        FaultRule(FaultKind.SLOW_IO, probability=0.012, slow_us=9000.0)
    )
    plan.add(
        FaultRule(FaultKind.DEVICE_FAIL, from_us=0.0, until_us=0.0)
    )
    return plan


def run_chaos(
    seed: int = 42,
    ops: int = 700,
    pages: int = 64,
    plan: Optional[FaultPlan] = None,
    volume_bytes: int = 64 * MiB,
    scrub_every: int = 150,
    verbose: bool = False,
    min_data_faults: int = 100,
    on_progress: Optional[Callable[[int, float], None]] = None,
    evaluator: Optional[SLOEvaluator] = None,
) -> ChaosReport:
    """Run the chaos schedule and return the invariant report.

    ``min_data_faults`` is the I6 floor on injected data faults; scale
    it down together with ``ops`` for quick smoke runs (the default
    matches the full 700-op schedule).

    The six invariants are declared as SLO specs on ``evaluator`` (one
    is created when not supplied) and the report's verdict is the
    evaluator's — there is exactly one pass/fail code path.
    ``on_progress(op, now_us)`` fires after every workload op, letting a
    live dashboard snapshot metrics and re-evaluate SLOs mid-run.
    """
    rng = np.random.default_rng(seed)
    store = PolarStore(NodeConfig(), volume_bytes=volume_bytes, seed=seed)
    if plan is None:
        plan = default_plan(seed, leader=store.leader.name)
    plan.attach_to_store(store)
    fail_rules = [
        r for r in plan.rules if r.kind is FaultKind.DEVICE_FAIL
    ]

    report = ChaosReport(seed=seed, ops=ops)
    oracle: Dict[int, bytearray] = {}
    lsn = [0]
    now = 0.0
    #: Runtime-observed violations (I1 read-backs, the I4 quorum probe,
    #: the final I1/I4/I5 sweeps), in chronological order; surfaced
    #: through the workload-invariant SLO spec below.
    observed: List[str] = []
    if evaluator is None:
        evaluator = SLOEvaluator()
    evaluator.attach(store.metrics)
    chaos_specs = _declare_invariant_slos(
        evaluator, store, plan, report, observed,
        lambda: crashed, min_data_faults,
    )

    def say(msg: str) -> None:
        if verbose:
            print(f"[{now / 1e3:9.1f} ms] {msg}")

    def do_write(page_no: int) -> None:
        nonlocal now
        if float(rng.random()) < 0.7:
            data = rng.integers(0, 256, DB_PAGE_SIZE, dtype=np.uint8)
        else:  # compressible page: long runs + a random stripe
            data = np.zeros(DB_PAGE_SIZE, dtype=np.uint8)
            data[:1024] = rng.integers(0, 256, 1024, dtype=np.uint8)
        payload = data.tobytes()
        # The fresh image supersedes all redo issued so far (its LSN
        # high-water mark is the latest assigned LSN).
        commit = store.write_page(now, page_no, payload, applied_lsn=lsn[0])
        now = commit.commit_us
        oracle[page_no] = bytearray(payload)
        report.writes += 1

    def do_redo(page_no: int) -> None:
        nonlocal now
        if page_no not in oracle:
            do_write(page_no)
        records = []
        for _ in range(int(rng.integers(1, 4))):
            offset = int(rng.integers(0, DB_PAGE_SIZE - 128))
            blob = rng.integers(0, 256, 96, dtype=np.uint8).tobytes()
            lsn[0] += 1
            records.append(RedoRecord(lsn[0], page_no, offset, blob))
            oracle[page_no][offset : offset + len(blob)] = blob
        now = store.write_redo(now, records)
        report.redo_commits += 1

    def do_read(page_no: int) -> None:
        nonlocal now
        result = store.read_page(now, page_no)
        now = result.done_us
        report.reads += 1
        if bytes(result.data) != bytes(oracle[page_no]):
            observed.append(
                f"I1: page {page_no} read mismatch at op {op}"
            )

    def do_scrub() -> None:
        nonlocal now
        now = store.scrub(now)
        report.scrubs += 1
        say("scrub complete")

    crash_at = int(ops * 0.30)
    rejoin_at = int(ops * 0.55)
    device_fail_at = int(ops * 0.65)
    quorum_at = int(ops * 0.88)
    crashed = False

    rec = recorder_active()
    for op in range(ops):
        if op == crash_at:
            store.fail_node(2)
            crashed = True
            say("follower node 2 crashed (process down, RAM lost)")
            if rec is not None:
                rec.emit(now, "fault", "node_crash",
                         node=store.nodes[2].name, op=op)
        if op == rejoin_at:
            now = store.recover_node(2, now)
            crashed = False
            say("follower node 2 rejoined via WAL replay + resync")
        if op == device_fail_at:
            # Open the whole-device failure window on follower 1's data
            # device for ~40 simulated ms.
            for rule in fail_rules:
                rule.scope = f"{store.nodes[1].name}:data"
                rule.from_us = now
                rule.until_us = now + 40_000.0
            say("node 1 data device failing for 40 ms")
            if rec is not None:
                rec.emit(now, "fault", "device_fail_window",
                         node=store.nodes[1].name, window_us=40_000.0)
        if op == quorum_at:
            # Close any open device-failure window first so the rejoin
            # below is not fighting a dead device.
            for rule in fail_rules:
                rule.until_us = min(rule.until_us, now)
            if rec is not None:
                rec.emit(now, "fault", "quorum_drill", op=op)
            _check_quorum_loss(store, report, observed, now,
                               probe_page=pages + 7)
            # Recover the most-up-to-date replica first: node 2 has been
            # healthy since its rejoin, so it holds the only good copy of
            # pages node 1 missed during its device-failure window.
            now = store.recover_node(2, now)
            now = store.recover_node(1, now)
            say("both followers rejoined after quorum loss drill")

        roll = float(rng.random())
        page_no = int(rng.integers(0, pages))
        if roll < 0.45 or not oracle:
            do_write(page_no)
        elif roll < 0.65:
            do_redo(page_no)
        else:
            if page_no not in oracle:
                page_no = sorted(oracle)[
                    int(rng.integers(0, len(oracle)))
                ]
            do_read(page_no)
        if op > 0 and op % scrub_every == 0:
            do_scrub()
        if on_progress is not None:
            on_progress(op, now)

    # Drain: stop injecting, consolidate all pending redo, resync
    # stragglers, final scrub — then assert convergence.
    plan.quiesce(now)
    say("fault injection quiesced")
    now = store.resync_missed(now)
    now = store.checkpoint(now)
    do_scrub()

    # I1 final sweep through the replicated read path.
    for page_no in sorted(oracle):
        result = store.read_page(now, page_no)
        now = result.done_us
        if bytes(result.data) != bytes(oracle[page_no]):
            observed.append(
                f"I1: page {page_no} mismatch in final sweep"
            )

    # I5 convergence: every alive replica serves every page byte-exact.
    for i, node in enumerate(store.nodes):
        if not store._alive[i]:
            observed.append(f"I4: node {i} still down at end")
            continue
        for page_no in sorted(oracle):
            result = node.read_page(now, page_no)
            now = result.done_us
            if bytes(result.data) != bytes(oracle[page_no]):
                observed.append(
                    f"I5: replica {i} page {page_no} diverged"
                )

    report.metrics = store.metrics
    _collect_counters(store, plan, report)
    # The verdict is the SLO evaluator's: one final evaluation of the
    # invariant specs, flattened in declaration order (which reproduces
    # the historical violation ordering exactly).
    evaluator.evaluate(now)
    report.slo = SLOReport(
        statuses=[evaluator.last[spec.name] for spec in chaos_specs]
    )
    report.violations = report.slo.violations()
    return report


def _declare_invariant_slos(
    evaluator: SLOEvaluator,
    store: PolarStore,
    plan: FaultPlan,
    report: ChaosReport,
    observed: List[str],
    still_crashed: Callable[[], bool],
    min_faults: int,
) -> List:
    """I1–I6 as declarative SLO specs (in historical violation order)."""

    def i2_check() -> List[str]:
        out = []
        for kind in sorted(set(report.detected) | set(report.repaired)):
            detected = report.detected.get(kind, 0)
            repaired = report.repaired.get(kind, 0)
            unrepairable = report.unrepairable.get(kind, 0)
            if detected != repaired + unrepairable:
                out.append(
                    f"I2: kind {kind}: detected={detected} != "
                    f"repaired={repaired} + unrepairable={unrepairable}"
                )
        return out

    def data_faults() -> int:
        return sum(
            n for kind, n in plan.injected.items()
            if FaultKind(kind) in DATA_FAULT_KINDS
        )

    def wal_replays() -> int:
        return sum(
            int(inst.value)
            for inst in store.metrics.find("chaos.wal_replays")
        )

    specs = [
        InvariantSLO(
            "chaos.workload_invariants", lambda: list(observed),
            description="I1/I4/I5: read-backs, quorum probe, convergence",
        ),
        InvariantSLO(
            "chaos.repair_accounting", i2_check,
            description="I2: detected == repaired + unrepairable per kind",
        ),
        ErrorBudgetSLO(
            "chaos.repairability", "chaos.unrepairable", budget=0.0,
            message=lambda bad, total: (
                f"I3: {int(bad)} corruptions had no healthy copy"
            ),
        ),
        ThresholdSLO(
            "chaos.rejoin",
            lambda: 0.0 if still_crashed() else 1.0, floor=1.0,
            message=lambda v: "I4: follower never rejoined",
        ),
        ThresholdSLO(
            "chaos.fault_floor", data_faults, floor=float(min_faults),
            message=lambda v: (
                f"I6: only {int(v)} data faults injected "
                f"(schedule requires >= {min_faults})"
            ),
        ),
        ThresholdSLO(
            "chaos.wal_replayed", wal_replays, floor=1.0,
            message=lambda v: "I6: recovery never replayed a WAL",
        ),
        ThresholdSLO(
            "chaos.quorum_drill",
            lambda: float(report.quorum_errors), floor=1.0,
            message=lambda v: "I6: quorum loss was never exercised",
        ),
    ]
    for spec in specs:
        evaluator.add(spec)
    return specs


def _check_quorum_loss(
    store: PolarStore,
    report: ChaosReport,
    observed: List[str],
    now: float,
    probe_page: int,
) -> None:
    """I4: with both followers down, a write must raise RaftError.

    ``probe_page`` lies outside the workload's page range: the leader
    mutates local state before discovering the lost quorum, and the
    un-acknowledged write must not shadow an oracle-tracked page.
    """
    store.fail_node(1)
    store.fail_node(2)
    try:
        store.write_page(now, probe_page, b"\x00" * DB_PAGE_SIZE)
    except RaftError:
        report.quorum_errors += 1
    else:
        observed.append(
            "I4: write committed without a quorum (no RaftError)"
        )


def _collect_counters(
    store: PolarStore, plan: FaultPlan, report: ChaosReport
) -> None:
    report.injected = dict(plan.injected)
    for inst in store.metrics.instruments():
        if inst.kind != "counter" or not inst.name.startswith("chaos."):
            continue
        value = int(inst.value)
        kind = inst.labels.get("kind", "")
        if inst.name == "chaos.detected":
            report.detected[kind] = report.detected.get(kind, 0) + value
        elif inst.name == "chaos.repaired":
            report.repaired[kind] = report.repaired.get(kind, 0) + value
        elif inst.name == "chaos.unrepairable":
            report.unrepairable[kind] = (
                report.unrepairable.get(kind, 0) + value
            )
        elif inst.name == "chaos.hedged_reads":
            report.hedged_reads += value
        elif inst.name == "chaos.wal_replays":
            report.wal_replays += value
        elif inst.name == "chaos.resynced_pages":
            report.resynced_pages += value
