"""Seeded, schedulable network-fault injection for the consensus plane.

:mod:`repro.chaos.plan` corrupts what devices *store*; this module breaks
what nodes *say to each other*.  A :class:`NetFaultPlan` is a list of
:class:`NetRule` entries — *what* to do to a message
(:class:`NetFaultKind`), *when* (a simulated-time window), and *where*
(source/destination node-id scopes).  The consensus fabric consults the
plan once per message; the volume's data-plane fan-out consults
:meth:`NetFaultPlan.blocked` so a partition severs replication the same
way it severs heartbeats.

Fault model:

========================  ==================================================
``PARTITION``             messages matching the rule are dropped for the
                          whole window; ``symmetric`` rules cut both
                          directions between the two groups, asymmetric
                          rules cut only ``src -> dst`` (the classic
                          one-way link that makes a follower disruptively
                          start elections it can win votes for)
``DROP``                  per-message coin toss: the message vanishes
``DELAY``                 per-message coin toss: delivery is late by
                          ``delay_us`` (uniform in [0.5x, 1.5x])
``DUPLICATE``             per-message coin toss: the message arrives twice
========================  ==================================================

Determinism: probabilistic rolls come from per-link RNG streams derived
from ``(seed, "net", src, dst)`` via :func:`repro.common.rng.derive_seed`,
so the same seed replays the same drops regardless of how many other
links exist.  Partition checks are pure window arithmetic and consume no
randomness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.common.rng import make_rng


class NetFaultKind(enum.Enum):
    PARTITION = "partition"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"


@dataclass
class NetRule:
    """One schedulable message-fault source.

    ``src``/``dst`` are node-id sets (``None`` matches every node).  A
    symmetric ``PARTITION`` also matches the reversed direction, so one
    rule cuts the full link set between two groups.
    """

    kind: NetFaultKind
    from_us: float = 0.0
    until_us: float = float("inf")
    src: Optional[FrozenSet[int]] = None
    dst: Optional[FrozenSet[int]] = None
    symmetric: bool = False
    probability: float = 0.0
    delay_us: float = 500.0
    #: Firings so far (drops/delays/dups; partitions are windows, not
    #: counted events).
    fired: int = 0

    def window_active(self, now_us: float) -> bool:
        return self.from_us <= now_us < self.until_us

    def _matches_one_way(self, src: int, dst: int) -> bool:
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        return True

    def matches(self, src: int, dst: int) -> bool:
        if self._matches_one_way(src, dst):
            return True
        return self.symmetric and self._matches_one_way(dst, src)


@dataclass(frozen=True)
class NetVerdict:
    """What the plan decided for one message."""

    blocked: bool = False
    dropped: bool = False
    extra_delay_us: float = 0.0
    duplicates: int = 0


_CLEAN = NetVerdict()


class NetFaultPlan:
    """Deterministic message-fault schedule shared by fabric and volume."""

    def __init__(self, seed: int, rules: Optional[Iterable[NetRule]] = None):
        self.seed = seed
        self.rules: List[NetRule] = list(rules or ())
        #: Plain-dict bookkeeping (mirrors the flight recorder's
        #: discipline: consulting the plan must not touch a registry).
        self.blocked_messages = 0
        self.dropped_messages = 0
        self.delayed_messages = 0
        self.duplicated_messages = 0
        self._rngs: Dict[Tuple[int, int], object] = {}

    # -- schedule construction --------------------------------------------

    def add(self, rule: NetRule) -> NetRule:
        self.rules.append(rule)
        return rule

    def partition(
        self,
        group_a: Iterable[int],
        group_b: Iterable[int],
        from_us: float,
        until_us: float,
        symmetric: bool = True,
    ) -> NetRule:
        """Cut every link from ``group_a`` to ``group_b`` for the window
        (both directions when ``symmetric``)."""
        return self.add(NetRule(
            NetFaultKind.PARTITION,
            from_us=from_us,
            until_us=until_us,
            src=frozenset(group_a),
            dst=frozenset(group_b),
            symmetric=symmetric,
        ))

    def drop(
        self,
        probability: float,
        from_us: float = 0.0,
        until_us: float = float("inf"),
        src: Optional[Iterable[int]] = None,
        dst: Optional[Iterable[int]] = None,
    ) -> NetRule:
        return self.add(NetRule(
            NetFaultKind.DROP, from_us=from_us, until_us=until_us,
            src=None if src is None else frozenset(src),
            dst=None if dst is None else frozenset(dst),
            probability=probability,
        ))

    def delay(
        self,
        probability: float,
        delay_us: float,
        from_us: float = 0.0,
        until_us: float = float("inf"),
        src: Optional[Iterable[int]] = None,
        dst: Optional[Iterable[int]] = None,
    ) -> NetRule:
        return self.add(NetRule(
            NetFaultKind.DELAY, from_us=from_us, until_us=until_us,
            src=None if src is None else frozenset(src),
            dst=None if dst is None else frozenset(dst),
            probability=probability, delay_us=delay_us,
        ))

    def duplicate(
        self,
        probability: float,
        from_us: float = 0.0,
        until_us: float = float("inf"),
        src: Optional[Iterable[int]] = None,
        dst: Optional[Iterable[int]] = None,
    ) -> NetRule:
        return self.add(NetRule(
            NetFaultKind.DUPLICATE, from_us=from_us, until_us=until_us,
            src=None if src is None else frozenset(src),
            dst=None if dst is None else frozenset(dst),
            probability=probability,
        ))

    # -- consultation ------------------------------------------------------

    def blocked(self, src: int, dst: int, now_us: float) -> bool:
        """Is the ``src -> dst`` direction partitioned at ``now_us``?

        Pure window arithmetic — no RNG consumed — so the data plane can
        poll it without perturbing the message-level fault streams.
        """
        for rule in self.rules:
            if (
                rule.kind is NetFaultKind.PARTITION
                and rule.window_active(now_us)
                and rule.matches(src, dst)
            ):
                return True
        return False

    def _link_rng(self, src: int, dst: int):
        rng = self._rngs.get((src, dst))
        if rng is None:
            rng = make_rng(self.seed, "net", src, dst)
            self._rngs[(src, dst)] = rng
        return rng

    def judge(self, src: int, dst: int, now_us: float) -> NetVerdict:
        """Decide one message's fate (called once per send by the fabric)."""
        if self.blocked(src, dst, now_us):
            self.blocked_messages += 1
            return NetVerdict(blocked=True)
        dropped = False
        extra = 0.0
        duplicates = 0
        for rule in self.rules:
            if rule.kind is NetFaultKind.PARTITION:
                continue
            if not rule.window_active(now_us):
                continue
            if not rule._matches_one_way(src, dst):
                continue
            roll = self._link_rng(src, dst).random()
            if roll >= rule.probability:
                continue
            rule.fired += 1
            if rule.kind is NetFaultKind.DROP:
                dropped = True
                self.dropped_messages += 1
            elif rule.kind is NetFaultKind.DELAY:
                spread = self._link_rng(src, dst).uniform(0.5, 1.5)
                extra += rule.delay_us * spread
                self.delayed_messages += 1
            elif rule.kind is NetFaultKind.DUPLICATE:
                duplicates += 1
                self.duplicated_messages += 1
        if not dropped and extra == 0.0 and duplicates == 0:
            return _CLEAN
        return NetVerdict(
            dropped=dropped, extra_delay_us=extra, duplicates=duplicates
        )

    def active_rules(self, now_us: float) -> List[NetRule]:
        return [r for r in self.rules if r.window_active(now_us)]

    def counts(self) -> Dict[str, int]:
        return {
            "blocked": self.blocked_messages,
            "dropped": self.dropped_messages,
            "delayed": self.delayed_messages,
            "duplicated": self.duplicated_messages,
        }


__all__ = [
    "NetFaultKind",
    "NetFaultPlan",
    "NetRule",
    "NetVerdict",
]
