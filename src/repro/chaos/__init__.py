"""Fault injection, detection, and chaos testing (repro.chaos).

The paper's reliability claims (§4.1) rest on the storage software
surviving real device misbehaviour: latency spikes, torn or dropped
writes, bit rot, misdirected I/O, and whole-replica loss.  This package
injects those faults *underneath* the storage stack — at the simulated
block-device layer — and provides a harness that runs a workload on top
while asserting end-to-end invariants (every committed write stays
readable byte-exact, corruption is detected and repaired, recovery
converges).
"""

from repro.chaos.plan import (
    DATA_FAULT_KINDS,
    DeviceInjector,
    FaultKind,
    FaultLedger,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "DATA_FAULT_KINDS",
    "DeviceInjector",
    "FaultKind",
    "FaultLedger",
    "FaultPlan",
    "FaultRule",
]
