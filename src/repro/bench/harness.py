"""Experiment output helpers.

Every benchmark prints its figure/table in the paper's shape and also
persists it under ``benchmarks/results/`` so runs can be diffed and
EXPERIMENTS.md can quote them.  pytest-benchmark wall-clock numbers are
incidental (the simulator's clock is what matters); the interesting
payload goes into ``extra_info`` and these text artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                           "benchmarks", "results")


@dataclass
class ExperimentResult:
    """One figure/table worth of rows."""

    experiment: str
    description: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment}: row has {len(values)} values, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_dict(self) -> Dict:
        return {
            "experiment": self.experiment,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "notes": self.notes,
        }


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    cells = [[_format_cell(v) for v in row] for row in result.rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) if cells else len(str(col))
        for i, col in enumerate(result.columns)
    ]
    lines = [
        f"== {result.experiment}: {result.description} ==",
        "  ".join(str(c).ljust(w) for c, w in zip(result.columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def print_table(result: ExperimentResult) -> None:
    print("\n" + render_table(result) + "\n", flush=True)


def save_result(result: ExperimentResult, directory: Optional[str] = None) -> str:
    """Persist the table as text + JSON; returns the text path."""
    directory = os.path.abspath(directory or RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, result.experiment)
    with open(base + ".txt", "w") as handle:
        handle.write(render_table(result) + "\n")
    with open(base + ".json", "w") as handle:
        json.dump(result.to_dict(), handle, indent=2)
    return base + ".txt"
