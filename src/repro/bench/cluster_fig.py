"""The Figure 10/11 scheduling scenario on the live sharded runtime.

Builds two identically-seeded :class:`~repro.cluster.runtime
.ClusterRuntime` fleets and ingests the same skewed tenant layout into
both: chunk compressibility is correlated with placement order, so
logical-only placement (what both fleets use at ingest) lands all the
well-compressing chunks on one half of the shards and all the
incompressible ones on the other — logically balanced, physically
lopsided, exactly the Figure 9a stranding.  One fleet then rebalances
with the :class:`~repro.cluster.scheduler.LogicalOnlyScheduler` (which
sees nothing wrong) and the other with the
:class:`~repro.cluster.scheduler.CompressionAwareScheduler`; every byte
a plan moves is a real page read from the source replica group and
re-compressed through the target's write path, so the migration traffic
and the before/after waste fractions are measured, not modeled.

Shared by ``python -m repro cluster`` and
``benchmarks/bench_fig10_11_scheduling.py`` — both must stay byte-
deterministic per seed (CI diffs two runs of the JSON artifact).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.api.config import ReproConfig
from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.cluster.runtime import ClusterRuntime
from repro.cluster.scheduler import (
    CompressionAwareScheduler,
    LogicalOnlyScheduler,
    band_coverage,
)
from repro.common.units import DB_PAGE_SIZE, MiB

#: A short token tiled across the whole page: compresses very well.
_COMPRESSIBLE_TOKEN = b"polarstore-dual-layer-compression:"
#: Row header overhead of :func:`repro.cluster.runtime.encode_row_page`.
_ROW_OVERHEAD = 12


def _row_value(rng: random.Random, compressible: bool) -> bytes:
    """One row's bytes.

    Incompressible rows fill the whole page with fresh random bytes (the
    page encoder tiles short values, which would make *any* short value
    compressible at page level)."""
    if compressible:
        return _COMPRESSIBLE_TOKEN
    return rng.getrandbits((DB_PAGE_SIZE - _ROW_OVERHEAD) * 8).to_bytes(
        DB_PAGE_SIZE - _ROW_OVERHEAD, "little"
    )


def scenario_config(shards: int = 4, seed: int = 0) -> ReproConfig:
    return ReproConfig.from_dict({
        "store": {"volume_bytes": 16 * MiB, "seed": seed},
        "engine": {"enabled": True},
        "cluster": {
            "shards": shards,
            "chunk_keys": 8,
            "physical_fraction": 0.5,
            "migration_streams": 2,
        },
    })


def build_skewed_runtime(
    shards: int = 4, chunks: int = 16, seed: int = 0, workers: int = 1
) -> Tuple[ClusterRuntime, Dict[Tuple[str, int], bytes]]:
    """Ingest the correlated-tenant layout; returns (runtime, expected).

    Chunk ``i`` is compressible iff ``i % shards < shards // 2``: the
    runtime's least-logically-loaded placement assigns chunks round-robin
    in shard order, so the compressible half of the stream stacks onto
    the first half of the fleet.

    ``workers > 1`` hosts the replica groups in per-shard engine worker
    processes (:class:`~repro.cluster.parallel.ParallelClusterRuntime`)
    — byte-identical to serial, so the artifact never depends on it.
    """
    config = scenario_config(shards=shards, seed=seed)
    if workers > 1:
        from repro.cluster.parallel import ParallelClusterRuntime

        runtime: ClusterRuntime = ParallelClusterRuntime(
            config, workers=workers
        )
    else:
        runtime = ClusterRuntime(config)
    rng = random.Random(seed + 1)
    runtime.create_table("tenants")
    expected: Dict[Tuple[str, int], bytes] = {}
    chunk_keys = runtime.chunk_keys
    for chunk_index in range(chunks):
        compressible = chunk_index % shards < shards // 2
        for j in range(chunk_keys):
            key = chunk_index * chunk_keys + j
            value = _row_value(rng, compressible)
            runtime.insert(runtime.engine.now_us, "tenants", key, value)
            expected[("tenants", key)] = value
    return runtime, expected


#: The two fleets the scenario compares, in artifact (and leg) order.
SCHEDULER_LEGS = ("logical_only", "compression_aware")


def run_scheduler_leg(
    name: str,
    shards: int = 4,
    chunks: int = 16,
    seed: int = 0,
    workers: int = 1,
) -> Dict:
    """One complete fleet: ingest, rebalance with ``name``'s scheduler,
    verify, measure.  Returns the leg's artifact contribution as plain
    data, so legs compose identically whether they run in-process or as
    programs fanned across worker processes (the two fleets share no
    simulated state — they are independent engine universes).
    """
    scheduler = (
        LogicalOnlyScheduler() if name == "logical_only"
        else CompressionAwareScheduler()
    )
    runtime, expected = build_skewed_runtime(
        shards=shards, chunks=chunks, seed=seed, workers=workers
    )
    try:
        before = runtime.wasted_fractions()
        occupancies = {f"{name}/before": runtime.zone_occupancy()}
        report = runtime.rebalance(scheduler)
        runtime.verify_readable(expected)
        after = runtime.wasted_fractions()
        occupancies[f"{name}/after"] = runtime.zone_occupancy()
        abstract, _ = runtime.snapshot()
        aware = CompressionAwareScheduler()
        coverage = band_coverage(abstract, *aware.band(abstract))
    finally:
        runtime.close()
    return {
        "name": name,
        "before": before,
        "occupancies": occupancies,
        "row": (
            name,
            len(report.tasks),
            report.moved_pages,
            report.catchup_pages,
            round(report.moved_logical_bytes / MiB, 3),
            round(report.moved_physical_bytes / MiB, 3),
            round(report.makespan_us / 1000.0, 3),
            round(after[0], 4),
            round(after[1], 4),
            round(coverage, 4),
        ),
    }


def run_fig10_11(
    out_dir: Optional[str] = None,
    shards: int = 4,
    chunks: int = 16,
    seed: int = 0,
    quiet: bool = False,
    workers: int = 1,
    leg_workers: int = 1,
) -> ExperimentResult:
    """Run both schedulers over the skewed fleet; persist the artifact.

    Two parallelism axes, both byte-neutral to the artifact:
    ``workers`` hosts each fleet's replica groups in per-shard engine
    workers (fine-grained, epoch-barrier synchronized); ``leg_workers``
    partitions the two independent fleets themselves across processes
    (coarse-grained — what the perf harness's parallel leg measures).
    """
    result = ExperimentResult(
        experiment="fig10_11_scheduling",
        description="wasted space and live-migration traffic: "
                    "logical-only vs compression-aware scheduling",
        columns=(
            "scheduler", "tasks", "moved_pages", "catchup_pages",
            "moved_logical_mib", "moved_physical_mib", "makespan_ms",
            "wasted_logical", "wasted_physical", "band_coverage",
        ),
    )
    from repro.engine.parallel import ParallelEngineGroup

    legs = ParallelEngineGroup.run_programs(
        [
            lambda name=name: run_scheduler_leg(
                name, shards=shards, chunks=chunks, seed=seed,
                workers=workers,
            )
            for name in SCHEDULER_LEGS
        ],
        workers=leg_workers,
    )
    occupancies: Dict[str, Dict[str, int]] = {}
    for leg in legs:
        if leg["name"] == "logical_only":
            before = leg["before"]
            result.note(
                f"ingest leaves wasted_logical={before[0]:.3f} "
                f"wasted_physical={before[1]:.3f} (both fleets identical)"
            )
        result.add(*leg["row"])
        occupancies.update(leg["occupancies"])
    for label, zones in sorted(occupancies.items()):
        result.note(
            f"zones {label}: " + " ".join(
                f"{z}={zones[z]}" for z in ("A", "B", "C", "D")
            )
        )
    if not quiet:
        print_table(result)
    if out_dir is not None:
        save_result(result, out_dir)
    else:
        save_result(result)
    return result
