"""Benchmark harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import ExperimentResult, print_table, save_result

__all__ = ["ExperimentResult", "print_table", "save_result"]
