"""The B-tree-vs-LSM write-amplification crossover on transparent
hardware compression (arXiv:2107.13987), measured on our own stack.

The claim: on storage with built-in transparent compression, a
B-tree-style in-place scheme (our single-level per-page log: every
eviction re-merges and rewrites the page's whole log block) closes — and
on compressible data *reverses* — the write-amplification gap to
LSM-style append-only schemes.  The physical mechanism is that the
rewritten block is internally redundant (generation r contains
generations 1..r-1), so the CSD's per-4 KB gzip collapses it to almost
nothing, while an LSM run mixes unrelated pages into each block and
compresses poorly.  On incompressible data the classic result holds:
rewriting costs O(generations) NAND, appending costs O(1) plus bounded
compaction rewrites.

This module drives the three :mod:`repro.storage.consolidation` policies
directly with the same flush workload (P pages × R rounds of redo, one
LSM-memtable-style mixed-page batch per round) over two corpora:

``hot-template``
    Each page's records are near-identical updates of a per-page random
    template — high within-page compressibility, none across pages.

``random``
    Every record is fresh random bytes — nothing compresses.

Write amplification is NAND bytes (FTL-counted, GC included) per user
byte; space amplification is live NAND per live user byte; read
amplification is device reads per page fetch.  All three come from an
:class:`repro.obs.amp.AmplificationAccountant` whose ``storage.amp.*``
gauges the artifact snapshots — the accountant is exercised end-to-end,
not recomputed by hand.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, MiB
from repro.csd.specs import POLARCSD2
from repro.csd.device import PolarCSD
from repro.obs.amp import AmplificationAccountant
from repro.obs.metrics import MetricsRegistry
from repro.storage.allocator import SpaceManager
from repro.storage.consolidation import (
    POLICIES,
    ConsolidationConfig,
    make_policy,
)
from repro.storage.node import NodeConfig
from repro.storage.redo import RedoRecord

CORPORA = ("hot-template", "random")

#: Redo payload bytes per record (encoded record = payload + 20 B header).
_PAYLOAD = 180


def _policy_config(name: str) -> ConsolidationConfig:
    """Benchmark-scale policy parameters (small levels, eager cascades)."""
    return ConsolidationConfig(
        policy=name,
        l0_limit=2,
        level_ratio=4,
        base_level_bytes=32 * KiB,
        tier_fanout=3,
        max_levels=6,
    )


def _record_data(corpus: str, seed: int, page: int, rnd: int,
                 templates: Dict[int, bytes]) -> bytes:
    # Integer-only seeding: tuple seeds hash differently per process.
    if corpus == "hot-template":
        template = templates.get(page)
        if template is None:
            template = random.Random(seed * 7919 + page).randbytes(_PAYLOAD)
            templates[page] = template
        return template[:-6] + (b"%06d" % rnd)
    return random.Random(
        (seed + 1) * 7919 + page * 613 + rnd
    ).randbytes(_PAYLOAD)


def _run_policy(
    corpus: str, policy_name: str, quick: bool, seed: int
) -> Dict[str, float]:
    pages = 24 if quick else 64
    rounds = 10 if quick else 16
    metrics = MetricsRegistry()
    spec = dataclasses.replace(
        POLARCSD2,
        logical_capacity=64 * MiB,
        physical_capacity=32 * MiB,
        jitter_sigma=0.0,
    )
    device = PolarCSD(
        spec, seed=seed, block_capacity=1 * MiB,
        metrics=metrics, metric_labels={"role": "amp"},
    )
    allocator = SpaceManager(64 * MiB)
    policy = make_policy(
        _policy_config(policy_name), NodeConfig(), device, allocator
    )
    stats = device.ftl.stats

    def live_user_bytes() -> int:
        return sum(
            policy.stored_bytes_for(p) for p in policy.pages_with_logs()
        )

    accountant = AmplificationAccountant(
        metrics,
        user_write_bytes=lambda: policy.user_bytes_evicted,
        physical_write_bytes=lambda: stats.nand_written_bytes,
        live_bytes=live_user_bytes,
        stored_bytes=lambda: device.physical_used_bytes,
        user_reads=lambda: policy.fetches,
        device_reads=lambda: policy.fetch_reads,
        policy=policy_name,
        corpus=corpus,
    )

    templates: Dict[int, bytes] = {}
    now = 0.0
    lsn = 0
    for rnd in range(rounds):
        batch: List[RedoRecord] = []
        for page in range(pages):
            lsn += 1
            batch.append(
                RedoRecord(
                    lsn, page, (rnd * 256) % 15000,
                    _record_data(corpus, seed, page, rnd, templates),
                )
            )
        now = policy.evict(now, batch)
        # Drain planned compactions after each flush (the scheduler's
        # unlimited-token behaviour, synchronously).
        while True:
            tasks = policy.plan_compactions()
            if not tasks:
                break
            task = sorted(tasks, key=lambda t: (t.priority, t.level))[0]
            now = policy.compact(now, task)
    # Read phase: one fetch per page (the consolidation read pattern).
    for page in range(pages):
        result = policy.fetch(now, page)
        if len(result.records) != rounds:
            raise AssertionError(
                f"{policy_name}/{corpus}: page {page} returned "
                f"{len(result.records)} records, expected {rounds}"
            )
        now = result.done_us
    return {
        "wa": round(accountant.write_amplification(), 4),
        "sa": round(accountant.space_amplification(), 4),
        "ra": round(accountant.read_amplification(), 4),
        "user_kib": round(policy.user_bytes_evicted / KiB, 1),
        "nand_kib": round(stats.nand_written_bytes / KiB, 1),
        "compactions": policy.compactions,
        "blocks": policy.allocated_blocks,
        "sim_ms": round(now / 1000.0, 3),
    }


def run_write_amp(
    out_dir: Optional[str] = None,
    quick: bool = False,
    policies: Optional[List[str]] = None,
    seed: int = 7,
    quiet: bool = False,
    save: bool = True,
) -> Tuple[ExperimentResult, Optional[bool]]:
    """Measure WA/SA/RA per (corpus, policy); returns (result, crossover).

    ``crossover`` is ``True``/``False`` when all three policies ran
    (leveled-vs-single-level WA ordering must flip between corpora) and
    ``None`` when the policy list was filtered.
    """
    chosen = list(policies) if policies else list(POLICIES)
    for name in chosen:
        if name not in POLICIES:
            raise ValueError(f"unknown policy {name!r}")
    name = "write_amp"
    if len(chosen) == 1:
        name += "_" + chosen[0].replace("-", "_")
    if quick:
        name += "_quick"
    result = ExperimentResult(
        name,
        "B-tree-vs-LSM WA crossover on transparent compression "
        "(arXiv:2107.13987)",
        ["corpus", "policy", "WA", "SA", "RA", "user_kib", "nand_kib",
         "compactions", "blocks", "sim_ms"],
    )
    wa: Dict[Tuple[str, str], float] = {}
    for corpus in CORPORA:
        for policy_name in chosen:
            row = _run_policy(corpus, policy_name, quick, seed)
            wa[(corpus, policy_name)] = row["wa"]
            result.add(
                corpus, policy_name, row["wa"], row["sa"], row["ra"],
                row["user_kib"], row["nand_kib"], row["compactions"],
                row["blocks"], row["sim_ms"],
            )
    crossover: Optional[bool] = None
    if set(chosen) == set(POLICIES):
        crossover = (
            wa[("hot-template", "single-level")] < wa[("hot-template", "leveled")]
            and wa[("random", "single-level")] > wa[("random", "leveled")]
        )
        result.note(
            "crossover "
            + ("HOLDS" if crossover else "VIOLATED")
            + ": single-level WA beats leveled on the compressible corpus "
            "and loses on the incompressible one"
        )
    result.note(
        "WA = FTL NAND bytes / user bytes; SA = live NAND / live user "
        "bytes; RA = device reads per page fetch (storage.amp.* gauges)"
    )
    if not quiet:
        print_table(result)
    if save:
        save_result(result, out_dir)
    return result, crossover
