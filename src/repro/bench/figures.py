"""Self-contained figure profiles for ``python -m repro bench``.

Trimmed, deterministic versions of the thread-scaling figures that ride
entirely on the event-driven stack (``repro.engine`` under
``workloads.sysbench``): Figure 12's cluster sweep and Figure 15's
per-page-log read-latency sweep.  They are sized for smoke runs and CI
determinism checks — the full-budget versions live in ``benchmarks/``.

Everything here is a pure function of its seed and budgets: the tables
(and the JSON files :func:`repro.bench.harness.save_result` writes)
must come out byte-for-byte identical across runs, which CI enforces by
running each profile twice and diffing.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ExperimentResult, print_table, save_result
from repro.common.units import KiB, MiB
from repro.csd.specs import (
    OPTANE_P4800X,
    OPTANE_P5800X,
    P4510,
    P5510,
    POLARCSD1,
    POLARCSD2,
)
from repro.db.database import PolarDB
from repro.db.ro_node import RONode
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore
from repro.workloads.sysbench import (
    WORKLOAD_LABELS,
    prepare_table,
    run_sysbench,
)

#: Table 2 cluster configurations (same shapes as the full Figure 12).
FIG12_CLUSTERS = {
    "N1": dict(
        data_spec=P4510, perf_spec=OPTANE_P4800X,
        config=NodeConfig(
            software_compression=False, opt_algorithm_selection=False,
            opt_per_page_log=False,
        ),
    ),
    "C1": dict(
        data_spec=POLARCSD1, perf_spec=OPTANE_P4800X,
        config=NodeConfig(
            software_compression=False, opt_algorithm_selection=False,
            opt_per_page_log=False,
        ),
    ),
    "N2": dict(
        data_spec=P5510, perf_spec=OPTANE_P5800X,
        config=NodeConfig(
            software_compression=False, opt_algorithm_selection=False,
            opt_per_page_log=False,
        ),
    ),
    "C2": dict(
        data_spec=POLARCSD2, perf_spec=OPTANE_P5800X,
        config=NodeConfig(),
    ),
}


def run_fig12_quick(
    out_dir: Optional[str] = None, quick: bool = True, workers: int = 1
) -> ExperimentResult:
    """Figure 12 smoke profile: every cluster, two workloads, trimmed
    transaction budgets.  16 concurrent clients per run queue on the
    shared engine.

    Each cluster cell is an independent engine universe, so ``workers``
    fans the cells across worker processes
    (:meth:`~repro.engine.parallel.ParallelEngineGroup.run_programs`);
    the assembled table is byte-identical at any worker count."""
    rows = 800 if quick else 3000
    budgets = (
        {"point_select": 60, "read_write": 12}
        if quick
        else {"point_select": 200, "read_write": 30}
    )
    result = ExperimentResult(
        "fig12_quick",
        "quick sysbench cluster sweep (event-driven, 16 clients)",
        ["workload", "cluster", "tps", "avg_us", "p95_us"],
    )

    def cluster_cell(cluster: str, spec: dict) -> list:
        store = PolarStore(
            spec["config"], data_spec=spec["data_spec"],
            perf_spec=spec["perf_spec"], volume_bytes=128 * MiB, seed=3,
        )
        db = PolarDB(store=store, buffer_pool_pages=10)
        now = prepare_table(db, rows=rows, seed=3)
        cell_rows = []
        for workload, budget in budgets.items():
            run = run_sysbench(
                db, workload, duration_s=30.0, threads=16,
                key_range=rows, start_us=now, seed=11,
                max_transactions=budget,
            )
            now += 40e6
            cell_rows.append((
                WORKLOAD_LABELS[workload], cluster,
                round(run.tps, 3),
                round(run.avg_latency_us, 3),
                round(run.p95_latency_us, 3),
            ))
        return cell_rows

    from repro.engine.parallel import ParallelEngineGroup

    cells = ParallelEngineGroup.run_programs(
        [
            lambda cluster=cluster, spec=spec: cluster_cell(cluster, spec)
            for cluster, spec in FIG12_CLUSTERS.items()
        ],
        workers=workers,
    )
    for cell_rows in cells:
        for row in cell_rows:
            result.add(*row)
    print_table(result)
    save_result(result, out_dir)
    return result


def run_fig15_quick(
    out_dir: Optional[str] = None, quick: bool = True, workers: int = 1
) -> ExperimentResult:
    """Figure 15 smoke profile: lagging RO node, baseline vs per-page
    log, at a low and a saturating thread count.

    The baseline and per-page-log variants are independent universes;
    ``workers`` runs them in parallel worker processes with byte-
    identical output."""
    rows = 600 if quick else 1500
    sweep = (16, 128) if quick else (16, 32, 64, 128, 256)
    burst_txns = 150 if quick else 500
    read_txns = 60 if quick else 160
    result = ExperimentResult(
        "fig15_quick",
        "quick RO-node P95 sweep, baseline vs per-page log",
        ["threads", "baseline_p95_us", "perpage_p95_us", "p95_reduction"],
    )

    def variant_p95(per_page_log: bool) -> dict:
        config = NodeConfig(
            opt_per_page_log=per_page_log,
            opt_algorithm_selection=False,
            redo_cache_bytes=8 * KiB,
        )
        store = PolarStore(config, volume_bytes=128 * MiB, seed=9)
        db = PolarDB(store=store, buffer_pool_pages=512, ro_nodes=0)
        db.ro.append(
            RONode(store, db.rw, buffer_pool_pages=4, lag_us=1e6,
                   cpu_cores=2)
        )
        now = prepare_table(db, rows=rows, seed=9)
        out = {}
        for threads in sweep:
            run_sysbench(
                db, "update_non_index", duration_s=60.0, threads=16,
                key_range=rows, start_us=now, seed=31 + threads,
                max_transactions=burst_txns,
            )
            now += 70e6
            reads = run_sysbench(
                db, "point_select", duration_s=60.0, threads=threads,
                key_range=rows, start_us=now, seed=32 + threads,
                max_transactions=read_txns, ro_index=0,
            )
            now += 70e6
            out[threads] = reads.p95_latency_us
        return out

    from repro.engine.parallel import ParallelEngineGroup

    variants = ParallelEngineGroup.run_programs(
        [
            lambda ppl=per_page_log: variant_p95(ppl)
            for per_page_log in (False, True)
        ],
        workers=workers,
    )
    p95 = {
        (per_page_log, threads): value
        for per_page_log, variant in zip((False, True), variants)
        for threads, value in variant.items()
    }
    for threads in sweep:
        base = p95[(False, threads)]
        opt = p95[(True, threads)]
        result.add(
            threads, round(base, 3), round(opt, 3),
            round(1 - opt / base, 5),
        )
    print_table(result)
    save_result(result, out_dir)
    return result


FIGURES = {"12": run_fig12_quick, "15": run_fig15_quick}
