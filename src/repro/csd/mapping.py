"""Variable-length L2P mapping entry encodings (§3.2.2, §4.1.2).

A conventional page-mapping FTL stores a fixed 4 KB-to-4 KB translation in
about 5 bytes per entry.  PolarCSD extends each entry so a 4 KB LBA can map
to a *byte-granularity* physical location:

* **Gen 1 (PolarCSD1.0)** adds 12-bit ``offset`` and 12-bit ``length``
  fields (positions within a 4 KB boundary) — 3 extra bytes, 8 bytes per
  entry in total.  A 7.68 TB device therefore needs
  ``7.68 TB / 4 KB × 8 B = 15.36 GB`` of mapping DRAM, the number §4.1.1
  reports.
* **Gen 2 (PolarCSD2.0)** coarsens the physical offset granularity to
  16 bytes so offset and length fit in 2 bytes — 7 bytes per entry —
  which is what lets the device expose 9.6 TB of logical space without
  growing its DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KiB, ceil_div

#: Bytes of a conventional fixed-mapping L2P entry (base PBA + flags).
BASE_ENTRY_BYTES = 5
#: LBA granularity of the mapping.
MAPPING_LBA_SIZE = 4 * KiB


@dataclass(frozen=True)
class L2PEntry:
    """A decoded mapping: LBA -> (physical 4 KB frame, byte offset, length).

    ``length`` is the *stored* length — for gen 2 it is the 16-byte-aligned
    length actually charged against physical space.
    """

    frame: int
    offset: int
    length: int


class L2PEntryCodecV1:
    """Gen-1 encoding: byte-granular offset/length, 8 bytes per entry."""

    entry_bytes = 8
    offset_granularity = 1

    def encode(self, frame: int, offset: int, length: int) -> bytes:
        if not 0 <= offset < MAPPING_LBA_SIZE:
            raise ValueError(f"offset {offset} outside 4 KiB frame")
        if not 1 <= length <= MAPPING_LBA_SIZE:
            raise ValueError(f"length {length} outside (0, 4 KiB]")
        if not 0 <= frame < 1 << 40:
            raise ValueError(f"frame {frame} exceeds 40 bits")
        packed = (frame << 24) | (offset << 12) | (length - 1)
        return packed.to_bytes(self.entry_bytes, "little")

    def decode(self, raw: bytes) -> L2PEntry:
        if len(raw) != self.entry_bytes:
            raise ValueError(f"expected {self.entry_bytes} bytes, got {len(raw)}")
        packed = int.from_bytes(raw, "little")
        length = (packed & 0xFFF) + 1
        offset = (packed >> 12) & 0xFFF
        frame = packed >> 24
        return L2PEntry(frame, offset, length)

    def stored_length(self, length: int) -> int:
        """Physical bytes charged for a compressed block of ``length``."""
        return length


class L2PEntryCodecV2:
    """Gen-2 encoding: 16-byte offset granularity, 7 bytes per entry."""

    entry_bytes = 7
    offset_granularity = 16

    def encode(self, frame: int, offset: int, length: int) -> bytes:
        if offset % self.offset_granularity:
            raise ValueError(
                f"offset {offset} not {self.offset_granularity}-byte aligned"
            )
        if not 0 <= offset < MAPPING_LBA_SIZE:
            raise ValueError(f"offset {offset} outside 4 KiB frame")
        if not 1 <= length <= MAPPING_LBA_SIZE:
            raise ValueError(f"length {length} outside (0, 4 KiB]")
        if not 0 <= frame < 1 << 40:
            raise ValueError(f"frame {frame} exceeds 40 bits")
        offset_units = offset // self.offset_granularity
        length_units = ceil_div(length, self.offset_granularity)
        packed = (frame << 16) | (offset_units << 8) | (length_units - 1)
        return packed.to_bytes(self.entry_bytes, "little")

    def decode(self, raw: bytes) -> L2PEntry:
        if len(raw) != self.entry_bytes:
            raise ValueError(f"expected {self.entry_bytes} bytes, got {len(raw)}")
        packed = int.from_bytes(raw, "little")
        length = ((packed & 0xFF) + 1) * self.offset_granularity
        offset = ((packed >> 8) & 0xFF) * self.offset_granularity
        frame = packed >> 16
        return L2PEntry(frame, offset, length)

    def stored_length(self, length: int) -> int:
        """Physical bytes charged: rounded up to 16-byte units."""
        return ceil_div(length, self.offset_granularity) * self.offset_granularity


def ftl_dram_bytes(logical_capacity: int, entry_bytes: int) -> int:
    """Mapping-table DRAM for a device of ``logical_capacity`` bytes."""
    return ceil_div(logical_capacity, MAPPING_LBA_SIZE) * entry_bytes
