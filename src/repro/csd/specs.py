"""Calibrated device specifications.

Latency constants are calibrated so that the simulator reproduces the
*orderings and trends* of the paper's Figure 7 (16 KB I/O at queue depth 1):

* PolarCSD writes are faster than the matching Intel SSD (the CSD programs
  fewer NAND bytes after compression and acks from its write buffer), but
  its reads are slower (extra in-storage decompression + indirection);
* higher compressible ratios lower both CSD latencies because fewer
  physical bytes move through NAND;
* plain SSDs are flat across compression ratios;
* PCIe 4.0 devices (P5510, PolarCSD2.0) beat their PCIe 3.0 counterparts;
* Optane devices are an order of magnitude faster and stable, which is why
  PolarStore puts redo logs and the WAL on them (§3.3.1).

Absolute values follow public spec sheets (P4510 4 KB random read ≈ 77 µs,
Optane ≈ 10 µs) and the paper's reported redo-write and page-read figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GiB, KiB, TiB


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one storage device model."""

    name: str
    pcie_gen: int
    logical_capacity: int
    physical_capacity: int
    #: Fixed controller/firmware overhead per read or write command (µs).
    read_fixed_us: float
    write_fixed_us: float
    #: NAND media cost per physical KiB moved (µs).
    nand_read_us_per_kib: float
    nand_write_us_per_kib: float
    #: Host-link transfer cost per logical KiB (µs); scales with PCIe gen.
    transfer_us_per_kib: float
    #: In-storage decompression/compression overhead per 4 KiB block (µs);
    #: zero for devices without a compression engine.
    hw_decompress_us_per_block: float = 0.0
    hw_compress_us_per_block: float = 0.0
    #: Lognormal jitter applied to each I/O.
    jitter_sigma: float = 0.08
    #: True when the device runs a compression engine + byte-granular FTL.
    has_compression: bool = False
    #: True when the FTL runs on the host (PolarCSD1.0's open-channel mode).
    host_managed_ftl: bool = False

    def transfer_us(self, nbytes: int) -> float:
        return self.transfer_us_per_kib * nbytes / KiB

    def nand_read_us(self, nbytes: int) -> float:
        return self.nand_read_us_per_kib * nbytes / KiB

    def nand_write_us(self, nbytes: int) -> float:
        return self.nand_write_us_per_kib * nbytes / KiB


# PCIe effective per-KiB transfer cost (one direction, including protocol
# overhead): gen3 x4 ≈ 3.2 GB/s, gen4 x4 ≈ 6.5 GB/s.
_PCIE3_US_PER_KIB = 0.32
_PCIE4_US_PER_KIB = 0.16

P4510 = DeviceSpec(
    name="Intel P4510",
    pcie_gen=3,
    logical_capacity=int(3.84 * TiB),
    physical_capacity=int(3.84 * TiB),
    read_fixed_us=72.0,
    write_fixed_us=14.0,
    nand_read_us_per_kib=1.1,
    nand_write_us_per_kib=0.9,
    transfer_us_per_kib=_PCIE3_US_PER_KIB,
)

P5510 = DeviceSpec(
    name="Intel P5510",
    pcie_gen=4,
    logical_capacity=int(7.68 * TiB),
    physical_capacity=int(7.68 * TiB),
    read_fixed_us=66.0,
    write_fixed_us=11.0,
    nand_read_us_per_kib=0.95,
    nand_write_us_per_kib=0.8,
    transfer_us_per_kib=_PCIE4_US_PER_KIB,
)

POLARCSD1 = DeviceSpec(
    name="PolarCSD1.0",
    pcie_gen=3,
    logical_capacity=int(7.68 * TiB),
    physical_capacity=int(3.20 * TiB),
    # Reads pay in-storage index lookup + decompression: higher fixed cost
    # than P4510.  Writes ack from the device write buffer after
    # compression: lower fixed cost.
    read_fixed_us=88.0,
    write_fixed_us=10.0,
    nand_read_us_per_kib=1.1,
    nand_write_us_per_kib=0.9,
    transfer_us_per_kib=_PCIE3_US_PER_KIB,
    hw_decompress_us_per_block=2.4,
    # The compression engine is pipelined with the host transfer, so only
    # a small residual per-block cost reaches the write latency.
    hw_compress_us_per_block=0.5,
    has_compression=True,
    host_managed_ftl=True,
)

POLARCSD2 = DeviceSpec(
    name="PolarCSD2.0",
    pcie_gen=4,
    logical_capacity=int(9.60 * TiB),
    physical_capacity=int(3.84 * TiB),
    read_fixed_us=78.0,
    write_fixed_us=8.0,
    nand_read_us_per_kib=0.95,
    nand_write_us_per_kib=0.8,
    transfer_us_per_kib=_PCIE4_US_PER_KIB,
    hw_decompress_us_per_block=2.0,
    hw_compress_us_per_block=0.4,
    has_compression=True,
)

OPTANE_P4800X = DeviceSpec(
    name="Intel Optane P4800X",
    pcie_gen=3,
    logical_capacity=375 * GiB,
    physical_capacity=375 * GiB,
    read_fixed_us=9.0,
    write_fixed_us=9.0,
    nand_read_us_per_kib=0.05,
    nand_write_us_per_kib=0.05,
    transfer_us_per_kib=_PCIE3_US_PER_KIB,
    jitter_sigma=0.02,
)

OPTANE_P5800X = DeviceSpec(
    name="Intel Optane P5800X",
    pcie_gen=4,
    logical_capacity=400 * GiB,
    physical_capacity=400 * GiB,
    read_fixed_us=6.0,
    write_fixed_us=6.0,
    nand_read_us_per_kib=0.04,
    nand_write_us_per_kib=0.04,
    transfer_us_per_kib=_PCIE4_US_PER_KIB,
    jitter_sigma=0.02,
)
