"""Storage-device simulators.

* :mod:`repro.csd.specs` — calibrated latency/capacity specs for every
  device the paper evaluates (PolarCSD 1.0/2.0, Intel P4510/P5510 data
  SSDs, Optane P4800X/P5800X performance devices).
* :mod:`repro.csd.mapping` — the variable-length L2P entry encodings
  (8-byte gen-1, 7-byte gen-2 with 16-byte offset granularity).
* :mod:`repro.csd.nand` — NAND geometry and byte-granular block space.
* :mod:`repro.csd.ftl` — page-mapping FTL with byte-granularity PBAs,
  greedy garbage collection, and TRIM.
* :mod:`repro.csd.device` — the PolarCSD device (in-storage gzip) and the
  plain-SSD / Optane models behind one ``BlockDevice`` interface.
* :mod:`repro.csd.host_ftl` — gen-1 host-based FTL resource accounting.
* :mod:`repro.csd.faults` — slow-I/O fault injection for Figure 8.
"""

from repro.csd.specs import (
    DeviceSpec,
    OPTANE_P4800X,
    OPTANE_P5800X,
    P4510,
    P5510,
    POLARCSD1,
    POLARCSD2,
)
from repro.csd.device import BlockDevice, PlainSSD, PolarCSD
from repro.csd.ftl import FTL
from repro.csd.mapping import L2PEntryCodecV1, L2PEntryCodecV2, ftl_dram_bytes

__all__ = [
    "DeviceSpec",
    "P4510",
    "P5510",
    "POLARCSD1",
    "POLARCSD2",
    "OPTANE_P4800X",
    "OPTANE_P5800X",
    "BlockDevice",
    "PlainSSD",
    "PolarCSD",
    "FTL",
    "L2PEntryCodecV1",
    "L2PEntryCodecV2",
    "ftl_dram_bytes",
]
