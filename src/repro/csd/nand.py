"""NAND flash space: erase blocks with byte-granular append.

The FTL appends variable-length compressed payloads into erase blocks.
Space is tracked exactly: every stored payload consumes ``stored_length``
bytes of some block; overwrites leave stale bytes behind that only erase
reclaims — the mechanism the dual-layer design leans on for byte-level
indexing "for free".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import DeviceError
from repro.common.units import MiB


@dataclass
class NandBlock:
    """One erase block."""

    block_id: int
    capacity: int
    write_ptr: int = 0
    live_bytes: int = 0
    sealed: bool = False
    erase_count: int = 0

    @property
    def stale_bytes(self) -> int:
        return self.write_ptr - self.live_bytes

    def free_bytes(self) -> int:
        return self.capacity - self.write_ptr

    def append(self, length: int) -> int:
        """Reserve ``length`` bytes; return their start offset."""
        if self.sealed:
            raise DeviceError(f"append to sealed block {self.block_id}")
        if length > self.free_bytes():
            raise DeviceError(f"block {self.block_id} overflow")
        offset = self.write_ptr
        self.write_ptr += length
        self.live_bytes += length
        return offset

    def invalidate(self, length: int) -> None:
        """Mark ``length`` previously-live bytes stale."""
        if length > self.live_bytes:
            raise DeviceError(
                f"block {self.block_id}: invalidating {length} > live "
                f"{self.live_bytes}"
            )
        self.live_bytes -= length

    def erase(self) -> None:
        if self.live_bytes:
            raise DeviceError(
                f"erasing block {self.block_id} with {self.live_bytes} live bytes"
            )
        self.write_ptr = 0
        self.sealed = False
        self.erase_count += 1


@dataclass
class NandSpace:
    """All erase blocks of one device."""

    physical_capacity: int
    block_capacity: int = 4 * MiB
    blocks: List[NandBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.physical_capacity < self.block_capacity:
            raise ValueError("physical capacity smaller than one erase block")
        count = self.physical_capacity // self.block_capacity
        self.blocks = [NandBlock(i, self.block_capacity) for i in range(count)]

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def free_blocks(self) -> List[NandBlock]:
        return [b for b in self.blocks if not b.sealed and b.write_ptr == 0]

    def victim_candidates(self) -> List[NandBlock]:
        """Sealed blocks, most-stale first (greedy GC policy)."""
        sealed = [b for b in self.blocks if b.sealed]
        return sorted(sealed, key=lambda b: b.live_bytes)

    @property
    def live_bytes(self) -> int:
        return sum(b.live_bytes for b in self.blocks)

    @property
    def written_bytes(self) -> int:
        return sum(b.write_ptr for b in self.blocks)

    def find(self, block_id: int) -> Optional[NandBlock]:
        if 0 <= block_id < len(self.blocks):
            return self.blocks[block_id]
        return None
