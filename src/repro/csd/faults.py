"""Slow-I/O fault injection (§4.1.1 / Figure 8).

PolarCSD1.0's host-based FTL exposed the whole server to three failure
sources — host memory contention, host CPU contention, and kernel-driver
bugs — producing rare but severe latency spikes (26 slow-I/O incidents in
18 months, 5 of them driver bugs lasting over 10 minutes).  PolarCSD2.0's
device-managed FTL removed the contention sources entirely and contained
driver faults, cutting the ≥4 ms tail by ~37×.

This module models those mechanisms as per-I/O spike probabilities with
per-cause severity distributions.  The constants are chosen so the
simulated 7-day tail distribution lands on the paper's Figure 8 numbers
(CSD1.0: 2.9e-5 of reads and 4.0e-5 of writes ≥ 4 ms; CSD2.0: 7.91e-7 and
1.05e-6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class FaultCause:
    """One spike source: probability per I/O and a severity distribution."""

    name: str
    probability: float
    #: Lognormal severity parameters for the added latency, in µs.
    median_us: float
    sigma: float


@dataclass(frozen=True)
class FaultProfile:
    """The set of spike sources affecting one device generation."""

    name: str
    read_causes: Sequence[FaultCause]
    write_causes: Sequence[FaultCause]

    def sample_extra_us(
        self, rng: np.random.Generator, count: int, is_read: bool
    ) -> np.ndarray:
        """Vectorized spike latencies for ``count`` I/Os (0 when no spike)."""
        extra = np.zeros(count)
        for cause in self.read_causes if is_read else self.write_causes:
            hits = rng.random(count) < cause.probability
            n_hits = int(hits.sum())
            if n_hits:
                spikes = cause.median_us * np.exp(
                    rng.normal(0.0, cause.sigma, n_hits)
                )
                extra[hits] = np.maximum(extra[hits], spikes)
        return extra

    def sample_one_us(self, rng: np.random.Generator, is_read: bool) -> float:
        return float(self.sample_extra_us(rng, 1, is_read)[0])


# Host-based FTL (PolarCSD1.0).  Memory contention dominates (12/26
# incidents), then CPU contention (9/26), then driver bugs (5/26) which are
# rarer but far more severe (>10 s for >10 minutes).
POLARCSD1_FAULTS = FaultProfile(
    name="PolarCSD1.0 host-FTL",
    read_causes=(
        FaultCause("memory-contention", 2.6e-5, median_us=5_000.0, sigma=0.8),
        FaultCause("cpu-contention", 2.0e-5, median_us=4_500.0, sigma=0.7),
        FaultCause("driver-bug", 4.0e-7, median_us=2_000_000.0, sigma=1.0),
    ),
    write_causes=(
        FaultCause("memory-contention", 3.4e-5, median_us=5_500.0, sigma=0.8),
        FaultCause("cpu-contention", 2.6e-5, median_us=5_000.0, sigma=0.7),
        FaultCause("driver-bug", 4.0e-7, median_us=2_000_000.0, sigma=1.0),
    ),
)

# Device-managed FTL (PolarCSD2.0): no host contention; only the occasional
# internal hiccup (GC pressure, firmware pauses), both rare and contained.
POLARCSD2_FAULTS = FaultProfile(
    name="PolarCSD2.0 device-FTL",
    read_causes=(
        FaultCause("internal", 1.2e-6, median_us=5_000.0, sigma=0.5),
    ),
    write_causes=(
        FaultCause("internal", 1.45e-6, median_us=5_500.0, sigma=0.5),
    ),
)

#: Plain SSDs in this cluster show tails comparable to PolarCSD2.0.
PLAIN_SSD_FAULTS = FaultProfile(
    name="plain SSD",
    read_causes=(
        FaultCause("internal", 6.0e-7, median_us=4_500.0, sigma=0.5),
    ),
    write_causes=(
        FaultCause("internal", 8.0e-7, median_us=5_000.0, sigma=0.5),
    ),
)


def profile_for(device_name: str) -> Optional[FaultProfile]:
    """Fault profile for a device spec name (None = no injection)."""
    if "PolarCSD1" in device_name:
        return POLARCSD1_FAULTS
    if "PolarCSD2" in device_name:
        return POLARCSD2_FAULTS
    if "Optane" in device_name:
        return None
    return PLAIN_SSD_FAULTS
