"""Host-based FTL resource accounting (PolarCSD1.0, §4.1.1).

The first-generation device ran its FTL on the host (open-channel
architecture).  This module captures the arithmetic the paper reports and
the host-level deployment constraints that followed:

* each 7.68 TB device needs ``7.68 TB / 4 KB × 8 B = 15.36 GB`` of host
  DRAM for its variable-length mapping table;
* 12 devices per host consume ≈184.32 GB of DRAM and ~24 dedicated
  physical CPU cores (2 per device);
* the contention this causes is why software compression had to be
  disabled on gen-1 clusters and deployment was limited to 10 devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GiB
from repro.csd.mapping import ftl_dram_bytes
from repro.csd.specs import DeviceSpec

#: Dedicated physical cores per host-managed device (§4.1.1).
CPU_CORES_PER_DEVICE = 2


@dataclass(frozen=True)
class HostFootprint:
    """Host resources consumed by host-based FTLs."""

    devices: int
    dram_bytes: int
    cpu_cores: int

    @property
    def dram_gib(self) -> float:
        return self.dram_bytes / GiB


def host_ftl_footprint(
    spec: DeviceSpec, devices: int, entry_bytes: int = 8
) -> HostFootprint:
    """Resources the host must dedicate to run ``devices`` FTL instances."""
    if not spec.host_managed_ftl:
        return HostFootprint(devices, 0, 0)
    per_device = ftl_dram_bytes(spec.logical_capacity, entry_bytes)
    return HostFootprint(
        devices=devices,
        dram_bytes=per_device * devices,
        cpu_cores=CPU_CORES_PER_DEVICE * devices,
    )


def contention_risk(
    footprint: HostFootprint, host_dram_bytes: int, host_cores: int
) -> float:
    """A [0, 1] score of how much of the host the FTL consumes.

    Values near 1 correspond to the contention regime that caused the
    slow-I/O incidents in §4.1.1; the gen-1 mitigation (10 devices/host,
    software compression disabled) reduced exactly this.
    """
    if host_dram_bytes <= 0 or host_cores <= 0:
        raise ValueError("host resources must be positive")
    dram_share = footprint.dram_bytes / host_dram_bytes
    cpu_share = footprint.cpu_cores / host_cores
    return min(1.0, max(dram_share, cpu_share))
