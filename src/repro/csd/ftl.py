"""Page-mapping FTL with byte-granularity physical placement.

This is the component that gives PolarStore byte-level index granularity
"for free": the software above only ever addresses 4 KB LBAs, while the FTL
places each (hardware-compressed) payload at an arbitrary byte offset inside
NAND erase blocks and reclaims stale bytes with its ordinary garbage
collection.

The same class serves both device generations; the injected mapping codec
(:class:`~repro.csd.mapping.L2PEntryCodecV1` or ``V2``) decides entry size
and offset granularity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import DeviceError, OutOfSpaceError
from repro.common.units import MiB
from repro.csd.mapping import L2PEntryCodecV1, MAPPING_LBA_SIZE
from repro.csd.nand import NandBlock, NandSpace
from repro.obs.metrics import MetricsRegistry


class FTLStats:
    """Lifetime counters used by benchmarks and the cluster monitor.

    Backed by :class:`~repro.obs.metrics.MetricsRegistry` counters so the
    same numbers appear in metric snapshots and Prometheus exports; the
    original attribute API (``stats.gc_runs`` etc.) is preserved as
    read-only properties.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 labels: Optional[dict] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        labels = labels or {}
        self._host_written = self.metrics.counter(
            "csd.ftl.host_written_bytes", **labels)
        self._nand_written = self.metrics.counter(
            "csd.ftl.nand_written_bytes", **labels)
        self._gc_relocated = self.metrics.counter(
            "csd.ftl.gc_relocated_bytes", **labels)
        self._gc_runs = self.metrics.counter("csd.ftl.gc_runs", **labels)
        self._trims = self.metrics.counter("csd.ftl.trims", **labels)

    # -- recording (called by the FTL) --------------------------------------

    def record_host_write(self, stored_len: int) -> None:
        self._host_written.add(stored_len)
        self._nand_written.add(stored_len)

    def record_gc(self, relocated_bytes: int) -> None:
        self._gc_relocated.add(relocated_bytes)
        self._nand_written.add(relocated_bytes)
        self._gc_runs.inc()

    def record_trim(self) -> None:
        self._trims.inc()

    # -- the seed's read API -------------------------------------------------

    @property
    def host_written_bytes(self) -> int:
        return int(self._host_written.value)

    @property
    def nand_written_bytes(self) -> int:
        return int(self._nand_written.value)

    @property
    def gc_relocated_bytes(self) -> int:
        return int(self._gc_relocated.value)

    @property
    def gc_runs(self) -> int:
        return int(self._gc_runs.value)

    @property
    def trims(self) -> int:
        return int(self._trims.value)

    @property
    def write_amplification(self) -> float:
        """NAND bytes per host byte — the unified WA definition
        (:func:`repro.obs.amp.write_amp`)."""
        from repro.obs.amp import write_amp

        return write_amp(self.host_written_bytes, self.nand_written_bytes)

    def bind_amp(self, metrics: Optional[MetricsRegistry] = None, **labels):
        """Export this FTL's WA as the ``storage.amp.write`` gauge.

        Opt-in (benchmarks/monitors call it): binding at construction
        time would add an instrument to every default store and perturb
        the perf-harness metric fingerprints.
        """
        from repro.obs import amp

        return amp.for_ftl(
            self, metrics if metrics is not None else self.metrics, **labels
        )


class FTL:
    """Byte-granular page-mapping FTL over :class:`NandSpace`."""

    #: Keep this many erase blocks free; GC runs when we dip below.
    GC_RESERVE_BLOCKS = 2

    def __init__(
        self,
        physical_capacity: int,
        codec: Optional[object] = None,
        block_capacity: int = 4 * MiB,
        trim_enabled: bool = True,
        gc_policy: str = "greedy",
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[dict] = None,
    ) -> None:
        """``gc_policy``: ``"greedy"`` picks the block with the fewest live
        bytes; ``"cost-benefit"`` weighs reclaimable space against
        relocation cost *and* block age (colder blocks are better victims
        under skewed overwrites — the classic LFS policy)."""
        if gc_policy not in ("greedy", "cost-benefit"):
            raise ValueError(f"unknown GC policy {gc_policy!r}")
        self.gc_policy = gc_policy
        self._write_stamp = 0
        self._block_stamp: Dict[int, int] = {}
        self.nand = NandSpace(physical_capacity, block_capacity)
        self.codec = codec if codec is not None else L2PEntryCodecV1()
        self.trim_enabled = trim_enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = FTLStats(self.metrics, metric_labels)
        labels = metric_labels or {}
        self.metrics.gauge_fn(
            "csd.ftl.live_bytes", lambda: self.live_bytes, **labels
        )
        self.metrics.gauge_fn(
            "csd.ftl.physical_utilization",
            self.physical_utilization, **labels
        )
        self.metrics.gauge_fn(
            "csd.ftl.untrimmed_ghost_bytes",
            lambda: self.untrimmed_ghost_bytes, **labels
        )
        # lba -> (block_id, offset, stored_len)
        self._mapping: Dict[int, "tuple[int, int, int]"] = {}
        # block_id -> {lba: stored_len}: reverse index for GC relocation.
        self._residents: Dict[int, Dict[int, int]] = {}
        self._active: Optional[NandBlock] = None
        # LBAs the host freed while TRIM was disabled: the device still
        # believes they are live (§4.2.1's monitoring lesson).
        self._untrimmed: set = set()

    # -- public interface --------------------------------------------------

    def write(self, lba: int, compressed_len: int) -> int:
        """Map ``lba`` to a fresh physical location of ``compressed_len``
        (physical charge rounded per the mapping codec's granularity).

        Returns the number of bytes GC relocated as a side effect, so the
        device model can charge that background work.
        """
        if lba < 0:
            raise DeviceError(f"negative LBA {lba}")
        if not 1 <= compressed_len <= MAPPING_LBA_SIZE:
            raise DeviceError(
                f"compressed length {compressed_len} outside (0, 4 KiB]"
            )
        stored_len = self.codec.stored_length(compressed_len)
        relocated = self._ensure_space(stored_len)
        self._invalidate(lba)
        self._place(lba, stored_len)
        self.stats.record_host_write(stored_len)
        return relocated

    def read(self, lba: int) -> "tuple[int, int, int]":
        """Return (block_id, offset, stored_len) for a mapped LBA."""
        try:
            return self._mapping[lba]
        except KeyError:
            raise DeviceError(f"read of unmapped LBA {lba}") from None

    def is_mapped(self, lba: int) -> bool:
        return lba in self._mapping

    def stored_length(self, lba: int) -> int:
        return self.read(lba)[2]

    def trim(self, lba: int) -> None:
        """Host frees an LBA.

        With TRIM enabled the mapping is dropped and the bytes become
        reclaimable stale space.  With TRIM disabled (the initial
        deployment mistake of §4.2.1) the device never hears about the
        free: the payload stays mapped and live — GC keeps relocating it —
        and the device-reported physical usage exceeds the host's actual
        usage.
        """
        if lba not in self._mapping:
            return
        self.stats.record_trim()
        if not self.trim_enabled:
            self._untrimmed.add(lba)
            return
        self._invalidate(lba)

    def enable_trim(self) -> None:
        """Turn TRIM on and retroactively discard every pending free.

        Models the fix of §4.2.1: once TRIM was enabled the monitored
        physical usage immediately dropped (~3% in production).
        """
        self.trim_enabled = True
        for lba in list(self._untrimmed):
            self._invalidate(lba)

    # -- space accounting ---------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Bytes the *device* believes are live (its reported usage)."""
        return self.nand.live_bytes

    @property
    def host_live_bytes(self) -> int:
        """Bytes actually in use by the host (excludes untrimmed frees)."""
        ghost = sum(self._mapping[lba][2] for lba in self._untrimmed)
        return self.nand.live_bytes - ghost

    @property
    def untrimmed_ghost_bytes(self) -> int:
        """Physical bytes held hostage by frees the device never saw."""
        return sum(self._mapping[lba][2] for lba in self._untrimmed)

    @property
    def mapped_lbas(self) -> int:
        return len(self._mapping)

    @property
    def logical_used_bytes(self) -> int:
        return len(self._mapping) * MAPPING_LBA_SIZE

    def physical_utilization(self) -> float:
        return self.live_bytes / self.nand.physical_capacity

    # -- internals -----------------------------------------------------------

    def _invalidate(self, lba: int) -> None:
        entry = self._mapping.pop(lba, None)
        if entry is None:
            return
        block_id, _, stored_len = entry
        self.nand.blocks[block_id].invalidate(stored_len)
        self._residents[block_id].pop(lba, None)
        self._untrimmed.discard(lba)

    def _place(self, lba: int, stored_len: int) -> None:
        block = self._active_block(stored_len)
        offset = block.append(stored_len)
        self._mapping[lba] = (block.block_id, offset, stored_len)
        self._residents.setdefault(block.block_id, {})[lba] = stored_len
        self._write_stamp += 1
        self._block_stamp[block.block_id] = self._write_stamp

    def _active_block(self, needed: int) -> NandBlock:
        if self._active is not None and self._active.free_bytes() >= needed:
            return self._active
        if self._active is not None:
            self._active.sealed = True
        free = self.nand.free_blocks()
        if not free:
            raise OutOfSpaceError("FTL: no free erase blocks")
        self._active = free[0]
        return self._active

    def _ensure_space(self, incoming: int) -> int:
        """Run GC until the reserve holds; returns bytes relocated."""
        relocated = 0
        guard = len(self.nand.blocks) * 4
        while self._needs_gc(incoming):
            victim = self._pick_victim()
            if victim is None:
                raise OutOfSpaceError(
                    "FTL: GC cannot reclaim space "
                    f"(live {self.live_bytes}/{self.nand.physical_capacity})"
                )
            relocated += self._collect(victim)
            guard -= 1
            if guard <= 0:
                raise DeviceError("FTL: GC failed to converge")
        return relocated

    def _needs_gc(self, incoming: int) -> bool:
        free = self.nand.free_blocks()
        active_free = self._active.free_bytes() if self._active else 0
        if active_free >= incoming and len(free) >= self.GC_RESERVE_BLOCKS:
            return False
        return len(free) <= self.GC_RESERVE_BLOCKS

    def _pick_victim(self) -> Optional[NandBlock]:
        candidates = [
            b
            for b in self.nand.victim_candidates()
            if b is not self._active and b.stale_bytes > 0
        ]
        if not candidates:
            return None
        if self.gc_policy == "greedy":
            return candidates[0]  # fewest live bytes
        # Cost-benefit (LFS): benefit = free space * age, cost = 1 + u
        # where u is the live fraction; maximize benefit/cost.
        def score(block: NandBlock) -> float:
            u = block.live_bytes / block.capacity
            age = self._write_stamp - self._block_stamp.get(block.block_id, 0)
            return (1.0 - u) * (1 + age) / (1.0 + u)

        return max(candidates, key=score)

    def _collect(self, victim: NandBlock) -> int:
        """Relocate the victim's live payloads and erase it."""
        residents = self._residents.get(victim.block_id, {})
        relocated = 0
        for lba, stored_len in list(residents.items()):
            # Move to the active block (never back into the victim).
            block = self._active_block(stored_len)
            if block is victim:  # pragma: no cover - guarded by _pick_victim
                raise DeviceError("FTL: GC selected the active block")
            offset = block.append(stored_len)
            self._mapping[lba] = (block.block_id, offset, stored_len)
            self._residents.setdefault(block.block_id, {})[lba] = stored_len
            victim.invalidate(stored_len)
            relocated += stored_len
        self._residents[victim.block_id] = {}
        victim.erase()
        self.stats.record_gc(relocated)
        return relocated
