"""Block devices: PolarCSD (with in-storage compression) and plain SSDs.

All devices expose the same NVMe-shaped interface: 4 KB-aligned reads and
writes addressed by LBA, plus TRIM.  Every operation takes the simulated
start time and returns an :class:`IOCompletion` carrying the finish time;
a per-device FIFO :class:`~repro.engine.Resource` provides queueing so
queue-depth effects emerge naturally.  The same queue serves two call
styles: the synchronous :meth:`~BlockDevice.write`/:meth:`~BlockDevice.read`
adapters (analytic ``serve`` arithmetic, used by legacy entry points and
single-request tests) and the engine-native
:meth:`~BlockDevice.write_proc`/:meth:`~BlockDevice.read_proc` generators
used once :meth:`~BlockDevice.bind_engine` attaches the device to a shared
:class:`repro.engine.Engine` — concurrent requests then really wait in the
per-device FIFO and queue-wait histograms feed ``repro.obs``.

``PolarCSD`` runs every 4 KB logical block through the hardware gzip
engine and places the compressed payload byte-granularly via the FTL.
``PlainSSD`` stores blocks 1:1.  Both keep the actual bytes so the storage
software above can read real data back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.common.errors import DeviceError, OutOfSpaceError, ReproError
from repro.common.latency import LatencyStats
from repro.common.units import KiB, MiB, is_aligned
from repro.compression.gzipdev import HardwareGzip
from repro.csd.faults import FaultProfile, profile_for
from repro.csd.ftl import FTL
from repro.csd.mapping import L2PEntryCodecV1, L2PEntryCodecV2
from repro.csd.specs import DeviceSpec
from repro.engine import Engine, Resource
from repro.obs.events import recorder_active
from repro.obs.metrics import MetricsRegistry
from repro.perf.runtime import perf_active

LBA_SIZE = 4 * KiB


@dataclass(frozen=True)
class IOCompletion:
    """Result of one device command."""

    start_us: float
    done_us: float
    data: Optional[bytes] = None

    @property
    def latency_us(self) -> float:
        return self.done_us - self.start_us


def _load_blocks(
    blocks: Dict[int, bytes], name: str, lba: int, nbytes: int
) -> bytes:
    """Assemble a read payload from the per-LBA block map.

    Single-block reads (the common case: redo batches, WAL flushes,
    per-page log blocks, most compressed pages) return the stored bytes
    object directly — the seed built a ``bytearray`` and copied it to
    ``bytes`` even for one block.  Multi-block reads join once.
    """
    n_blocks = nbytes // LBA_SIZE
    if n_blocks == 1:
        block = blocks.get(lba)
        if block is None:
            raise DeviceError(f"{name}: read of unwritten LBA {lba}")
        return block
    parts = []
    for i in range(n_blocks):
        block = blocks.get(lba + i)
        if block is None:
            raise DeviceError(f"{name}: read of unwritten LBA {lba + i}")
        parts.append(block)
    return b"".join(parts)


class BlockDevice:
    """Common queueing, jitter, fault injection, and stats."""

    def __init__(
        self,
        spec: DeviceSpec,
        seed: int = 0,
        inject_faults: bool = False,
        parallelism: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """``parallelism`` models internal channel/striping concurrency
        (or, at node scope, the 10–12 drives a storage server actually
        has); requests beyond it queue FIFO.  ``metrics`` shares a
        registry with the owning node so device latency histograms and
        FTL counters appear in volume-level snapshots."""
        self.spec = spec
        self.queue = Resource(spec.name, servers=max(1, parallelism))
        self.read_stats = LatencyStats()
        self.write_stats = LatencyStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metric_labels = dict(metric_labels or {})
        self.metric_labels.setdefault("device", spec.name)
        self._read_hist = self.metrics.histogram(
            "csd.device.read_us", **self.metric_labels
        )
        self._write_hist = self.metrics.histogram(
            "csd.device.write_us", **self.metric_labels
        )
        self._read_bytes = self.metrics.counter(
            "csd.device.read_bytes", **self.metric_labels
        )
        self._write_bytes = self.metrics.counter(
            "csd.device.write_bytes", **self.metric_labels
        )
        self._rng = np.random.default_rng(seed)
        self._faults: Optional[FaultProfile] = (
            profile_for(spec.name) if inject_faults else None
        )
        #: Data-level chaos injector (repro.chaos); None = no injection.
        self._chaos = None
        #: Shared discrete-event kernel once bind_engine() is called.
        #: (Named _sim_engine because PolarCSD.engine is the gzip engine.)
        self._sim_engine: Optional[Engine] = None
        #: When True (engine mode), GC relocation cost accrues into
        #: _pending_gc_us for a background process to drain through the
        #: device queue instead of being charged inline to the writer.
        self._defer_gc = False
        self._pending_gc_us = 0.0
        #: Bytes the FTL relocated during the most recent write's service
        #: computation; stashed by the subclass (which has no timestamp)
        #: and turned into a ``gc`` flight-recorder event by
        #: :meth:`_submit_write` (which does).
        self._last_relocated = 0

    def attach_chaos(self, injector) -> None:
        """Arm a :class:`repro.chaos.DeviceInjector` on this device."""
        self._chaos = injector

    def bind_engine(
        self,
        engine: Engine,
        qd: Optional[int] = None,
        defer_gc: bool = False,
    ) -> None:
        """Attach the device queue to a shared event kernel.

        ``qd`` reconfigures the device's queue depth (how many requests
        are in service at once); ``defer_gc`` moves FTL relocation cost
        out of the write path into :attr:`_pending_gc_us` for a
        background GC process to drain.
        """
        self._sim_engine = engine
        self._defer_gc = defer_gc
        self.queue.bind_engine(engine, servers=qd)
        self.queue.bind_metrics(self.metrics, **self.metric_labels)

    # -- subclass hooks ----------------------------------------------------

    def _service_write_us(self, lba: int, data: bytes) -> float:
        raise NotImplementedError

    def _service_read_us(self, lba: int, nbytes: int) -> float:
        raise NotImplementedError

    def _store(self, lba: int, data: bytes) -> None:
        raise NotImplementedError

    def _load(self, lba: int, nbytes: int) -> bytes:
        raise NotImplementedError

    def trim(self, lba: int, nbytes: int = LBA_SIZE) -> None:
        raise NotImplementedError

    # -- public interface ----------------------------------------------------

    def _submit_write(self, start_us: float, lba: int, data: bytes) -> float:
        """Validate, apply chaos/fault effects, persist the payload, and
        return the request's total service time.  State mutation happens
        at submission so the payload is durable regardless of when the
        queue drains (the simulated latency covers the whole operation)."""
        self._check_alignment(len(data))
        if self._chaos is not None:
            self._chaos.begin_io(start_us)
        self._last_relocated = 0
        service = self._service_write_us(lba, data)
        if self._last_relocated:
            rec = recorder_active()
            if rec is not None:
                rec.emit(
                    start_us, "gc", "relocated",
                    node=self.metric_labels.get("node", ""),
                    device=self.spec.name,
                    bytes=self._last_relocated,
                    deferred=self._defer_gc,
                )
        service *= self._jitter()
        service += self._fault_extra(is_read=False)
        store_lba, store_data = lba, data
        if self._chaos is not None:
            store_lba, store_data, extra = self._chaos.on_write(
                start_us, lba, data
            )
            service += extra
        if store_data is not None:
            if store_lba != lba:
                # Misdirected write: if the stray target is unusable
                # (beyond capacity) the payload is simply lost — the
                # device still reports success either way.
                try:
                    self._store(store_lba, store_data)
                except ReproError:
                    pass
            else:
                self._store(store_lba, store_data)
        return service

    def _finish_write(self, start_us: float, done_us: float, nbytes: int) -> None:
        self.write_stats.record(done_us - start_us)
        self._write_hist.record(done_us - start_us)
        self._write_bytes.add(nbytes)

    def _submit_read(self, start_us: float, lba: int, nbytes: int):
        """Validate, load the payload, and return ``(data, service_us)``."""
        self._check_alignment(nbytes)
        if self._chaos is not None:
            self._chaos.begin_io(start_us)
        data = self._load(lba, nbytes)
        service = self._service_read_us(lba, nbytes)
        service *= self._jitter()
        service += self._fault_extra(is_read=True)
        if self._chaos is not None:
            service += self._chaos.on_read(start_us, lba, nbytes)
        return data, service

    def _finish_read(self, start_us: float, done_us: float, nbytes: int) -> None:
        self.read_stats.record(done_us - start_us)
        self._read_hist.record(done_us - start_us)
        self._read_bytes.add(nbytes)

    def write(self, start_us: float, lba: int, data: bytes) -> IOCompletion:
        """Write ``data`` (4 KB-aligned length) at logical block ``lba``."""
        service = self._submit_write(start_us, lba, data)
        done = self.queue.serve(start_us, service)
        self._finish_write(start_us, done, len(data))
        return IOCompletion(start_us, done)

    def read(self, start_us: float, lba: int, nbytes: int) -> IOCompletion:
        """Read ``nbytes`` (4 KB-aligned) starting at logical block ``lba``."""
        data, service = self._submit_read(start_us, lba, nbytes)
        done = self.queue.serve(start_us, service)
        self._finish_read(start_us, done, nbytes)
        return IOCompletion(start_us, done, data)

    # -- engine-native interface ----------------------------------------------

    def write_proc(self, lba: int, data: bytes):
        """Engine process: queue a write FIFO behind in-flight requests,
        occupy a device server for its service time, return the
        :class:`IOCompletion`.  Requires :meth:`bind_engine`."""
        start_us = self._sim_engine.now_us
        service = self._submit_write(start_us, lba, data)
        done = yield from self.queue.process(service)
        self._finish_write(start_us, done, len(data))
        return IOCompletion(start_us, done)

    def read_proc(self, lba: int, nbytes: int):
        """Engine process counterpart of :meth:`read`."""
        start_us = self._sim_engine.now_us
        data, service = self._submit_read(start_us, lba, nbytes)
        done = yield from self.queue.process(service)
        self._finish_read(start_us, done, nbytes)
        return IOCompletion(start_us, done, data)

    def peek(self, lba: int, nbytes: int) -> Optional[bytes]:
        """Inspect stored content without simulating an I/O.

        No queueing, no latency, no stats, no fault/chaos sampling — this
        exists solely for the wall-clock prefetcher, which warms the codec
        memo with content a simulated read is about to fetch anyway.
        Returns ``None`` where a real read would error (unwritten LBA).
        """
        try:
            return self._load(lba, nbytes)
        except ReproError:
            return None

    def gc_proc(self, period_us: float = 500.0):
        """Daemon process: drain accumulated FTL relocation work
        (:attr:`_pending_gc_us`) through the device queue, stealing idle
        device time and interfering with foreground I/O under load."""
        engine = self._sim_engine
        while True:
            yield engine.timeout(period_us)
            if self._pending_gc_us > 0.0:
                burst = self._pending_gc_us
                self._pending_gc_us = 0.0
                done = yield from self.queue.process(burst)
                rec = recorder_active()
                if rec is not None:
                    rec.emit(
                        done, "gc", "deferred_drain",
                        node=self.metric_labels.get("node", ""),
                        device=self.spec.name,
                        burst_us=round(burst, 3),
                    )

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _check_alignment(nbytes: int) -> None:
        if nbytes <= 0 or not is_aligned(nbytes, LBA_SIZE):
            raise DeviceError(f"I/O size {nbytes} not 4 KiB-aligned")

    def _jitter(self) -> float:
        if self.spec.jitter_sigma == 0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.spec.jitter_sigma)))

    def _fault_extra(self, is_read: bool) -> float:
        if self._faults is None:
            return 0.0
        return self._faults.sample_one_us(self._rng, is_read)

    @property
    def name(self) -> str:
        return self.spec.name


class PlainSSD(BlockDevice):
    """Conventional SSD (Intel P4510/P5510/Optane): fixed 1:1 mapping."""

    def __init__(
        self,
        spec: DeviceSpec,
        seed: int = 0,
        inject_faults: bool = False,
        parallelism: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ):
        super().__init__(spec, seed, inject_faults, parallelism,
                         metrics=metrics, metric_labels=metric_labels)
        self._blocks: Dict[int, bytes] = {}

    def _service_write_us(self, lba: int, data: bytes) -> float:
        return (
            self.spec.write_fixed_us
            + self.spec.transfer_us(len(data))
            + self.spec.nand_write_us(len(data))
        )

    def _service_read_us(self, lba: int, nbytes: int) -> float:
        return (
            self.spec.read_fixed_us
            + self.spec.nand_read_us(nbytes)
            + self.spec.transfer_us(nbytes)
        )

    def _store(self, lba: int, data: bytes) -> None:
        capacity_blocks = self.spec.logical_capacity // LBA_SIZE
        for i in range(0, len(data), LBA_SIZE):
            block_lba = lba + i // LBA_SIZE
            if block_lba >= capacity_blocks:
                raise OutOfSpaceError(f"{self.name}: LBA {block_lba} beyond capacity")
            self._blocks[block_lba] = bytes(data[i : i + LBA_SIZE])

    def _load(self, lba: int, nbytes: int) -> bytes:
        return _load_blocks(self._blocks, self.name, lba, nbytes)

    def trim(self, lba: int, nbytes: int = LBA_SIZE) -> None:
        self._check_alignment(nbytes)
        for i in range(nbytes // LBA_SIZE):
            self._blocks.pop(lba + i, None)

    @property
    def physical_used_bytes(self) -> int:
        return len(self._blocks) * LBA_SIZE

    @property
    def logical_used_bytes(self) -> int:
        return len(self._blocks) * LBA_SIZE


class PolarCSD(BlockDevice):
    """Computational storage drive with in-storage gzip compression.

    Each 4 KB logical block is compressed independently (the NVMe interface
    fixes the input size, §2.2.2) and placed byte-granularly by the FTL.
    Generation is selected by the spec: PolarCSD1.0 uses the 8-byte L2P
    codec (byte offsets), PolarCSD2.0 the 7-byte codec (16-byte offsets).
    """

    def __init__(
        self,
        spec: DeviceSpec,
        seed: int = 0,
        inject_faults: bool = False,
        block_capacity: int = 4 * MiB,
        physical_capacity: Optional[int] = None,
        trim_enabled: bool = True,
        parallelism: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        metric_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if not spec.has_compression:
            raise DeviceError(f"{spec.name} has no compression engine")
        super().__init__(spec, seed, inject_faults, parallelism,
                         metrics=metrics, metric_labels=metric_labels)
        codec = L2PEntryCodecV1() if spec.host_managed_ftl else L2PEntryCodecV2()
        self.ftl = FTL(
            physical_capacity
            if physical_capacity is not None
            else spec.physical_capacity,
            codec=codec,
            block_capacity=block_capacity,
            trim_enabled=trim_enabled,
            metrics=self.metrics,
            metric_labels=self.metric_labels,
        )
        self.engine = HardwareGzip()
        self._blocks: Dict[int, bytes] = {}

    # -- service time ---------------------------------------------------------

    def _service_write_us(self, lba: int, data: bytes) -> float:
        n_blocks = len(data) // LBA_SIZE
        # Compression happens per 4 KB block inside the device; physical
        # NAND programming covers only the compressed bytes.
        physical = 0
        relocated = 0
        runtime = perf_active()
        # Block content repeats heavily (filler-tiled row pages, zero
        # padding), so the compressed length is memoized by content; the
        # memoryview keeps per-block slicing copy-free.
        view = (
            memoryview(data)
            if runtime is not None and runtime.zero_copy and n_blocks > 1
            else data
        )
        for i in range(n_blocks):
            block = view[i * LBA_SIZE : (i + 1) * LBA_SIZE]
            if runtime is not None:
                compressed_len = min(
                    runtime.hw_compressed_len(self.engine, block), LBA_SIZE
                )
            else:
                compressed_len = min(len(self.engine.compress(block)), LBA_SIZE)
            relocated += self.ftl.write(lba + i, compressed_len)
            physical += self.ftl.stored_length(lba + i)
        self._last_relocated = relocated
        service = (
            self.spec.write_fixed_us
            + self.spec.transfer_us(len(data))
            + self.spec.hw_compress_us_per_block * n_blocks
            + self.spec.nand_write_us(physical)
        )
        # GC relocation work occupies the device asynchronously; charge it
        # as extra service so sustained overwrites feel the pressure — or,
        # in engine mode with defer_gc, bank it for the background GC
        # process to drain through the same queue.
        if relocated:
            gc_us = self.spec.nand_write_us(relocated) + self.spec.nand_read_us(
                relocated
            )
            if self._defer_gc:
                self._pending_gc_us += gc_us
            else:
                service += gc_us
        return service

    def _service_read_us(self, lba: int, nbytes: int) -> float:
        n_blocks = nbytes // LBA_SIZE
        physical = 0
        for i in range(n_blocks):
            physical += self.ftl.stored_length(lba + i)
        return (
            self.spec.read_fixed_us
            + self.spec.nand_read_us(physical)
            + self.spec.hw_decompress_us_per_block * n_blocks
            + self.spec.transfer_us(nbytes)
        )

    # -- data -------------------------------------------------------------------

    def _store(self, lba: int, data: bytes) -> None:
        for i in range(0, len(data), LBA_SIZE):
            self._blocks[lba + i // LBA_SIZE] = bytes(data[i : i + LBA_SIZE])

    def _load(self, lba: int, nbytes: int) -> bytes:
        return _load_blocks(self._blocks, self.name, lba, nbytes)

    def trim(self, lba: int, nbytes: int = LBA_SIZE) -> None:
        self._check_alignment(nbytes)
        for i in range(nbytes // LBA_SIZE):
            self.ftl.trim(lba + i)
            self._blocks.pop(lba + i, None)

    # -- space reporting ----------------------------------------------------------

    @property
    def physical_used_bytes(self) -> int:
        """What the device reports (includes untrimmed ghosts)."""
        return self.ftl.live_bytes

    @property
    def logical_used_bytes(self) -> int:
        return self.ftl.logical_used_bytes

    @property
    def compression_ratio(self) -> float:
        """Logical bytes stored per physical byte consumed."""
        physical = self.ftl.host_live_bytes
        if physical == 0:
            return 1.0
        return self.ftl.logical_used_bytes / physical
