"""Workload generation: domain datasets, fio-style buffers, sysbench OLTP."""

from repro.workloads.datagen import DATASETS, DatasetSpec, dataset_pages, dataset_rows
from repro.workloads.fio import buffer_with_ratio
from repro.workloads.sysbench import (
    SYSBENCH_WORKLOADS,
    SysbenchResult,
    run_sysbench,
)
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_pages",
    "dataset_rows",
    "buffer_with_ratio",
    "SYSBENCH_WORKLOADS",
    "SysbenchResult",
    "run_sysbench",
    "ZipfSampler",
]
