"""A sysbench-like OLTP driver over the simulated PolarDB.

Implements the seven workloads of Figure 12 (I, P-S, RO, RW, WO, U-I,
U-NI) with sysbench's transaction shapes: OLTP-Read-Only is 10 point
selects + 4 range scans; Read-Write adds the write mix; Write-Only is the
write mix alone; Update-Index rewrites an indexed column (modelled as
delete+insert, which touches tree structure); Update-Non-Index overwrites
a payload column in place.

``threads`` client threads run as genuine concurrent processes on one
shared :class:`repro.engine.Engine` (this module used to keep a private
event heap).  Against a :class:`~repro.db.database.PolarDB` the clients
drive the engine-native proc API end to end — statement CPU queues on
the compute core pools, redo commits coalesce in the storage layer's
group-commit pipeline, device queues really back up — so thread scaling,
saturation, and the Fig 15 CPU-bound crossover *emerge* from queueing.
Baseline engines without ``bind_engine`` still run on the shared kernel
through a synchronous adapter (each op executes analytically and the
client sleeps through its completion time), preserving their timings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.common.latency import LatencyStats
from repro.engine import Engine
from repro.workloads.zipf import ZipfSampler

#: sysbench's c-column: digits + fixed padding, moderately compressible.
_PAD = b"-" * 40


def default_value(rng: random.Random, key: int) -> bytes:
    return b"sbtest|%010d|%020d|%s|%020d\n" % (
        key,
        rng.randrange(10**19),
        _PAD,
        rng.randrange(10**19),
    )


@dataclass
class _TxnContext:
    """Client-side operation vocabulary; every op is an engine process.

    With ``use_procs`` the db's engine-native ``*_proc`` generators are
    driven (real queueing); without it each legacy call runs at the
    engine's current time and the client sleeps through its analytic
    completion — identical timing to the old private-heap driver.
    """

    db: object
    table: str
    rng: random.Random
    sampler: ZipfSampler
    fresh_key: Callable[[], int]
    engine: Engine
    ro_index: int = -1  # -1: reads go to the RW node
    use_procs: bool = False

    def pick_key(self) -> int:
        return int(self.sampler.one())

    def _op(self, name: str, *args, **kwargs):
        if self.use_procs:
            result = yield from getattr(self.db, name + "_proc")(
                *args, **kwargs
            )
            return result
        result = getattr(self.db, name)(self.engine.now_us, *args, **kwargs)
        done = getattr(result, "done_us", result)
        if done > self.engine.now_us:
            yield self.engine.sleep_until(done)
        return result

    def select(self, key: int):
        yield from self._op("select", self.table, key, ro_index=self.ro_index)

    def range_scan(self, key: int, span: int = 20):
        yield from self._op("range_select", self.table, key, key + span)

    def update_non_index(self, key: int):
        value = default_value(self.rng, key)
        try:
            yield from self._op("update", self.table, key, value)
        except Exception:
            yield from self._op("insert", self.table, key, value)

    def update_index(self, key: int):
        """Index-column update: reposition the row (delete + insert)."""
        try:
            yield from self._op("delete", self.table, key)
        except Exception:
            pass
        try:
            yield from self._op(
                "insert", self.table, key, default_value(self.rng, key)
            )
        except Exception:
            yield from self.update_non_index(key)

    def insert_fresh(self):
        key = self.fresh_key()
        yield from self._op(
            "insert", self.table, key, default_value(self.rng, key)
        )

    def delete_insert(self, key: int):
        yield from self.update_index(key)


def _txn_insert(ctx: _TxnContext):
    yield from ctx.insert_fresh()


def _txn_point_select(ctx: _TxnContext):
    yield from ctx.select(ctx.pick_key())


def _txn_read_only(ctx: _TxnContext):
    for _ in range(10):
        yield from ctx.select(ctx.pick_key())
    for _ in range(4):
        yield from ctx.range_scan(ctx.pick_key())


def _txn_write_mix(ctx: _TxnContext):
    yield from ctx.update_index(ctx.pick_key())
    yield from ctx.update_non_index(ctx.pick_key())
    yield from ctx.delete_insert(ctx.pick_key())


def _txn_read_write(ctx: _TxnContext):
    yield from _txn_read_only(ctx)
    yield from _txn_write_mix(ctx)


def _txn_write_only(ctx: _TxnContext):
    yield from _txn_write_mix(ctx)


def _txn_update_index(ctx: _TxnContext):
    yield from ctx.update_index(ctx.pick_key())


def _txn_update_non_index(ctx: _TxnContext):
    yield from ctx.update_non_index(ctx.pick_key())


#: Transaction shapes, as generator factories over a :class:`_TxnContext`.
SYSBENCH_WORKLOADS: Dict[str, Callable] = {
    "insert": _txn_insert,
    "point_select": _txn_point_select,
    "read_only": _txn_read_only,
    "read_write": _txn_read_write,
    "write_only": _txn_write_only,
    "update_index": _txn_update_index,
    "update_non_index": _txn_update_non_index,
}

#: Paper-figure labels.
WORKLOAD_LABELS = {
    "insert": "I",
    "point_select": "P-S",
    "read_only": "RO",
    "read_write": "RW",
    "write_only": "WO",
    "update_index": "U-I",
    "update_non_index": "U-NI",
}


@dataclass
class SysbenchResult:
    workload: str
    threads: int
    transactions: int
    duration_s: float
    #: Actual simulated span covered (start of first txn to end of last);
    #: differs from ``duration_s`` when a transaction cap cut the run short.
    elapsed_s: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def tps(self) -> float:
        span = self.elapsed_s if self.elapsed_s > 0 else self.duration_s
        if span <= 0:
            return 0.0
        return self.transactions / span

    @property
    def avg_latency_us(self) -> float:
        return self.latency.mean_us

    @property
    def p95_latency_us(self) -> float:
        return self.latency.p95_us if self.latency.count else 0.0


def prepare_table(
    db, table: str = "sbtest", rows: int = 2000, seed: int = 0
) -> float:
    """Create and load the sysbench table; returns the load finish time.

    Accepts either a legacy ``PolarDB`` (now_us-threaded calls) or a
    :class:`repro.api.PolarStoreClient` (which keeps the clock itself).
    """
    rng = random.Random(seed)
    db.create_table(table)
    data = [(key, default_value(rng, key)) for key in range(rows)]
    from repro.api.client import PolarStoreClient

    if isinstance(db, PolarStoreClient):
        db.bulk_load(table, data)
        return db.checkpoint()
    done = db.bulk_load(0.0, table, data)
    return db.checkpoint(done)


def run_sysbench(
    db,
    workload: str,
    duration_s: float = 2.0,
    threads: int = 16,
    table: str = "sbtest",
    key_range: int = 2000,
    start_us: float = 0.0,
    seed: int = 0,
    zipf_s: float = 0.6,
    ro_index: int = -1,
    max_transactions: Optional[int] = None,
    engine: Optional[Engine] = None,
    group_commit_window_us: float = 0.0,
) -> SysbenchResult:
    """Run one workload for ``duration_s`` of *simulated* time.

    ``engine`` lets callers share one kernel across phases (background
    processes keep running between runs); by default a fresh engine
    starts at ``start_us``.  ``group_commit_window_us`` is forwarded to
    the storage group-commit pipeline (0 = flush immediately; batching
    still emerges under load).
    """
    if workload not in SYSBENCH_WORKLOADS:
        raise KeyError(
            f"unknown workload {workload!r}; options: {sorted(SYSBENCH_WORKLOADS)}"
        )
    txn = SYSBENCH_WORKLOADS[workload]
    rng = random.Random(seed)
    fresh = iter(range(key_range + 1_000_000, 10**9))
    eng = engine if engine is not None else Engine(start_us=start_us)
    eng.advance_to(start_us)
    use_procs = hasattr(db, "bind_engine")
    if use_procs:
        db.bind_engine(eng, group_commit_window_us=group_commit_window_us)
    ctx = _TxnContext(
        db=db,
        table=table,
        rng=rng,
        sampler=ZipfSampler(key_range, s=zipf_s, seed=seed),
        fresh_key=lambda: next(fresh),
        engine=eng,
        ro_index=ro_index,
        use_procs=use_procs,
    )
    horizon = start_us + duration_s * 1e6
    result = SysbenchResult(workload, threads, 0, duration_s)
    state = {"started": 0, "last_done": start_us}

    def client(tid: int):
        # Each client issues its next transaction as soon as its previous
        # one completes; the cap is checked *before* starting a
        # transaction, so exactly ``max_transactions`` execute.
        while True:
            now = eng.now_us
            if now >= horizon:
                return
            if (
                max_transactions is not None
                and state["started"] >= max_transactions
            ):
                return
            state["started"] += 1
            yield from txn(ctx)
            done = eng.now_us
            result.latency.record(done - now)
            result.transactions += 1
            state["last_done"] = max(state["last_done"], done)

    procs = [
        eng.spawn(client(tid), name=f"sysbench-{tid}", at_us=start_us)
        for tid in range(threads)
    ]
    eng.run_until_complete(procs)
    result.elapsed_s = max(state["last_done"] - start_us, 0.0) / 1e6
    return result
