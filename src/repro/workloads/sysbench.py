"""A sysbench-like OLTP driver over the simulated PolarDB.

Implements the seven workloads of Figure 12 (I, P-S, RO, RW, WO, U-I,
U-NI) with sysbench's transaction shapes: OLTP-Read-Only is 10 point
selects + 4 range scans; Read-Write adds the write mix; Write-Only is the
write mix alone; Update-Index rewrites an indexed column (modelled as
delete+insert, which touches tree structure); Update-Non-Index overwrites
a payload column in place.

``threads`` client threads are simulated with an event heap: each thread
issues its next transaction when its previous one completes, so device
queueing and CPU costs shape throughput exactly as concurrency grows.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.common.latency import LatencyStats
from repro.workloads.zipf import ZipfSampler

#: sysbench's c-column: digits + fixed padding, moderately compressible.
_PAD = b"-" * 40


def default_value(rng: random.Random, key: int) -> bytes:
    return b"sbtest|%010d|%020d|%s|%020d\n" % (
        key,
        rng.randrange(10**19),
        _PAD,
        rng.randrange(10**19),
    )


@dataclass
class _TxnContext:
    db: object
    table: str
    rng: random.Random
    sampler: ZipfSampler
    fresh_key: Callable[[], int]
    ro_index: int = -1  # -1: reads go to the RW node

    def pick_key(self) -> int:
        return int(self.sampler.one())

    def select(self, now: float, key: int) -> float:
        return self.db.select(now, self.table, key, ro_index=self.ro_index).done_us

    def range_scan(self, now: float, key: int, span: int = 20) -> float:
        return self.db.range_select(now, self.table, key, key + span).done_us

    def update_non_index(self, now: float, key: int) -> float:
        value = default_value(self.rng, key)
        try:
            return self.db.update(now, self.table, key, value).done_us
        except Exception:
            return self.db.insert(now, self.table, key, value).done_us

    def update_index(self, now: float, key: int) -> float:
        """Index-column update: reposition the row (delete + insert)."""
        try:
            now = self.db.delete(now, self.table, key).done_us
        except Exception:
            pass
        try:
            return self.db.insert(
                now, self.table, key, default_value(self.rng, key)
            ).done_us
        except Exception:
            return self.update_non_index(now, key)

    def insert_fresh(self, now: float) -> float:
        key = self.fresh_key()
        return self.db.insert(
            now, self.table, key, default_value(self.rng, key)
        ).done_us

    def delete_insert(self, now: float, key: int) -> float:
        return self.update_index(now, key)


def _txn_insert(ctx: _TxnContext, now: float) -> float:
    return ctx.insert_fresh(now)


def _txn_point_select(ctx: _TxnContext, now: float) -> float:
    return ctx.select(now, ctx.pick_key())


def _txn_read_only(ctx: _TxnContext, now: float) -> float:
    for _ in range(10):
        now = ctx.select(now, ctx.pick_key())
    for _ in range(4):
        now = ctx.range_scan(now, ctx.pick_key())
    return now


def _txn_write_mix(ctx: _TxnContext, now: float) -> float:
    now = ctx.update_index(now, ctx.pick_key())
    now = ctx.update_non_index(now, ctx.pick_key())
    now = ctx.delete_insert(now, ctx.pick_key())
    return now


def _txn_read_write(ctx: _TxnContext, now: float) -> float:
    now = _txn_read_only(ctx, now)
    return _txn_write_mix(ctx, now)


def _txn_write_only(ctx: _TxnContext, now: float) -> float:
    return _txn_write_mix(ctx, now)


def _txn_update_index(ctx: _TxnContext, now: float) -> float:
    return ctx.update_index(now, ctx.pick_key())


def _txn_update_non_index(ctx: _TxnContext, now: float) -> float:
    return ctx.update_non_index(now, ctx.pick_key())


SYSBENCH_WORKLOADS: Dict[str, Callable[[_TxnContext, float], float]] = {
    "insert": _txn_insert,
    "point_select": _txn_point_select,
    "read_only": _txn_read_only,
    "read_write": _txn_read_write,
    "write_only": _txn_write_only,
    "update_index": _txn_update_index,
    "update_non_index": _txn_update_non_index,
}

#: Paper-figure labels.
WORKLOAD_LABELS = {
    "insert": "I",
    "point_select": "P-S",
    "read_only": "RO",
    "read_write": "RW",
    "write_only": "WO",
    "update_index": "U-I",
    "update_non_index": "U-NI",
}


@dataclass
class SysbenchResult:
    workload: str
    threads: int
    transactions: int
    duration_s: float
    #: Actual simulated span covered (start of first txn to end of last);
    #: differs from ``duration_s`` when a transaction cap cut the run short.
    elapsed_s: float = 0.0
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def tps(self) -> float:
        span = self.elapsed_s if self.elapsed_s > 0 else self.duration_s
        if span <= 0:
            return 0.0
        return self.transactions / span

    @property
    def avg_latency_us(self) -> float:
        return self.latency.mean_us

    @property
    def p95_latency_us(self) -> float:
        return self.latency.p95_us if self.latency.count else 0.0


def prepare_table(
    db, table: str = "sbtest", rows: int = 2000, seed: int = 0
) -> float:
    """Create and load the sysbench table; returns the load finish time."""
    rng = random.Random(seed)
    db.create_table(table)
    data = [(key, default_value(rng, key)) for key in range(rows)]
    done = db.bulk_load(0.0, table, data)
    return db.checkpoint(done)


def run_sysbench(
    db,
    workload: str,
    duration_s: float = 2.0,
    threads: int = 16,
    table: str = "sbtest",
    key_range: int = 2000,
    start_us: float = 0.0,
    seed: int = 0,
    zipf_s: float = 0.6,
    ro_index: int = -1,
    max_transactions: Optional[int] = None,
) -> SysbenchResult:
    """Run one workload for ``duration_s`` of *simulated* time."""
    if workload not in SYSBENCH_WORKLOADS:
        raise KeyError(
            f"unknown workload {workload!r}; options: {sorted(SYSBENCH_WORKLOADS)}"
        )
    txn = SYSBENCH_WORKLOADS[workload]
    rng = random.Random(seed)
    fresh = iter(range(key_range + 1_000_000, 10**9))
    ctx = _TxnContext(
        db=db,
        table=table,
        rng=rng,
        sampler=ZipfSampler(key_range, s=zipf_s, seed=seed),
        fresh_key=lambda: next(fresh),
        ro_index=ro_index,
    )
    horizon = start_us + duration_s * 1e6
    result = SysbenchResult(workload, threads, 0, duration_s)
    heap = [(start_us, tid) for tid in range(threads)]
    heapq.heapify(heap)
    last_done = start_us
    while heap:
        now, tid = heapq.heappop(heap)
        if now >= horizon:
            continue
        if max_transactions is not None and result.transactions >= max_transactions:
            break
        done = txn(ctx, now)
        result.latency.record(done - now)
        result.transactions += 1
        last_done = max(last_done, done)
        heapq.heappush(heap, (done, tid))
    result.elapsed_s = max(last_done - start_us, 0.0) / 1e6
    return result
