"""Synthetic domain datasets.

The paper evaluates space on four production datasets dumped from user
databases (Finance, Food & Beverage, Wiki, Air Transport — Figure 14 and
Table 3).  Those dumps are unavailable, so each generator here models the
*redundancy structure* of its domain, which is what determines compression
behaviour:

* **finance** — ledger entries: a small pool of account ids, dictionary
  descriptions, low-entropy amounts, near-constant dates.  Long-range
  structure repeats well beyond 4 KB, so 16 KB software compression (and
  entropy coding) shines — this is the dataset where Algorithm 1 picks
  zstd most often (73.1% in Table 3).
* **fnb** — point-of-sale order lines: medium dictionary of item names but
  high-entropy quantities/prices/timestamps; lz4 usually ties zstd after
  4 KB alignment (58.7% lz4 in Table 3).
* **wiki** — running text with Zipf-distributed word frequencies.
* **air_transport** — fixed-width flight segments: dense categorical codes
  (carriers, airports) plus high-entropy tail numbers and times.

Generators yield 16 KB page images (records packed then zero-padded like a
page's free space) and (key, value) rows for loading the DB engine.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.common.units import DB_PAGE_SIZE

RecordFn = Callable[[random.Random, int, dict], bytes]
ProfileFn = Callable[[random.Random], dict]


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic domain dataset.

    ``profile`` draws per-page parameters (dictionary sizes, numeric
    entropy, optional free-text fields) so compressed page sizes vary the
    way real tables' pages do — without this, every page of a dataset
    would land in the same 4 KB-aligned bucket and Algorithm 1 would have
    nothing to choose between (Table 3 would degenerate).
    """

    name: str
    record: RecordFn
    profile: ProfileFn
    description: str


# --------------------------------------------------------------------- #
# Record generators                                                      #
# --------------------------------------------------------------------- #

_FIN_DESCRIPTIONS = [
    b"WIRE TRANSFER INBOUND", b"CARD PURCHASE", b"ACH PAYMENT",
    b"INTEREST ACCRUAL", b"MONTHLY SERVICE FEE", b"ATM WITHDRAWAL",
    b"REFUND ISSUED", b"STANDING ORDER",
]
_FIN_BRANCHES = [b"BR%03d" % i for i in range(12)]


def _finance_profile(rng: random.Random) -> dict:
    return {
        # Small pool -> pages dominated by a few hot accounts; large pool
        # (a cold archive partition) -> high-entropy account numbers.
        "account_pool": rng.choice((4096, 65536, 1 << 20)),
        "amount_digits": rng.choice((9, 12)),
        # Most ledger tables carry a free-text memo/reference column.
        "memo_len": rng.choice((16, 24, 32, 40, 48, 56)),
    }


def _finance_record(rng: random.Random, row_id: int, profile: dict) -> bytes:
    account = 1_000_000 + rng.randrange(profile["account_pool"])
    amount = rng.randrange(10 ** profile["amount_digits"])
    memo = rng.randbytes(profile["memo_len"]).hex().encode()
    return (
        b"%012d|ACCT%010d|%s|%s|2026-07-01|%010d.%02d|EUR|SETTLED|%s\n"
        % (
            row_id,
            account,
            rng.choice(_FIN_BRANCHES),
            rng.choice(_FIN_DESCRIPTIONS),
            amount // 100,
            amount % 100,
            memo,
        )
    )


_FNB_ITEMS = [
    b"espresso", b"cappuccino", b"flat-white", b"croissant", b"bagel",
    b"avocado-toast", b"orange-juice", b"cold-brew", b"matcha-latte",
    b"blueberry-muffin", b"granola-bowl", b"chai", b"mocha", b"scone",
    b"club-sandwich", b"tomato-soup", b"house-salad", b"lemon-tart",
    b"iced-tea", b"hot-chocolate", b"pain-au-chocolat", b"quiche",
]


def _fnb_profile(rng: random.Random) -> dict:
    return {
        "menu_size": rng.randrange(6, len(_FNB_ITEMS) + 1),
        "ts_entropy": rng.choice((10**4, 10**6, 10**8)),
        # POS terminals sometimes attach order notes (free text / ids).
        "note_len": rng.choice((0, 0, 0, 0, 0, 0, 6, 12)),
    }


def _fnb_record(rng: random.Random, row_id: int, profile: dict) -> bytes:
    item = rng.choice(_FNB_ITEMS[: profile["menu_size"]])
    note = rng.randbytes(profile["note_len"]).hex().encode()
    return b"%010d,%s,qty=%d,unit=%d.%02d,tip=%d,ts=%010d,srv=%04d,%s\n" % (
        row_id,
        item,
        rng.randrange(1, 9),
        rng.randrange(2, 30),
        rng.randrange(100),
        rng.randrange(500),
        1_700_000_000 + rng.randrange(profile["ts_entropy"]),
        rng.randrange(10000),
        note,
    )


_WIKI_COMMON = (
    b"the of and to in a is was for on as with by at from it that his were "
    b"are which this also be had not have one their has its but first new "
).split()
_WIKI_TOPIC = (
    b"storage database compression cloud hardware software latency page "
    b"system architecture deployment cluster device driver memory index "
    b"transaction replication throughput benchmark evaluation production "
).split()


def _wiki_profile(rng: random.Random) -> dict:
    return {
        "common_fraction": rng.choice((0.35, 0.35, 0.5, 0.65, 0.65)),
        # Articles embed markup/refs with high-entropy identifiers.
        "ref_probability": rng.choice((0.1, 0.2, 0.3)),
    }


def _wiki_record(rng: random.Random, row_id: int, profile: dict) -> bytes:
    words: List[bytes] = []
    for _ in range(rng.randrange(8, 18)):
        pool = (
            _WIKI_COMMON
            if rng.random() < profile["common_fraction"]
            else _WIKI_TOPIC
        )
        words.append(rng.choice(pool))
    sentence = b" ".join(words)
    if rng.random() < profile["ref_probability"]:
        sentence += b" [ref:%s]" % rng.randbytes(6).hex().encode()
    return sentence.capitalize() + b". "


_AIR_CARRIERS = [b"CA", b"MU", b"CZ", b"HU", b"3U", b"MF", b"SC", b"ZH"]
_AIR_AIRPORTS = [
    b"PEK", b"PVG", b"CAN", b"SZX", b"CTU", b"KMG", b"XIY", b"SHA",
    b"HGH", b"WUH", b"NKG", b"CKG", b"TAO", b"XMN", b"CSX", b"URC",
]


def _air_profile(rng: random.Random) -> dict:
    return {
        "airport_pool": rng.choice((4, 8, 16)),
        "remark_len": rng.choice((0, 0, 8, 16)),
    }


def _air_record(rng: random.Random, row_id: int, profile: dict) -> bytes:
    pool = _AIR_AIRPORTS[: profile["airport_pool"]]
    dep, arr = rng.sample(pool, 2)
    remark = rng.randbytes(profile["remark_len"]).hex().encode()
    return b"%s%04d %s-%s D%02d%02d A%02d%02d B7%02d REG-B%04d GATE%03d %s %s\n" % (
        rng.choice(_AIR_CARRIERS),
        rng.randrange(10000),
        dep,
        arr,
        rng.randrange(24), rng.randrange(60),
        rng.randrange(24), rng.randrange(60),
        rng.choice((37, 77, 87, 20, 21)),
        rng.randrange(10000),
        rng.randrange(400),
        b"ON-TIME" if rng.random() < 0.8 else b"DELAYED",
        remark,
    )


DATASETS: Dict[str, DatasetSpec] = {
    "finance": DatasetSpec(
        "finance", _finance_record, _finance_profile, "bank ledger entries"
    ),
    "fnb": DatasetSpec(
        "fnb", _fnb_record, _fnb_profile, "food & beverage order lines"
    ),
    "wiki": DatasetSpec("wiki", _wiki_record, _wiki_profile, "encyclopedia text"),
    "air_transport": DatasetSpec(
        "air_transport", _air_record, _air_profile, "flight segment records"
    ),
}


# --------------------------------------------------------------------- #
# Page / row assembly                                                    #
# --------------------------------------------------------------------- #


def dataset_pages(name: str, n_pages: int, seed: int = 0) -> List[bytes]:
    """``n_pages`` 16 KB page images of the named dataset."""
    spec = DATASETS[name]
    rng = random.Random((seed << 8) ^ zlib.crc32(name.encode()))
    pages: List[bytes] = []
    row_id = 0
    for _ in range(n_pages):
        profile = spec.profile(rng)
        buf = bytearray()
        # Pages keep some free space (tail padding) like a real B+tree
        # leaf; the reserve varies with the table's update activity.
        budget = DB_PAGE_SIZE - rng.randrange(256, 3072)
        while len(buf) < budget:
            buf += spec.record(rng, row_id, profile)
            row_id += 1
        del buf[budget:]
        buf += bytes(DB_PAGE_SIZE - len(buf))
        pages.append(bytes(buf))
    return pages


def dataset_rows(
    name: str, n_rows: int, seed: int = 0
) -> List[Tuple[int, bytes]]:
    """(key, record) rows for loading into the DB engine."""
    spec = DATASETS[name]
    rng = random.Random((seed << 8) ^ zlib.crc32(name.encode()))
    profile = spec.profile(rng)
    return [(row_id, spec.record(rng, row_id, profile)) for row_id in range(n_rows)]


def corpus(names=None, pages_per_dataset: int = 64, seed: int = 0) -> List[bytes]:
    """A mixed corpus across datasets (the Figure 2 input)."""
    names = list(DATASETS) if names is None else list(names)
    out: List[bytes] = []
    for name in names:
        out.extend(dataset_pages(name, pages_per_dataset, seed))
    return out
