"""Bounded Zipf sampling for skewed key access."""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draws integers in [0, n) with Zipf(s) popularity.

    Uses the inverse-CDF method over the exact finite distribution, so
    there is no rejection loop and the skew parameter may be any s >= 0
    (s=0 degenerates to uniform).
    """

    def __init__(self, n: int, s: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"need a positive population, got {n}")
        if s < 0:
            raise ValueError(f"skew must be non-negative, got {s}")
        self.n = n
        self.s = s
        self._rng = np.random.default_rng(seed)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Popularity rank -> item: shuffle so hot keys are spread around.
        self._ranks = self._rng.permutation(n)

    def sample(self, count: int = 1) -> np.ndarray:
        uniform = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, uniform)
        return self._ranks[ranks]

    def one(self) -> int:
        return int(self.sample(1)[0])
