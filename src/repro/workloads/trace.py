"""Block-level I/O trace generation and replay.

The paper evaluates devices with FIO-style synthetic workloads (Figure 7);
real storage evaluation also replays block traces.  This module provides
both halves: a parametric trace generator (read/write mix, Zipf skew,
size distribution, target compressibility) and a replayer that drives any
:class:`~repro.csd.device.BlockDevice`, honoring inter-arrival gaps and
reporting per-op latency statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.latency import LatencyStats
from repro.common.units import KiB, LBA_SIZE
from repro.workloads.fio import buffer_with_ratio
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class TraceRecord:
    """One I/O of a block trace."""

    issue_us: float
    op: str          # "read" | "write"
    lba: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.nbytes <= 0 or self.nbytes % LBA_SIZE:
            raise ValueError(f"size {self.nbytes} not 4 KiB-aligned")


def generate_trace(
    n_ios: int = 1000,
    read_fraction: float = 0.7,
    lba_space: int = 4096,
    zipf_s: float = 0.9,
    sizes: Sequence[int] = (4 * KiB, 16 * KiB),
    mean_interarrival_us: float = 50.0,
    seed: int = 0,
) -> List[TraceRecord]:
    """A synthetic open-loop trace with the given mix and skew."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    rng = random.Random(seed)
    sampler = ZipfSampler(lba_space, s=zipf_s, seed=seed)
    records: List[TraceRecord] = []
    now = 0.0
    max_size_blocks = max(sizes) // LBA_SIZE
    for _ in range(n_ios):
        now += rng.expovariate(1.0) * mean_interarrival_us
        op = "read" if rng.random() < read_fraction else "write"
        size = rng.choice(list(sizes))
        # Align each access to its own size so reads never span holes.
        slot = int(sampler.one()) // max_size_blocks * max_size_blocks
        records.append(TraceRecord(now, op, slot, size))
    return records


@dataclass
class ReplayReport:
    reads: LatencyStats
    writes: LatencyStats
    skipped_reads: int

    @property
    def total_ios(self) -> int:
        return self.reads.count + self.writes.count


def replay_trace(
    device,
    trace: Sequence[TraceRecord],
    compressibility: float = 2.0,
    seed: int = 0,
    assume_prefilled: bool = False,
    time_offset_us: float = 0.0,
) -> ReplayReport:
    """Drive ``device`` with ``trace``; returns per-op latency stats.

    Reads of never-written LBAs are counted as skipped unless
    ``assume_prefilled`` declares that :func:`prefill` ran first.
    """
    rng = random.Random(seed)
    written: Dict[int, int] = {}
    if assume_prefilled:
        for record in trace:
            written[record.lba] = max(
                written.get(record.lba, 0), record.nbytes
            )
    reads = LatencyStats()
    writes = LatencyStats()
    skipped = 0
    for record in trace:
        issue = record.issue_us + time_offset_us
        if record.op == "write":
            buf = buffer_with_ratio(
                compressibility, record.nbytes, seed=rng.randrange(1 << 30)
            )
            completion = device.write(issue, record.lba, buf)
            writes.record(completion.latency_us)
            written[record.lba] = max(
                written.get(record.lba, 0), record.nbytes
            )
        else:
            if written.get(record.lba, 0) < record.nbytes:
                skipped += 1
                continue
            completion = device.read(issue, record.lba, record.nbytes)
            reads.record(completion.latency_us)
    return ReplayReport(reads, writes, skipped)


def prefill(device, trace: Sequence[TraceRecord], compressibility: float = 2.0,
            seed: int = 1) -> float:
    """Write every LBA range the trace will read, before replay.

    Returns the prefill completion time; pass it as ``time_offset_us`` to
    :func:`replay_trace` so replayed I/Os do not queue behind the fill.
    """
    rng = random.Random(seed)
    needed: Dict[int, int] = {}
    for record in trace:
        needed[record.lba] = max(needed.get(record.lba, 0), record.nbytes)
    now = 0.0
    for lba, nbytes in sorted(needed.items()):
        buf = buffer_with_ratio(compressibility, nbytes,
                                seed=rng.randrange(1 << 30))
        now = device.write(now, lba, buf).done_us
    return now
