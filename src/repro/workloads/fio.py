"""fio-style buffers with a target compression ratio.

Figure 7 drives devices with FIO configured for target compression ratios
1.0–4.0.  FIO achieves this by mixing incompressible random data with
compressible filler inside each block; we reproduce that and calibrate the
mix against the actual hardware-gzip transform (zlib level 5) so that a
"ratio 3.0" buffer really compresses ~3.0× in the simulated device.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict

from repro.common.units import KiB

_BLOCK = 4 * KiB
_CALIBRATION_CACHE: Dict[float, float] = {}


def _block_with_fill(fill_fraction: float, rng: random.Random) -> bytes:
    """One 4 KiB block: ``fill_fraction`` repeated filler + random tail."""
    n_fill = int(_BLOCK * fill_fraction)
    filler = (b"\x00\x11\x22\x33" * (_BLOCK // 4))[:n_fill]
    tail = rng.randbytes(_BLOCK - n_fill)
    return filler + tail


def _measured_ratio(fill_fraction: float, seed: int = 1234) -> float:
    rng = random.Random(seed)
    total = 0
    compressed = 0
    for _ in range(8):
        block = _block_with_fill(fill_fraction, rng)
        total += len(block)
        compressed += min(len(zlib.compress(block, 5)), len(block))
    return total / compressed


def fill_fraction_for_ratio(target_ratio: float) -> float:
    """Binary-search the filler fraction yielding ``target_ratio``."""
    if target_ratio < 1.0:
        raise ValueError(f"ratio must be >= 1.0, got {target_ratio}")
    key = round(target_ratio, 3)
    if key in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[key]
    if target_ratio <= 1.005:
        _CALIBRATION_CACHE[key] = 0.0
        return 0.0
    lo, hi = 0.0, 1.0
    for _ in range(24):
        mid = (lo + hi) / 2
        if _measured_ratio(mid) < target_ratio:
            lo = mid
        else:
            hi = mid
    _CALIBRATION_CACHE[key] = hi
    return hi


def buffer_with_ratio(target_ratio: float, size: int, seed: int = 0) -> bytes:
    """A ``size``-byte buffer (4 KiB-aligned) compressing ~``target_ratio``
    under the hardware gzip transform."""
    if size % _BLOCK:
        raise ValueError(f"size {size} not 4 KiB-aligned")
    fraction = fill_fraction_for_ratio(target_ratio)
    rng = random.Random(seed)
    return b"".join(_block_with_fill(fraction, rng) for _ in range(size // _BLOCK))
