"""PolarStore reproduction: dual-layer compression for cloud-native RDBMSs.

Subpackages
-----------
``repro.common``
    Units, simulated clock, latency statistics, errors.
``repro.compression``
    LZ4 and zstd-like codecs, hardware-gzip model, Algorithm-1 selector.
``repro.csd``
    PolarCSD simulator (FTL, NAND, GC, TRIM) plus conventional SSD models.
``repro.storage``
    The PolarStore storage node: allocator, index, WAL, replication, the
    three compression write modes, and the DB-oriented optimizations.
``repro.db``
    A miniature cloud-native database engine (pages, B+tree, buffer pool,
    redo, RW/RO nodes) used to drive realistic I/O.
``repro.baselines``
    InnoDB-style and MyRocks-style compression baselines.
``repro.cluster``
    Cluster space management and compression-aware scheduling.
``repro.workloads``
    Dataset generators and a sysbench-like OLTP driver.
``repro.obs``
    Metrics registry (counters, gauges, histograms), I/O tracing, and
    JSON/Prometheus exporters shared by every layer above.
"""

__version__ = "1.0.0"

# Convenience re-exports of the primary entry points.  Subpackages are
# imported lazily via __getattr__ so that `import repro` stays light.
_PUBLIC = {
    # `repro.PolarStore` stays the storage-layer volume for backward
    # compatibility; the unified client facade is
    # `repro.api.PolarStore.open` (-> PolarStoreClient).
    "PolarStore": ("repro.storage.store", "PolarStore"),
    "PolarStoreClient": ("repro.api.client", "PolarStoreClient"),
    "ReproConfig": ("repro.api.config", "ReproConfig"),
    "ClusterRuntime": ("repro.cluster.runtime", "ClusterRuntime"),
    "NodeConfig": ("repro.storage.node", "NodeConfig"),
    "StorageNode": ("repro.storage.node", "StorageNode"),
    "CompressionMode": ("repro.storage.store", "CompressionMode"),
    "PolarDB": ("repro.db.database", "PolarDB"),
    "PolarCSD": ("repro.csd.device", "PolarCSD"),
    "PlainSSD": ("repro.csd.device", "PlainSSD"),
    "AlgorithmSelector": ("repro.compression.selector", "AlgorithmSelector"),
    "run_sysbench": ("repro.workloads.sysbench", "run_sysbench"),
    "dataset_pages": ("repro.workloads.datagen", "dataset_pages"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "Histogram": ("repro.obs.metrics", "Histogram"),
    "Tracer": ("repro.obs.tracing", "Tracer"),
}


def __getattr__(name):
    if name in _PUBLIC:
        import importlib

        module_name, attr = _PUBLIC[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_PUBLIC))
