"""Heavy-compression archival segments (§3.2.3).

The heavy-compression write mode recompresses an existing page range as a
single large unit: read + decompress every live page in the range, merge
them into one segment, compress the segment with a high-effort zstd
configuration, and store it contiguously.  Each page's index entry then
points at the segment plus the page's position inside it.

Random access to an archived page costs a whole-segment read and
decompression (I/O amplification the paper accepts for cold data); a small
decompressed-segment buffer makes the common sequential scan cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.checksum import crc32
from repro.common.errors import ChecksumError, ReproError
from repro.common.units import DB_PAGE_SIZE, LBA_SIZE, ceil_div
from repro.compression.cost import codec_cost
from repro.compression.zstd import ZstdCodec
from repro.storage.allocator import BLOCKS_PER_EXTENT
from repro.storage.cache import LRUCache


@dataclass(frozen=True)
class SegmentMeta:
    """Placement of one archived segment."""

    segment_id: int
    pieces: Tuple[Tuple[int, int], ...]  # (start_lba, n_blocks) per piece
    compressed_len: int
    page_nos: Tuple[int, ...]
    #: CRC-32 of the compressed payload (0 = unknown, skip verification).
    checksum: int = 0

    @property
    def n_blocks(self) -> int:
        return sum(n for _, n in self.pieces)

    @property
    def stored_bytes(self) -> int:
        return self.n_blocks * LBA_SIZE


class HeavySegmentStore:
    """Allocates, persists, and serves archive segments."""

    #: High-effort codec: deeper chains + lazy matching.
    HEAVY_CODEC = ZstdCodec(max_chain=256, lazy=True)

    def __init__(self, device, allocator, buffer_bytes: int = 4 * DB_PAGE_SIZE):
        self._device = device
        self._allocator = allocator
        self._segments: Dict[int, SegmentMeta] = {}
        self._next_id = 1
        # Decompressed-segment buffer for sequential access (§3.2.3).
        self._buffer: LRUCache = LRUCache(buffer_bytes)
        self.buffer_hits = 0

    # -- write ----------------------------------------------------------------

    def archive(
        self, start_us: float, page_nos: Sequence[int], pages: Sequence[bytes]
    ) -> Tuple[SegmentMeta, float, float]:
        """Compress ``pages`` into one segment.

        Returns (meta, done_us, cpu_us) where ``cpu_us`` is the compression
        CPU the caller should charge.
        """
        if len(page_nos) != len(pages):
            raise ValueError("page_nos and pages length mismatch")
        if not pages:
            raise ValueError("cannot archive an empty range")
        for page in pages:
            if len(page) != DB_PAGE_SIZE:
                raise ValueError("archive input must be whole pages")
        segment_raw = b"".join(pages)
        payload = self.HEAVY_CODEC.compress(segment_raw)
        cpu_us = codec_cost("zstd-heavy").compress_us(len(segment_raw))

        n_blocks = ceil_div(len(payload), LBA_SIZE)
        pieces: List[Tuple[int, int]] = []
        remaining = n_blocks
        while remaining > 0:
            take = min(remaining, BLOCKS_PER_EXTENT)
            start_lba = self._allocator.allocate_blocks(take * LBA_SIZE)
            pieces.append((start_lba, take))
            remaining -= take

        padded = payload + b"\x00" * (n_blocks * LBA_SIZE - len(payload))
        now = start_us
        cursor = 0
        for start_lba, blocks in pieces:
            chunk = padded[cursor : cursor + blocks * LBA_SIZE]
            now = self._device.write(now, start_lba, chunk).done_us
            cursor += blocks * LBA_SIZE

        meta = SegmentMeta(
            self._next_id, tuple(pieces), len(payload), tuple(page_nos),
            checksum=crc32(payload),
        )
        self._segments[meta.segment_id] = meta
        self._next_id += 1
        return meta, now, cpu_us

    # -- read ----------------------------------------------------------------------

    def read_page(
        self, start_us: float, segment_id: int, page_in_segment: int
    ) -> Tuple[bytes, float, float]:
        """Return (page bytes, done_us, cpu_us) for one archived page."""
        segment_raw, done, cpu = self._segment_raw(start_us, segment_id)
        offset = page_in_segment * DB_PAGE_SIZE
        if offset + DB_PAGE_SIZE > len(segment_raw):
            raise ReproError(
                f"page {page_in_segment} outside segment {segment_id}"
            )
        return segment_raw[offset : offset + DB_PAGE_SIZE], done, cpu

    def _segment_raw(
        self, start_us: float, segment_id: int
    ) -> Tuple[bytes, float, float]:
        cached = self._buffer.get(segment_id)
        if cached is not None:
            self.buffer_hits += 1
            return cached, start_us, 0.0
        meta = self._segments.get(segment_id)
        if meta is None:
            raise ReproError(f"unknown segment {segment_id}")
        blob = bytearray()
        now = start_us
        for start_lba, blocks in meta.pieces:
            completion = self._device.read(now, start_lba, blocks * LBA_SIZE)
            now = completion.done_us
            blob += completion.data
        payload = bytes(blob[: meta.compressed_len])
        if meta.checksum and crc32(payload) != meta.checksum:
            raise ChecksumError(
                f"segment {segment_id}: stored payload fails CRC verification"
            )
        segment_raw = self.HEAVY_CODEC.decompress(payload)
        cpu_us = codec_cost("zstd-heavy").decompress_us(len(segment_raw))
        self._buffer.put(segment_id, segment_raw)
        return segment_raw, now, cpu_us

    # -- maintenance -------------------------------------------------------------------

    def release(self, segment_id: int) -> None:
        meta = self._segments.pop(segment_id, None)
        if meta is None:
            return
        for start_lba, blocks in meta.pieces:
            self._allocator.free_blocks(start_lba, blocks * LBA_SIZE)
            self._device.trim(start_lba, blocks * LBA_SIZE)
        self._buffer.remove(segment_id)

    def restore(self, segments: Dict[int, SegmentMeta]) -> None:
        """Reload the segment registry from WAL recovery."""
        self._segments = dict(segments)
        self._next_id = max(self._segments, default=0) + 1
        self._buffer.clear()

    def get(self, segment_id: int) -> SegmentMeta:
        meta = self._segments.get(segment_id)
        if meta is None:
            raise ReproError(f"unknown segment {segment_id}")
        return meta

    @property
    def segment_count(self) -> int:
        return len(self._segments)
