"""The PolarStore storage node.

One node owns a data device (PolarCSD or plain SSD), a performance device
(Optane, holding the WAL and — with Opt#1 — redo logs), the two-level
allocator, the page index, a redo-log cache with spill-to-storage, and the
page consolidation machinery.

Timing model: every public operation takes the simulated start time and
returns a result carrying ``done_us``.  CPU costs (codec work, record
application) come from the calibrated cost models; device time comes from
the device simulators' queues.  Once :meth:`StorageNode.bind_engine`
attaches the node to a shared :class:`repro.engine.Engine`, the redo
persistence path is additionally available as an engine process
(:meth:`StorageNode.persist_redo_proc`) that really queues on the device
FIFO — the building block of the volume-level group-commit pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.checksum import crc32
from repro.common.errors import (
    ChecksumError,
    CorruptionError,
    DeviceError,
    DeviceUnavailableError,
    PageCorruptionError,
    ReproError,
)
from repro.common.units import DB_PAGE_SIZE, LBA_SIZE, MiB, align_up, ceil_div
from repro.compression.base import get_codec
from repro.compression.cost import codec_cost
from repro.compression.selector import AlgorithmSelector
from repro.csd.device import BlockDevice
from repro.obs.metrics import MetricsRegistry
from repro.perf.runtime import perf_active
from repro.storage.allocator import SpaceManager
from repro.storage.cache import LRUCache
from repro.storage.consolidation import ConsolidationConfig, make_policy
from repro.storage.heavy import HeavySegmentStore
from repro.storage.index import CompressionInfo, IndexEntry, PageIndex
from repro.storage.redo import RedoRecord, apply_records
from repro.storage.wal import WriteAheadLog

#: CPU cost of applying one redo record during consolidation (µs).
REDO_APPLY_US_PER_RECORD = 0.3

#: Shared zero block for WAL flush writes (was allocated per flush).
_ZERO_LBA = b"\x00" * LBA_SIZE

#: CompressionInfo <-> WAL wire ids.
_STATUS_IDS = {
    CompressionInfo.UNCOMPRESSED: 0,
    CompressionInfo.NORMAL: 1,
    CompressionInfo.HEAVY: 2,
}
STATUS_FROM_ID = {v: k for k, v in _STATUS_IDS.items()}


@dataclass
class NodeConfig:
    """Feature switches matching the paper's cluster configurations.

    ``software_compression=False`` with a PolarCSD data device reproduces
    cluster C1 (hardware-only compression); all-enabled reproduces C2.
    """

    software_compression: bool = True
    default_codec: str = "zstd"
    opt_bypass_redo: bool = True          # Opt#1 (§3.3.1)
    opt_algorithm_selection: bool = True  # Opt#2 (§3.3.2)
    opt_per_page_log: bool = True         # Opt#3 (§3.3.3)
    #: Force Algorithm 1 to re-evaluate on every write (the paper's §5.2
    #: evaluation mode: "the update always issues the algorithm
    #: re-selection, representing the worst page write latency").
    selection_always_evaluate: bool = False
    redo_cache_bytes: int = 2 * MiB
    page_cache_bytes: int = 0
    seed: int = 0


@dataclass(frozen=True)
class PreparedWrite:
    """A page after leader-side software compression, ready to replicate."""

    status: CompressionInfo
    algorithm: Optional[str]
    payload: bytes
    n_blocks: int
    cpu_us: float
    codec_evaluated: bool = False
    #: CRC-32 of ``payload``, carried into the index entry and verified
    #: on every read (the integrity check lives above the device).
    checksum: int = 0
    #: Payload padded to the device write size, computed on first use and
    #: shared by every replica that persists this prepared write (the
    #: leader prepares once, all three nodes used to re-pad).
    _padded: Optional[bytes] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.checksum == 0:
            object.__setattr__(self, "checksum", crc32(self.payload))

    @property
    def device_bytes(self) -> int:
        return self.n_blocks * LBA_SIZE

    def padded_payload(self) -> bytes:
        """``payload`` zero-padded to ``device_bytes``, cached."""
        if self._padded is None:
            pad = self.device_bytes - len(self.payload)
            object.__setattr__(
                self,
                "_padded",
                self.payload if pad == 0 else self.payload + b"\x00" * pad,
            )
        return self._padded


@dataclass(frozen=True)
class WriteResult:
    done_us: float
    prepared: PreparedWrite


@dataclass(frozen=True)
class ReadResult:
    data: bytes
    done_us: float
    io_reads: int
    cpu_us: float
    consolidated: bool = False


class StorageNode:
    """One storage server of the shared-storage layer."""

    #: Redo batches kept live on the data device before recycling
    #: (non-bypass mode); redo is reclaimable once pages are flushed.
    REDO_DATA_BLOCK_WINDOW = 256

    def __init__(
        self,
        name: str,
        config: NodeConfig,
        data_device: BlockDevice,
        perf_device: BlockDevice,
        metrics: Optional[MetricsRegistry] = None,
        consolidation: Optional[ConsolidationConfig] = None,
    ) -> None:
        self.name = name
        self.config = config
        self.data_device = data_device
        self.perf_device = perf_device
        #: Shared with the owning volume when built via ``build_node``;
        #: a standalone node gets a private registry so instrumentation
        #: never needs a None check.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.space = SpaceManager(data_device.spec.logical_capacity)
        self.index = PageIndex()
        self.wal = WriteAheadLog()
        self.selector = AlgorithmSelector(
            update_gate=-1.0 if config.selection_always_evaluate else 0.30,
            metrics=self.metrics,
        )
        self.page_cache: LRUCache = LRUCache(
            config.page_cache_bytes,
            metrics=self.metrics, metric_name="storage.page_cache",
            metric_labels={"node": name},
        )
        # Redo machinery.
        self.redo_cache: Dict[int, List[RedoRecord]] = {}
        self._redo_cache_bytes = 0
        self._last_algorithm: Dict[int, str] = {}
        #: How evicted redo is organized + compacted (§3.3.3 family).
        self.consolidation = (
            consolidation if consolidation is not None else ConsolidationConfig()
        )
        #: The consolidation policy.  Kept under the historical name:
        #: every policy speaks the full log-store protocol.
        self.log_store = make_policy(
            self.consolidation, config, data_device, self.space
        )
        self.heavy = HeavySegmentStore(data_device, self.space)
        # Performance-device LBA cursors (WAL area, redo area).
        self._perf_cursor = 0
        # Redo batches stored on the data device (non-bypass mode only).
        self._redo_data_blocks: List[Tuple[int, int]] = []
        # Current 16 KB redo log-buffer window (non-bypass compression).
        self._redo_log_window = bytearray()
        # Durably-persisted redo batches (what recovery replays).
        self.durable_redo_blobs: List[bytes] = []
        # Stats: histogram-backed bounded series (the seed used unbounded
        # raw lists here), plus event counters for the registry.
        labels = {"node": name}
        self.redo_write_stats = self.metrics.series(
            "storage.redo_write_us", **labels
        )
        self.page_read_stats = self.metrics.series(
            "storage.page_read_us", **labels
        )
        self.page_write_stats = self.metrics.series(
            "storage.page_write_us", **labels
        )
        self._wal_flushes = self.metrics.counter(
            "storage.wal_flushes", **labels
        )
        self._consolidations = self.metrics.counter(
            "storage.consolidations", **labels
        )
        self._redo_spills = self.metrics.counter(
            "storage.redo_spills", **labels
        )
        self.metrics.gauge_fn(
            "storage.redo_cache_bytes",
            lambda: self._redo_cache_bytes, **labels
        )
        self.metrics.gauge_fn(
            "storage.logical_used_bytes_node",
            lambda: self.logical_used_bytes, **labels
        )
        #: Shared discrete-event kernel once bind_engine() is called.
        self._sim_engine = None

    def bind_engine(self, engine, qd: Optional[int] = None,
                    defer_gc: bool = False) -> None:
        """Attach this node's device queues to a shared event kernel.

        ``qd`` reconfigures the data device's queue depth; the
        performance device keeps its own parallelism (it models a small
        dedicated Optane stripe).  ``defer_gc`` moves FTL relocation cost
        to a background GC process (see :meth:`BlockDevice.gc_proc`).
        """
        self._sim_engine = engine
        self.data_device.bind_engine(engine, qd=qd, defer_gc=defer_gc)
        self.perf_device.bind_engine(engine)

    # ------------------------------------------------------------------ #
    # Page write path                                                     #
    # ------------------------------------------------------------------ #

    def prepare_page(
        self,
        page_no: int,
        data: bytes,
        cpu_utilization: float = 0.0,
        update_percent: float = 1.0,
        force_codec: Optional[str] = None,
    ) -> PreparedWrite:
        """Leader-side software compression (step 1 of Figure 4)."""
        if len(data) != DB_PAGE_SIZE:
            return PreparedWrite(
                CompressionInfo.UNCOMPRESSED,
                None,
                data,
                ceil_div(len(data), LBA_SIZE),
                0.0,
            )
        if not self.config.software_compression:
            return PreparedWrite(
                CompressionInfo.UNCOMPRESSED, None, data, 4, 0.0
            )
        runtime = perf_active()
        if force_codec is not None:
            codec_name = force_codec
            if runtime is not None:
                payload, payload_crc = runtime.compress(codec_name, data)
            else:
                payload = get_codec(codec_name).compress(data)
                payload_crc = 0
            cpu = codec_cost(codec_name).compress_us(len(data))
            evaluated = False
        elif self.config.opt_algorithm_selection:
            decision = self.selector.select(
                data,
                cpu_utilization=cpu_utilization,
                update_percent=update_percent,
                last_used=self._last_algorithm.get(page_no),
            )
            codec_name = decision.codec
            payload = decision.result.payload
            payload_crc = decision.payload_crc
            evaluated = decision.evaluated
            cpu = codec_cost(codec_name).compress_us(len(data))
            if evaluated:
                # Evaluation compressed with *both* codecs (Algorithm 1).
                other = "zstd" if codec_name == "lz4" else "lz4"
                cpu += codec_cost(other).compress_us(len(data))
        else:
            codec_name = self.config.default_codec
            if runtime is not None:
                payload, payload_crc = runtime.compress(codec_name, data)
            else:
                payload = get_codec(codec_name).compress(data)
                payload_crc = 0
            cpu = codec_cost(codec_name).compress_us(len(data))
            evaluated = False

        n_blocks = ceil_div(len(payload), LBA_SIZE)
        if n_blocks * LBA_SIZE >= DB_PAGE_SIZE:
            # Compression did not save a single block: store raw.
            return PreparedWrite(
                CompressionInfo.UNCOMPRESSED, None, data, 4, cpu
            )
        self._last_algorithm[page_no] = codec_name
        return PreparedWrite(
            CompressionInfo.NORMAL, codec_name, payload, n_blocks, cpu,
            evaluated, checksum=payload_crc,
        )

    def write_page_local(
        self,
        start_us: float,
        page_no: int,
        prepared: PreparedWrite,
        applied_lsn: int = 0,
    ) -> WriteResult:
        """Persist a prepared page on this node (steps 3.1–3.3 of Fig 4)."""
        # A rewrite supersedes everything folded in so far: carry the
        # page's redo high-water mark forward so recovery never replays
        # stale records over newer content.
        previous = self.index.get(page_no)
        if previous is not None:
            applied_lsn = max(applied_lsn, previous.applied_lsn)
        lba = self.space.allocate_blocks(prepared.device_bytes)
        padded = prepared.padded_payload()
        tracer = self.metrics.tracer
        node_sp = tracer.begin("storage.node_write", start_us, layer="storage")
        dev_sp = tracer.begin("csd.device_write", start_us, layer="csd")
        completion = self.data_device.write(start_us, lba, padded)
        tracer.end(dev_sp, completion.done_us)
        self.wal.append_alloc(lba, prepared.n_blocks)
        self.wal.append_index_put(
            page_no, lba, prepared.n_blocks, len(prepared.payload),
            status=_STATUS_IDS[prepared.status],
            algorithm=prepared.algorithm,
            applied_lsn=applied_lsn,
            checksum=prepared.checksum,
        )
        wal_sp = tracer.begin(
            "storage.wal_flush", completion.done_us, layer="storage"
        )
        done = self._persist_wal(completion.done_us)
        tracer.end(wal_sp, done)
        tracer.end(node_sp, done)

        old = self.index.put(
            page_no,
            IndexEntry(
                prepared.status,
                prepared.algorithm,
                lba,
                prepared.n_blocks,
                len(prepared.payload),
                applied_lsn=applied_lsn,
                checksum=prepared.checksum,
            ),
        )
        self._release_entry(old)
        self.page_cache.remove(page_no)
        self.page_write_stats.append(done - start_us + prepared.cpu_us)
        return WriteResult(done, prepared)

    def write_page(
        self,
        start_us: float,
        page_no: int,
        data: bytes,
        cpu_utilization: float = 0.0,
        update_percent: float = 1.0,
        force_codec: Optional[str] = None,
    ) -> WriteResult:
        """Single-node convenience: prepare + persist locally."""
        prepared = self.prepare_page(
            page_no, data, cpu_utilization, update_percent, force_codec
        )
        return self.write_page_local(start_us + prepared.cpu_us, page_no, prepared)

    def write_partial(
        self, start_us: float, page_no: int, offset: int, data: bytes
    ) -> WriteResult:
        """Non-page-aligned write into a previously written page (§3.2.3).

        Per the no-compression mode's rule: the existing compressed data
        is read and decompressed, the new bytes are spliced in, and the
        result is written back *uncompressed* (the range is now in
        no-compression mode until a full page write re-compresses it).
        """
        if offset < 0 or offset + len(data) > DB_PAGE_SIZE:
            raise ReproError(
                f"partial write [{offset}, +{len(data)}) outside page bounds"
            )
        if not data:
            raise ReproError("empty partial write")
        entry = self.index.get(page_no)
        if entry is None:
            base = ReadResult(bytes(DB_PAGE_SIZE), start_us, 0, 0.0)
        else:
            base = self._read_materialized(start_us, page_no)
        image = bytearray(base.data)
        image[offset : offset + len(data)] = data
        prepared = PreparedWrite(
            CompressionInfo.UNCOMPRESSED, None, bytes(image),
            DB_PAGE_SIZE // LBA_SIZE, 0.0,
        )
        return self.write_page_local(base.done_us, page_no, prepared)

    def _release_entry(self, entry: Optional[IndexEntry]) -> None:
        if entry is None:
            return
        if entry.status is CompressionInfo.HEAVY:
            self._maybe_release_segment(entry.segment_id)
            return
        self.wal.append_free(entry.lba, entry.n_blocks)
        self.space.free_blocks(entry.lba, entry.n_blocks * LBA_SIZE)
        self.data_device.trim(entry.lba, entry.n_blocks * LBA_SIZE)

    def _maybe_release_segment(self, segment_id: int) -> None:
        """Free a heavy segment once no index entry references it."""
        for _, entry in self.index.items():
            if entry.segment_id == segment_id:
                return
        try:
            meta = self.heavy.get(segment_id)
        except ReproError:
            return  # already released
        for piece_lba, piece_blocks in meta.pieces:
            self.wal.append_free(piece_lba, piece_blocks)
        self.heavy.release(segment_id)

    # ------------------------------------------------------------------ #
    # Page read path                                                      #
    # ------------------------------------------------------------------ #

    def read_page(self, start_us: float, page_no: int) -> ReadResult:
        """Read and decompress one page, applying pending redo if any."""
        tracer = self.metrics.tracer
        root = tracer.begin("storage.page_read", start_us, layer="storage")
        pending = self.redo_cache.get(page_no) or []
        spilled = self.log_store.blocks_for(page_no) > 0
        if not pending and not spilled:
            result = self._read_materialized(start_us, page_no)
        else:
            result = self._consolidate_and_read(start_us, page_no)
        tracer.end(root, result.done_us)
        self.page_read_stats.append(result.done_us - start_us)
        return result

    def _read_materialized(self, start_us: float, page_no: int) -> ReadResult:
        cached = self.page_cache.get(page_no)
        if cached is not None:
            return ReadResult(cached, start_us, 0, 0.0)
        entry = self.index.get(page_no)
        if entry is None:
            raise ReproError(f"{self.name}: page {page_no} does not exist")
        tracer = self.metrics.tracer

        def corrupt(symptom: str, detail: str) -> PageCorruptionError:
            return PageCorruptionError(
                f"{self.name}: page {page_no} {detail}",
                node=self.name, page_no=page_no, lba=entry.lba,
                n_blocks=entry.n_blocks, symptom=symptom,
            )

        if entry.status is CompressionInfo.HEAVY:
            sp = tracer.begin("storage.heavy_read", start_us, layer="storage")
            try:
                data, done, cpu = self.heavy.read_page(
                    start_us, entry.segment_id, entry.page_in_segment
                )
            except DeviceUnavailableError:
                raise
            except (ChecksumError, CorruptionError, DeviceError) as exc:
                tracer.end(sp, start_us)
                raise corrupt(
                    "segment_corrupt", f"archived copy is corrupt: {exc}"
                ) from exc
            tracer.end(sp, done + cpu)
            self._admit(page_no, data)
            return ReadResult(data, done + cpu, 1, cpu)
        dev_sp = tracer.begin("csd.device_read", start_us, layer="csd")
        try:
            completion = self.data_device.read(
                start_us, entry.lba, entry.n_blocks * LBA_SIZE
            )
        except DeviceUnavailableError:
            raise
        except DeviceError as exc:
            tracer.end(dev_sp, start_us)
            raise corrupt("unreadable", f"device read failed: {exc}") from exc
        tracer.end(dev_sp, completion.done_us)
        runtime = perf_active()
        raw = completion.data
        if entry.payload_len == len(raw):
            payload = raw
        elif runtime is not None and runtime.zero_copy:
            # Trim the block padding without copying the page body: CRC,
            # hashing, and both codecs read straight from the view.
            payload = memoryview(raw)[: entry.payload_len]
        else:
            payload = raw[: entry.payload_len]
        verified = bool(entry.checksum)
        if entry.checksum and crc32(payload) != entry.checksum:
            raise corrupt(
                "checksum_mismatch", "stored payload fails CRC verification"
            )
        cpu = 0.0
        if entry.status is CompressionInfo.NORMAL:
            try:
                if runtime is not None:
                    # Memoized only for CRC-verified payloads: a damaged
                    # payload can neither hit nor seed the cache.
                    data = runtime.decompress(
                        entry.algorithm, payload, verified=verified
                    )
                else:
                    data = get_codec(entry.algorithm).decompress(payload)
            except (CorruptionError, ValueError, IndexError) as exc:
                raise corrupt(
                    "decompress_error", f"payload does not decompress: {exc}"
                ) from exc
            cpu = codec_cost(entry.algorithm).decompress_us(
                entry.n_blocks * LBA_SIZE
            )
            if len(data) != DB_PAGE_SIZE:
                raise corrupt(
                    "decompress_error",
                    f"decompressed to {len(data)} bytes",
                )
            sp = tracer.begin(
                "compression.decompress", completion.done_us,
                layer="compression",
            )
            tracer.end(sp, completion.done_us + cpu)
        else:
            # Uncompressed pages fill their blocks exactly, so this is
            # normally ``raw`` itself; materialize the rare trimmed view.
            data = payload if isinstance(payload, bytes) else bytes(payload)
        self._admit(page_no, data)
        return ReadResult(data, completion.done_us + cpu, 1, cpu)

    def _admit(self, page_no: int, data: bytes) -> None:
        if self.page_cache.capacity_bytes > 0:
            self.page_cache.put(page_no, data)

    # ------------------------------------------------------------------ #
    # Detect & repair                                                     #
    # ------------------------------------------------------------------ #

    def repair_page(
        self, start_us: float, page_no: int, data: bytes, applied_lsn: int = 0
    ) -> WriteResult:
        """Overwrite a corrupt local copy with a known-good page image.

        The image came from a healthy replica, so it supersedes whatever
        this node holds: the stale cache entry, any pending redo for the
        page (already folded into ``data`` by the healthy replica), and
        the bad on-device blocks (released by the index overwrite).
        """
        cached = self.redo_cache.pop(page_no, None)
        if cached:
            self._redo_cache_bytes -= sum(r.size_bytes for r in cached)
        self.log_store.discard(page_no)
        self.page_cache.remove(page_no)
        prepared = self.prepare_page(page_no, data)
        return self.write_page_local(
            start_us + prepared.cpu_us, page_no, prepared,
            applied_lsn=applied_lsn,
        )

    # ------------------------------------------------------------------ #
    # Redo path                                                           #
    # ------------------------------------------------------------------ #

    def _prepare_redo(self, start_us: float, blob: bytes, trace: bool = True):
        """Shared redo-placement logic: pick the device, compress the log
        window (non-bypass mode), and allocate the target LBA.  Returns
        ``(device, lba, padded_payload, cpu_us)``.

        With Opt#1 the blob goes raw to the performance device.  Without
        it, the software layer compresses the redo writer's current 16 KB
        log-buffer window (redo is written in page-sized log blocks, so
        each commit re-compresses the tail block) and writes it to the
        data device — the 59 µs → 79 µs regression of Figure 13c.
        """
        tracer = self.metrics.tracer
        if self.config.opt_bypass_redo:
            device = self.perf_device
            payload = blob
            cpu = 0.0
        else:
            device = self.data_device
            if self.config.software_compression:
                # Redo is latency-critical: the software layer uses the
                # fast codec, but must compress the whole current log
                # block (16 KB window), not just this batch's bytes.
                self._redo_log_window += blob
                if len(self._redo_log_window) > DB_PAGE_SIZE:
                    del self._redo_log_window[: len(self._redo_log_window)
                                             - DB_PAGE_SIZE]
                runtime = perf_active()
                if runtime is not None:
                    # Every replica compresses the same window content;
                    # the memo collapses those to one codec run.
                    payload, _ = runtime.compress(
                        "lz4", self._redo_log_window
                    )
                else:
                    payload = get_codec("lz4").compress(
                        bytes(self._redo_log_window)
                    )
                cpu = codec_cost("lz4").compress_us(DB_PAGE_SIZE)
            else:
                payload = blob
                cpu = 0.0
        if cpu > 0.0 and trace:
            sp = tracer.begin(
                "compression.redo_compress", start_us, layer="compression"
            )
            tracer.end(sp, start_us + cpu)
        nbytes = align_up(max(len(payload), 1), LBA_SIZE)
        padded = (
            payload if nbytes == len(payload)
            else payload + b"\x00" * (nbytes - len(payload))
        )
        if device is self.perf_device:
            lba = self._next_perf_lba(nbytes)
        else:
            lba = self.space.allocate_blocks(nbytes)
            self.wal.append_alloc(lba, nbytes // LBA_SIZE)
            self._track_redo_block(lba, nbytes)
        return device, lba, padded, cpu

    def _finish_redo(self, start_us: float, done_us: float, blob: bytes) -> None:
        self.durable_redo_blobs.append(blob)
        self.redo_write_stats.append(done_us - start_us)

    def persist_redo(self, start_us: float, blob: bytes) -> float:
        """Durably store a redo batch; returns completion time."""
        tracer = self.metrics.tracer
        device, lba, padded, cpu = self._prepare_redo(start_us, blob)
        dev_sp = tracer.begin(
            "csd.redo_device_write", start_us + cpu, layer="csd"
        )
        completion = device.write(start_us + cpu, lba, padded)
        tracer.end(dev_sp, completion.done_us)
        self._finish_redo(start_us, completion.done_us, blob)
        return completion.done_us

    def persist_redo_proc(self, blob: bytes, trace: bool = True):
        """Engine process: persist a redo batch, really queueing FIFO on
        the target device behind concurrent requests.  Requires
        :meth:`bind_engine`.  Returns the completion time.

        ``trace=False`` mirrors the synchronous path's span suppression
        for replica persists.  Spans are emitted retrospectively (after
        the write completes, with simulated timestamps) because the
        tracer's ambient span stack must never be held open across an
        engine yield — concurrent processes would interleave into it.
        """
        engine = self._sim_engine
        start_us = engine.now_us
        device, lba, padded, cpu = self._prepare_redo(
            start_us, blob, trace=trace
        )
        if cpu > 0.0:
            yield engine.timeout(cpu)
        write_start = engine.now_us
        completion = yield from device.write_proc(lba, padded)
        if trace:
            tracer = self.metrics.tracer
            dev_sp = tracer.begin(
                "csd.redo_device_write", write_start, layer="csd"
            )
            tracer.end(dev_sp, completion.done_us)
        self._finish_redo(start_us, completion.done_us, blob)
        return completion.done_us

    def _track_redo_block(self, lba: int, nbytes: int) -> None:
        """Redo on the data device is recycled once pages flush; keep a
        bounded window of live redo blocks."""
        self._redo_data_blocks.append((lba, nbytes))
        while len(self._redo_data_blocks) > self.REDO_DATA_BLOCK_WINDOW:
            old_lba, old_bytes = self._redo_data_blocks.pop(0)
            self.wal.append_free(old_lba, old_bytes // LBA_SIZE)
            self.space.free_blocks(old_lba, old_bytes)
            self.data_device.trim(old_lba, old_bytes)

    def _next_perf_lba(self, nbytes: int) -> int:
        lba = self._perf_cursor
        span = nbytes // LBA_SIZE
        capacity_blocks = self.perf_device.spec.logical_capacity // LBA_SIZE
        if lba + span >= capacity_blocks:
            lba = 0
            self._perf_cursor = 0
        self._perf_cursor += span
        return lba

    def _persist_wal(self, start_us: float) -> float:
        """Flush pending WAL appends as one 4 KB write to the perf device."""
        self._wal_flushes.inc()
        lba = self._next_perf_lba(LBA_SIZE)
        return self.perf_device.write(start_us, lba, _ZERO_LBA).done_us

    def add_redo(self, start_us: float, records: List[RedoRecord]) -> float:
        """Cache redo records; spill the overflow to the log store."""
        now = start_us
        for record in records:
            self.redo_cache.setdefault(record.page_no, []).append(record)
            self._redo_cache_bytes += record.size_bytes
        while self._redo_cache_bytes > self.config.redo_cache_bytes:
            now = self._evict_one_page(now)
        return now

    def _evict_one_page(self, start_us: float) -> float:
        # Evict the page with the most cached redo bytes (best payoff).
        page_no = max(
            self.redo_cache,
            key=lambda p: sum(r.size_bytes for r in self.redo_cache[p]),
        )
        if self._would_overflow_page_log(page_no):
            # Too much redo for the 4 KB per-page log slot: consolidate
            # the page instead (the logs fold into the page image).
            result = self._consolidate_and_read(start_us, page_no)
            return result.done_us
        records = self.redo_cache.pop(page_no)
        self._redo_cache_bytes -= sum(r.size_bytes for r in records)
        self._redo_spills.inc()
        try:
            return self.log_store.evict(start_us, records)
        except DeviceUnavailableError:
            # Spill never hit the device; keep the records in memory.
            self.redo_cache[page_no] = records
            self._redo_cache_bytes += sum(r.size_bytes for r in records)
            raise

    def _would_overflow_page_log(self, page_no: int) -> bool:
        capacity = getattr(self.log_store, "page_capacity_bytes", None)
        if capacity is None:
            # Scattered / run-based layouts grow per-page without bound.
            return False
        pending = sum(r.size_bytes for r in self.redo_cache.get(page_no, ()))
        existing = self.log_store.stored_bytes_for(page_no)
        return pending + existing > capacity

    def pending_redo_pages(self) -> List[int]:
        return list(self.redo_cache)

    # ------------------------------------------------------------------ #
    # Consolidation                                                       #
    # ------------------------------------------------------------------ #

    def _consolidate_and_read(self, start_us: float, page_no: int) -> ReadResult:
        """Materialize a page that has pending redo (Figure 6)."""
        tracer = self.metrics.tracer
        self._consolidations.inc()
        if self.index.get(page_no) is None:
            # The page exists only as redo so far: start from a zero image.
            base = ReadResult(bytes(DB_PAGE_SIZE), start_us, 0, 0.0)
        else:
            base = self._read_materialized(start_us, page_no)
        now = base.done_us
        io_reads = base.io_reads
        cpu = base.cpu_us

        fetch_sp = tracer.begin("storage.log_fetch", now, layer="storage")
        try:
            fetched = self.log_store.fetch(now, page_no)
        except DeviceUnavailableError:
            raise
        except (ChecksumError, CorruptionError, DeviceError, ValueError) as exc:
            tracer.end(fetch_sp, now)
            raise PageCorruptionError(
                f"{self.name}: page {page_no} evicted redo is corrupt: {exc}",
                node=self.name, page_no=page_no, symptom="log_corrupt",
            ) from exc
        now = fetched.done_us
        tracer.end(fetch_sp, now)
        io_reads += fetched.reads_issued

        # ARIES redo rule: only records newer than the page's high-water
        # mark apply — a full-page rewrite supersedes older redo, which
        # must not be replayed over the fresher image.
        entry = self.index.get(page_no)
        applied = entry.applied_lsn if entry else 0
        records = sorted(
            r
            for r in fetched.records + self.redo_cache.get(page_no, [])
            if r.lsn > applied
        )
        image = apply_records(base.data, records)
        cpu_apply = REDO_APPLY_US_PER_RECORD * len(records)
        apply_sp = tracer.begin("storage.redo_apply", now, layer="storage")
        now += cpu_apply
        tracer.end(apply_sp, now)
        cpu += cpu_apply

        # Write back the materialized page and drop the logs.
        cached = self.redo_cache.pop(page_no, None)
        if cached:
            self._redo_cache_bytes -= sum(r.size_bytes for r in cached)
        self.log_store.discard(page_no)
        # §3.3.2: the database layer estimates the updated fraction from
        # the log size; re-selection only triggers past the 30% gate.
        update_fraction = min(
            1.0, sum(len(r.data) for r in records) / DB_PAGE_SIZE
        )
        # The *read* completes once the image is built; the write-back is
        # background work, so the caller's latency stops at ``now`` and
        # its spans do not belong to this request's trace.
        with tracer.suppressed():
            prepared = self.prepare_page(
                page_no, image, update_percent=update_fraction
            )
            applied_lsn = max((r.lsn for r in records), default=applied)
            try:
                self.write_page_local(
                    now + prepared.cpu_us, page_no, prepared,
                    applied_lsn=applied_lsn,
                )
            except DeviceUnavailableError:
                # The write-back never persisted.  Re-stage the records so
                # this replica is not left silently stale (its old page
                # image still passes its old checksum).
                if records:
                    self.redo_cache[page_no] = list(records)
                    self._redo_cache_bytes += sum(
                        r.size_bytes for r in records
                    )
                raise
        self._admit(page_no, image)
        return ReadResult(image, now, io_reads, cpu, consolidated=True)

    def consolidate_pending(self, start_us: float) -> float:
        """Background page generation: apply every cached or spilled redo
        record to its page (what storage nodes do continuously up to
        LSN\\ :sub:`min`, §2.1).  Returns the completion time."""
        now = start_us
        pending = set(self.redo_cache) | set(self.log_store.pages_with_logs())
        for page_no in sorted(pending):
            result = self._consolidate_and_read(now, page_no)
            now = result.done_us
        return now

    # ------------------------------------------------------------------ #
    # Heavy compression (archival)                                        #
    # ------------------------------------------------------------------ #

    def archive_range(self, start_us: float, page_nos: List[int]) -> float:
        """Recompress ``page_nos`` as one heavy segment (§3.2.3)."""
        pages: List[bytes] = []
        now = start_us
        for page_no in page_nos:
            result = self.read_page(now, page_no)
            now = result.done_us
            pages.append(result.data)
        meta, now, cpu = self.heavy.archive(now, page_nos, pages)
        now += cpu
        self.wal.append_segment(
            meta.segment_id, meta.compressed_len, meta.pieces, meta.page_nos
        )
        for piece_lba, piece_blocks in meta.pieces:
            self.wal.append_alloc(piece_lba, piece_blocks)
        for position, page_no in enumerate(page_nos):
            old_entry = self.index.get(page_no)
            applied = old_entry.applied_lsn if old_entry else 0
            old = self.index.put(
                page_no,
                IndexEntry(
                    CompressionInfo.HEAVY,
                    None,
                    meta.pieces[0][0],
                    meta.n_blocks,
                    meta.compressed_len,
                    segment_id=meta.segment_id,
                    page_in_segment=position,
                    applied_lsn=applied,
                ),
            )
            self._release_entry(old)
            self.wal.append_index_put(
                page_no, meta.pieces[0][0], meta.n_blocks, meta.compressed_len,
                status=_STATUS_IDS[CompressionInfo.HEAVY],
                algorithm=None,
                applied_lsn=applied,
                segment_id=meta.segment_id,
                page_in_segment=position,
            )
        return self._persist_wal(now)

    # ------------------------------------------------------------------ #
    # Space reporting                                                     #
    # ------------------------------------------------------------------ #

    @property
    def logical_used_bytes(self) -> int:
        return self.index.logical_bytes

    @property
    def device_used_bytes(self) -> int:
        """4 KB-aligned bytes the software layer occupies on the device."""
        return self.space.used_bytes

    @property
    def physical_used_bytes(self) -> int:
        """NAND bytes actually consumed (CSD) or device bytes (plain SSD)."""
        return self.data_device.physical_used_bytes

    def compression_ratio(self) -> float:
        physical = self.physical_used_bytes
        if physical == 0:
            return 1.0
        return self.logical_used_bytes / physical

    def algorithm_distribution(self) -> Dict[str, int]:
        """Pages per software codec among live normal-compressed entries
        (the live view behind Table 3)."""
        counts: Dict[str, int] = {}
        for _, entry in self.index.items():
            if entry.status is CompressionInfo.NORMAL:
                counts[entry.algorithm] = counts.get(entry.algorithm, 0) + 1
        return counts

    def page_stored_bytes(self, page_no: int) -> int:
        """Physical bytes attributable to one page (NAND bytes on a CSD,
        device blocks on a plain SSD; heavy pages share their segment)."""
        entry = self.index.get(page_no)
        if entry is None:
            raise ReproError(f"{self.name}: page {page_no} does not exist")
        if entry.status is CompressionInfo.HEAVY:
            meta = self.heavy.get(entry.segment_id)
            return max(1, meta.stored_bytes // len(meta.page_nos))
        ftl = getattr(self.data_device, "ftl", None)
        if ftl is None:
            return entry.n_blocks * LBA_SIZE
        return sum(
            ftl.stored_length(entry.lba + i) for i in range(entry.n_blocks)
        )
