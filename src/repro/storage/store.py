"""The PolarStore volume: replicated shared storage behind one facade.

Implements the Figure 4 workflow end-to-end: the leader compresses a page
into 4 KB-aligned blocks (software layer), replicates the compressed blocks
to two followers, all three persist (device write + WAL), and the write
commits at the majority.  Redo writes follow the same replication rule but
take the Opt#1 path.

The three write modes of §3.2.3 are exposed via :class:`CompressionMode`:

* ``NORMAL`` — default dual-layer compression (page-aligned I/O only;
  non-aligned writes silently fall back to ``NONE`` as in the paper);
* ``NONE``  — bypass software compression;
* ``HEAVY`` — archive an existing page range as one high-ratio segment.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.clock import SimClock
from repro.common.errors import (
    DeviceUnavailableError,
    PageCorruptionError,
    RaftError,
    ReproError,
)
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.csd.device import BlockDevice, PlainSSD, PolarCSD
from repro.csd.specs import (
    DeviceSpec,
    OPTANE_P5800X,
    POLARCSD2,
)
from repro.obs.events import recorder_active
from repro.obs.metrics import MetricsRegistry
from repro.perf.runtime import perf_active
from repro.storage.consolidation import ConsolidationConfig
from repro.storage.index import CompressionInfo
from repro.storage.node import NodeConfig, PreparedWrite, ReadResult, StorageNode
from repro.storage.raft import NetworkModel
from repro.storage.redo import RedoRecord, encode_records

_node_counter = itertools.count()


class CompressionMode(enum.Enum):
    NORMAL = "normal"
    NONE = "none"
    HEAVY = "heavy"


@dataclass(frozen=True)
class CommittedWrite:
    """A replicated page write."""

    commit_us: float
    prepared: PreparedWrite


def build_node(
    name: str,
    config: NodeConfig,
    data_spec: DeviceSpec = POLARCSD2,
    perf_spec: DeviceSpec = OPTANE_P5800X,
    volume_bytes: int = 256 * MiB,
    physical_bytes: Optional[int] = None,
    seed: int = 0,
    inject_faults: bool = False,
    parallelism: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    consolidation: Optional[ConsolidationConfig] = None,
) -> StorageNode:
    """Construct a storage node with simulation-sized devices.

    ``volume_bytes`` replaces the spec's multi-TB logical capacity so the
    allocator and FTL operate at laptop scale; latency constants are
    untouched.  ``parallelism`` models the 10-12 drives a storage server
    actually stripes across (the paper's nodes are never single-disk).
    """
    if physical_bytes is None:
        # Preserve the spec's logical:physical provisioning ratio.
        ratio = data_spec.physical_capacity / data_spec.logical_capacity
        physical_bytes = max(8 * MiB, int(volume_bytes * ratio * 2))
    sized = dataclasses.replace(
        data_spec,
        logical_capacity=volume_bytes,
        physical_capacity=physical_bytes,
    )
    if metrics is None:
        metrics = MetricsRegistry()
    if sized.has_compression:
        data_device: BlockDevice = PolarCSD(
            sized, seed=seed, inject_faults=inject_faults,
            block_capacity=1 * MiB, parallelism=parallelism,
            metrics=metrics, metric_labels={"node": name, "role": "data"},
        )
    else:
        data_device = PlainSSD(
            sized, seed=seed, inject_faults=inject_faults,
            parallelism=parallelism,
            metrics=metrics, metric_labels={"node": name, "role": "data"},
        )
    perf_sized = dataclasses.replace(
        perf_spec, logical_capacity=max(volume_bytes // 4, 8 * MiB)
    )
    perf_device = PlainSSD(
        perf_sized, seed=seed + 1, parallelism=2,
        metrics=metrics, metric_labels={"node": name, "role": "perf"},
    )
    return StorageNode(
        name, config, data_device, perf_device,
        metrics=metrics, consolidation=consolidation,
    )


class PolarStore:
    """A replicated volume: one leader node plus ``replicas - 1`` followers."""

    def __init__(
        self,
        config: Optional[NodeConfig] = None,
        data_spec: DeviceSpec = POLARCSD2,
        perf_spec: DeviceSpec = OPTANE_P5800X,
        volume_bytes: int = 256 * MiB,
        replicas: int = 3,
        network: NetworkModel = NetworkModel(),
        seed: int = 0,
        inject_faults: bool = False,
        physical_bytes: Optional[int] = None,
        parallelism: int = 8,
        consolidation: Optional[ConsolidationConfig] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.config = config if config is not None else NodeConfig()
        #: Consolidation policy + compaction cadence shared by all nodes.
        self.consolidation = (
            consolidation if consolidation is not None else ConsolidationConfig()
        )
        self.network = network
        self.seed = seed
        #: One registry spans the whole volume: every node, device, FTL,
        #: and selector instrument lands here, and its tracer carries span
        #: context through the write/read paths.
        self.metrics = MetricsRegistry()
        base = next(_node_counter) * 100
        self.nodes: List[StorageNode] = [
            build_node(
                f"node-{base + i}",
                self.config,
                data_spec,
                perf_spec,
                volume_bytes,
                physical_bytes=physical_bytes,
                seed=seed + i * 7,
                inject_faults=inject_faults,
                parallelism=parallelism,
                metrics=self.metrics,
                consolidation=self.consolidation,
            )
            for i in range(replicas)
        ]
        self._alive = [True] * replicas
        #: Pages each replica missed while down or while its device was
        #: failing: its copy (if any) is stale, so it is excluded from
        #: hedged reads and repair sourcing until resynced.
        self._missed: List[set] = [set() for _ in range(replicas)]
        #: Chaos fault plan (when armed) — its ledger attributes detected
        #: corruption back to the injected fault kind.
        self.chaos_plan = None
        #: Network fault plan (when armed): partitions that sever
        #: consensus heartbeats also sever this volume's replica fan-out.
        self._net_plan = None
        #: Elected leadership (when a consensus group is attached).
        #: Without one the leader is statically replica 0, as before.
        self._leader_index = 0
        #: Bumped on every leader change; the commit pipeline snapshots
        #: it to fence in-flight replication across an election.
        self._leader_epoch = 0
        self._consensus = None
        #: Volume-time high-water mark: every commit/read completion
        #: advances it, so control-plane operations (recovery, resync)
        #: can never be timestamped before work that already happened.
        self.clock = SimClock()
        #: Shared event kernel + group-commit pipeline (engine mode).
        self._engine = None
        self._pipeline = None
        self._qd: Optional[int] = None
        self._defer_gc = False
        #: Leader reads slower than this are hedged to a follower.
        self.hedge_after_us = 4000.0
        # Commit-latency distributions, bounded (the seed kept raw
        # unbounded lists here); list(...)/len()/clear() still work.
        self.redo_commit_stats = self.metrics.series(
            "storage.redo_commit_us"
        )
        self.page_write_commit_stats = self.metrics.series(
            "storage.page_write_commit_us"
        )
        self._commit_rate = self.metrics.timeseries(
            "storage.commits_per_window", window_us=1e6
        )
        self.metrics.gauge_fn(
            "storage.compression_ratio", self.compression_ratio
        )
        self.metrics.gauge_fn(
            "storage.logical_used_bytes",
            lambda: self.leader.logical_used_bytes,
        )
        self.metrics.gauge_fn(
            "storage.physical_used_bytes",
            lambda: self.leader.physical_used_bytes,
        )
        runtime = perf_active()
        if runtime is not None:
            # Fast-path counters (memo hit rate, pool utilization) flow
            # through this volume's exporters like any other instrument.
            runtime.bind_metrics(self.metrics)

    @classmethod
    def from_config(cls, config) -> "PolarStore":
        """Build a volume from a :class:`repro.api.ReproConfig` (the same
        wiring :meth:`repro.api.PolarStore.open` uses)."""
        from repro.api.factory import build_store

        return build_store(config)

    def bind_engine(
        self,
        engine,
        group_commit_window_us: float = 0.0,
        qd: Optional[int] = None,
        defer_gc: bool = False,
    ) -> None:
        """Attach the volume to a shared discrete-event kernel.

        Every node's device queues become engine-native (concurrent
        requests really wait FIFO), and redo commits gain a volume-level
        group-commit pipeline with pipelined replica fan-out
        (:meth:`write_redo_proc`).  ``group_commit_window_us`` optionally
        holds each flush open to batch more commits; with the default 0
        batching still emerges whenever commits arrive while a flush is
        in flight.
        """
        from repro.storage.commit_pipeline import GroupCommitPipeline

        self._engine = engine
        self._qd = qd
        self._defer_gc = defer_gc
        for node in self.nodes:
            node.bind_engine(engine, qd=qd, defer_gc=defer_gc)
        self._pipeline = GroupCommitPipeline(
            self, engine, window_us=group_commit_window_us
        )
        self.clock.advance_to(engine.now_us)

    @property
    def leader(self) -> StorageNode:
        return self.nodes[self._leader_index]

    @property
    def leader_index(self) -> int:
        return self._leader_index

    @property
    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    def attach_chaos(self, plan) -> None:
        """Register the fault plan whose ledger attributes corruption."""
        self.chaos_plan = plan

    def attach_net_plan(self, plan) -> None:
        """Register a :class:`~repro.chaos.net.NetFaultPlan`: replica
        fan-out consults its partition windows (node index = net node
        id), so a partition that isolates the leader from a follower
        stops that follower from acking writes."""
        self._net_plan = plan

    def attach_consensus(self, group) -> None:
        """Drive this volume's leadership from an elected Raft group.

        Raft node ids map one-to-one onto replica indexes.  Every
        election moves the write/read anchor to the winner and bumps the
        leader epoch that fences in-flight pipelined commits; crash and
        recovery of a replica crash and restart its Raft node, so a
        failed *leader* now triggers a real failover instead of the old
        "out of scope" refusal.
        """
        if len(group.node_ids) != len(self.nodes):
            raise ReproError(
                f"consensus group size {len(group.node_ids)} != "
                f"{len(self.nodes)} replicas"
            )
        self._consensus = group
        if group.leader_id is not None:
            self._leader_index = group.leader_id
        group.add_leader_listener(self._on_consensus_leader)

    def _on_consensus_leader(self, node_id: int, term: int) -> None:
        changed = node_id != self._leader_index
        self._leader_index = node_id
        self._leader_epoch += 1
        if changed:
            self.metrics.counter("storage.leader_changes").add(1)
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                self.clock.now_us, "election", "store_leader",
                node=node_id, term=term,
            )

    def _net_blocked(self, index: int, now_us: float) -> bool:
        """Is the leader <-> ``index`` link partitioned right now?"""
        plan = self._net_plan
        if plan is None:
            return False
        lead = self._leader_index
        return plan.blocked(lead, index, now_us) or plan.blocked(
            index, lead, now_us
        )

    def _followers(self):
        """Replica ``(index, node)`` pairs excluding the current leader
        (the dynamic counterpart of the old ``nodes[1:]`` fan-out)."""
        lead = self._leader_index
        return [
            (i, node) for i, node in enumerate(self.nodes) if i != lead
        ]

    def fail_node(self, index: int) -> None:
        """Crash a replica (loses all RAM state).

        Crashing the *leader* requires an attached consensus group —
        someone has to win the election that replaces it.  The Raft node
        (when present) crashes with the replica, so the failure is
        visible to the consensus plane too.
        """
        if index == self._leader_index and self._consensus is None:
            raise ReproError("leader failover requires a consensus group")
        if not self._alive[index]:
            raise ReproError(f"node {index} is already failed")
        self._alive[index] = False
        if self._consensus is not None:
            self._consensus.crash(index)

    def recover_node(self, index: int, now_us: Optional[float] = None) -> float:
        """Rejoin a failed replica through real crash recovery.

        The node's in-memory state (allocator, index, caches, redo cache)
        is *rebuilt from its WAL* via :func:`repro.storage.recovery
        .recover_node` — trusting the pre-crash in-memory objects would
        hide exactly the class of bugs recovery exists to catch.  Pages
        written while the replica was down are then resynced from the
        leader.  Returns the simulated completion time.

        Time flows from the volume clock: recovery happens *now*, never
        at a fresh ``0.0``.  An explicit ``now_us`` can only move time
        forward — a stale (or defaulted) timestamp cannot schedule
        recovery I/O before commits that already completed.
        """
        if self._alive[index]:
            raise ReproError(f"node {index} is not failed")
        now = self.clock.now_us
        if now_us is not None:
            now = max(now, now_us)
        from repro.storage.recovery import recover_node as _wal_recover

        rebuilt = _wal_recover(self.nodes[index], metrics=self.metrics)
        if self._engine is not None:
            rebuilt.bind_engine(
                self._engine, qd=self._qd, defer_gc=self._defer_gc
            )
        self.nodes[index] = rebuilt
        self._alive[index] = True
        if self._consensus is not None:
            # Even a deposed leader rejoins as FOLLOWER at its persisted
            # term; its Raft log repairs (nextIndex backoff) before the
            # node counts as serving again.
            self._consensus.restart(index)
        self.metrics.counter("chaos.wal_replays", node=rebuilt.name).add(1)
        rec = recorder_active()
        if rec is not None:
            rec.emit(now, "fault", "wal_replay", node=rebuilt.name)
        done = self._resync_node(index, now)
        self.clock.advance_to(done)
        if rec is not None:
            rec.emit(
                done, "fault", "node_rejoined",
                node=rebuilt.name, resync_us=round(done - now, 3),
            )
        return done

    def _resync_node(self, index: int, now_us: float) -> float:
        """Copy every missed page from a healthy replica onto ``index``.

        Pages stay in ``_missed[index]`` until their copy lands, so the
        read path never mistakes this node's stale-but-checksummed copy
        for a good repair source mid-resync.  The good image comes from
        the *verified* store read (the source copy itself may be bit-rot
        damaged and need repair first).
        """
        node = self.nodes[index]
        now = now_us
        with self.metrics.tracer.suppressed():
            for page_no in sorted(self._missed[index]):
                if self.leader.index.get(page_no) is None:
                    self._missed[index].discard(page_no)
                    continue
                try:
                    good = self.read_page(now, page_no)
                except PageCorruptionError:
                    continue  # no healthy copy right now; stays queued
                entry = self.leader.index.get(page_no)
                try:
                    result = node.repair_page(
                        good.done_us, page_no, good.data,
                        applied_lsn=entry.applied_lsn if entry else 0,
                    )
                except DeviceUnavailableError:
                    break  # still down: the rest stays queued for later
                self._missed[index].discard(page_no)
                now = result.done_us
                self.metrics.counter(
                    "chaos.resynced_pages", node=node.name
                ).add(1)
        return now

    def resync_missed(self, now_us: float) -> float:
        """Resync stale pages on replicas that stayed up through a device
        outage (their writes were dropped, not their process)."""
        now = now_us
        for i, _node in self._followers():
            if self._alive[i] and self._missed[i]:
                now = max(now, self._resync_node(i, now_us))
        return now

    # ------------------------------------------------------------------ #
    # Write path                                                          #
    # ------------------------------------------------------------------ #

    def write_page(
        self,
        start_us: float,
        page_no: int,
        data: bytes,
        mode: CompressionMode = CompressionMode.NORMAL,
        cpu_utilization: float = 0.0,
        update_percent: float = 1.0,
        force_codec: Optional[str] = None,
        applied_lsn: int = 0,
    ) -> CommittedWrite:
        """Figure 4 steps 1–4: compress, replicate, persist, commit.

        ``applied_lsn`` is the page's LSN high-water mark: redo at or
        below it is already folded into ``data`` and must never be
        re-applied over this image.
        """
        if mode is CompressionMode.HEAVY:
            raise ReproError("use archive_range() for heavy compression")
        tracer = self.metrics.tracer
        root = tracer.begin("storage.page_write", start_us, layer="storage")
        sp = tracer.begin("compression.prepare", start_us, layer="compression")
        if mode is CompressionMode.NONE or len(data) != DB_PAGE_SIZE:
            # Non-page-aligned I/O automatically reverts to no-compression.
            prepared = self._raw_prepared(data)
        else:
            prepared = self.leader.prepare_page(
                page_no, data, cpu_utilization, update_percent, force_codec
            )

        after_compress = start_us + prepared.cpu_us
        tracer.end(sp, after_compress)
        rec = recorder_active()
        if rec is not None and prepared.codec_evaluated:
            # The selector has no clock; the codec decision is stamped
            # here, where the compression phase's end time is known.
            rec.emit(
                after_compress, "codec", "selected",
                page=page_no,
                codec=prepared.algorithm or "none",
                payload_bytes=len(prepared.payload),
                cpu_us=round(prepared.cpu_us, 3),
            )
        commit = self._replicate_page(
            after_compress, page_no, prepared, applied_lsn
        )
        tracer.end(root, commit)
        self.page_write_commit_stats.append(commit - start_us)
        self._commit_rate.record(commit)
        self.clock.advance_to(commit)
        if rec is not None:
            rec.emit(
                commit, "io", "page_write",
                page=page_no,
                blocks=prepared.n_blocks,
                codec=prepared.algorithm or "none",
                latency_us=round(commit - start_us, 3),
            )
        return CommittedWrite(commit, prepared)

    @staticmethod
    def _raw_prepared(data: bytes) -> PreparedWrite:
        from repro.common.units import LBA_SIZE, ceil_div
        from repro.storage.index import CompressionInfo

        return PreparedWrite(
            CompressionInfo.UNCOMPRESSED,
            None,
            data,
            max(1, ceil_div(len(data), LBA_SIZE)),
            0.0,
        )

    def _replicate_page(
        self,
        start_us: float,
        page_no: int,
        prepared: PreparedWrite,
        applied_lsn: int = 0,
    ) -> float:
        tracer = self.metrics.tracer
        self._require_quorum(start_us)
        leader_done = self.leader.write_page_local(
            start_us, page_no, prepared, applied_lsn=applied_lsn
        ).done_us
        send = self.network.rpc_us(len(prepared.payload))
        ack = self.network.rpc_us(64)
        acks: List[float] = []
        # Followers run concurrently with the leader; only the critical
        # path is attributed, so their spans are suppressed.
        with tracer.suppressed():
            for i, node in self._followers():
                if not self._alive[i] or self._net_blocked(i, start_us):
                    self._missed[i].add(page_no)
                    continue
                try:
                    done = node.write_page_local(
                        start_us + send, page_no, prepared,
                        applied_lsn=applied_lsn,
                    ).done_us
                except DeviceUnavailableError:
                    self._missed[i].add(page_no)
                    continue
                # A full fresh copy supersedes any older missed version:
                # this follower is current for the page again, and may
                # serve as a repair source for it.
                self._missed[i].discard(page_no)
                acks.append(done + ack)
        commit = self._commit_time(leader_done, acks)
        sp = tracer.begin("net.quorum_wait", leader_done, layer="net")
        tracer.end(sp, commit)
        return commit

    def _require_quorum(self, now_us: Optional[float] = None) -> None:
        """Refuse before mutating any replica when quorum is already known
        to be lost: writing the leader first would leave an orphaned local
        copy of an update that never committed — unreadable garbage no
        healthy replica can repair.

        With ``now_us``, partitioned followers (per the attached net
        plan) count as unreachable too — the same orphaned-copy hazard,
        caused by a severed link instead of a dead process.
        """
        if not self._alive[self._leader_index]:
            raise RaftError(
                "leader replica is down (awaiting election)"
            )
        reachable = 1 + sum(
            1
            for i, _node in self._followers()
            if self._alive[i]
            and not (now_us is not None and self._net_blocked(i, now_us))
        )
        if reachable < self.quorum:
            raise RaftError(
                f"no quorum: {reachable}/{len(self.nodes)} reachable"
            )

    def _commit_time(self, leader_done: float, acks: List[float]) -> float:
        alive = 1 + len(acks)
        if alive < self.quorum:
            raise RaftError(f"no quorum: {alive}/{len(self.nodes)} alive")
        acks.sort()
        needed = self.quorum - 1
        commit = leader_done
        if needed > 0:
            commit = max(commit, acks[needed - 1])
        return commit

    def write_partial(
        self, start_us: float, page_no: int, offset: int, data: bytes
    ) -> float:
        """Replicated non-page-aligned write (no-compression mode rule:
        decompress existing, splice, store uncompressed)."""
        tracer = self.metrics.tracer
        self._require_quorum(start_us)
        root = tracer.begin("storage.partial_write", start_us, layer="storage")
        leader_done = self.leader.write_partial(
            start_us, page_no, offset, data
        ).done_us
        send = self.network.rpc_us(len(data))
        ack = self.network.rpc_us(64)
        acks = []
        with tracer.suppressed():
            for i, node in self._followers():
                if not self._alive[i] or self._net_blocked(i, start_us):
                    self._missed[i].add(page_no)
                    continue
                try:
                    done = node.write_partial(
                        start_us + send, page_no, offset, data
                    ).done_us
                except DeviceUnavailableError:
                    self._missed[i].add(page_no)
                    continue
                acks.append(done + ack)
        commit = self._commit_time(leader_done, acks)
        sp = tracer.begin("net.quorum_wait", leader_done, layer="net")
        tracer.end(sp, commit)
        tracer.end(root, commit)
        self.clock.advance_to(commit)
        return commit

    def write_redo(
        self, start_us: float, records: Sequence[RedoRecord]
    ) -> float:
        """Replicated redo persistence (the transaction-commit path)."""
        blob = encode_records(records)
        tracer = self.metrics.tracer
        self._require_quorum(start_us)
        root = tracer.begin("storage.redo_commit", start_us, layer="storage")
        leader_done = self.leader.persist_redo(start_us, blob)
        send = self.network.rpc_us(len(blob))
        ack = self.network.rpc_us(64)
        acks = []
        with tracer.suppressed():
            for i, node in self._followers():
                if not self._alive[i] or self._net_blocked(i, start_us):
                    self._missed[i].update(r.page_no for r in records)
                    continue
                try:
                    acks.append(
                        node.persist_redo(start_us + send, blob) + ack
                    )
                except DeviceUnavailableError:
                    self._missed[i].update(r.page_no for r in records)
        commit = self._commit_time(leader_done, acks)
        sp = tracer.begin("net.quorum_wait", leader_done, layer="net")
        tracer.end(sp, commit)
        tracer.end(root, commit)
        self._after_redo_commit(commit, records)
        self.redo_commit_stats.append(commit - start_us)
        self._commit_rate.record(commit)
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                commit, "io", "redo_commit",
                records=len(records),
                bytes=len(blob),
                latency_us=round(commit - start_us, 3),
            )
        return commit

    def _after_redo_commit(
        self, commit: float, records: Sequence[RedoRecord]
    ) -> None:
        """Post-commit bookkeeping shared by the synchronous path and the
        group-commit pipeline: records enter every replica's redo cache
        for later consolidation.  Cache spills here may consolidate pages
        (background work whose spans would overlap the committed
        request)."""
        with self.metrics.tracer.suppressed():
            for i, node in enumerate(self.nodes):
                if not self._alive[i]:
                    self._missed[i].update(r.page_no for r in records)
                    continue
                for _ in range(16):
                    try:
                        node.add_redo(commit, list(records))
                        break
                    except DeviceUnavailableError:
                        if i == self._leader_index:
                            raise  # the elected leader must stay durable
                        self._missed[i].update(
                            r.page_no for r in records
                        )
                        break
                    except PageCorruptionError as err:
                        # A spill-triggered consolidation tripped over a
                        # corrupt page: repair it, then retry.  Duplicate
                        # records from the retry are deduplicated by LSN
                        # at apply time.
                        self._read_with_repair(
                            commit, err.page_no, i, err
                        )
        self.clock.advance_to(commit)

    def write_redo_proc(self, records: Sequence[RedoRecord]):
        """Engine process: redo commit through the group-commit pipeline.

        Commits arriving while a flush is in flight coalesce into the
        next performance-layer write; the replica fan-out inside each
        flush is pipelined (the leader's device write overlaps follower
        RTTs).  Requires :meth:`bind_engine`.  Returns the commit time.
        """
        if self._pipeline is None:
            raise ReproError(
                "write_redo_proc requires bind_engine() on this volume"
            )
        commit = yield from self._pipeline.commit_proc(records)
        return commit

    def archive_range(self, start_us: float, page_nos: List[int]) -> float:
        """Heavy-compress a page range on every replica."""
        done = start_us
        # Replicas archive concurrently; span attribution tracks the leader.
        with self.metrics.tracer.suppressed():
            for i, node in enumerate(self.nodes):
                if not self._alive[i]:
                    self._missed[i].update(page_nos)
                    continue
                for _ in range(64):
                    try:
                        done = max(
                            done,
                            node.archive_range(start_us, list(page_nos)),
                        )
                        break
                    except DeviceUnavailableError:
                        if i == self._leader_index:
                            raise
                        self._missed[i].update(page_nos)
                        break
                    except PageCorruptionError as err:
                        self._read_with_repair(
                            start_us, err.page_no, i, err
                        )
        return done

    def checkpoint(self, start_us: float) -> float:
        """Consolidate every pending redo page on all alive replicas."""
        done = start_us
        with self.metrics.tracer.suppressed():
            for i, node in enumerate(self.nodes):
                if not self._alive[i]:
                    continue
                for _ in range(256):
                    try:
                        done = max(
                            done, node.consolidate_pending(start_us)
                        )
                        break
                    except DeviceUnavailableError:
                        if i == self._leader_index:
                            raise
                        # Un-consolidated redo stays cached for later.
                        break
                    except PageCorruptionError as err:
                        # Consolidation read a corrupt base page or log
                        # block: repair from a healthy replica, retry.
                        self._read_with_repair(
                            start_us, err.page_no, i, err
                        )
        return done

    # ------------------------------------------------------------------ #
    # Read path                                                           #
    # ------------------------------------------------------------------ #

    def read_page(self, start_us: float, page_no: int) -> ReadResult:
        """Read with end-to-end verification (leader first).

        Every page copy carries a CRC-32 computed above the device, so a
        bit flip, torn write, dropped write, or misdirected write anywhere
        below surfaces here as :class:`PageCorruptionError`.  On detection
        the read transparently falls over to a healthy replica, rewrites
        the bad copies from the good image, and counts the repair.  Reads
        slower than ``hedge_after_us`` are hedged to a follower.
        """
        lead = self._leader_index
        if not self._alive[lead] or page_no in self._missed[lead]:
            # The anchor replica cannot serve this page (dead, or it is
            # a freshly-elected leader still missing pages from its own
            # downtime): read from any live replica with a current copy.
            return self._read_from_peer(start_us, page_no)
        try:
            result = self.leader.read_page(start_us, page_no)
        except PageCorruptionError as err:
            return self._read_with_repair(start_us, page_no, lead, err)
        hedged = False
        if (
            self.hedge_after_us > 0
            and len(self.nodes) > 1
            and result.done_us - start_us > self.hedge_after_us
        ):
            result = self._hedged_read(start_us, page_no, result)
            hedged = True
        self.clock.advance_to(result.done_us)
        rec = recorder_active()
        if rec is not None:
            rec.emit(
                result.done_us, "io", "page_read",
                page=page_no,
                latency_us=round(result.done_us - start_us, 3),
                hedged=hedged,
            )
        return result

    def _read_from_peer(self, start_us: float, page_no: int) -> ReadResult:
        """Serve a read when the leader replica cannot: first live
        replica holding a current copy wins (repairing as needed)."""
        last_err: Optional[ReproError] = None
        for i, node in enumerate(self.nodes):
            if not self._alive[i] or page_no in self._missed[i]:
                continue
            try:
                with self.metrics.tracer.suppressed():
                    result = node.read_page(start_us, page_no)
            except PageCorruptionError as err:
                return self._read_with_repair(start_us, page_no, i, err)
            except ReproError as err:
                last_err = err
                continue
            self.clock.advance_to(result.done_us)
            return result
        if last_err is not None:
            raise last_err
        raise ReproError(
            f"no live replica holds a current copy of page {page_no}"
        )

    def _hedged_read(
        self, start_us: float, page_no: int, leader_result: ReadResult
    ) -> ReadResult:
        """Fire a backup read at a follower after the hedge timeout; the
        earlier completion wins (the slow-I/O mitigation of §4.1.1)."""
        hedge_start = start_us + self.hedge_after_us
        for i, _node in self._followers():
            if not self._alive[i] or page_no in self._missed[i]:
                continue
            try:
                with self.metrics.tracer.suppressed():
                    mirror = self.nodes[i].read_page(hedge_start, page_no)
            except ReproError:
                continue  # corrupt/missing there: the scrubber's problem
            self.metrics.counter("chaos.hedged_reads").add(1)
            if mirror.done_us < leader_result.done_us:
                self.metrics.counter("chaos.hedge_wins").add(1)
                return mirror
            return leader_result
        return leader_result

    def _attribute(self, err: PageCorruptionError) -> str:
        """Fault-kind label for a detected corruption (via the ledger)."""
        if self.chaos_plan is not None:
            kind = self.chaos_plan.ledger.kind_for_node(
                err.node, err.lba, err.n_blocks
            )
            if kind is not None:
                return kind.value
        return "unknown"

    def _read_with_repair(
        self,
        start_us: float,
        page_no: int,
        bad_index: int,
        first_err: PageCorruptionError,
    ) -> ReadResult:
        """Serve a read despite corruption, then repair every bad copy."""
        tracer = self.metrics.tracer
        bad = [(bad_index, first_err)]
        good: Optional[ReadResult] = None
        good_index = -1
        for i, node in enumerate(self.nodes):
            if (
                i == bad_index
                or not self._alive[i]
                or page_no in self._missed[i]
            ):
                continue
            try:
                with tracer.suppressed():
                    candidate = node.read_page(start_us, page_no)
                good, good_index = candidate, i
                break
            except PageCorruptionError as err:
                bad.append((i, err))
            except (DeviceUnavailableError, ReproError):
                continue
        kinds = {i: self._attribute(err) for i, err in bad}
        rec = recorder_active()
        for i, _ in bad:
            self.metrics.counter("chaos.detected", kind=kinds[i]).add(1)
            if rec is not None:
                rec.emit(
                    start_us, "scrub", "detected",
                    page=page_no, node=i, kind=kinds[i],
                )
        if good is None:
            for i, _ in bad:
                self.metrics.counter(
                    "chaos.unrepairable", kind=kinds[i]
                ).add(1)
                if rec is not None:
                    rec.emit(
                        start_us, "scrub", "unrepairable",
                        page=page_no, node=i, kind=kinds[i],
                    )
            raise first_err
        entry = self.nodes[good_index].index.get(page_no)
        applied = entry.applied_lsn if entry else 0
        with tracer.suppressed():
            for i, err in bad:
                try:
                    self.nodes[i].repair_page(
                        good.done_us, page_no, good.data, applied_lsn=applied
                    )
                except DeviceUnavailableError:
                    self.metrics.counter(
                        "chaos.unrepairable", kind=kinds[i]
                    ).add(1)
                    if rec is not None:
                        rec.emit(
                            good.done_us, "scrub", "unrepairable",
                            page=page_no, node=i, kind=kinds[i],
                        )
                    continue
                if self.chaos_plan is not None:
                    self.chaos_plan.ledger.clear_node(
                        err.node, err.lba, err.n_blocks
                    )
                self.metrics.counter("chaos.repaired", kind=kinds[i]).add(1)
                if rec is not None:
                    rec.emit(
                        good.done_us, "scrub", "repaired",
                        page=page_no, node=i, kind=kinds[i],
                        source=good_index,
                    )
        return good

    def scrub(self, start_us: float) -> float:
        """Background scrubber: checksum-verify every replica copy of
        every indexed page, repairing damage found.  Returns the
        simulated completion time."""
        now = self.resync_missed(start_us)
        pages: set = set()
        for i, node in enumerate(self.nodes):
            if self._alive[i]:
                pages.update(p for p, _ in node.index.items())
        rec = recorder_active()
        if rec is not None:
            rec.emit(now, "scrub", "sweep_start", pages=len(pages))
        self._warm_scrub_memo(sorted(pages))
        for page_no in sorted(pages):
            for i, node in enumerate(self.nodes):
                if not self._alive[i] or page_no in self._missed[i]:
                    continue
                has_copy = (
                    node.index.get(page_no) is not None
                    or node.redo_cache.get(page_no)
                    or node.log_store.blocks_for(page_no) > 0
                )
                if not has_copy:
                    continue
                self.metrics.counter("chaos.scrub_pages").add(1)
                # Bypass the page cache: scrubbing verifies the *device*.
                node.page_cache.remove(page_no)
                try:
                    with self.metrics.tracer.suppressed():
                        result = node.read_page(now, page_no)
                    now = result.done_us
                except PageCorruptionError as err:
                    result = self._read_with_repair(now, page_no, i, err)
                    now = result.done_us
                except DeviceUnavailableError:
                    continue  # device down: scrub this copy next round
        if rec is not None:
            rec.emit(now, "scrub", "sweep_end", pages=len(pages))
        return now

    def _warm_scrub_memo(self, page_nos: Sequence[int]) -> None:
        """Prefetch the scrub sweep's decompressions into the codec memo.

        The sweep is about to checksum-read every replica copy serially;
        the payloads are already on the devices, so the codec pool can
        decompress them ahead of the sweep while it walks.  Only payloads
        that pass their stored CRC are warmed — the memo's verified-only
        discipline holds even for speculative work (a chaos-corrupted
        copy is skipped here and still fails loudly in the sweep).
        Wall-clock only: no simulated I/O or time is charged.
        """
        runtime = perf_active()
        if runtime is None or runtime.pool is None or runtime.memo is None:
            return
        from repro.common.checksum import crc32 as _crc32
        from repro.common.units import LBA_SIZE

        batches: dict = {}
        for page_no in page_nos:
            for i, node in enumerate(self.nodes):
                if not self._alive[i] or page_no in self._missed[i]:
                    continue
                entry = node.index.get(page_no)
                if (
                    entry is None
                    or entry.status is not CompressionInfo.NORMAL
                    or not entry.checksum
                ):
                    continue
                raw = node.data_device.peek(
                    entry.lba, entry.n_blocks * LBA_SIZE
                )
                if raw is None:
                    continue
                payload = memoryview(raw)[: entry.payload_len]
                if _crc32(payload) != entry.checksum:
                    continue
                batches.setdefault(entry.algorithm, []).append(bytes(payload))
        for algorithm, payloads in batches.items():
            runtime.warm_decompress(algorithm, payloads)

    # ------------------------------------------------------------------ #
    # Space                                                               #
    # ------------------------------------------------------------------ #

    @property
    def logical_used_bytes(self) -> int:
        return self.leader.logical_used_bytes

    @property
    def physical_used_bytes(self) -> int:
        return self.leader.physical_used_bytes

    def compression_ratio(self) -> float:
        return self.leader.compression_ratio()
