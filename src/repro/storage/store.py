"""The PolarStore volume: replicated shared storage behind one facade.

Implements the Figure 4 workflow end-to-end: the leader compresses a page
into 4 KB-aligned blocks (software layer), replicates the compressed blocks
to two followers, all three persist (device write + WAL), and the write
commits at the majority.  Redo writes follow the same replication rule but
take the Opt#1 path.

The three write modes of §3.2.3 are exposed via :class:`CompressionMode`:

* ``NORMAL`` — default dual-layer compression (page-aligned I/O only;
  non-aligned writes silently fall back to ``NONE`` as in the paper);
* ``NONE``  — bypass software compression;
* ``HEAVY`` — archive an existing page range as one high-ratio segment.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.errors import RaftError, ReproError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.csd.device import BlockDevice, PlainSSD, PolarCSD
from repro.csd.specs import (
    DeviceSpec,
    OPTANE_P5800X,
    POLARCSD2,
)
from repro.obs.metrics import MetricsRegistry
from repro.storage.node import NodeConfig, PreparedWrite, ReadResult, StorageNode
from repro.storage.raft import NetworkModel
from repro.storage.redo import RedoRecord, encode_records

_node_counter = itertools.count()


class CompressionMode(enum.Enum):
    NORMAL = "normal"
    NONE = "none"
    HEAVY = "heavy"


@dataclass(frozen=True)
class CommittedWrite:
    """A replicated page write."""

    commit_us: float
    prepared: PreparedWrite


def build_node(
    name: str,
    config: NodeConfig,
    data_spec: DeviceSpec = POLARCSD2,
    perf_spec: DeviceSpec = OPTANE_P5800X,
    volume_bytes: int = 256 * MiB,
    physical_bytes: Optional[int] = None,
    seed: int = 0,
    inject_faults: bool = False,
    parallelism: int = 8,
    metrics: Optional[MetricsRegistry] = None,
) -> StorageNode:
    """Construct a storage node with simulation-sized devices.

    ``volume_bytes`` replaces the spec's multi-TB logical capacity so the
    allocator and FTL operate at laptop scale; latency constants are
    untouched.  ``parallelism`` models the 10-12 drives a storage server
    actually stripes across (the paper's nodes are never single-disk).
    """
    if physical_bytes is None:
        # Preserve the spec's logical:physical provisioning ratio.
        ratio = data_spec.physical_capacity / data_spec.logical_capacity
        physical_bytes = max(8 * MiB, int(volume_bytes * ratio * 2))
    sized = dataclasses.replace(
        data_spec,
        logical_capacity=volume_bytes,
        physical_capacity=physical_bytes,
    )
    if metrics is None:
        metrics = MetricsRegistry()
    if sized.has_compression:
        data_device: BlockDevice = PolarCSD(
            sized, seed=seed, inject_faults=inject_faults,
            block_capacity=1 * MiB, parallelism=parallelism,
            metrics=metrics, metric_labels={"node": name, "role": "data"},
        )
    else:
        data_device = PlainSSD(
            sized, seed=seed, inject_faults=inject_faults,
            parallelism=parallelism,
            metrics=metrics, metric_labels={"node": name, "role": "data"},
        )
    perf_sized = dataclasses.replace(
        perf_spec, logical_capacity=max(volume_bytes // 4, 8 * MiB)
    )
    perf_device = PlainSSD(
        perf_sized, seed=seed + 1, parallelism=2,
        metrics=metrics, metric_labels={"node": name, "role": "perf"},
    )
    return StorageNode(name, config, data_device, perf_device, metrics=metrics)


class PolarStore:
    """A replicated volume: one leader node plus ``replicas - 1`` followers."""

    def __init__(
        self,
        config: Optional[NodeConfig] = None,
        data_spec: DeviceSpec = POLARCSD2,
        perf_spec: DeviceSpec = OPTANE_P5800X,
        volume_bytes: int = 256 * MiB,
        replicas: int = 3,
        network: NetworkModel = NetworkModel(),
        seed: int = 0,
        inject_faults: bool = False,
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.config = config if config is not None else NodeConfig()
        self.network = network
        #: One registry spans the whole volume: every node, device, FTL,
        #: and selector instrument lands here, and its tracer carries span
        #: context through the write/read paths.
        self.metrics = MetricsRegistry()
        base = next(_node_counter) * 100
        self.nodes: List[StorageNode] = [
            build_node(
                f"node-{base + i}",
                self.config,
                data_spec,
                perf_spec,
                volume_bytes,
                seed=seed + i * 7,
                inject_faults=inject_faults,
                metrics=self.metrics,
            )
            for i in range(replicas)
        ]
        self._alive = [True] * replicas
        # Commit-latency distributions, bounded (the seed kept raw
        # unbounded lists here); list(...)/len()/clear() still work.
        self.redo_commit_stats = self.metrics.series(
            "storage.redo_commit_us"
        )
        self.page_write_commit_stats = self.metrics.series(
            "storage.page_write_commit_us"
        )
        self._commit_rate = self.metrics.timeseries(
            "storage.commits_per_window", window_us=1e6
        )
        self.metrics.gauge_fn(
            "storage.compression_ratio", self.compression_ratio
        )
        self.metrics.gauge_fn(
            "storage.logical_used_bytes",
            lambda: self.leader.logical_used_bytes,
        )
        self.metrics.gauge_fn(
            "storage.physical_used_bytes",
            lambda: self.leader.physical_used_bytes,
        )

    @property
    def leader(self) -> StorageNode:
        return self.nodes[0]

    @property
    def quorum(self) -> int:
        return len(self.nodes) // 2 + 1

    def fail_node(self, index: int) -> None:
        if index == 0:
            raise ReproError("leader failover is out of scope")
        self._alive[index] = False

    def recover_node(self, index: int) -> None:
        self._alive[index] = True

    # ------------------------------------------------------------------ #
    # Write path                                                          #
    # ------------------------------------------------------------------ #

    def write_page(
        self,
        start_us: float,
        page_no: int,
        data: bytes,
        mode: CompressionMode = CompressionMode.NORMAL,
        cpu_utilization: float = 0.0,
        update_percent: float = 1.0,
        force_codec: Optional[str] = None,
    ) -> CommittedWrite:
        """Figure 4 steps 1–4: compress, replicate, persist, commit."""
        if mode is CompressionMode.HEAVY:
            raise ReproError("use archive_range() for heavy compression")
        tracer = self.metrics.tracer
        root = tracer.begin("storage.page_write", start_us, layer="storage")
        sp = tracer.begin("compression.prepare", start_us, layer="compression")
        if mode is CompressionMode.NONE or len(data) != DB_PAGE_SIZE:
            # Non-page-aligned I/O automatically reverts to no-compression.
            prepared = self._raw_prepared(data)
        else:
            prepared = self.leader.prepare_page(
                page_no, data, cpu_utilization, update_percent, force_codec
            )

        after_compress = start_us + prepared.cpu_us
        tracer.end(sp, after_compress)
        commit = self._replicate_page(after_compress, page_no, prepared)
        tracer.end(root, commit)
        self.page_write_commit_stats.append(commit - start_us)
        self._commit_rate.record(commit)
        return CommittedWrite(commit, prepared)

    @staticmethod
    def _raw_prepared(data: bytes) -> PreparedWrite:
        from repro.common.units import LBA_SIZE, ceil_div
        from repro.storage.index import CompressionInfo

        return PreparedWrite(
            CompressionInfo.UNCOMPRESSED,
            None,
            data,
            max(1, ceil_div(len(data), LBA_SIZE)),
            0.0,
        )

    def _replicate_page(
        self, start_us: float, page_no: int, prepared: PreparedWrite
    ) -> float:
        tracer = self.metrics.tracer
        leader_done = self.leader.write_page_local(start_us, page_no, prepared).done_us
        send = self.network.rpc_us(len(prepared.payload))
        ack = self.network.rpc_us(64)
        acks: List[float] = []
        # Followers run concurrently with the leader; only the critical
        # path is attributed, so their spans are suppressed.
        with tracer.suppressed():
            for i, node in enumerate(self.nodes[1:], start=1):
                if not self._alive[i]:
                    continue
                done = node.write_page_local(
                    start_us + send, page_no, prepared
                ).done_us
                acks.append(done + ack)
        commit = self._commit_time(leader_done, acks)
        sp = tracer.begin("net.quorum_wait", leader_done, layer="net")
        tracer.end(sp, commit)
        return commit

    def _commit_time(self, leader_done: float, acks: List[float]) -> float:
        alive = 1 + len(acks)
        if alive < self.quorum:
            raise RaftError(f"no quorum: {alive}/{len(self.nodes)} alive")
        acks.sort()
        needed = self.quorum - 1
        commit = leader_done
        if needed > 0:
            commit = max(commit, acks[needed - 1])
        return commit

    def write_partial(
        self, start_us: float, page_no: int, offset: int, data: bytes
    ) -> float:
        """Replicated non-page-aligned write (no-compression mode rule:
        decompress existing, splice, store uncompressed)."""
        tracer = self.metrics.tracer
        root = tracer.begin("storage.partial_write", start_us, layer="storage")
        leader_done = self.leader.write_partial(
            start_us, page_no, offset, data
        ).done_us
        send = self.network.rpc_us(len(data))
        ack = self.network.rpc_us(64)
        acks = []
        with tracer.suppressed():
            for i, node in enumerate(self.nodes[1:], start=1):
                if not self._alive[i]:
                    continue
                done = node.write_partial(
                    start_us + send, page_no, offset, data
                ).done_us
                acks.append(done + ack)
        commit = self._commit_time(leader_done, acks)
        sp = tracer.begin("net.quorum_wait", leader_done, layer="net")
        tracer.end(sp, commit)
        tracer.end(root, commit)
        return commit

    def write_redo(
        self, start_us: float, records: Sequence[RedoRecord]
    ) -> float:
        """Replicated redo persistence (the transaction-commit path)."""
        blob = encode_records(records)
        tracer = self.metrics.tracer
        root = tracer.begin("storage.redo_commit", start_us, layer="storage")
        leader_done = self.leader.persist_redo(start_us, blob)
        send = self.network.rpc_us(len(blob))
        ack = self.network.rpc_us(64)
        acks = []
        with tracer.suppressed():
            for i, node in enumerate(self.nodes[1:], start=1):
                if not self._alive[i]:
                    continue
                acks.append(node.persist_redo(start_us + send, blob) + ack)
        commit = self._commit_time(leader_done, acks)
        sp = tracer.begin("net.quorum_wait", leader_done, layer="net")
        tracer.end(sp, commit)
        tracer.end(root, commit)
        # Records enter every replica's redo cache for later consolidation.
        # Cache spills here may consolidate pages (background work whose
        # spans would overlap the committed request).
        with tracer.suppressed():
            for i, node in enumerate(self.nodes):
                if self._alive[i]:
                    node.add_redo(commit, list(records))
        self.redo_commit_stats.append(commit - start_us)
        self._commit_rate.record(commit)
        return commit

    def archive_range(self, start_us: float, page_nos: List[int]) -> float:
        """Heavy-compress a page range on every replica."""
        done = start_us
        # Replicas archive concurrently; span attribution tracks the leader.
        with self.metrics.tracer.suppressed():
            for i, node in enumerate(self.nodes):
                if self._alive[i]:
                    done = max(
                        done, node.archive_range(start_us, list(page_nos))
                    )
        return done

    def checkpoint(self, start_us: float) -> float:
        """Consolidate every pending redo page on all alive replicas."""
        done = start_us
        with self.metrics.tracer.suppressed():
            for i, node in enumerate(self.nodes):
                if self._alive[i]:
                    done = max(done, node.consolidate_pending(start_us))
        return done

    # ------------------------------------------------------------------ #
    # Read path                                                           #
    # ------------------------------------------------------------------ #

    def read_page(self, start_us: float, page_no: int) -> ReadResult:
        """Reads are served by the leader (compute nodes pick a replica;
        using the leader keeps the simulation deterministic)."""
        return self.leader.read_page(start_us, page_no)

    # ------------------------------------------------------------------ #
    # Space                                                               #
    # ------------------------------------------------------------------ #

    @property
    def logical_used_bytes(self) -> int:
        return self.leader.logical_used_bytes

    @property
    def physical_used_bytes(self) -> int:
        return self.leader.physical_used_bytes

    def compression_ratio(self) -> float:
        return self.leader.compression_ratio()
