"""Crash recovery of a storage node (§3.2.1).

The bitmap allocator and hash-table index live in memory and are logged to
the WAL "exclusively for recovery purposes".  This module rebuilds both
from a WAL replay, re-registers heavy-compression segments, and re-stages
durably-persisted redo whose LSN exceeds each page's ``applied_lsn`` —
everything a node needs to serve reads again after losing its RAM.

The devices themselves (data + performance) survive the crash: their
contents are the durable state the rebuilt metadata points back into.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import WALError
from repro.storage.heavy import SegmentMeta
from repro.storage.index import IndexEntry, PageIndex
from repro.storage.node import STATUS_FROM_ID, StorageNode
from repro.storage.redo import RedoRecord, decode_records
from repro.storage.wal import (
    WALRecordType,
    decode_alloc,
    decode_free,
    decode_index_put,
    decode_index_remove,
    decode_segment,
)


def take_checkpoint(node: StorageNode) -> int:
    """Snapshot the node's recoverable state into the WAL and truncate.

    After this, recovery replays only the records appended since the
    checkpoint — the standard ARIES-style shortening of restart time.
    Returns the checkpoint's LSN.
    """
    snapshot = _encode_snapshot(node)
    lsn = node.wal.append_checkpoint(snapshot)
    node.wal.truncate_below(lsn)
    return lsn


def _encode_snapshot(node: StorageNode) -> bytes:
    import struct

    out = bytearray()
    allocations = _live_allocations(node)
    out += struct.pack("<I", len(allocations))
    for lba, n_blocks in allocations:
        out += struct.pack("<QI", lba, n_blocks)

    entries = list(node.index.items())
    out += struct.pack("<I", len(entries))
    from repro.storage.node import _STATUS_IDS

    for page_no, entry in entries:
        out += struct.pack(
            "<QQIIBBQQII",
            page_no, entry.lba, entry.n_blocks, entry.payload_len,
            _STATUS_IDS[entry.status],
            node.wal.ALGORITHMS.get(entry.algorithm, 0),
            entry.applied_lsn,
            entry.segment_id or 0,
            entry.page_in_segment or 0,
            entry.checksum,
        )

    segments = [
        node.heavy.get(segment_id)
        for segment_id in sorted(
            {
                e.segment_id
                for _, e in node.index.items()
                if e.segment_id is not None
            }
        )
    ]
    out += struct.pack("<I", len(segments))
    for meta in segments:
        out += struct.pack(
            "<QQIII", meta.segment_id, meta.compressed_len,
            len(meta.pieces), len(meta.page_nos), meta.checksum,
        )
        for lba, blocks in meta.pieces:
            out += struct.pack("<QI", lba, blocks)
        for page_no in meta.page_nos:
            out += struct.pack("<Q", page_no)
    return bytes(out)


def _live_allocations(node: StorageNode) -> List[Tuple[int, int]]:
    """Reconstruct (lba, n_blocks) pairs from the WAL's ALLOC/FREE history
    (the bitmap itself does not remember allocation boundaries)."""
    allocations: Dict[int, int] = {}
    for record in node.wal.replay():
        if record.type is WALRecordType.ALLOC:
            lba, n_blocks = decode_alloc(record.payload)
            allocations[lba] = n_blocks
        elif record.type is WALRecordType.FREE:
            lba, _ = decode_free(record.payload)
            allocations.pop(lba, None)
        elif record.type is WALRecordType.CHECKPOINT and record.payload:
            snap_allocs, _, _ = _decode_snapshot(record.payload)
            allocations = dict(snap_allocs)
    return sorted(allocations.items())


def _decode_snapshot(payload: bytes):
    import struct

    pos = 0
    (n_allocs,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    allocations: List[Tuple[int, int]] = []
    for _ in range(n_allocs):
        lba, n_blocks = struct.unpack_from("<QI", payload, pos)
        pos += struct.calcsize("<QI")
        allocations.append((lba, n_blocks))

    (n_entries,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    entries = []
    for _ in range(n_entries):
        fields = struct.unpack_from("<QQIIBBQQII", payload, pos)
        pos += struct.calcsize("<QQIIBBQQII")
        entries.append(fields)

    (n_segments,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    segments = []
    for _ in range(n_segments):
        segment_id, compressed_len, n_pieces, n_pages, checksum = (
            struct.unpack_from("<QQIII", payload, pos)
        )
        pos += struct.calcsize("<QQIII")
        pieces = []
        for _ in range(n_pieces):
            lba, blocks = struct.unpack_from("<QI", payload, pos)
            pos += struct.calcsize("<QI")
            pieces.append((lba, blocks))
        page_nos = []
        for _ in range(n_pages):
            page_nos.append(struct.unpack_from("<Q", payload, pos)[0])
            pos += 8
        segments.append(
            SegmentMeta(segment_id, tuple(pieces), compressed_len,
                        tuple(page_nos), checksum)
        )
    return allocations, entries, segments


def recover_node(crashed: StorageNode, metrics=None) -> StorageNode:
    """Return a fresh node with state rebuilt from the crashed node's WAL.

    Reuses the crashed node's devices (durable), WAL (lives on the
    performance device), and durable redo blobs.  In-memory structures —
    allocator bitmaps, page index, caches, redo cache — are reconstructed.
    ``metrics`` lets a replicated volume keep the rebuilt node on the
    shared registry; standalone recoveries inherit the crashed node's.
    """
    node = StorageNode(
        crashed.name, crashed.config, crashed.data_device, crashed.perf_device,
        metrics=metrics if metrics is not None else crashed.metrics,
    )
    node.wal = crashed.wal
    node.durable_redo_blobs = list(crashed.durable_redo_blobs)

    allocations: Dict[int, int] = {}  # start_lba -> n_blocks
    index = PageIndex()
    segments: Dict[int, SegmentMeta] = {}

    for record in node.wal.replay():
        if record.type is WALRecordType.ALLOC:
            lba, n_blocks = decode_alloc(record.payload)
            if lba in allocations:
                raise WALError(f"double ALLOC of LBA {lba} in WAL")
            allocations[lba] = n_blocks
        elif record.type is WALRecordType.FREE:
            lba, n_blocks = decode_free(record.payload)
            allocations.pop(lba, None)
        elif record.type is WALRecordType.INDEX_PUT:
            put = decode_index_put(record.payload)
            status = STATUS_FROM_ID[put.status]
            index.put(
                put.page_no,
                IndexEntry(
                    status,
                    put.algorithm,
                    put.lba,
                    put.n_blocks,
                    put.payload_len,
                    segment_id=put.segment_id or None,
                    page_in_segment=(
                        put.page_in_segment if put.segment_id else None
                    ),
                    applied_lsn=put.applied_lsn,
                    checksum=put.checksum,
                ),
            )
        elif record.type is WALRecordType.INDEX_REMOVE:
            index.remove(decode_index_remove(record.payload))
        elif record.type is WALRecordType.SEGMENT:
            seg = decode_segment(record.payload)
            segments[seg.segment_id] = SegmentMeta(
                seg.segment_id, seg.pieces, seg.compressed_len, seg.page_nos,
                seg.checksum,
            )
        elif record.type is WALRecordType.CHECKPOINT:
            if not record.payload:
                continue
            # Reset to the snapshot; later records replay on top of it.
            snap_allocs, snap_entries, snap_segments = _decode_snapshot(
                record.payload
            )
            allocations = dict(snap_allocs)
            index = PageIndex()
            for fields in snap_entries:
                (page_no, lba, n_blocks, payload_len, status_id, algo_id,
                 applied_lsn, segment_id, page_in_segment, checksum) = fields
                index.put(
                    page_no,
                    IndexEntry(
                        STATUS_FROM_ID[status_id],
                        node.wal.ALGORITHM_NAMES.get(algo_id),
                        lba, n_blocks, payload_len,
                        segment_id=segment_id or None,
                        page_in_segment=(
                            page_in_segment if segment_id else None
                        ),
                        applied_lsn=applied_lsn,
                        checksum=checksum,
                    ),
                )
            segments = {meta.segment_id: meta for meta in snap_segments}

    node.space.bitmap.restore(sorted(allocations.items()))
    node.index = index
    _restore_segments(node, index, segments)
    _restage_redo(node, index)
    return node


def _restore_segments(
    node: StorageNode, index: PageIndex, segments: Dict[int, SegmentMeta]
) -> None:
    live_segments = {
        entry.segment_id
        for _, entry in index.items()
        if entry.segment_id is not None
    }
    node.heavy.restore(
        {
            segment_id: meta
            for segment_id, meta in segments.items()
            if segment_id in live_segments
        }
    )


def _restage_redo(node: StorageNode, index: PageIndex) -> None:
    """Re-stage durable redo newer than each page's materialized LSN."""
    pending: Dict[int, List[RedoRecord]] = {}
    for blob in node.durable_redo_blobs:
        for record in decode_records(blob):
            entry = index.get(record.page_no)
            applied = entry.applied_lsn if entry else 0
            if record.lsn > applied:
                pending.setdefault(record.page_no, []).append(record)
    for page_no, records in pending.items():
        # Deduplicate by LSN (a batch may have been re-persisted).
        seen = set()
        unique = []
        for record in sorted(records):
            if record.lsn not in seen:
                seen.add(record.lsn)
                unique.append(record)
        node.redo_cache[page_no] = unique
        node._redo_cache_bytes += sum(r.size_bytes for r in unique)
